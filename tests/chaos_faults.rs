//! The chaos property suite: injected timing faults may slow the machine
//! down, but they must never break it.
//!
//! For every fault kind (and all of them at once), across both workloads
//! and both coherence protocols, a chaos-armed run must still (1) complete
//! and produce the correct result, (2) pass the always-on
//! `StallCollector::validate()` conservation check inside `run_kernel`,
//! and (3) be bit-identical when re-run with the same seed. A disabled
//! plan must leave the simulation byte-for-byte equal to one that never
//! heard of chaos — the zero-cost default.

#![allow(clippy::unwrap_used)] // test code asserts infallibility

use gsi::chaos::{FaultKind, FaultPlan};
use gsi::mem::Protocol;
use gsi::sim::{KernelRun, Simulator, SystemConfig};
use gsi::workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
use gsi::workloads::uts::{self, UtsConfig, Variant};

const SEEDS: [u64; 2] = [0xC0FFEE, 0x5EED_5EED];

fn tiny_uts() -> UtsConfig {
    UtsConfig {
        root_children: 6,
        branch: 2,
        q_per_mille: 300,
        max_depth: 5,
        root_seed: 0x77,
        grid_blocks: 2,
        warps_per_block: 1,
        local_cap: 4,
    }
}

fn uts_run(protocol: Protocol, plan: &FaultPlan) -> (KernelRun, u64) {
    let sys = SystemConfig::paper().with_gpu_cores(2).with_protocol(protocol);
    let mut sim = Simulator::new(sys);
    sim.set_chaos(plan);
    let out = uts::run(&mut sim, &tiny_uts(), Variant::Decentralized)
        .unwrap_or_else(|e| panic!("UTS under {plan:?} must complete: {e}"));
    assert_eq!(out.processed, out.expected, "UTS result wrong under {plan:?}");
    (out.run, sim.chaos_stats().total())
}

fn implicit_run(protocol: Protocol, style: LocalMemStyle, plan: &FaultPlan) -> (KernelRun, u64) {
    let sys = SystemConfig::paper()
        .with_gpu_cores(1)
        .with_protocol(protocol)
        .with_local_mem(style.mem_kind());
    let mut sim = Simulator::new(sys);
    sim.set_chaos(plan);
    let cfg = ImplicitConfig { elems: 128, warps_per_block: 1, compute_iters: 2, style };
    let out = implicit::run(&mut sim, &cfg)
        .unwrap_or_else(|e| panic!("implicit under {plan:?} must complete: {e}"));
    assert_eq!(out.verified_elems, cfg.elems, "implicit result wrong under {plan:?}");
    (out.run, sim.chaos_stats().total())
}

/// Every fault kind alone, plus all at once: both workloads complete with
/// correct results under both protocols (conservation is validated inside
/// `run_kernel` on every one of these runs).
#[test]
fn every_fault_kind_preserves_completion_and_conservation() {
    let mut plans: Vec<FaultPlan> =
        FaultKind::ALL.into_iter().map(|k| FaultPlan::single(k, SEEDS[0])).collect();
    plans.push(FaultPlan::all(SEEDS[0]));
    for plan in &plans {
        for protocol in [Protocol::GpuCoherence, Protocol::DeNovo] {
            uts_run(protocol, plan);
            implicit_run(protocol, LocalMemStyle::Scratchpad, plan);
        }
    }
}

/// The DMA-drop and store-buffer fault kinds only bite on the local-memory
/// styles that exercise those engines; run them where they are live. Only
/// scratchpad+DMA drives the DMA engine (stash fills on demand), so that
/// is where dropped bursts must demonstrably fire.
#[test]
fn dma_styles_survive_dma_and_store_buffer_faults() {
    for style in [LocalMemStyle::ScratchpadDma, LocalMemStyle::Stash] {
        for kind in [FaultKind::DmaDrop, FaultKind::StoreBufferStall] {
            let plan = FaultPlan::single(kind, SEEDS[1]);
            let (_, injected) = implicit_run(Protocol::DeNovo, style, &plan);
            if style == LocalMemStyle::ScratchpadDma {
                assert!(injected > 0, "{kind} never fired on {style}");
            }
        }
    }
}

/// Chaos with a fixed seed is bit-deterministic: the same plan on a fresh
/// simulator reproduces the identical `KernelRun` and injection count.
#[test]
fn fixed_seed_chaos_is_bit_deterministic() {
    for seed in SEEDS {
        let plan = FaultPlan::all(seed);
        for protocol in [Protocol::GpuCoherence, Protocol::DeNovo] {
            let (a, na) = uts_run(protocol, &plan);
            let (b, nb) = uts_run(protocol, &plan);
            assert_eq!(a, b, "seed {seed:#x} {protocol:?} runs must be bit-identical");
            assert_eq!(na, nb, "seed {seed:#x} injection counts must match");
            assert!(na > 0, "seed {seed:#x} must actually inject faults");
        }
    }
}

/// Different seeds genuinely perturb the machine: the injected-fault
/// streams differ (and in practice so do the cycle counts).
#[test]
fn different_seeds_produce_different_fault_streams() {
    let (a, na) = uts_run(Protocol::GpuCoherence, &FaultPlan::all(SEEDS[0]));
    let (b, nb) = uts_run(Protocol::GpuCoherence, &FaultPlan::all(SEEDS[1]));
    assert!(na != nb || a.cycles != b.cycles, "seeds must decorrelate");
}

/// A disabled plan is indistinguishable from never touching the chaos API:
/// the zero-cost default really is a no-op.
#[test]
fn disabled_plan_is_a_noop() {
    let baseline = {
        let sys = SystemConfig::paper().with_gpu_cores(2);
        let mut sim = Simulator::new(sys);
        let out = uts::run(&mut sim, &tiny_uts(), Variant::Decentralized).unwrap();
        out.run
    };
    let (disabled, injected) = uts_run(Protocol::GpuCoherence, &FaultPlan::disabled());
    assert_eq!(baseline, disabled, "disabled chaos must not perturb the run");
    assert_eq!(injected, 0);
}

/// Chaos makes the machine strictly slower, never faster than free: an
/// all-faults run takes at least as many cycles as the clean baseline.
#[test]
fn chaos_only_adds_cycles() {
    let (clean, _) = uts_run(Protocol::DeNovo, &FaultPlan::disabled());
    let (noisy, injected) = uts_run(Protocol::DeNovo, &FaultPlan::all(SEEDS[0]));
    assert!(injected > 0);
    assert!(
        noisy.cycles >= clean.cycles,
        "injected delays cannot speed the machine up ({} < {})",
        noisy.cycles,
        clean.cycles
    );
}
