//! Serialization guarantees: configurations and run reports round-trip
//! through the gsi-json layer (the `gsi-run --json` export path), and a
//! deserialized configuration reproduces the exact same simulation.

#![allow(clippy::unwrap_used)] // test code asserts infallibility

use gsi_json::{FromJson, ToJson, Value};

use gsi::sim::{LaunchSpec, Simulator, SystemConfig};
use gsi::workloads::uts::{self, UtsConfig, Variant};

/// Serialize to text and parse back, through a full writer/parser cycle.
fn round_trip<T: ToJson + FromJson>(x: &T) -> T {
    let text = x.to_json().to_string();
    let v = Value::parse(&text).expect("parse");
    T::from_json(&v).expect("deserialize")
}

#[test]
fn system_config_round_trips_and_reproduces_runs() {
    let cfg = SystemConfig::paper()
        .with_gpu_cores(4)
        .with_protocol(gsi::mem::Protocol::DeNovo)
        .with_mshr(64)
        .with_sfifo(true);
    let back = round_trip(&cfg);
    assert_eq!(cfg, back);

    // The deserialized config must produce a bit-identical simulation.
    let ucfg = UtsConfig::small();
    let mut a = Simulator::new(cfg);
    let mut b = Simulator::new(back);
    let ra = uts::run(&mut a, &ucfg, Variant::Decentralized).unwrap().run;
    let rb = uts::run(&mut b, &ucfg, Variant::Decentralized).unwrap().run;
    assert_eq!(ra.cycles, rb.cycles);
    assert_eq!(ra.breakdown, rb.breakdown);
}

#[test]
fn kernel_run_serializes_completely() {
    let mut b = gsi::isa::ProgramBuilder::new("t");
    b.ldi(gsi::isa::Reg(1), 1);
    b.exit();
    let spec = LaunchSpec::new(b.build().unwrap(), 2, 1);
    let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(2));
    sim.set_timeline_epoch(8);
    let run = sim.run_kernel(&spec).unwrap();
    let back: gsi::sim::KernelRun = round_trip(&run);
    assert_eq!(back, run);
}

#[test]
fn programs_serialize() {
    let p = uts::build_centralized(&UtsConfig::small());
    let back: gsi::isa::Program = round_trip(&p);
    assert_eq!(p, back);
}
