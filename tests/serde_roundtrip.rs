//! Serialization guarantees: configurations and run reports round-trip
//! through serde (the `gsi-run --json` export path), and a deserialized
//! configuration reproduces the exact same simulation.

use gsi::sim::{LaunchSpec, Simulator, SystemConfig};
use gsi::workloads::uts::{self, UtsConfig, Variant};

#[test]
fn system_config_round_trips_and_reproduces_runs() {
    let cfg = SystemConfig::paper()
        .with_gpu_cores(4)
        .with_protocol(gsi::mem::Protocol::DeNovo)
        .with_mshr(64)
        .with_sfifo(true);
    let json = serde_json::to_string(&cfg).expect("serialize");
    let back: SystemConfig = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(cfg, back);

    // The deserialized config must produce a bit-identical simulation.
    let ucfg = UtsConfig::small();
    let mut a = Simulator::new(cfg);
    let mut b = Simulator::new(back);
    let ra = uts::run(&mut a, &ucfg, Variant::Decentralized).unwrap().run;
    let rb = uts::run(&mut b, &ucfg, Variant::Decentralized).unwrap().run;
    assert_eq!(ra.cycles, rb.cycles);
    assert_eq!(ra.breakdown, rb.breakdown);
}

#[test]
fn kernel_run_serializes_completely() {
    let mut b = gsi::isa::ProgramBuilder::new("t");
    b.ldi(gsi::isa::Reg(1), 1);
    b.exit();
    let spec = LaunchSpec::new(b.build().unwrap(), 2, 1);
    let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(2));
    sim.set_timeline_epoch(8);
    let run = sim.run_kernel(&spec).unwrap();
    let json = serde_json::to_string(&run).expect("serialize");
    let back: gsi::sim::KernelRun = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.cycles, run.cycles);
    assert_eq!(back.breakdown, run.breakdown);
    assert_eq!(back.timelines, run.timelines);
    assert_eq!(back.warp_profiles, run.warp_profiles);
}

#[test]
fn programs_serialize() {
    let p = uts::build_centralized(&UtsConfig::small());
    let json = serde_json::to_string(&p).expect("serialize");
    let back: gsi::isa::Program = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(p, back);
}
