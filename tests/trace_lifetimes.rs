//! Directed request-lifetime tracing test: two warps load the same fresh
//! line, so the first request opens an MSHR entry and misses all the way
//! to DRAM while the second coalesces into the outstanding entry. The
//! traced lifetime must decompose the observed fill latency into its
//! issue → MSHR → service → fill stages exactly.

#![allow(clippy::unwrap_used)] // test code asserts infallibility

use gsi::core::MemDataCause;
use gsi::isa::{ProgramBuilder, Reg};
use gsi::sim::{LaunchSpec, Simulator, SystemConfig};
use gsi::trace::{TraceEvent, TraceLevel};

#[test]
fn merged_l2_miss_lifetime_decomposes_fill_latency() {
    let mut b = ProgramBuilder::new("merge");
    b.ld_global(Reg(2), Reg(1), 0);
    b.exit();
    // One block, two warps, same address: the second warp's load finds the
    // first one's MSHR entry outstanding (DRAM is hundreds of cycles away).
    let spec =
        LaunchSpec::new(b.build().unwrap(), 1, 2).with_init(|w, _, _, _| w.set_uniform(1, 0x9000));
    let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(1));
    sim.set_trace_level(TraceLevel::Full);
    sim.run_kernel(&spec).unwrap();
    let trace = sim.trace();

    // Both loads were traced; exactly one coalesced into the other.
    assert_eq!(trace.count("req_issue"), 2);
    let merged_issues =
        trace.events().filter(|e| matches!(e, TraceEvent::ReqIssue { merged: true, .. })).count();
    assert_eq!(merged_issues, 1, "second warp's load must merge");
    let primary_allocs =
        trace.events().filter(|e| matches!(e, TraceEvent::ReqMshr { primary: true, .. })).count();
    assert_eq!(primary_allocs, 1, "one MSHR entry allocated");
    assert_eq!(trace.count("req_fill"), 2, "both waiters filled");

    // Exactly one lifetime closed: the primary, serviced by DRAM.
    let done: Vec<_> = trace.completed().copied().collect();
    assert_eq!(done.len(), 1);
    let req = done[0];
    assert_eq!(req.point, MemDataCause::MainMemory);

    // The per-stage waits partition the observed end-to-end latency.
    assert_eq!(
        req.mshr_wait() + req.service_wait() + req.fill_wait(),
        req.total_latency(),
        "stage latencies must sum to the fill latency"
    );
    assert!(req.service_wait() > 0, "mesh + L2 + DRAM take cycles");
    assert!(req.fill_wait() > 0, "the fill crosses the mesh back");
    assert!(req.total_latency() > 10, "a DRAM round trip is not instant");

    // Histograms: one DRAM-serviced latency, one zero-cost coalesced fill.
    let dram: u64 = trace.latency_histogram(MemDataCause::MainMemory).iter().sum();
    assert_eq!(dram, 1);
    let coalesced = trace.latency_histogram(MemDataCause::L1Coalescing);
    assert_eq!(coalesced.iter().sum::<u64>(), 1);
    assert_eq!(coalesced[0], 1, "merged waiter books zero extra latency");
}
