//! Assert the qualitative *shapes* of the paper's figures at test scale:
//! who wins, which stall categories move, and in which direction. These are
//! the claims EXPERIMENTS.md tracks quantitatively at paper scale.

use gsi::core::{MemDataCause, MemStructCause, StallKind};
use gsi::mem::Protocol;
use gsi::sim::{Simulator, SystemConfig};
use gsi::workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
use gsi::workloads::uts::{self, UtsConfig, Variant};

fn uts_run(protocol: Protocol, variant: Variant) -> gsi::sim::KernelRun {
    let cfg = UtsConfig::small();
    let sys = SystemConfig::paper().with_gpu_cores(4).with_protocol(protocol);
    let mut sim = Simulator::new(sys);
    uts::run(&mut sim, &cfg, variant).expect("tree search completes").run
}

fn implicit_run(style: LocalMemStyle, mshr: Option<usize>) -> gsi::sim::KernelRun {
    let cfg = ImplicitConfig::small(style);
    let mut sys = SystemConfig::paper().with_gpu_cores(1).with_local_mem(style.mem_kind());
    if let Some(m) = mshr {
        sys = sys.with_mshr(m);
    }
    let mut sim = Simulator::new(sys);
    implicit::run(&mut sim, &cfg).expect("microbenchmark completes").run
}

// ---- Figure 6.1: UTS ----

#[test]
fn fig_6_1_synchronization_dominates_uts() {
    for protocol in [Protocol::GpuCoherence, Protocol::DeNovo] {
        let run = uts_run(protocol, Variant::Centralized);
        let b = &run.breakdown;
        let sync = b.cycles(StallKind::Synchronization);
        assert!(
            sync * 2 > b.total_stall_cycles(),
            "sync must be the majority stall under {protocol}: {b:?}"
        );
    }
}

#[test]
fn fig_6_1_denovo_shows_remote_l1_and_release_redirection_in_uts() {
    let gpu = uts_run(Protocol::GpuCoherence, Variant::Centralized);
    let dnv = uts_run(Protocol::DeNovo, Variant::Centralized);
    // Remote-L1 data stalls exist only under DeNovo (Section 4.3).
    assert_eq!(gpu.breakdown.mem_data_cycles(MemDataCause::RemoteL1), 0);
    assert!(dnv.breakdown.mem_data_cycles(MemDataCause::RemoteL1) > 0);
    // Poor locality makes ownership redirection raise pending-release
    // stalls under DeNovo (Section 6.1.4's analysis of UTS).
    assert!(
        dnv.breakdown.mem_struct_cycles(MemStructCause::PendingRelease)
            > gpu.breakdown.mem_struct_cycles(MemStructCause::PendingRelease)
    );
}

// ---- Figure 6.2: UTSD ----

#[test]
fn fig_6_2_utsd_slashes_execution_time() {
    // Paper: 91% (GPU coherence) and 94% (DeNovo) reductions at full scale;
    // at test scale we require a substantial cut.
    for protocol in [Protocol::GpuCoherence, Protocol::DeNovo] {
        let uts = uts_run(protocol, Variant::Centralized);
        let utsd = uts_run(protocol, Variant::Decentralized);
        assert!(
            utsd.cycles * 2 < uts.cycles * 2 && utsd.cycles < uts.cycles,
            "UTSD must be faster under {protocol}: {} vs {}",
            utsd.cycles,
            uts.cycles
        );
        // Synchronization stalls drop dramatically.
        assert!(
            utsd.breakdown.cycles(StallKind::Synchronization)
                < uts.breakdown.cycles(StallKind::Synchronization)
        );
    }
}

#[test]
fn fig_6_2_denovo_wins_utsd_via_ownership() {
    let gpu = uts_run(Protocol::GpuCoherence, Variant::Decentralized);
    let dnv = uts_run(Protocol::DeNovo, Variant::Decentralized);
    // DeNovo cuts execution time (paper: -28%).
    assert!(dnv.cycles < gpu.cycles, "{} vs {}", dnv.cycles, gpu.cycles);
    // Memory structural stalls drop (paper: -71%), driven by cheaper
    // releases.
    assert!(
        dnv.breakdown.cycles(StallKind::MemoryStructural)
            < gpu.breakdown.cycles(StallKind::MemoryStructural)
    );
    assert!(
        dnv.breakdown.mem_struct_cycles(MemStructCause::PendingRelease)
            < gpu.breakdown.mem_struct_cycles(MemStructCause::PendingRelease)
    );
    // Memory data stalls drop (paper: -57%), primarily in the L2 bucket.
    assert!(
        dnv.breakdown.cycles(StallKind::MemoryData) < gpu.breakdown.cycles(StallKind::MemoryData)
    );
    assert!(
        dnv.breakdown.mem_data_cycles(MemDataCause::L2)
            < gpu.breakdown.mem_data_cycles(MemDataCause::L2),
        "the reduction comes from requests that used to be serviced at L2"
    );
    // UTSD's locality makes the ownership downsides vanish: remote-L1 data
    // stalls are a small fraction of DeNovo's memory data stalls.
    let remote = dnv.breakdown.mem_data_cycles(MemDataCause::RemoteL1);
    assert!(
        remote * 5 < dnv.breakdown.mem_data_total().max(1),
        "remote-L1 stalls should nearly disappear in UTSD: {remote}"
    );
}

#[test]
fn fig_6_2_ownership_skips_reflush() {
    // The mechanism behind the pending-release reduction: owned lines need
    // no re-registration on later flushes.
    let cfg = UtsConfig::small();
    let sys = SystemConfig::paper().with_gpu_cores(4).with_protocol(Protocol::DeNovo);
    let mut sim = Simulator::new(sys);
    let out = uts::run(&mut sim, &cfg, Variant::Decentralized).expect("completes");
    let skips: u64 = out.run.mem_stats.iter().map(|m| m.flush_owned_skips).sum();
    assert!(skips > 0, "DeNovo must skip flushing already-owned lines");
}

// ---- Figure 6.3: implicit ----

#[test]
fn fig_6_3_dma_and_stash_cut_no_stall_cycles() {
    let scratch = implicit_run(LocalMemStyle::Scratchpad, None);
    let dma = implicit_run(LocalMemStyle::ScratchpadDma, None);
    let stash = implicit_run(LocalMemStyle::Stash, None);
    // Paper: -36% and -31% no-stall cycles. Direction at test scale:
    assert!(
        dma.breakdown.cycles(StallKind::NoStall) < scratch.breakdown.cycles(StallKind::NoStall)
    );
    assert!(
        stash.breakdown.cycles(StallKind::NoStall) < scratch.breakdown.cycles(StallKind::NoStall)
    );
    // And instruction counts follow.
    assert!(dma.instructions < scratch.instructions);
    assert!(stash.instructions < scratch.instructions);
}

#[test]
fn fig_6_3_stall_signatures_per_style() {
    let scratch = implicit_run(LocalMemStyle::Scratchpad, None);
    let dma = implicit_run(LocalMemStyle::ScratchpadDma, None);
    let stash = implicit_run(LocalMemStyle::Stash, None);
    // Pending-DMA stalls appear only with the DMA engine.
    assert_eq!(scratch.breakdown.mem_struct_cycles(MemStructCause::PendingDma), 0);
    assert_eq!(stash.breakdown.mem_struct_cycles(MemStructCause::PendingDma), 0);
    assert!(dma.breakdown.mem_struct_cycles(MemStructCause::PendingDma) > 0);
    // The scratchpad and stash styles pressure the MSHR.
    assert!(scratch.breakdown.mem_struct_cycles(MemStructCause::MshrFull) > 0);
    assert!(stash.breakdown.mem_struct_cycles(MemStructCause::MshrFull) > 0);
}

// ---- Figure 6.4: MSHR sensitivity ----

#[test]
fn fig_6_4_bigger_mshr_drains_full_mshr_stalls() {
    for style in LocalMemStyle::ALL {
        let small = implicit_run(style, Some(8));
        let big = implicit_run(style, Some(64));
        let s = small.breakdown.mem_struct_cycles(MemStructCause::MshrFull)
            + small.breakdown.mem_struct_cycles(MemStructCause::PendingDma);
        let b = big.breakdown.mem_struct_cycles(MemStructCause::MshrFull)
            + big.breakdown.mem_struct_cycles(MemStructCause::PendingDma);
        assert!(b < s, "{style}: structural stalls must drop with MSHR size: {b} vs {s}");
        assert!(big.cycles < small.cycles, "{style}: larger MSHR must help");
    }
}

#[test]
fn fig_6_4_freed_time_reappears_as_data_stalls() {
    // Paper: scratchpad memory data stalls grow 13X from MSHR 32 to 256;
    // stash grows less (2.1X). Direction and ordering at test scale:
    let scratch_small = implicit_run(LocalMemStyle::Scratchpad, Some(8));
    let scratch_big = implicit_run(LocalMemStyle::Scratchpad, Some(256));
    let stash_small = implicit_run(LocalMemStyle::Stash, Some(8));
    let stash_big = implicit_run(LocalMemStyle::Stash, Some(256));
    let growth = |a: &gsi::sim::KernelRun, b: &gsi::sim::KernelRun| {
        b.breakdown.cycles(StallKind::MemoryData) as f64
            / a.breakdown.cycles(StallKind::MemoryData).max(1) as f64
    };
    let scratch_growth = growth(&scratch_small, &scratch_big);
    let stash_growth = growth(&stash_small, &stash_big);
    assert!(scratch_growth > 1.0, "scratchpad data stalls must grow: {scratch_growth}");
    assert!(
        stash_growth < scratch_growth,
        "stash hides latency better than scratchpad: {stash_growth} vs {scratch_growth}"
    );
}

#[test]
fn fig_6_4_dma_pending_stalls_grow_with_mshr() {
    // Paper: pending-DMA structural stalls grow 8.9X with a 256-entry MSHR
    // because the engine runs further ahead of the compute phase. The
    // growth regime starts once the MSHR stops throttling the engine, so
    // this probe uses the paper-scale workload and compares 64 vs 256.
    let cfg64 = ImplicitConfig::paper(LocalMemStyle::ScratchpadDma);
    let mk = |m: usize| {
        let sys = SystemConfig::paper()
            .with_gpu_cores(1)
            .with_local_mem(LocalMemStyle::ScratchpadDma.mem_kind())
            .with_mshr(m);
        let mut sim = Simulator::new(sys);
        implicit::run(&mut sim, &cfg64).expect("microbenchmark completes").run
    };
    let small = mk(64);
    let big = mk(256);
    assert!(
        big.breakdown.mem_struct_cycles(MemStructCause::PendingDma)
            > small.breakdown.mem_struct_cycles(MemStructCause::PendingDma),
        "pending-DMA stalls must grow as the MSHR stops limiting the engine"
    );
}
