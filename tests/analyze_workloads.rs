//! The static verifier must accept every in-tree workload: all nine
//! kernels (plus the BFS level variants) under both coherence protocols
//! analyze with zero `Error`-severity findings, so the simulator's default
//! deny gate never refuses a legitimate launch. A deliberately racy
//! kernel, by contrast, must be denied under DeNovo (which assumes
//! data-race-freedom) yet merely warned about under GPU coherence — and a
//! baseline must be able to admit it explicitly.

#![allow(clippy::unwrap_used)]

use gsi::isa::{Operand, ProgramBuilder, Reg};
use gsi::sim::{
    analyze_launch, finding_digest, Baseline, FindingKind, LaunchSpec, Severity, SimError,
    Simulator, SystemConfig,
};
use gsi::workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
use gsi::workloads::uts::{self, UtsConfig, Variant};
use gsi::workloads::{bfs, gemm, histogram, reduction, spmv, stencil};
use gsi_mem::Protocol;

/// Every workload's small-scale launch, with the system it runs under.
fn all_launches(protocol: Protocol) -> Vec<(String, LaunchSpec, SystemConfig)> {
    let base = SystemConfig::paper().with_gpu_cores(4).with_protocol(protocol);
    let mut out: Vec<(String, LaunchSpec, SystemConfig)> = Vec::new();

    for variant in [Variant::Centralized, Variant::Decentralized] {
        let cfg = UtsConfig::small();
        let lay = uts::UtsLayout::new(&cfg);
        out.push((format!("uts-{variant:?}"), uts::launch_spec(&cfg, lay, variant), base));
    }
    for style in [LocalMemStyle::Scratchpad, LocalMemStyle::ScratchpadDma, LocalMemStyle::Stash] {
        let cfg = ImplicitConfig::small(style);
        let sys = SystemConfig::paper()
            .with_gpu_cores(1)
            .with_protocol(protocol)
            .with_local_mem(style.mem_kind());
        out.push((format!("implicit-{style:?}"), implicit::launch_spec(&cfg), sys));
    }
    {
        let cfg = spmv::SpmvConfig::small();
        let lay = spmv::SpmvLayout::new(&cfg);
        out.push(("spmv".into(), spmv::launch_spec(&cfg, lay), base));
    }
    {
        let cfg = histogram::HistogramConfig::small();
        let lay = histogram::HistogramLayout::new(&cfg);
        out.push(("histogram".into(), histogram::launch_spec(&cfg, lay), base));
    }
    for variant in [stencil::StencilVariant::Tiled, stencil::StencilVariant::Global] {
        let cfg = stencil::StencilConfig::small(variant);
        let lay = stencil::StencilLayout::new(&cfg);
        out.push((format!("stencil-{variant:?}"), stencil::launch_spec(&cfg, lay), base));
    }
    {
        let cfg = reduction::ReductionConfig::small();
        let lay = reduction::ReductionLayout::new(&cfg);
        out.push(("reduction".into(), reduction::launch_spec(&cfg, lay), base));
    }
    for level in [0, 1] {
        let cfg = bfs::BfsConfig::small();
        let lay = bfs::BfsLayout::new(&cfg);
        out.push((format!("bfs-level{level}"), bfs::launch_spec(&cfg, &lay, level), base));
    }
    for variant in [gemm::GemmVariant::Tiled, gemm::GemmVariant::Global] {
        let cfg = gemm::GemmConfig::small(variant);
        let lay = gemm::GemmLayout::new(&cfg);
        out.push((format!("gemm-{variant:?}"), gemm::launch_spec(&cfg, lay), base));
    }
    out
}

#[test]
fn every_workload_passes_the_gate_under_both_protocols() {
    for protocol in [Protocol::GpuCoherence, Protocol::DeNovo] {
        for (name, spec, sys) in all_launches(protocol) {
            let report = analyze_launch(&spec, &sys);
            assert_eq!(
                report.error_count(),
                0,
                "{name} under {protocol:?} must pass the gate:\n{}",
                report.render()
            );
        }
    }
}

/// A uniform-address store from every warp of every block: the canonical
/// global race.
fn racy_spec() -> LaunchSpec {
    let mut b = ProgramBuilder::new("racy");
    b.ldi(Reg(1), 0x10_0000);
    b.st_global(Operand::Imm(1), Reg(1), 0);
    b.exit();
    LaunchSpec::new(b.build().unwrap(), 2, 2)
}

#[test]
fn a_racy_kernel_is_denied_under_denovo_but_tolerated_under_gpu_coherence() {
    let spec = racy_spec();
    // DeNovo relies on DRF: the default deny gate refuses the launch.
    let cfg = SystemConfig::paper().with_gpu_cores(2).with_protocol(Protocol::DeNovo);
    let mut sim = Simulator::new(cfg);
    match sim.run_kernel(&spec) {
        Err(SimError::Analysis { errors, report, .. }) => {
            assert!(errors > 0);
            assert!(
                report
                    .findings()
                    .iter()
                    .any(|f| f.kind == FindingKind::GlobalRaceInterWarp
                        && f.severity == Severity::Error),
                "{}",
                report.render()
            );
        }
        other => panic!("expected an analysis denial, got {other:?}"),
    }
    // The same kernel under GPU coherence launches; the race is a warning.
    let cfg = SystemConfig::paper().with_gpu_cores(2).with_protocol(Protocol::GpuCoherence);
    let mut sim = Simulator::new(cfg);
    sim.run_kernel(&spec).unwrap();
    let report = sim.last_analysis().unwrap();
    assert_eq!(report.error_count(), 0, "{}", report.render());
    assert!(
        report.findings().iter().any(|f| f.kind.is_global_race() && f.severity == Severity::Warn),
        "{}",
        report.render()
    );
}

#[test]
fn a_baseline_admits_the_racy_kernel_under_denovo() {
    let spec = racy_spec();
    let cfg = SystemConfig::paper().with_gpu_cores(2).with_protocol(Protocol::DeNovo);
    let report = analyze_launch(&spec, &cfg);
    assert!(report.error_count() > 0, "{}", report.render());
    let mut baseline = Baseline::new();
    for f in report.findings() {
        baseline.insert(finding_digest(report.kernel(), f));
    }
    let mut sim = Simulator::new(cfg);
    sim.set_baseline(Some(baseline));
    sim.run_kernel(&spec).unwrap();
    let admitted = sim.last_analysis().unwrap();
    assert_eq!(admitted.error_count(), 0);
    assert!(admitted.baselined_count() > 0, "{}", admitted.render());
}

#[test]
fn workload_reports_are_deterministic() {
    for (name, spec, sys) in all_launches(Protocol::GpuCoherence) {
        let a = analyze_launch(&spec, &sys);
        let b = analyze_launch(&spec, &sys);
        assert_eq!(a, b, "{name}");
        assert_eq!(a.render(), b.render(), "{name}");
    }
}
