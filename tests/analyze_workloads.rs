//! The static verifier must accept every in-tree workload: all nine
//! kernels (plus the BFS level variants) under both coherence protocols
//! analyze with zero `Error`-severity findings, so the simulator's default
//! deny gate never refuses a legitimate launch.

#![allow(clippy::unwrap_used)]

use gsi::sim::{analyze_launch, LaunchSpec, SystemConfig};
use gsi::workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
use gsi::workloads::uts::{self, UtsConfig, Variant};
use gsi::workloads::{bfs, gemm, histogram, reduction, spmv, stencil};
use gsi_mem::Protocol;

/// Every workload's small-scale launch, with the system it runs under.
fn all_launches(protocol: Protocol) -> Vec<(String, LaunchSpec, SystemConfig)> {
    let base = SystemConfig::paper().with_gpu_cores(4).with_protocol(protocol);
    let mut out: Vec<(String, LaunchSpec, SystemConfig)> = Vec::new();

    for variant in [Variant::Centralized, Variant::Decentralized] {
        let cfg = UtsConfig::small();
        let lay = uts::UtsLayout::new(&cfg);
        out.push((format!("uts-{variant:?}"), uts::launch_spec(&cfg, lay, variant), base));
    }
    for style in [LocalMemStyle::Scratchpad, LocalMemStyle::ScratchpadDma, LocalMemStyle::Stash] {
        let cfg = ImplicitConfig::small(style);
        let sys = SystemConfig::paper()
            .with_gpu_cores(1)
            .with_protocol(protocol)
            .with_local_mem(style.mem_kind());
        out.push((format!("implicit-{style:?}"), implicit::launch_spec(&cfg), sys));
    }
    {
        let cfg = spmv::SpmvConfig::small();
        let lay = spmv::SpmvLayout::new(&cfg);
        out.push(("spmv".into(), spmv::launch_spec(&cfg, lay), base));
    }
    {
        let cfg = histogram::HistogramConfig::small();
        let lay = histogram::HistogramLayout::new(&cfg);
        out.push(("histogram".into(), histogram::launch_spec(&cfg, lay), base));
    }
    for variant in [stencil::StencilVariant::Tiled, stencil::StencilVariant::Global] {
        let cfg = stencil::StencilConfig::small(variant);
        let lay = stencil::StencilLayout::new(&cfg);
        out.push((format!("stencil-{variant:?}"), stencil::launch_spec(&cfg, lay), base));
    }
    {
        let cfg = reduction::ReductionConfig::small();
        let lay = reduction::ReductionLayout::new(&cfg);
        out.push(("reduction".into(), reduction::launch_spec(&cfg, lay), base));
    }
    for level in [0, 1] {
        let cfg = bfs::BfsConfig::small();
        let lay = bfs::BfsLayout::new(&cfg);
        out.push((format!("bfs-level{level}"), bfs::launch_spec(&cfg, &lay, level), base));
    }
    for variant in [gemm::GemmVariant::Tiled, gemm::GemmVariant::Global] {
        let cfg = gemm::GemmConfig::small(variant);
        let lay = gemm::GemmLayout::new(&cfg);
        out.push((format!("gemm-{variant:?}"), gemm::launch_spec(&cfg, lay), base));
    }
    out
}

#[test]
fn every_workload_passes_the_gate_under_both_protocols() {
    for protocol in [Protocol::GpuCoherence, Protocol::DeNovo] {
        for (name, spec, sys) in all_launches(protocol) {
            let report = analyze_launch(&spec, &sys);
            assert_eq!(
                report.error_count(),
                0,
                "{name} under {protocol:?} must pass the gate:\n{}",
                report.render()
            );
        }
    }
}

#[test]
fn workload_reports_are_deterministic() {
    for (name, spec, sys) in all_launches(Protocol::GpuCoherence) {
        let a = analyze_launch(&spec, &sys);
        let b = analyze_launch(&spec, &sys);
        assert_eq!(a, b, "{name}");
        assert_eq!(a.render(), b.render(), "{name}");
    }
}
