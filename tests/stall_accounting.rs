//! Accounting invariants of the GSI methodology, checked on real runs:
//! the breakdown partitions execution exactly, sub-breakdowns match their
//! parent categories, and profiling changes observations only — never
//! timing.

#![allow(clippy::unwrap_used)] // test code asserts infallibility

use gsi::core::StallKind;
use gsi::mem::Protocol;
use gsi::sim::{KernelRun, Simulator, SystemConfig};
use gsi::workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
use gsi::workloads::uts::{self, UtsConfig, Variant};

fn all_runs() -> Vec<(&'static str, KernelRun)> {
    let mut out = Vec::new();
    for (name, protocol, variant) in [
        ("uts/gpu", Protocol::GpuCoherence, Variant::Centralized),
        ("uts/denovo", Protocol::DeNovo, Variant::Centralized),
        ("utsd/gpu", Protocol::GpuCoherence, Variant::Decentralized),
        ("utsd/denovo", Protocol::DeNovo, Variant::Decentralized),
    ] {
        let sys = SystemConfig::paper().with_gpu_cores(4).with_protocol(protocol);
        let mut sim = Simulator::new(sys);
        out.push((name, uts::run(&mut sim, &UtsConfig::small(), variant).unwrap().run));
    }
    for style in LocalMemStyle::ALL {
        let sys = SystemConfig::paper().with_gpu_cores(1).with_local_mem(style.mem_kind());
        let mut sim = Simulator::new(sys);
        let name = match style {
            LocalMemStyle::Scratchpad => "implicit/scratchpad",
            LocalMemStyle::ScratchpadDma => "implicit/dma",
            LocalMemStyle::Stash => "implicit/stash",
        };
        out.push((name, implicit::run(&mut sim, &ImplicitConfig::small(style)).unwrap().run));
    }
    out
}

#[test]
fn breakdown_partitions_execution_time() {
    for (name, run) in all_runs() {
        for (i, b) in run.per_sm.iter().enumerate() {
            assert_eq!(
                b.total_cycles(),
                run.cycles,
                "{name}: SM {i} must be classified every cycle"
            );
        }
        assert_eq!(
            run.breakdown.total_cycles(),
            run.cycles * run.per_sm.len() as u64,
            "{name}: aggregate"
        );
    }
}

#[test]
fn sub_breakdowns_match_parent_categories() {
    for (name, run) in all_runs() {
        let b = &run.breakdown;
        assert_eq!(
            b.mem_data_total(),
            b.cycles(StallKind::MemoryData),
            "{name}: every memory-data stall cycle must be attributed to a service point"
        );
        assert_eq!(
            b.mem_struct_total(),
            b.cycles(StallKind::MemoryStructural),
            "{name}: every memory-structural stall cycle must have a cause"
        );
    }
}

#[test]
fn no_stall_cycles_match_issued_cycles() {
    for (name, run) in all_runs() {
        let issued: u64 = run.sm_stats.iter().map(|s| s.issued_cycles).sum();
        assert_eq!(
            run.breakdown.cycles(StallKind::NoStall),
            issued,
            "{name}: a cycle is NoStall iff at least one instruction issued"
        );
    }
}

#[test]
fn profiling_is_observation_only() {
    // The paper claims ~5% simulation-time overhead; correctness-wise the
    // requirement is stronger: identical simulated timing.
    let cfg = ImplicitConfig::small(LocalMemStyle::Scratchpad);
    let mk = |profiling: bool| {
        let sys = SystemConfig::paper().with_gpu_cores(1).with_local_mem(cfg.style.mem_kind());
        let mut sim = Simulator::new(sys);
        sim.set_profiling(profiling);
        implicit::run(&mut sim, &cfg).expect("completes").run
    };
    let on = mk(true);
    let off = mk(false);
    assert_eq!(on.cycles, off.cycles, "profiling must not perturb timing");
    assert_eq!(on.instructions, off.instructions);
    assert_eq!(off.breakdown.total_cycles(), 0, "disabled collector records nothing");
}

#[test]
fn instruction_counts_are_consistent() {
    for (name, run) in all_runs() {
        let per_sm: u64 = run.sm_stats.iter().map(|s| s.instructions).sum();
        assert_eq!(run.instructions, per_sm, "{name}");
        // Issued cycles can never exceed instructions (dual issue) nor
        // undercount them by more than the issue width.
        let issued: u64 = run.sm_stats.iter().map(|s| s.issued_cycles).sum();
        assert!(issued <= per_sm, "{name}: issued cycles {issued} vs instrs {per_sm}");
        assert!(per_sm <= issued * 2, "{name}: dual issue bounds");
    }
}
