//! The two hardware optimizations Section 6.1.4 of the paper predicts would
//! help, implemented and measured:
//!
//! * **S-FIFO** (QuickRelease): stores keep issuing while a release drains
//!   — pending-release structural stalls should (almost) vanish.
//! * **Owned atomics** (DeNovoSync): atomics acquire line ownership and are
//!   serviced at the owning L1 — synchronization gets cheaper when locks
//!   have locality (UTSD), and stays correct even when they do not (UTS).

use gsi::core::{MemStructCause, StallKind};
use gsi::mem::Protocol;
use gsi::sim::{Simulator, SystemConfig};
use gsi::workloads::uts::{self, UtsConfig, Variant};

fn run(
    variant: Variant,
    protocol: Protocol,
    sfifo: bool,
    owned: bool,
) -> (gsi::sim::KernelRun, u64) {
    let cfg = UtsConfig::small();
    let sys = SystemConfig::paper()
        .with_gpu_cores(4)
        .with_protocol(protocol)
        .with_sfifo(sfifo)
        .with_owned_atomics(owned);
    let mut sim = Simulator::new(sys);
    let out = uts::run(&mut sim, &cfg, variant).expect("tree search completes");
    let owned_hits = out.run.mem_stats.iter().map(|m| m.owned_atomic_hits).sum();
    (out.run, owned_hits)
}

#[test]
fn sfifo_eliminates_pending_release_stalls() {
    let (base, _) = run(Variant::Decentralized, Protocol::GpuCoherence, false, false);
    let (sfifo, _) = run(Variant::Decentralized, Protocol::GpuCoherence, true, false);
    let before = base.breakdown.mem_struct_cycles(MemStructCause::PendingRelease);
    let after = sfifo.breakdown.mem_struct_cycles(MemStructCause::PendingRelease);
    assert!(before > 0, "the baseline must have something to eliminate");
    assert!(
        after * 4 < before,
        "S-FIFO must remove most pending-release stalls: {after} vs {before}"
    );
    assert!(
        sfifo.cycles <= base.cycles,
        "removing a stall source must not slow execution: {} vs {}",
        sfifo.cycles,
        base.cycles
    );
}

#[test]
fn sfifo_applies_to_both_protocols_and_stays_correct() {
    for protocol in [Protocol::GpuCoherence, Protocol::DeNovo] {
        // `uts::run` verifies node counts internally.
        let (runb, _) = run(Variant::Decentralized, protocol, false, false);
        let (runs, _) = run(Variant::Decentralized, protocol, true, false);
        assert!(runs.cycles <= runb.cycles, "{protocol}");
    }
}

#[test]
fn owned_atomics_hit_locally_when_locks_have_locality() {
    // UTSD: each SM's local lock is reused by its own warps, so ownership
    // sticks and most atomics are serviced at the L1.
    let (base, base_hits) = run(Variant::Decentralized, Protocol::DeNovo, false, false);
    let (owned, hits) = run(Variant::Decentralized, Protocol::DeNovo, false, true);
    assert_eq!(base_hits, 0, "disabled mode never hits locally");
    assert!(hits > 0, "owned atomics must be exercised");
    assert!(
        owned.breakdown.cycles(StallKind::Synchronization)
            < base.breakdown.cycles(StallKind::Synchronization),
        "local atomics must cut synchronization stalls: {} vs {}",
        owned.breakdown.cycles(StallKind::Synchronization),
        base.breakdown.cycles(StallKind::Synchronization),
    );
    assert!(owned.cycles < base.cycles, "{} vs {}", owned.cycles, base.cycles);
}

#[test]
fn owned_atomics_survive_lock_ping_pong() {
    // UTS: one global lock contended by every SM. Ownership migrates on
    // every handoff (recall storms); correctness must hold regardless.
    // `uts::run` verifies the processed-node count internally.
    let (_, hits) = run(Variant::Centralized, Protocol::DeNovo, false, true);
    // Whether this is profitable depends on contention; it merely must
    // complete and verify (done inside `run`) while exercising migration.
    let _ = hits;
}

#[test]
fn optimizations_compose() {
    let (both, hits) = run(Variant::Decentralized, Protocol::DeNovo, true, true);
    let (neither, _) = run(Variant::Decentralized, Protocol::DeNovo, false, false);
    assert!(hits > 0);
    assert!(
        both.cycles < neither.cycles,
        "S-FIFO + owned atomics must beat the baseline: {} vs {}",
        both.cycles,
        neither.cycles
    );
    assert!(
        both.breakdown.mem_struct_cycles(MemStructCause::PendingRelease)
            <= neither.breakdown.mem_struct_cycles(MemStructCause::PendingRelease)
    );
}
