//! Determinism guarantees: identically-configured simulators produce
//! byte-identical results, cycle counts, and stall breakdowns — the
//! property every figure in the paper silently relies on, and the one the
//! allocation-free issue-stage refactor must preserve.

#![allow(clippy::unwrap_used)] // test code asserts infallibility

use gsi::isa::{Operand, ProgramBuilder, Reg};
use gsi::mem::Protocol;
use gsi::sim::{
    analyze_launch, finding_digest, Baseline, CycleEngine, KernelRun, LaunchSpec, Simulator,
    SystemConfig,
};
use gsi::workloads::uts::{self, UtsConfig, Variant};

fn spin_and_load_spec() -> LaunchSpec {
    // A mix of compute, divergence, loads, and atomics so every stall
    // category (and every scratch buffer in the issue stage) is exercised.
    let mut b = ProgramBuilder::new("det");
    b.ldi(Reg(1), 0x1000);
    b.ldi(Reg(5), 6);
    let top = b.here();
    b.ld_global(Reg(2), Reg(1), 0);
    b.addi(Reg(2), Reg(2), 1);
    b.st_global(Reg(2), Reg(1), 0);
    b.atom_add(Reg(3), Reg(1), Operand::Imm(1), gsi::isa::MemSem::Relaxed);
    b.addi(Reg(4), Reg(3), 0);
    b.subi(Reg(5), Reg(5), 1);
    b.bra_nz(Reg(5), top);
    b.exit();
    LaunchSpec::new(b.build().unwrap(), 4, 2).with_init(|w, block, warp, _| {
        w.set_uniform(1, 0x1000 + block * 0x200 + warp as u64 * 0x40)
    })
}

/// A simulator that explicitly accepts the det kernel's intentional
/// races: every warp hammers word 0x1000 (maximum contention exercises
/// every stall path), which the DRF gate rightly flags, so the findings
/// are baselined rather than the gate weakened.
fn sim_for(cfg: SystemConfig) -> Simulator {
    let report = analyze_launch(&spin_and_load_spec(), &cfg);
    let mut baseline = Baseline::new();
    for f in report.findings() {
        baseline.insert(finding_digest(report.kernel(), f));
    }
    let mut sim = Simulator::new(cfg);
    sim.set_baseline(Some(baseline));
    sim
}

fn run_once(cfg: SystemConfig) -> KernelRun {
    let mut sim = sim_for(cfg);
    sim.set_timeline_epoch(64);
    sim.run_kernel(&spin_and_load_spec()).unwrap()
}

/// Two identically-seeded simulators produce byte-identical `KernelRun`s —
/// every field, including per-SM breakdowns, timelines, and warp profiles.
#[test]
fn identical_simulators_produce_identical_runs() {
    for protocol in [Protocol::GpuCoherence, Protocol::DeNovo] {
        let cfg = SystemConfig::paper().with_gpu_cores(2).with_protocol(protocol);
        let a = run_once(cfg);
        let b = run_once(cfg);
        assert_eq!(a, b, "{protocol:?} runs must be bit-identical");
        assert!(a.cycles > 0 && a.instructions > 0);
    }
}

/// Back-to-back kernels on one simulator equal the same kernels on a fresh
/// simulator: no hidden state leaks across `run_kernel` calls besides the
/// documented cumulative L2/NoC statistics and global memory.
#[test]
fn second_kernel_is_reproducible() {
    let cfg = SystemConfig::paper().with_gpu_cores(2);
    let spec = spin_and_load_spec();
    let mut one = sim_for(cfg);
    let first_a = one.run_kernel(&spec).unwrap();
    let second_a = one.run_kernel(&spec).unwrap();
    let mut two = sim_for(cfg);
    let first_b = two.run_kernel(&spec).unwrap();
    let second_b = two.run_kernel(&spec).unwrap();
    assert_eq!(first_a, first_b);
    assert_eq!(second_a, second_b);
}

/// Blame attribution is as deterministic as the run itself: the same
/// (workload, config) twice produces byte-identical blame JSON — causal
/// pcs, shares, service sub-buckets — under both cycle engines and both
/// coherence protocols.
#[test]
fn blame_reports_are_byte_identical() {
    for engine in [CycleEngine::Dense, CycleEngine::Event] {
        for protocol in [Protocol::GpuCoherence, Protocol::DeNovo] {
            let cfg = SystemConfig::paper()
                .with_gpu_cores(2)
                .with_protocol(protocol)
                .with_cycle_engine(engine);
            let reports: Vec<String> = (0..2)
                .map(|_| {
                    let mut sim = sim_for(cfg);
                    sim.set_blame_enabled(true);
                    sim.run_kernel(&spin_and_load_spec()).unwrap();
                    sim.blame_report().to_json().to_string_pretty()
                })
                .collect();
            assert_eq!(
                reports[0], reports[1],
                "{engine:?}/{protocol:?} blame must be bit-identical"
            );
            assert!(reports[0].contains("\"rows\""), "report carries ranked rows");
        }
    }
}

/// A full workload (UTS) reproduces exactly across simulator instances.
#[test]
fn uts_workload_is_deterministic() {
    let ucfg = UtsConfig::small();
    let mut a = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
    let mut b = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
    let ra = uts::run(&mut a, &ucfg, Variant::Decentralized).unwrap();
    let rb = uts::run(&mut b, &ucfg, Variant::Decentralized).unwrap();
    assert_eq!(ra.run, rb.run);
}
