//! The pre-flight gate must be pay-for-what-you-use: with
//! [`AnalysisGate::Off`] no report is built, nothing is retained on the
//! simulator, and launching allocates strictly less than with the gate
//! enabled (the whole analyzer — CFG, fixpoint, race pass — never runs).
//!
//! Single `#[test]` so no concurrent test thread perturbs the allocation
//! counter (same discipline as `alloc_free.rs`).

#![allow(clippy::unwrap_used)] // test code asserts infallibility

use gsi::isa::{Operand, ProgramBuilder, Reg};
use gsi::sim::{AnalysisGate, LaunchSpec, Simulator, SystemConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

fn counting() -> bool {
    MEASURING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A kernel with enough surface (loop, global traffic, barrier) that the
/// analyzer demonstrably does work when it runs.
fn spec() -> LaunchSpec {
    let mut b = ProgramBuilder::new("gate-cost");
    b.ldi(Reg(1), 0x10_0000);
    b.ldi(Reg(2), 8);
    let top = b.here();
    b.ld_global(Reg(3), Reg(1), 0);
    b.st_global(Operand::Imm(1), Reg(1), 0);
    b.subi(Reg(2), Reg(2), 1);
    b.bra_nz(Reg(2), top);
    b.bar();
    b.exit();
    LaunchSpec::new(b.build().unwrap(), 2, 2)
}

/// Allocations made by `begin_kernel` alone (the phase the gate lives in).
fn launch_allocs(gate: AnalysisGate) -> (u64, bool) {
    let cfg = SystemConfig::paper().with_gpu_cores(2).with_analysis_gate(gate);
    let mut sim = Simulator::new(cfg);
    let spec = spec();
    let before = ALLOCS.load(Ordering::Relaxed);
    MEASURING.with(|m| m.set(true));
    sim.begin_kernel(&spec).unwrap();
    MEASURING.with(|m| m.set(false));
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    (allocs, sim.last_analysis().is_some())
}

#[test]
fn disabled_gate_skips_the_analyzer_entirely() {
    // Pre-warm libtest's lazily-initialized channel machinery (see
    // alloc_free.rs).
    let (tx, rx) = std::sync::mpsc::channel::<()>();
    tx.send(()).unwrap();
    rx.recv().unwrap();

    let (off_allocs, off_report) = launch_allocs(AnalysisGate::Off);
    let (warn_allocs, warn_report) = launch_allocs(AnalysisGate::Warn);
    assert!(!off_report, "Off must retain no analysis report");
    assert!(warn_report, "Warn must retain the report");
    assert!(
        off_allocs < warn_allocs,
        "the disabled gate must allocate strictly less than an enabled one \
         (Off: {off_allocs}, Warn: {warn_allocs}): the analyzer ran anyway"
    );
}
