//! Checkpoint/restore equivalence: pausing a kernel mid-flight,
//! serializing the whole machine to gsi-json, rebuilding it from the text,
//! and running to completion must be *bit-identical* to an uninterrupted
//! run — cycle counts, stall breakdowns, per-SM statistics, timelines,
//! warp profiles, and the full blame report. Every workload runs the
//! round trip under both coherence protocols and both cycle engines, and
//! a chaos-armed subset checks that the per-component fault streams
//! survive the trip too.
//!
//! The snapshot encoding is canonical: snapshotting the same state twice,
//! or snapshotting a just-restored machine, yields byte-identical JSON.

#![allow(clippy::unwrap_used)] // test code asserts infallibility

use gsi::chaos::FaultPlan;
use gsi::json::Value;
use gsi::mem::Protocol;
use gsi::sim::{CycleEngine, LaunchSpec, Simulator, SystemConfig};
use gsi::workloads::{bfs, gemm, histogram, implicit, reduction, spmv, stencil, uts};

const PROTOCOLS: [Protocol; 2] = [Protocol::GpuCoherence, Protocol::DeNovo];
const ENGINES: [CycleEngine; 2] = [CycleEngine::Dense, CycleEngine::Event];

fn base(cores: usize, protocol: Protocol) -> SystemConfig {
    SystemConfig::paper().with_gpu_cores(cores).with_protocol(protocol)
}

/// Run `spec` straight through, then again pausing at the halfway cycle,
/// snapshotting, round-tripping the snapshot through its text encoding,
/// restoring a third machine from it, and finishing both the paused and
/// the restored machines. All three `KernelRun`s and blame reports must be
/// identical.
fn assert_checkpoint_roundtrip(
    name: &str,
    cfg: SystemConfig,
    plan: &FaultPlan,
    spec: &LaunchSpec,
    init: &dyn Fn(&mut Simulator),
) {
    let build = |cfg: SystemConfig| {
        let mut sim = Simulator::new(cfg);
        sim.set_timeline_epoch(256);
        sim.set_chaos(plan);
        sim.set_blame_enabled(true);
        init(&mut sim);
        sim
    };

    let mut straight = build(cfg);
    let run_straight = straight.run_kernel(spec).unwrap();
    let blame_straight = straight.blame_report().to_json().to_string();

    let mut paused = build(cfg);
    paused.begin_kernel(spec).unwrap();
    let mid = (run_straight.cycles / 2).max(1);
    assert!(
        paused.run_until(spec, mid).unwrap().is_none(),
        "{name}: kernel finished before the pause point"
    );
    assert!(paused.kernel_in_progress());

    // Canonical encoding: re-snapshotting unchanged state is byte-stable.
    let snap = paused.snapshot();
    let text = snap.to_string();
    assert_eq!(text, paused.snapshot().to_string(), "{name}: snapshot not canonical");

    // Restore from the parsed *text*, proving the on-disk form suffices.
    let parsed = Value::parse(&text).unwrap();
    let mut restored = Simulator::restore(&parsed, spec).unwrap();
    assert_eq!(
        restored.snapshot().to_string(),
        text,
        "{name}: restored machine re-snapshots differently"
    );
    assert!(restored.kernel_in_progress());

    let run_restored = restored.run_until(spec, u64::MAX).unwrap().unwrap();
    let run_paused = paused.run_until(spec, u64::MAX).unwrap().unwrap();
    assert_eq!(run_straight, run_paused, "{name}: pause/resume diverged");
    assert_eq!(run_straight, run_restored, "{name}: snapshot/restore diverged");
    assert_eq!(
        blame_straight,
        paused.blame_report().to_json().to_string(),
        "{name}: paused blame diverged"
    );
    assert_eq!(
        blame_straight,
        restored.blame_report().to_json().to_string(),
        "{name}: restored blame diverged"
    );
}

/// The full protocol × engine matrix for one workload launch.
fn matrix(name: &str, cores: usize, spec: &LaunchSpec, init: &dyn Fn(&mut Simulator)) {
    for protocol in PROTOCOLS {
        for engine in ENGINES {
            assert_checkpoint_roundtrip(
                &format!("{name}-{protocol}-{engine:?}"),
                base(cores, protocol).with_cycle_engine(engine),
                &FaultPlan::disabled(),
                spec,
                init,
            );
        }
    }
}

#[test]
fn spmv_checkpoints() {
    let cfg = spmv::SpmvConfig::small();
    let lay = spmv::SpmvLayout::new(&cfg);
    let spec = spmv::launch_spec(&cfg, lay);
    matrix("spmv", 4, &spec, &move |sim| spmv::init_memory(sim, &cfg, &lay));
}

#[test]
fn histogram_checkpoints() {
    let cfg = histogram::HistogramConfig::small();
    let lay = histogram::HistogramLayout::new(&cfg);
    let spec = histogram::launch_spec(&cfg, lay);
    matrix("histogram", 4, &spec, &move |sim| histogram::init_memory(sim, &cfg, &lay));
}

#[test]
fn reduction_checkpoints() {
    let cfg = reduction::ReductionConfig::small();
    let lay = reduction::ReductionLayout::new(&cfg);
    let spec = reduction::launch_spec(&cfg, lay);
    matrix("reduction", 4, &spec, &move |sim| reduction::init_memory(sim, &cfg, &lay));
}

#[test]
fn bfs_level_checkpoints() {
    let cfg = bfs::BfsConfig::small();
    let lay = bfs::BfsLayout::new(&cfg);
    let spec = bfs::launch_spec(&cfg, &lay, 0);
    matrix("bfs-l0", 4, &spec, &move |sim| bfs::init_memory(sim, &cfg, &lay));
}

#[test]
fn gemm_both_variants_checkpoint() {
    for variant in [gemm::GemmVariant::Tiled, gemm::GemmVariant::Global] {
        let cfg = gemm::GemmConfig::small(variant);
        let lay = gemm::GemmLayout::new(&cfg);
        let spec = gemm::launch_spec(&cfg, lay);
        matrix(&format!("gemm-{variant:?}"), 4, &spec, &move |sim| {
            gemm::init_memory(sim, &cfg, &lay)
        });
    }
}

#[test]
fn stencil_both_variants_checkpoint() {
    for variant in [stencil::StencilVariant::Tiled, stencil::StencilVariant::Global] {
        let cfg = stencil::StencilConfig::small(variant);
        let lay = stencil::StencilLayout::new(&cfg);
        let spec = stencil::launch_spec(&cfg, lay);
        matrix(&format!("stencil-{variant:?}"), 2, &spec, &move |sim| {
            stencil::init_memory(sim, &cfg, &lay)
        });
    }
}

#[test]
fn uts_both_variants_checkpoint() {
    let cfg = uts::UtsConfig::small();
    for variant in [uts::Variant::Centralized, uts::Variant::Decentralized] {
        let lay = uts::UtsLayout::new(&cfg);
        let spec = uts::launch_spec(&cfg, lay, variant);
        matrix(&format!("uts-{variant:?}"), 4, &spec, &move |sim| {
            uts::init_memory(sim, &cfg, &lay)
        });
    }
}

#[test]
fn implicit_all_styles_checkpoint() {
    for style in implicit::LocalMemStyle::ALL {
        let cfg = implicit::ImplicitConfig::small(style);
        let spec = implicit::launch_spec(&cfg);
        for protocol in PROTOCOLS {
            for engine in ENGINES {
                assert_checkpoint_roundtrip(
                    &format!("implicit-{style}-{protocol}-{engine:?}"),
                    base(1, protocol).with_local_mem(style.mem_kind()).with_cycle_engine(engine),
                    &FaultPlan::disabled(),
                    &spec,
                    &move |sim| implicit::init_memory(sim, &cfg),
                );
            }
        }
    }
}

/// Chaos-armed machines must round-trip too: the per-component fault
/// streams (their splitmix states and injected counters) are part of the
/// snapshot, so a restored machine injects the *same remaining* faults an
/// uninterrupted one would.
#[test]
fn chaos_armed_machines_checkpoint() {
    let cfg = uts::UtsConfig::small();
    for seed in [1u64, 0xC0FFEE] {
        let plan = FaultPlan::all(seed);
        let lay = uts::UtsLayout::new(&cfg);
        let spec = uts::launch_spec(&cfg, lay, uts::Variant::Decentralized);
        for engine in ENGINES {
            assert_checkpoint_roundtrip(
                &format!("chaos-uts-{seed:#x}-{engine:?}"),
                base(4, Protocol::DeNovo).with_cycle_engine(engine),
                &plan,
                &spec,
                &move |sim| uts::init_memory(sim, &cfg, &lay),
            );
        }
    }
}

/// Restore refuses a snapshot whose recorded program does not match the
/// launch spec it is being resumed with.
#[test]
fn restore_rejects_wrong_program() {
    let cfg = spmv::SpmvConfig::small();
    let lay = spmv::SpmvLayout::new(&cfg);
    let spec = spmv::launch_spec(&cfg, lay);
    let mut sim = Simulator::new(base(4, Protocol::GpuCoherence));
    spmv::init_memory(&mut sim, &cfg, &lay);
    sim.begin_kernel(&spec).unwrap();
    assert!(sim.run_until(&spec, 8).unwrap().is_none());
    let snap = sim.snapshot();

    let other_cfg = reduction::ReductionConfig::small();
    let other = reduction::launch_spec(&other_cfg, reduction::ReductionLayout::new(&other_cfg));
    let err = Simulator::restore(&snap, &other).unwrap_err();
    assert!(err.to_string().contains("does not match"), "unexpected error: {err}");
}

/// Restore refuses an unknown checkpoint format version.
#[test]
fn restore_rejects_unknown_format() {
    let cfg = spmv::SpmvConfig::small();
    let lay = spmv::SpmvLayout::new(&cfg);
    let spec = spmv::launch_spec(&cfg, lay);
    let mut sim = Simulator::new(base(4, Protocol::GpuCoherence));
    spmv::init_memory(&mut sim, &cfg, &lay);
    sim.begin_kernel(&spec).unwrap();
    assert!(sim.run_until(&spec, 8).unwrap().is_none());
    let text = sim.snapshot().to_string().replacen("\"format\":1", "\"format\":999", 1);
    let err = Simulator::restore(&Value::parse(&text).unwrap(), &spec).unwrap_err();
    assert!(err.to_string().contains("format"), "unexpected error: {err}");
}

/// A snapshot taken *between* kernels restores into a machine that runs
/// the next kernel identically (warm-started sweeps: simulate a prefix
/// workload once, fork the machine per configuration of the next).
#[test]
fn between_kernel_snapshots_warm_start() {
    let cfg = spmv::SpmvConfig::small();
    let lay = spmv::SpmvLayout::new(&cfg);
    let spec = spmv::launch_spec(&cfg, lay);

    let mut warm = Simulator::new(base(4, Protocol::GpuCoherence));
    spmv::init_memory(&mut warm, &cfg, &lay);
    warm.run_kernel(&spec).unwrap();
    let second_direct = warm.run_kernel(&spec).unwrap();

    let mut warm2 = Simulator::new(base(4, Protocol::GpuCoherence));
    spmv::init_memory(&mut warm2, &cfg, &lay);
    warm2.run_kernel(&spec).unwrap();
    let snap = warm2.snapshot();
    assert!(!warm2.kernel_in_progress());
    let mut forked = Simulator::restore(&snap, &spec).unwrap();
    let second_forked = forked.run_kernel(&spec).unwrap();
    assert_eq!(second_direct, second_forked, "warm-started run diverged");
}
