//! Functional equivalence: coherence protocols and local-memory styles are
//! *timing* choices — they must never change what a program computes.

use gsi::mem::Protocol;
use gsi::sim::{Simulator, SystemConfig};
use gsi::workloads::implicit::{self, ImplicitConfig, LocalMemStyle, ARRAY_BASE};
use gsi::workloads::uts::{self, expected_nodes, UtsConfig, Variant};

#[test]
fn uts_processes_the_same_tree_under_every_configuration() {
    let cfg = UtsConfig::small();
    let expected = expected_nodes(&cfg);
    for protocol in [Protocol::GpuCoherence, Protocol::DeNovo] {
        for variant in [Variant::Centralized, Variant::Decentralized] {
            for cores in [1usize, 4] {
                let sys = SystemConfig::paper().with_gpu_cores(cores).with_protocol(protocol);
                let mut sim = Simulator::new(sys);
                let out = uts::run(&mut sim, &cfg, variant).expect("completes");
                assert_eq!(out.processed, expected, "{protocol} {variant:?} on {cores} SMs");
            }
        }
    }
}

#[test]
fn implicit_results_are_identical_across_styles() {
    let mut snapshots: Vec<Vec<u64>> = Vec::new();
    for style in LocalMemStyle::ALL {
        let cfg = ImplicitConfig::small(style);
        let sys = SystemConfig::paper().with_gpu_cores(1).with_local_mem(style.mem_kind());
        let mut sim = Simulator::new(sys);
        implicit::run(&mut sim, &cfg).expect("completes");
        let snap: Vec<u64> =
            (0..cfg.elems).map(|i| sim.gmem().read_word(ARRAY_BASE + i * 8)).collect();
        snapshots.push(snap);
    }
    assert_eq!(snapshots[0], snapshots[1], "scratchpad vs DMA");
    assert_eq!(snapshots[0], snapshots[2], "scratchpad vs stash");
}

#[test]
fn implicit_is_protocol_independent() {
    let mut snapshots: Vec<Vec<u64>> = Vec::new();
    for protocol in [Protocol::GpuCoherence, Protocol::DeNovo] {
        let cfg = ImplicitConfig::small(LocalMemStyle::Scratchpad);
        let sys = SystemConfig::paper()
            .with_gpu_cores(1)
            .with_protocol(protocol)
            .with_local_mem(gsi::mem::LocalMemKind::Scratchpad);
        let mut sim = Simulator::new(sys);
        implicit::run(&mut sim, &cfg).expect("completes");
        let snap: Vec<u64> =
            (0..cfg.elems).map(|i| sim.gmem().read_word(ARRAY_BASE + i * 8)).collect();
        snapshots.push(snap);
    }
    assert_eq!(snapshots[0], snapshots[1]);
}

#[test]
fn runs_are_deterministic() {
    // Same configuration twice: identical cycle counts and breakdowns.
    let run = |_: ()| {
        let cfg = UtsConfig::small();
        let sys = SystemConfig::paper().with_gpu_cores(4).with_protocol(Protocol::DeNovo);
        let mut sim = Simulator::new(sys);
        uts::run(&mut sim, &cfg, Variant::Decentralized).expect("completes").run
    };
    let a = run(());
    let b = run(());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.breakdown, b.breakdown);
    assert_eq!(a.instructions, b.instructions);
}
