//! Validate that the latency windows of Table 5.1 *emerge* from the wired
//! system: L1 hits in ~1 cycle, L2 hits in ~29-61 cycles, remote L1 hits in
//! ~35-83 cycles, and main memory in ~197-261 cycles.
//!
//! Each probe runs a single-warp kernel whose only stall source is one
//! load-use dependency, so the memory-data stall count is (latency - issue
//! overlap) and lands inside the corresponding window.

#![allow(clippy::unwrap_used)] // test code asserts infallibility

use gsi::core::MemDataCause;
use gsi::isa::{Operand, ProgramBuilder, Reg};
use gsi::mem::Protocol;
use gsi::sim::{LaunchSpec, Simulator, SystemConfig};

const PROBE_ADDR: u64 = 0x5_0000;

/// One load at `PROBE_ADDR` followed by a dependent add.
fn load_probe() -> gsi::isa::Program {
    let mut b = ProgramBuilder::new("probe");
    b.ldi(Reg(1), PROBE_ADDR);
    b.ld_global(Reg(2), Reg(1), 0);
    b.addi(Reg(3), Reg(2), 1);
    b.st_global(Reg(3), Reg(1), 8);
    b.exit();
    b.build().unwrap()
}

/// A kernel that dirties `PROBE_ADDR` (so DeNovo registers ownership at
/// kernel end).
fn store_probe() -> gsi::isa::Program {
    let mut b = ProgramBuilder::new("dirty");
    b.ldi(Reg(1), PROBE_ADDR);
    b.st_global(Operand::Imm(7), Reg(1), 0);
    b.exit();
    b.build().unwrap()
}

/// Launch `program` as a single block/warp pinned to an SM chosen by the
/// grid (block 0 lands on SM 0 of the dispatch order).
fn one_warp(program: gsi::isa::Program) -> LaunchSpec {
    LaunchSpec::new(program, 1, 1)
}

fn mem_data_stalls(sim: &mut Simulator, spec: &LaunchSpec, bucket: MemDataCause) -> u64 {
    let run = sim.run_kernel(spec).expect("probe completes");
    run.breakdown.mem_data_cycles(bucket)
}

#[test]
fn main_memory_window() {
    let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(2));
    let stalls = mem_data_stalls(&mut sim, &one_warp(load_probe()), MemDataCause::MainMemory);
    // Table 5.1: memory latency 197-261 cycles. The dependent instruction
    // stalls for almost the whole round trip.
    assert!((150..=300).contains(&stalls), "main-memory load-use stall out of window: {stalls}");
}

#[test]
fn l2_window() {
    let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(2));
    // Warm the L2 with a first kernel (fill from DRAM).
    sim.run_kernel(&one_warp(load_probe())).expect("warmup");
    // Re-run: the launch acquire invalidates the L1, so this load hits L2.
    let stalls = mem_data_stalls(&mut sim, &one_warp(load_probe()), MemDataCause::L2);
    // Table 5.1: L2 hit latency 29-61 cycles.
    assert!((20..=75).contains(&stalls), "L2 load-use stall out of window: {stalls}");
}

#[test]
fn l1_window() {
    let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(2));
    // Probe with two back-to-back dependent loads of the same line inside
    // one kernel: the second is an L1 hit.
    let mut b = ProgramBuilder::new("l1probe");
    b.ldi(Reg(1), PROBE_ADDR);
    b.ld_global(Reg(2), Reg(1), 0);
    b.addi(Reg(3), Reg(2), 1); // wait for the miss
    b.ld_global(Reg(4), Reg(1), 0); // L1 hit
    b.addi(Reg(5), Reg(4), 1); // 1-cycle use-hit stall at most
    b.exit();
    let spec = one_warp(b.build().unwrap());
    let stalls = mem_data_stalls(&mut sim, &spec, MemDataCause::L1);
    // Table 5.1: L1 hit latency 1 cycle.
    assert!(stalls <= 2, "L1 hit stall too large: {stalls}");
}

#[test]
fn remote_l1_window_denovo() {
    let mut sim =
        Simulator::new(SystemConfig::paper().with_gpu_cores(2).with_protocol(Protocol::DeNovo));
    // Kernel 1: block 0 (SM 0) dirties the line; the kernel-end flush
    // registers ownership in SM 0's L1.
    sim.run_kernel(&one_warp(store_probe())).expect("owner kernel");
    // Kernel 2: two blocks; block 1 lands on SM 1 and loads the line, which
    // the L2 directory forwards to SM 0.
    let mut b = ProgramBuilder::new("reader");
    b.ldi(Reg(1), PROBE_ADDR);
    // Only block 1 does the measured load; block 0 exits immediately.
    let skip = b.label();
    b.bra_z(Reg(10), skip);
    b.ld_global(Reg(2), Reg(1), 0);
    b.addi(Reg(3), Reg(2), 1);
    b.bind(skip);
    b.exit();
    let spec = LaunchSpec::new(b.build().unwrap(), 2, 1)
        .with_init(|w, block, _, _| w.set_uniform(10, block));
    let run = sim.run_kernel(&spec).expect("reader kernel");
    let stalls = run.breakdown.mem_data_cycles(MemDataCause::RemoteL1);
    // Table 5.1: remote L1 hit latency 35-83 cycles.
    assert!((30..=95).contains(&stalls), "remote-L1 load-use stall out of window: {stalls}");
}

#[test]
fn gpu_coherence_never_hits_remote_l1() {
    let mut sim = Simulator::new(
        SystemConfig::paper().with_gpu_cores(2).with_protocol(Protocol::GpuCoherence),
    );
    sim.run_kernel(&one_warp(store_probe())).expect("writer kernel");
    let run = sim.run_kernel(&one_warp(load_probe())).expect("reader kernel");
    assert_eq!(
        run.breakdown.mem_data_cycles(MemDataCause::RemoteL1),
        0,
        "write-through coherence has no L1 ownership to forward to"
    );
}

#[test]
fn coalesced_lanes_share_one_fill() {
    // All 32 lanes load from the same line: one miss, no extra latency.
    let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(2));
    let mut b = ProgramBuilder::new("coalesce");
    b.ld_global(Reg(2), Reg(1), 0);
    b.addi(Reg(3), Reg(2), 1);
    b.exit();
    let spec = LaunchSpec::new(b.build().unwrap(), 1, 1)
        .with_init(|w, _, _, _| w.set_per_lane(1, |lane| PROBE_ADDR + (lane as u64 % 8) * 8));
    let run = sim.run_kernel(&spec).expect("kernel completes");
    assert_eq!(run.mem_stats[0].l1_misses, 1, "one line, one miss");
}
