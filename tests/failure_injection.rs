//! Starved-resource configurations: single-entry MSHRs and store buffers,
//! single-banked memories, one-warp SMs. Everything must still complete and
//! verify — only slower. Guards against deadlocks hiding behind ample
//! defaults.

#![allow(clippy::unwrap_used)] // test code asserts infallibility

use gsi::mem::Protocol;
use gsi::sim::{Simulator, SystemConfig};
use gsi::workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
use gsi::workloads::uts::{self, UtsConfig, Variant};

fn starved(style: LocalMemStyle, protocol: Protocol) -> SystemConfig {
    let mut sys = SystemConfig::paper()
        .with_gpu_cores(2)
        .with_protocol(protocol)
        .with_local_mem(style.mem_kind());
    // The architectural minimum: one full warp access (4 lines).
    sys.mem.mshr_entries = gsi::mem::MIN_QUEUE_ENTRIES;
    sys.mem.store_buffer_entries = gsi::mem::MIN_QUEUE_ENTRIES;
    sys.mem.l1_banks = 1;
    sys.mem.scratch_banks = 1;
    sys
}

fn tiny_uts() -> UtsConfig {
    UtsConfig {
        root_children: 6,
        branch: 2,
        q_per_mille: 300,
        max_depth: 5,
        root_seed: 0x77,
        grid_blocks: 2,
        warps_per_block: 1,
        local_cap: 4,
    }
}

#[test]
fn implicit_survives_single_entry_resources() {
    for style in LocalMemStyle::ALL {
        for protocol in [Protocol::GpuCoherence, Protocol::DeNovo] {
            let cfg = ImplicitConfig { elems: 128, warps_per_block: 1, compute_iters: 2, style };
            let mut sim = Simulator::new(starved(style, protocol));
            let out = implicit::run(&mut sim, &cfg).expect("must complete, just slowly");
            assert_eq!(out.verified_elems, cfg.elems, "{style} {protocol}");
        }
    }
}

#[test]
fn uts_survives_single_entry_resources() {
    for protocol in [Protocol::GpuCoherence, Protocol::DeNovo] {
        for variant in [Variant::Centralized, Variant::Decentralized] {
            let mut sim = Simulator::new(starved(LocalMemStyle::Scratchpad, protocol));
            let out = uts::run(&mut sim, &tiny_uts(), variant).expect("must complete");
            assert_eq!(out.processed, out.expected, "{protocol} {variant:?}");
        }
    }
}

#[test]
fn starvation_costs_cycles_but_not_correctness() {
    let cfg = ImplicitConfig {
        elems: 128,
        warps_per_block: 1,
        compute_iters: 2,
        style: LocalMemStyle::Scratchpad,
    };
    let mut rich = Simulator::new(
        SystemConfig::paper().with_gpu_cores(2).with_local_mem(cfg.style.mem_kind()),
    );
    let mut poor = Simulator::new(starved(cfg.style, Protocol::GpuCoherence));
    let fast = implicit::run(&mut rich, &cfg).expect("completes").run.cycles;
    let slow = implicit::run(&mut poor, &cfg).expect("completes").run.cycles;
    assert!(slow > fast, "starved resources must cost time: {slow} vs {fast}");
}

#[test]
fn undersized_queues_are_rejected_at_construction() {
    let mut sys = SystemConfig::paper().with_gpu_cores(1);
    sys.mem.mshr_entries = 1;
    let result = std::panic::catch_unwind(|| Simulator::new(sys));
    assert!(result.is_err(), "an MSHR smaller than one warp access must be rejected");
}

#[test]
fn one_warp_sm_executes_barriers() {
    // A single-warp block's barrier must release immediately.
    use gsi::isa::{ProgramBuilder, Reg};
    use gsi::sim::LaunchSpec;
    let mut b = ProgramBuilder::new("solo");
    b.bar();
    b.ldi(Reg(1), 1);
    b.bar();
    b.exit();
    let spec = LaunchSpec::new(b.build().unwrap(), 1, 1);
    let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(1));
    let run = sim.run_kernel(&spec).expect("completes");
    assert_eq!(run.instructions, 4);
}
