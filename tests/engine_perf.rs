//! Perf smoke for the event-driven cycle engine: on a memory-bound paper
//! workload the event engine must not be slower than the dense loop it
//! replaced (the whole point of the next-event calendar is harvesting the
//! dead cycles that dominate exactly these workloads).
//!
//! The test is `#[ignore]`d because wall-clock assertions are only
//! meaningful in release builds on an otherwise idle machine; the verify
//! script runs it explicitly with
//! `cargo test --release --test engine_perf -- --ignored`.

#![allow(clippy::unwrap_used)] // test code asserts infallibility

use gsi::sim::{CycleEngine, Simulator, SystemConfig};
use gsi::workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
use std::time::Instant;

/// Best-of-3 cycles/second for the implicit paper workload under `engine`,
/// plus the simulated cycle count (which must not depend on the engine).
fn cycles_per_sec(engine: CycleEngine) -> (f64, u64) {
    let style = LocalMemStyle::Scratchpad;
    let mut best = 0.0f64;
    let mut cycles = 0;
    for _ in 0..3 {
        let sys = SystemConfig::paper()
            .with_gpu_cores(1)
            .with_local_mem(style.mem_kind())
            .with_mshr(32)
            .with_cycle_engine(engine);
        let mut sim = Simulator::new(sys);
        let t0 = Instant::now();
        let out = implicit::run(&mut sim, &ImplicitConfig::paper(style)).unwrap();
        let dt = t0.elapsed().as_secs_f64();
        cycles = out.run.cycles;
        best = best.max(cycles as f64 / dt);
    }
    (best, cycles)
}

#[test]
#[ignore = "wall-clock assertion; run in release via scripts/verify.sh"]
fn event_engine_not_slower_than_dense_on_memory_bound_workload() {
    let (dense_cps, dense_cycles) = cycles_per_sec(CycleEngine::Dense);
    let (event_cps, event_cycles) = cycles_per_sec(CycleEngine::Event);
    assert_eq!(dense_cycles, event_cycles, "engines disagree on simulated cycles");
    // Equal-within-noise is a pass: the calendar's wake evaluation must not
    // cost more than the cycles it skips. The 0.8 factor absorbs scheduler
    // jitter on shared machines; a real regression (the pre-calendar engine
    // was ~2x slower here) fails by a wide margin.
    assert!(
        event_cps >= 0.8 * dense_cps,
        "event engine slower than dense on memory-bound workload: \
         event {event_cps:.0} c/s vs dense {dense_cps:.0} c/s"
    );
}
