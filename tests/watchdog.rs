//! The forward-progress watchdog: a genuinely livelocked machine must be
//! caught well before the cycle budget, and the resulting
//! [`gsi::sim::ProgressReport`] must explain itself — which resource is
//! starved, which warps are stuck, what the queues look like.

#![allow(clippy::unwrap_used)] // test code asserts infallibility

use gsi::chaos::{FaultKind, FaultParams, FaultPlan};
use gsi::isa::{ProgramBuilder, Reg};
use gsi::sim::{LaunchSpec, SimError, Simulator, SystemConfig, TimeoutKind};

/// Warp 0 tries a global load; warp 1 waits at the block barrier for it.
fn load_then_barrier_spec() -> LaunchSpec {
    let mut b = ProgramBuilder::new("livelock");
    let skip = b.label();
    b.ldi(Reg(2), 0x1000);
    // Reg(1) is preset per-warp: 0 for warp 0 (takes the load), 1 for warp 1.
    b.bra_nz(Reg(1), skip);
    b.ld_global(Reg(3), Reg(2), 0);
    b.bind(skip);
    b.bar();
    b.exit();
    LaunchSpec::new(b.build().unwrap(), 1, 2)
        .with_init(|w, _block, warp, _| w.set_uniform(1, warp as u64))
}

/// A chaos plan that permanently wedges the MSHR: every allocation attempt
/// is rejected, so warp 0's load can never issue — a true livelock.
fn wedged_mshr() -> FaultPlan {
    FaultPlan::disabled()
        .with_seed(0xDEAD)
        .with(FaultKind::MshrStall, FaultParams { per_mille: 1000, max_extra: 1 })
}

#[test]
fn watchdog_catches_livelock_and_names_the_starved_resource() {
    let cfg = SystemConfig::paper().with_gpu_cores(1).with_progress_window(20_000);
    let mut sim = Simulator::new(cfg);
    sim.set_chaos(&wedged_mshr());
    let err = sim.run_kernel(&load_then_barrier_spec()).expect_err("must livelock");
    let SimError::Timeout { report, .. } = err else {
        panic!("expected a timeout, got {err}");
    };
    assert_eq!(report.kind, TimeoutKind::NoForwardProgress);
    // The wedged MSHR bounces warp 0 at issue every cycle, so the
    // accumulated breakdown is dominated by MSHR-full structural stalls.
    assert_eq!(report.starved_resource(), "mshr", "\n{}", report.render());
    // Warp 1 is genuinely stuck at the barrier waiting for warp 0.
    assert!(report.stalled_warp_count() >= 1, "\n{}", report.render());
    let stuck: Vec<_> = report
        .sms
        .iter()
        .flat_map(|sm| sm.stalled_warps())
        .map(|w| (w.warp, w.stall_state()))
        .collect();
    assert!(stuck.contains(&(1, "barrier")), "warp 1 must be at the barrier: {stuck:?}");
    // The watchdog fired long before the cycle budget would have.
    assert!(report.cycles_run < SystemConfig::paper().max_cycles / 2);
    assert!(report.stalled_for >= 20_000);
}

#[test]
fn report_renders_the_machine_state() {
    let cfg = SystemConfig::paper().with_gpu_cores(1).with_progress_window(20_000);
    let mut sim = Simulator::new(cfg);
    sim.set_chaos(&wedged_mshr());
    let err = sim.run_kernel(&load_then_barrier_spec()).expect_err("must livelock");
    let SimError::Timeout { report, .. } = err else {
        panic!("expected a timeout, got {err}");
    };
    let text = report.render();
    assert!(text.contains("no forward progress"), "{text}");
    assert!(text.contains("starved resource: mshr"), "{text}");
    assert!(text.contains("stalled warps:"), "{text}");
    assert!(text.contains("barrier"), "{text}");
    // The per-SM table reports queue occupancy columns.
    assert!(text.contains("mshr") && text.contains("sbuf"), "{text}");
    // And the error's Display carries the summary end-to-end.
    let display = SimError::Timeout {
        cycles: report.cycles_run,
        blocks_done: report.blocks_done,
        blocks_total: report.blocks_total,
        report: report.clone(),
    }
    .to_string();
    assert!(display.contains("starved resource mshr"), "{display}");
}

#[test]
fn cycle_budget_timeouts_also_carry_a_report() {
    // No chaos: just an honest budget too small for the kernel. The
    // watchdog stays quiet (progress never stops); the budget fires.
    let mut b = ProgramBuilder::new("spin");
    b.ldi(Reg(1), 100_000);
    let top = b.here();
    b.subi(Reg(1), Reg(1), 1);
    b.bra_nz(Reg(1), top);
    b.exit();
    let mut cfg = SystemConfig::paper().with_gpu_cores(1);
    cfg.max_cycles = 10_000;
    let mut sim = Simulator::new(cfg);
    let spec = LaunchSpec::new(b.build().unwrap(), 1, 1);
    let err = sim.run_kernel(&spec).expect_err("budget too small");
    let SimError::Timeout { report, .. } = err else {
        panic!("expected a timeout, got {err}");
    };
    assert_eq!(report.kind, TimeoutKind::CycleBudget);
    assert!(report.cycles_run >= 10_000);
    assert!(report.render().contains("cycle budget exhausted"));
}

#[test]
fn small_progress_windows_are_honored() {
    // Regression: the watchdog used to test `now & 4095 == 0`, which
    // silently quantized any window below 4096 cycles up to the sampling
    // period (and the skip-ahead engine could jump straight over the mask
    // boundary). With an explicit next-sample cycle of `min(4096, window)`
    // a 500-cycle window must fire within window + period, not ~8192.
    let mut cfg = SystemConfig::paper().with_gpu_cores(1).with_progress_window(500);
    cfg.max_cycles = 1_000_000;
    let mut sim = Simulator::new(cfg);
    sim.set_chaos(&wedged_mshr());
    let err = sim.run_kernel(&load_then_barrier_spec()).expect_err("must livelock");
    let SimError::Timeout { report, .. } = err else {
        panic!("expected a timeout, got {err}");
    };
    assert_eq!(report.kind, TimeoutKind::NoForwardProgress);
    assert!(report.stalled_for >= 500, "window must elapse: {}", report.stalled_for);
    assert!(
        report.cycles_run < 4096,
        "a 500-cycle window must fire well before the old 4096-cycle \
         sampling grid: ran {} cycles",
        report.cycles_run
    );
}

#[test]
fn progress_window_zero_disables_the_watchdog() {
    // The same livelocked machine with the watchdog off runs all the way
    // to the cycle budget instead.
    let mut cfg = SystemConfig::paper().with_gpu_cores(1).with_progress_window(0);
    cfg.max_cycles = 60_000;
    let mut sim = Simulator::new(cfg);
    sim.set_chaos(&wedged_mshr());
    let err = sim.run_kernel(&load_then_barrier_spec()).expect_err("must time out");
    let SimError::Timeout { report, .. } = err else {
        panic!("expected a timeout, got {err}");
    };
    assert_eq!(report.kind, TimeoutKind::CycleBudget);
    assert!(report.cycles_run >= 60_000);
}
