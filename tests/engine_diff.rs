//! Differential suite for the cycle engines: the dense per-cycle loop and
//! the event-driven skip-ahead engine must be *bit-identical*, not merely
//! statistically close. Every workload in the repertoire runs under both
//! engines and both coherence protocols, and the full [`KernelRun`] — cycle
//! count, stall breakdowns, per-SM statistics, timelines, warp profiles —
//! must compare equal. A subset re-runs with chaos fault injection armed,
//! since injected timing faults exercise machine states (wedged MSHRs,
//! stalled flushes, dropped DMA bursts) that the clean runs never reach.
//!
//! The suite honors `GSI_TRACE_LEVEL` (the verify script runs it under
//! `counters`) and, when tracing is on, also requires the recorded counter
//! vectors to match between engines.

#![allow(clippy::unwrap_used)] // test code asserts infallibility

use gsi::chaos::FaultPlan;
use gsi::mem::Protocol;
use gsi::sim::{CycleEngine, Simulator, SystemConfig};
use gsi::trace::TraceLevel;
use gsi::workloads::{bfs, gemm, histogram, implicit, reduction, spmv, stencil, uts};
use std::fmt::Debug;

fn trace_level() -> TraceLevel {
    match std::env::var("GSI_TRACE_LEVEL").as_deref() {
        Ok("counters") => TraceLevel::Counters,
        Ok("full") => TraceLevel::Full,
        _ => TraceLevel::Off,
    }
}

/// Run `work` on two simulators that differ only in cycle engine and
/// assert the results (and trace counters, if tracing) are identical.
/// Stall attribution runs on both, and its full JSON report — causal pcs,
/// per-kind counters, service sub-buckets — must also be byte-identical:
/// the skip-ahead engine credits blame without simulating the cycles.
fn assert_engines_agree<R, F>(name: &str, base: SystemConfig, plan: &FaultPlan, mut work: F)
where
    R: PartialEq + Debug,
    F: FnMut(&mut Simulator) -> R,
{
    let mut outs = Vec::new();
    let mut counts = Vec::new();
    let mut blames = Vec::new();
    for engine in [CycleEngine::Dense, CycleEngine::Event] {
        let mut sim = Simulator::new(base.with_cycle_engine(engine));
        sim.set_trace_level(trace_level());
        sim.set_timeline_epoch(256);
        sim.set_chaos(plan);
        sim.set_blame_enabled(true);
        outs.push(work(&mut sim));
        counts.push(sim.trace().counts().to_vec());
        blames.push(sim.blame_report().to_json().to_string_pretty());
    }
    assert_eq!(outs[0], outs[1], "{name}: engines disagree on results");
    assert_eq!(counts[0], counts[1], "{name}: engines disagree on trace counters");
    assert_eq!(blames[0], blames[1], "{name}: engines disagree on blame attribution");
}

fn base(cores: usize, protocol: Protocol) -> SystemConfig {
    SystemConfig::paper().with_gpu_cores(cores).with_protocol(protocol)
}

const PROTOCOLS: [Protocol; 2] = [Protocol::GpuCoherence, Protocol::DeNovo];

#[test]
fn uts_both_variants_agree() {
    let cfg = uts::UtsConfig::small();
    for protocol in PROTOCOLS {
        for variant in [uts::Variant::Centralized, uts::Variant::Decentralized] {
            assert_engines_agree(
                &format!("uts-{variant:?}-{protocol}"),
                base(4, protocol),
                &FaultPlan::disabled(),
                |sim| {
                    let out = uts::run(sim, &cfg, variant).unwrap();
                    (out.run, out.processed)
                },
            );
        }
    }
}

#[test]
fn implicit_all_styles_agree() {
    for protocol in PROTOCOLS {
        for style in implicit::LocalMemStyle::ALL {
            let cfg = implicit::ImplicitConfig::small(style);
            assert_engines_agree(
                &format!("implicit-{style}-{protocol}"),
                base(1, protocol).with_local_mem(style.mem_kind()),
                &FaultPlan::disabled(),
                |sim| {
                    let out = implicit::run(sim, &cfg).unwrap();
                    (out.run, out.verified_elems)
                },
            );
        }
    }
}

#[test]
fn spmv_agrees() {
    let cfg = spmv::SpmvConfig::small();
    for protocol in PROTOCOLS {
        assert_engines_agree(
            &format!("spmv-{protocol}"),
            base(4, protocol),
            &FaultPlan::disabled(),
            |sim| {
                let out = spmv::run(sim, &cfg).unwrap();
                (out.run, out.verified_rows)
            },
        );
    }
}

#[test]
fn histogram_agrees() {
    let cfg = histogram::HistogramConfig::small();
    for protocol in PROTOCOLS {
        assert_engines_agree(
            &format!("histogram-{protocol}"),
            base(4, protocol),
            &FaultPlan::disabled(),
            |sim| {
                let out = histogram::run(sim, &cfg).unwrap();
                (out.run, out.verified_bins)
            },
        );
    }
}

#[test]
fn stencil_both_variants_agree() {
    for protocol in PROTOCOLS {
        for variant in [stencil::StencilVariant::Tiled, stencil::StencilVariant::Global] {
            let cfg = stencil::StencilConfig::small(variant);
            assert_engines_agree(
                &format!("stencil-{variant:?}-{protocol}"),
                base(2, protocol),
                &FaultPlan::disabled(),
                |sim| {
                    let out = stencil::run(sim, &cfg).unwrap();
                    (out.run, out.verified_elems)
                },
            );
        }
    }
}

#[test]
fn reduction_agrees() {
    let cfg = reduction::ReductionConfig::small();
    for protocol in PROTOCOLS {
        assert_engines_agree(
            &format!("reduction-{protocol}"),
            base(4, protocol),
            &FaultPlan::disabled(),
            |sim| {
                let out = reduction::run(sim, &cfg).unwrap();
                (out.run, out.total)
            },
        );
    }
}

#[test]
fn bfs_agrees_level_by_level() {
    let cfg = bfs::BfsConfig::small();
    for protocol in PROTOCOLS {
        assert_engines_agree(
            &format!("bfs-{protocol}"),
            base(4, protocol),
            &FaultPlan::disabled(),
            |sim| {
                let out = bfs::run(sim, &cfg).unwrap();
                (out.levels, out.reached)
            },
        );
    }
}

#[test]
fn gemm_both_variants_agree() {
    for protocol in PROTOCOLS {
        for variant in [gemm::GemmVariant::Tiled, gemm::GemmVariant::Global] {
            let cfg = gemm::GemmConfig::small(variant);
            assert_engines_agree(
                &format!("gemm-{variant:?}-{protocol}"),
                base(4, protocol),
                &FaultPlan::disabled(),
                |sim| {
                    let out = gemm::run(sim, &cfg).unwrap();
                    (out.run, out.verified)
                },
            );
        }
    }
}

/// Chaos-armed runs reach machine states the clean runs never do (wedged
/// MSHRs, stalled store-buffer drains, dropped DMA bursts). The engines
/// must stay identical there too — chaos decisions are keyed off per-cycle
/// machine state, so a single cycle simulated differently would diverge
/// the whole fault stream.
#[test]
fn chaos_runs_agree() {
    const SEEDS: [u64; 3] = [1, 0xC0FFEE, 0x2026_0808];
    let ucfg = uts::UtsConfig::small();
    for seed in SEEDS {
        let plan = FaultPlan::all(seed);
        assert_engines_agree(
            &format!("chaos-uts-{seed:#x}"),
            base(4, Protocol::DeNovo),
            &plan,
            |sim| {
                let out = uts::run(sim, &ucfg, uts::Variant::Decentralized).unwrap();
                (out.run, out.processed, sim.chaos_stats().total())
            },
        );
        let style = implicit::LocalMemStyle::ScratchpadDma;
        let icfg = implicit::ImplicitConfig::small(style);
        assert_engines_agree(
            &format!("chaos-implicit-{seed:#x}"),
            base(1, Protocol::GpuCoherence).with_local_mem(style.mem_kind()),
            &plan,
            |sim| {
                let out = implicit::run(sim, &icfg).unwrap();
                (out.run, out.verified_elems, sim.chaos_stats().total())
            },
        );
    }
}

/// The event engine must also agree when profiling is off entirely (the
/// overhead-measurement configuration): same cycle counts, empty
/// breakdowns on both sides.
#[test]
fn profiling_off_agrees() {
    let cfg = spmv::SpmvConfig::small();
    let mut cycles = Vec::new();
    for engine in [CycleEngine::Dense, CycleEngine::Event] {
        let mut sim = Simulator::new(base(4, Protocol::GpuCoherence).with_cycle_engine(engine));
        sim.set_profiling(false);
        let out = spmv::run(&mut sim, &cfg).unwrap();
        assert_eq!(out.run.breakdown.total_cycles(), 0);
        cycles.push(out.run.cycles);
    }
    assert_eq!(cycles[0], cycles[1], "profiling-off cycle counts diverge");
}
