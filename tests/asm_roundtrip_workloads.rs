//! Every real workload kernel round-trips through its textual assembly —
//! a stronger guarantee than random-program round-tripping, because these
//! kernels use every addressing mode and control shape in anger.

use gsi::isa::asm::parse_program;
use gsi::workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
use gsi::workloads::uts::{self, UtsConfig};
use gsi::workloads::{bfs, gemm, histogram, reduction, spmv, stencil};

fn roundtrip(p: &gsi::isa::Program) {
    let text = p.to_string();
    let q = parse_program(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", p.name()));
    assert_eq!(p, &q, "{}", p.name());
}

#[test]
fn all_workload_kernels_round_trip() {
    roundtrip(&uts::build_centralized(&UtsConfig::small()));
    roundtrip(&uts::build_decentralized(&UtsConfig::small()));
    for style in LocalMemStyle::ALL {
        roundtrip(&implicit::build_program(&ImplicitConfig::small(style)));
    }
    roundtrip(&spmv::build_program(&spmv::SpmvConfig::small()));
    roundtrip(&histogram::build_program(&histogram::HistogramConfig::small()));
    for v in [stencil::StencilVariant::Tiled, stencil::StencilVariant::Global] {
        roundtrip(&stencil::build_program(&stencil::StencilConfig::small(v)));
    }
    roundtrip(&reduction::build_program(&reduction::ReductionConfig::small()));
    roundtrip(&bfs::build_program(&bfs::BfsConfig::small()));
    for v in [gemm::GemmVariant::Tiled, gemm::GemmVariant::Global] {
        roundtrip(&gemm::build_program(&gemm::GemmConfig::small(v)));
    }
}

#[test]
fn kernel_listings_are_nontrivial() {
    // The disassembly is a real artifact users read; sanity-check shape.
    let p = uts::build_centralized(&UtsConfig::small());
    let text = p.to_string();
    assert!(text.lines().count() > 40);
    assert!(text.contains("atom.cas.Acquire"));
    assert!(text.contains("atom.st.Release"));
}
