//! Integration tests for stall root-cause attribution (`gsi-blame`):
//! conservation against the machine's stall collector, honesty about
//! event-ring wraparound, and the protocol differential.

#![allow(clippy::unwrap_used)] // test code asserts infallibility

use gsi::blame::{BlameDiff, UNKNOWN_PC};
use gsi::core::StallKind;
use gsi::mem::Protocol;
use gsi::sim::{CycleEngine, LaunchSpec, Simulator, SystemConfig};
use gsi::trace::{TraceBuffer, TraceConfig, TraceLevel};
use gsi::workloads::uts::{self, UtsConfig, Variant};

/// A small kernel with loads, dependent compute, and a loop: enough to
/// populate every last-writer table without taking long to simulate.
fn loop_of_loads() -> LaunchSpec {
    use gsi::isa::{ProgramBuilder, Reg};
    let mut b = ProgramBuilder::new("blame-it");
    b.ldi(Reg(1), 0x2000);
    b.ldi(Reg(5), 8);
    let top = b.here();
    b.ld_global(Reg(2), Reg(1), 0);
    b.addi(Reg(3), Reg(2), 1);
    b.st_global(Reg(3), Reg(1), 0);
    b.subi(Reg(5), Reg(5), 1);
    b.bra_nz(Reg(5), top);
    b.exit();
    LaunchSpec::new(b.build().unwrap(), 4, 2).with_init(|w, block, warp, _| {
        w.set_uniform(1, 0x2000 + block * 0x100 + warp as u64 * 0x40)
    })
}

/// Every attributable stall category conserves against the machine's own
/// stall collector: cycles charged to instructions plus cycles the blame
/// layer could not attribute equal exactly what the breakdown observed.
#[test]
fn attribution_conserves_collector_totals() {
    let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(2));
    sim.set_blame_enabled(true);
    let run = sim.run_kernel(&loop_of_loads()).unwrap();
    let report = sim.blame_report();
    assert!(!report.rows.is_empty(), "a stalling kernel produces ranked rows");
    for kind in [
        StallKind::Control,
        StallKind::Synchronization,
        StallKind::MemoryData,
        StallKind::MemoryStructural,
        StallKind::ComputeData,
        StallKind::ComputeStructural,
    ] {
        assert_eq!(
            report.attributed(kind) + report.unattributed[kind.index()],
            run.breakdown.cycles(kind),
            "{kind:?}: blamed + unattributed must equal the collector total"
        );
    }
    let row_sum: u64 = report.rows.iter().map(|r| r.total).sum();
    assert_eq!(row_sum, report.attributed_total(), "rows carry every attributed cycle");
    let share_sum: f64 = report.rows.iter().map(|r| r.share_pct).sum();
    assert!((share_sum - 100.0).abs() < 0.01, "shares sum to 100%, got {share_sum}");
    assert!(report.rows.iter().all(|r| r.pc != UNKNOWN_PC), "rows are real instructions");
}

/// Full-level tracing with a deliberately tiny event ring wraps; the blame
/// report must disclose that with `coverage_pct < 100` and a warning line
/// instead of silently presenting the window as complete.
#[test]
fn ring_wraparound_is_disclosed_in_coverage() {
    let sys = SystemConfig::paper().with_gpu_cores(1).with_cycle_engine(CycleEngine::Dense);
    let mut sim = Simulator::new(sys);
    let mut tcfg = TraceConfig::for_system(
        TraceLevel::Full,
        sim.config().mesh.nodes(),
        sim.config().gpu_cores,
        sim.config().sm.max_warps,
    );
    tcfg.event_capacity = 8; // a stalling kernel overflows this immediately
    sim.set_trace(TraceBuffer::new(tcfg));
    sim.set_blame_enabled(true);
    sim.run_kernel(&loop_of_loads()).unwrap();
    let report = sim.blame_report();
    assert!(report.dropped_events > 0, "the tiny ring must wrap");
    assert!(
        report.coverage_pct < 100.0 && report.coverage_pct > 0.0,
        "coverage reflects the wrap, got {}",
        report.coverage_pct
    );
    let json = report.to_json();
    let cov = json.get("coverage_pct").and_then(|v| v.as_f64()).unwrap();
    assert!(cov < 100.0);
    assert!(
        report.render(5).contains("warning: event ring wrapped"),
        "the rendered report warns about the wrap"
    );
}

/// An untouched (or ringless) trace reports full coverage: the live blame
/// tables never drop anything, only the exported event window can.
#[test]
fn off_level_tracing_reports_full_coverage() {
    let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(1));
    sim.set_blame_enabled(true);
    sim.run_kernel(&loop_of_loads()).unwrap();
    let report = sim.blame_report();
    assert_eq!(report.dropped_events, 0);
    assert!((report.coverage_pct - 100.0).abs() < f64::EPSILON);
}

/// The protocol differential: per-instruction deltas between a GPU-coherence
/// run and a DeNovo run conserve the difference in attributed totals, and
/// the rows rank by absolute delta.
#[test]
fn protocol_differential_conserves_deltas() {
    let cfg = UtsConfig::small();
    let mut reports = Vec::new();
    for protocol in [Protocol::GpuCoherence, Protocol::DeNovo] {
        let mut sim =
            Simulator::new(SystemConfig::paper().with_gpu_cores(4).with_protocol(protocol));
        sim.set_blame_enabled(true);
        uts::run(&mut sim, &cfg, Variant::Centralized).unwrap();
        reports.push(sim.blame_report());
    }
    let diff = BlameDiff::new("gpu", &reports[0], "denovo", &reports[1]);
    assert!(!diff.rows.is_empty());
    let delta_sum: i64 = diff.rows.iter().map(|r| r.delta).sum();
    assert_eq!(
        delta_sum,
        reports[1].attributed_total() as i64 - reports[0].attributed_total() as i64,
        "per-pc deltas must conserve the total shift"
    );
    for pair in diff.rows.windows(2) {
        assert!(
            pair[0].delta.abs() >= pair[1].delta.abs(),
            "rows rank by |delta|: {} before {}",
            pair[0].delta,
            pair[1].delta
        );
    }
    // UTS is protocol-sensitive: the lock acquire must move between runs.
    assert!(diff.rows.iter().any(|r| r.delta != 0), "uts blame shifts across protocols");
}
