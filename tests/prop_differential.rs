//! Differential testing: random *structured* programs — straight-line
//! segments, bounded counted loops, and per-lane divergent if/else regions —
//! run through both the architectural reference interpreter
//! ([`gsi::isa::interp::Interp`]) and the full cycle-level simulator. Final
//! global memory and issued-instruction counts must agree exactly.

use gsi::isa::interp::Interp;
use gsi::isa::{AluOp, Operand, Program, ProgramBuilder, Reg};
use gsi::sim::{LaunchSpec, Simulator, SystemConfig};
use proptest::prelude::*;

const MEM_BASE: u64 = 0x9_0000;
const MEM_WORDS: u64 = 32;
// r12 holds the memory base; r13 is the loop counter; r0 the lane id.
const R_BASE: Reg = Reg(12);
const R_LOOP: Reg = Reg(13);
const DATA_REGS: u8 = 8; // r0..r7 are data registers

#[derive(Debug, Clone)]
enum Piece {
    Straight(Vec<(AluOp, u8, u8, i64)>),
    Loop { times: u64, body: Vec<(AluOp, u8, u8, i64)> },
    IfElse { cond: u8, then_ops: Vec<(AluOp, u8, u8, i64)>, else_ops: Vec<(AluOp, u8, u8, i64)> },
    Store { src: u8, word: u64 },
    Load { dst: u8, word: u64 },
}

fn arb_op() -> impl Strategy<Value = (AluOp, u8, u8, i64)> {
    (
        prop_oneof![
            Just(AluOp::Add),
            Just(AluOp::Sub),
            Just(AluOp::Mul),
            Just(AluOp::Xor),
            Just(AluOp::And),
            Just(AluOp::Or),
            Just(AluOp::Shl),
            Just(AluOp::Shr),
            Just(AluOp::SltU),
        ],
        0..DATA_REGS,
        0..DATA_REGS,
        -32i64..32,
    )
}

fn arb_piece() -> impl Strategy<Value = Piece> {
    prop_oneof![
        proptest::collection::vec(arb_op(), 1..6).prop_map(Piece::Straight),
        (1u64..4, proptest::collection::vec(arb_op(), 1..4))
            .prop_map(|(times, body)| Piece::Loop { times, body }),
        (0..DATA_REGS, proptest::collection::vec(arb_op(), 1..4),
         proptest::collection::vec(arb_op(), 1..4))
            .prop_map(|(cond, then_ops, else_ops)| Piece::IfElse { cond, then_ops, else_ops }),
        (0..DATA_REGS, 0..MEM_WORDS).prop_map(|(src, word)| Piece::Store { src, word }),
        (0..DATA_REGS, 0..MEM_WORDS).prop_map(|(dst, word)| Piece::Load { dst, word }),
    ]
}

fn emit_ops(b: &mut ProgramBuilder, ops: &[(AluOp, u8, u8, i64)]) {
    for &(op, dst, a, imm) in ops {
        b.alu(op, Reg(dst), Reg(a), Operand::Imm(imm));
    }
}

fn assemble(pieces: &[Piece]) -> Program {
    let mut b = ProgramBuilder::new("diff");
    b.ldi(R_BASE, MEM_BASE);
    for p in pieces {
        match p {
            Piece::Straight(ops) => emit_ops(&mut b, ops),
            Piece::Loop { times, body } => {
                b.ldi(R_LOOP, *times);
                let top = b.here();
                emit_ops(&mut b, body);
                b.subi(R_LOOP, R_LOOP, 1);
                b.bra_nz(R_LOOP, top);
            }
            Piece::IfElse { cond, then_ops, else_ops } => {
                let then_l = b.label();
                let join_l = b.label();
                b.bra_div_nz(Reg(*cond), then_l, join_l);
                emit_ops(&mut b, else_ops);
                b.jmp_to(join_l);
                b.bind(then_l);
                emit_ops(&mut b, then_ops);
                b.bind(join_l);
            }
            Piece::Store { src, word } => {
                b.st_global(Reg(*src), R_BASE, (*word as i64) * 8);
            }
            Piece::Load { dst, word } => {
                b.ld_global(Reg(*dst), R_BASE, (*word as i64) * 8);
            }
        }
    }
    b.exit();
    b.build().expect("structured programs always assemble")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn simulator_matches_reference_interpreter(
        pieces in proptest::collection::vec(arb_piece(), 1..12),
        seed in any::<u64>(),
    ) {
        let program = assemble(&pieces);

        // Reference interpreter run.
        let mut interp = Interp::new(&program);
        for lane in 0..32 {
            interp.regs[lane][0] = lane as u64;
            // Seed data registers per lane so divergence conditions vary.
            for r in 1..DATA_REGS {
                interp.regs[lane][r as usize] =
                    seed.wrapping_mul(lane as u64 + 1).wrapping_add(r as u64);
            }
        }
        for w in 0..MEM_WORDS {
            interp.write_gmem(MEM_BASE + w * 8, seed.rotate_left(w as u32) ^ w);
        }
        interp.run(100_000).expect("structured programs terminate");
        let executed = interp.executed;
        let reference: Vec<u64> =
            (0..MEM_WORDS).map(|w| interp.read_gmem(MEM_BASE + w * 8)).collect();
        drop(interp);

        // Full simulator run with identical initial state.
        let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(1));
        for w in 0..MEM_WORDS {
            sim.gmem_mut().write_word(MEM_BASE + w * 8, seed.rotate_left(w as u32) ^ w);
        }
        let s = seed;
        let spec = LaunchSpec::new(program, 1, 1).with_init(move |w, _, _, _| {
            w.set_per_lane(0, |lane| lane as u64);
            for r in 1..DATA_REGS {
                w.set_per_lane(r, move |lane| {
                    s.wrapping_mul(lane as u64 + 1).wrapping_add(r as u64)
                });
            }
        });
        let run = sim.run_kernel(&spec).expect("terminates");

        // Memory must agree word for word.
        for w in 0..MEM_WORDS {
            let addr = MEM_BASE + w * 8;
            prop_assert_eq!(
                sim.gmem().read_word(addr),
                reference[w as usize],
                "memory word {} differs", w
            );
        }
        // The simulator issues exactly the instructions the reference
        // executed (single warp: no replays change the architectural count).
        prop_assert_eq!(run.instructions, executed);
    }
}
