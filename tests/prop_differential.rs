//! Differential testing: random *structured* programs — straight-line
//! segments, bounded counted loops, and per-lane divergent if/else regions —
//! run through both the architectural reference interpreter
//! ([`gsi::isa::interp::Interp`]) and the full cycle-level simulator. Final
//! global memory and issued-instruction counts must agree exactly.
//!
//! Program generation uses a fixed-seed SplitMix64 generator, so every run
//! explores the same program set deterministically without external crates.

use gsi::isa::interp::Interp;
use gsi::isa::{AluOp, Operand, Program, ProgramBuilder, Reg};
use gsi::sim::{LaunchSpec, Simulator, SystemConfig};

const MEM_BASE: u64 = 0x9_0000;
const MEM_WORDS: u64 = 32;
// r12 holds the memory base; r13 is the loop counter; r0 the lane id.
const R_BASE: Reg = Reg(12);
const R_LOOP: Reg = Reg(13);
const DATA_REGS: u8 = 8; // r0..r7 are data registers

/// Deterministic SplitMix64 generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n > 0`).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Debug, Clone)]
enum Piece {
    Straight(Vec<(AluOp, u8, u8, i64)>),
    Loop { times: u64, body: Vec<(AluOp, u8, u8, i64)> },
    IfElse { cond: u8, then_ops: Vec<(AluOp, u8, u8, i64)>, else_ops: Vec<(AluOp, u8, u8, i64)> },
    Store { src: u8, word: u64 },
    Load { dst: u8, word: u64 },
}

const OPS: &[AluOp] = &[
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Xor,
    AluOp::And,
    AluOp::Or,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::SltU,
];

fn random_op(rng: &mut Rng) -> (AluOp, u8, u8, i64) {
    (
        OPS[rng.below(OPS.len() as u64) as usize],
        rng.below(DATA_REGS as u64) as u8,
        rng.below(DATA_REGS as u64) as u8,
        rng.below(64) as i64 - 32,
    )
}

fn random_ops(rng: &mut Rng, max_len: u64) -> Vec<(AluOp, u8, u8, i64)> {
    let n = 1 + rng.below(max_len - 1);
    (0..n).map(|_| random_op(rng)).collect()
}

fn random_piece(rng: &mut Rng) -> Piece {
    match rng.below(5) {
        0 => Piece::Straight(random_ops(rng, 6)),
        1 => Piece::Loop { times: 1 + rng.below(3), body: random_ops(rng, 4) },
        2 => Piece::IfElse {
            cond: rng.below(DATA_REGS as u64) as u8,
            then_ops: random_ops(rng, 4),
            else_ops: random_ops(rng, 4),
        },
        3 => Piece::Store { src: rng.below(DATA_REGS as u64) as u8, word: rng.below(MEM_WORDS) },
        _ => Piece::Load { dst: rng.below(DATA_REGS as u64) as u8, word: rng.below(MEM_WORDS) },
    }
}

fn emit_ops(b: &mut ProgramBuilder, ops: &[(AluOp, u8, u8, i64)]) {
    for &(op, dst, a, imm) in ops {
        b.alu(op, Reg(dst), Reg(a), Operand::Imm(imm));
    }
}

fn assemble(pieces: &[Piece]) -> Program {
    let mut b = ProgramBuilder::new("diff");
    b.ldi(R_BASE, MEM_BASE);
    for p in pieces {
        match p {
            Piece::Straight(ops) => emit_ops(&mut b, ops),
            Piece::Loop { times, body } => {
                b.ldi(R_LOOP, *times);
                let top = b.here();
                emit_ops(&mut b, body);
                b.subi(R_LOOP, R_LOOP, 1);
                b.bra_nz(R_LOOP, top);
            }
            Piece::IfElse { cond, then_ops, else_ops } => {
                let then_l = b.label();
                let join_l = b.label();
                b.bra_div_nz(Reg(*cond), then_l, join_l);
                emit_ops(&mut b, else_ops);
                b.jmp_to(join_l);
                b.bind(then_l);
                emit_ops(&mut b, then_ops);
                b.bind(join_l);
            }
            Piece::Store { src, word } => {
                b.st_global(Reg(*src), R_BASE, (*word as i64) * 8);
            }
            Piece::Load { dst, word } => {
                b.ld_global(Reg(*dst), R_BASE, (*word as i64) * 8);
            }
        }
    }
    b.exit();
    b.build().expect("structured programs always assemble")
}

#[test]
fn simulator_matches_reference_interpreter() {
    let mut rng = Rng::new(0xD1FF_0001);
    for case in 0..40 {
        let npieces = 1 + rng.below(11) as usize;
        let pieces: Vec<Piece> = (0..npieces).map(|_| random_piece(&mut rng)).collect();
        let seed = rng.next();

        let program = assemble(&pieces);

        // Reference interpreter run.
        let mut interp = Interp::new(&program);
        for lane in 0..32 {
            interp.regs[lane][0] = lane as u64;
            // Seed data registers per lane so divergence conditions vary.
            for r in 1..DATA_REGS {
                interp.regs[lane][r as usize] =
                    seed.wrapping_mul(lane as u64 + 1).wrapping_add(r as u64);
            }
        }
        for w in 0..MEM_WORDS {
            interp.write_gmem(MEM_BASE + w * 8, seed.rotate_left(w as u32) ^ w);
        }
        interp.run(100_000).expect("structured programs terminate");
        let executed = interp.executed;
        let reference: Vec<u64> =
            (0..MEM_WORDS).map(|w| interp.read_gmem(MEM_BASE + w * 8)).collect();
        drop(interp);

        // Full simulator run with identical initial state.
        let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(1));
        for w in 0..MEM_WORDS {
            sim.gmem_mut().write_word(MEM_BASE + w * 8, seed.rotate_left(w as u32) ^ w);
        }
        let s = seed;
        let spec = LaunchSpec::new(program, 1, 1).with_init(move |w, _, _, _| {
            w.set_per_lane(0, |lane| lane as u64);
            for r in 1..DATA_REGS {
                w.set_per_lane(r, move |lane| {
                    s.wrapping_mul(lane as u64 + 1).wrapping_add(r as u64)
                });
            }
        });
        let run = sim.run_kernel(&spec).expect("terminates");

        // Memory must agree word for word.
        for w in 0..MEM_WORDS {
            let addr = MEM_BASE + w * 8;
            assert_eq!(
                sim.gmem().read_word(addr),
                reference[w as usize],
                "case {case}: memory word {w} differs"
            );
        }
        // The simulator issues exactly the instructions the reference
        // executed (single warp: no replays change the architectural count).
        assert_eq!(run.instructions, executed, "case {case}");
    }
}
