//! Randomized end-to-end tests: random straight-line programs must compute
//! exactly what a host-side reference interpreter computes, and the GSI
//! accounting invariants must hold for every one of them.
//!
//! Driven by a fixed-seed SplitMix64 generator, so every run explores the
//! same program set deterministically without external crates.

#![allow(clippy::unwrap_used)] // test code asserts infallibility

use gsi::isa::{eval_alu, AluOp, Instr, Operand, Program, ProgramBuilder, Reg};
use gsi::sim::{LaunchSpec, Simulator, SystemConfig};

const NREGS: u8 = 8; // keep programs within a small register window
const MEM_BASE: u64 = 0x8_0000;
const MEM_WORDS: u64 = 64;

/// Deterministic SplitMix64 generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n > 0`).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

const ALU_OPS: &[AluOp] = &[
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::MinU,
    AluOp::MaxU,
    AluOp::SltU,
    AluOp::Seq,
    AluOp::Sne,
    AluOp::DivU,
    AluOp::RemU,
];

#[derive(Debug, Clone)]
enum Step {
    Alu {
        op: AluOp,
        dst: u8,
        a: u8,
        b_imm: Option<i64>,
        b_reg: u8,
    },
    Ldi {
        dst: u8,
        imm: u64,
    },
    /// Load from one of the fixed memory words (index masked into range).
    Load {
        dst: u8,
        word: u64,
    },
    /// Store a register to one of the fixed memory words.
    Store {
        src: u8,
        word: u64,
    },
}

fn random_step(rng: &mut Rng) -> Step {
    match rng.below(4) {
        0 => Step::Alu {
            op: ALU_OPS[rng.below(ALU_OPS.len() as u64) as usize],
            dst: rng.below(NREGS as u64) as u8,
            a: rng.below(NREGS as u64) as u8,
            b_imm: if rng.flag() { Some(rng.below(128) as i64 - 64) } else { None },
            b_reg: rng.below(NREGS as u64) as u8,
        },
        1 => Step::Ldi { dst: rng.below(NREGS as u64) as u8, imm: rng.next() },
        2 => Step::Load { dst: rng.below(NREGS as u64) as u8, word: rng.below(MEM_WORDS) },
        _ => Step::Store { src: rng.below(NREGS as u64) as u8, word: rng.below(MEM_WORDS) },
    }
}

/// Assemble the steps into a program. Register `r15` holds the memory base.
fn assemble(steps: &[Step]) -> Program {
    let mut b = ProgramBuilder::new("random");
    b.ldi(Reg(15), MEM_BASE);
    for s in steps {
        match s {
            Step::Alu { op, dst, a, b_imm, b_reg } => {
                let rhs = match b_imm {
                    Some(v) => Operand::Imm(*v),
                    None => Operand::Reg(Reg(*b_reg)),
                };
                b.alu(*op, Reg(*dst), Reg(*a), rhs);
            }
            Step::Ldi { dst, imm } => {
                b.ldi(Reg(*dst), *imm);
            }
            Step::Load { dst, word } => {
                b.ld_global(Reg(*dst), Reg(15), (*word as i64) * 8);
            }
            Step::Store { src, word } => {
                b.st_global(Reg(*src), Reg(15), (*word as i64) * 8);
            }
        }
    }
    b.exit();
    b.build().expect("random programs always assemble")
}

/// Host-side reference: execute the steps for one lane.
fn reference(steps: &[Step], mem: &mut [u64]) -> [u64; 16] {
    let mut regs = [0u64; 16];
    regs[15] = MEM_BASE;
    for s in steps {
        match s {
            Step::Alu { op, dst, a, b_imm, b_reg } => {
                let bv = match b_imm {
                    Some(v) => *v as u64,
                    None => regs[*b_reg as usize],
                };
                regs[*dst as usize] = eval_alu(*op, regs[*a as usize], bv);
            }
            Step::Ldi { dst, imm } => regs[*dst as usize] = *imm,
            Step::Load { dst, word } => regs[*dst as usize] = mem[*word as usize],
            Step::Store { src, word } => mem[*word as usize] = regs[*src as usize],
        }
    }
    regs
}

/// A single warp executing any straight-line program computes exactly the
/// reference semantics (all lanes are uniform here), and the GSI breakdown
/// partitions the cycles.
#[test]
fn straight_line_programs_match_reference() {
    let mut rng = Rng::new(0x5157_0001);
    for case in 0..48 {
        let nsteps = 1 + rng.below(39) as usize;
        let steps: Vec<Step> = (0..nsteps).map(|_| random_step(&mut rng)).collect();
        let seed = rng.next();

        let program = assemble(&steps);
        // Gate off: generated programs legitimately read registers that are
        // architecturally zeroed rather than written first.
        let cfg =
            SystemConfig::paper().with_gpu_cores(1).with_analysis_gate(gsi::sim::AnalysisGate::Off);
        let mut sim = Simulator::new(cfg);
        // Seed memory deterministically from `seed`.
        let mut mem: Vec<u64> =
            (0..MEM_WORDS).map(|i| seed.wrapping_mul(i + 1).rotate_left((i % 63) as u32)).collect();
        for (i, v) in mem.iter().enumerate() {
            sim.gmem_mut().write_word(MEM_BASE + i as u64 * 8, *v);
        }
        let spec = LaunchSpec::new(program, 1, 1);
        let run = sim.run_kernel(&spec).expect("random programs terminate");

        // Functional equivalence: final memory matches the reference.
        let expected_regs = reference(&steps, &mut mem);
        let _ = expected_regs;
        for (i, v) in mem.iter().enumerate() {
            assert_eq!(
                sim.gmem().read_word(MEM_BASE + i as u64 * 8),
                *v,
                "case {case}: memory word {i} differs"
            );
        }

        // Accounting invariants.
        assert_eq!(run.breakdown.total_cycles(), run.cycles);
        assert_eq!(
            run.breakdown.mem_data_total(),
            run.breakdown.cycles(gsi::StallKind::MemoryData)
        );
        assert_eq!(
            run.breakdown.mem_struct_total(),
            run.breakdown.cycles(gsi::StallKind::MemoryStructural)
        );
        // The program issued exactly steps + ldi + exit instructions.
        assert_eq!(run.instructions, steps.len() as u64 + 2);
    }
}

/// Divergent branching computes exactly what predication computes: for
/// random per-lane predicates and operand values, a BraDiv if/else and a
/// Sel produce identical results.
#[test]
fn divergence_equals_predication() {
    let mut rng = Rng::new(0x5157_0002);
    for case in 0..16 {
        let preds: Vec<bool> = (0..32).map(|_| rng.flag()).collect();
        let vals: Vec<u64> = (0..32).map(|_| 1 + rng.below(999_999)).collect();

        // then: r2 = v * 2 + 7; else: r2 = v ^ 0x1234
        let divergent = {
            let mut b = ProgramBuilder::new("div");
            let then_l = b.label();
            let join_l = b.label();
            b.bra_div_nz(Reg(4), then_l, join_l);
            b.xor(Reg(2), Reg(1), Operand::Imm(0x1234));
            b.jmp_to(join_l);
            b.bind(then_l);
            b.shl(Reg(2), Reg(1), Operand::Imm(1));
            b.addi(Reg(2), Reg(2), 7);
            b.bind(join_l);
            b.ldi(Reg(5), MEM_BASE);
            b.shl(Reg(6), Reg(0), Operand::Imm(3));
            b.add(Reg(5), Reg(5), Reg(6));
            b.st_global(Reg(2), Reg(5), 0);
            b.exit();
            b.build().unwrap()
        };
        let predicated = {
            let mut b = ProgramBuilder::new("sel");
            b.shl(Reg(7), Reg(1), Operand::Imm(1));
            b.addi(Reg(7), Reg(7), 7);
            b.xor(Reg(8), Reg(1), Operand::Imm(0x1234));
            b.push(Instr::Sel { dst: Reg(2), cond: Reg(4), a: Reg(7).into(), b: Reg(8).into() });
            b.ldi(Reg(5), MEM_BASE);
            b.shl(Reg(6), Reg(0), Operand::Imm(3));
            b.add(Reg(5), Reg(5), Reg(6));
            b.st_global(Reg(2), Reg(5), 0);
            b.exit();
            b.build().unwrap()
        };
        let mut results = Vec::new();
        for program in [divergent, predicated] {
            let preds = preds.clone();
            let vals = vals.clone();
            let spec = LaunchSpec::new(program, 1, 1).with_init(move |w, _, _, _| {
                w.set_per_lane(0, |lane| lane as u64);
                let vals = vals.clone();
                w.set_per_lane(1, move |lane| vals[lane]);
                let preds = preds.clone();
                w.set_per_lane(4, move |lane| u64::from(preds[lane]));
            });
            let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(1));
            sim.run_kernel(&spec).expect("completes");
            let snap: Vec<u64> = (0..32).map(|l| sim.gmem().read_word(MEM_BASE + l * 8)).collect();
            results.push(snap);
        }
        assert_eq!(&results[0], &results[1], "case {case}");
        // And both match the host computation.
        for lane in 0..32 {
            let want = if preds[lane] {
                vals[lane].wrapping_shl(1).wrapping_add(7)
            } else {
                vals[lane] ^ 0x1234
            };
            assert_eq!(results[0][lane], want, "case {case}, lane {lane}");
        }
    }
}

/// Per-lane divergence through `Sel`: lanes see their own data.
#[test]
fn per_lane_select() {
    let mut rng = Rng::new(0x5157_0003);
    for _case in 0..16 {
        let vals: Vec<u64> = (0..32).map(|_| rng.next()).collect();

        let mut b = ProgramBuilder::new("sel");
        // r1 = lane value (preset); r2 = 1 if r1 odd else 0; r3 = odd ? r1 : !r1
        b.and(Reg(2), Reg(1), Operand::Imm(1));
        b.xor(Reg(4), Reg(1), Operand::Imm(-1));
        b.push(Instr::Sel { dst: Reg(3), cond: Reg(2), a: Reg(1).into(), b: Reg(4).into() });
        b.ldi(Reg(5), MEM_BASE);
        b.shl(Reg(6), Reg(0), Operand::Imm(3));
        b.add(Reg(5), Reg(5), Reg(6));
        b.st_global(Reg(3), Reg(5), 0);
        b.exit();
        let vals2 = vals.clone();
        let spec = LaunchSpec::new(b.build().unwrap(), 1, 1).with_init(move |w, _, _, _| {
            w.set_per_lane(0, |lane| lane as u64);
            let vals = vals2.clone();
            w.set_per_lane(1, move |lane| vals[lane]);
        });
        let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(1));
        sim.run_kernel(&spec).expect("completes");
        for (lane, v) in vals.iter().enumerate() {
            let want = if v & 1 == 1 { *v } else { !*v };
            assert_eq!(sim.gmem().read_word(MEM_BASE + lane as u64 * 8), want);
        }
    }
}
