//! The acceptance test for the allocation-free cycle loop: a counting
//! global allocator verifies that steady-state simulation performs no
//! per-cycle heap allocation. The test runs the same compute-bound kernel
//! at two very different iteration counts on pre-warmed simulators; if any
//! allocation remained on the per-cycle path, the longer run would allocate
//! (tens of thousands of times) more.
//!
//! This file deliberately contains a single `#[test]` so no concurrent test
//! thread perturbs the allocation counter. The counter is additionally
//! gated on a thread-local flag set only by the test thread: the libtest
//! harness runs helper threads (timers, the output channel) whose
//! occasional allocations would otherwise land inside the measured window
//! and flake the count.

#![allow(clippy::unwrap_used)] // test code asserts infallibility

use gsi::isa::{ProgramBuilder, Reg};
use gsi::sim::{AnalysisGate, LaunchSpec, Simulator, SystemConfig};
use gsi::trace::TraceLevel;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation made by the measuring thread,
/// delegating to the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Const-init: reading this from inside the allocator never allocates.
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

fn counting() -> bool {
    MEASURING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A compute-bound kernel: `iters` iterations of a dependent-ALU spin loop
/// across two warps, exercising issue, compute-data stalls, control stalls,
/// and the scheduler every cycle.
fn spin_spec(iters: u64) -> LaunchSpec {
    let mut b = ProgramBuilder::new("spin");
    b.ldi(Reg(1), iters);
    let top = b.here();
    b.subi(Reg(1), Reg(1), 1);
    b.addi(Reg(2), Reg(1), 3); // dependent op: compute-data stalls
    b.bra_nz(Reg(1), top); // taken branch: control stalls
    b.exit();
    LaunchSpec::new(b.build().unwrap(), 2, 2)
}

/// The trace level under test: `GSI_TRACE_LEVEL=off|counters` (default
/// `off`). CI runs this test at both levels — counter-mode tracing must
/// also be allocation-free in steady state.
fn trace_level() -> TraceLevel {
    match std::env::var("GSI_TRACE_LEVEL").as_deref() {
        Ok("counters") => TraceLevel::Counters,
        Ok("off") | Err(_) => TraceLevel::Off,
        Ok(other) => panic!("GSI_TRACE_LEVEL must be off|counters, got {other:?}"),
    }
}

/// Allocations made by the second (scratch-warmed) execution of the kernel.
fn allocs_for(iters: u64) -> (u64, u64) {
    // Gate off: the pre-flight analyzer is a per-launch pass (never
    // per-cycle), and with the gate disabled it must cost nothing at all.
    let cfg = SystemConfig::paper().with_gpu_cores(2).with_analysis_gate(AnalysisGate::Off);
    let mut sim = Simulator::new(cfg);
    sim.set_trace_level(trace_level());
    let spec = spin_spec(iters);
    // Warm-up: grows every scratch buffer to steady-state capacity.
    let warm = sim.run_kernel(&spec).unwrap();
    let before = ALLOCS.load(Ordering::Relaxed);
    MEASURING.with(|m| m.set(true));
    let run = sim.run_kernel(&spec).unwrap();
    MEASURING.with(|m| m.set(false));
    assert_eq!(warm.cycles, run.cycles, "warm-up and measured runs agree");
    (ALLOCS.load(Ordering::Relaxed) - before, run.cycles)
}

/// Like [`allocs_for`], but with block dispatch live through the whole
/// run: one SM limited to two resident blocks and an eight-block grid, so
/// slots recycle and `add_block_from` runs mid-kernel. Dispatch work is
/// per-*block* (equal across the two runs), never per-cycle — this guards
/// the regression where each dispatched block allocated a fresh warp
/// initializer `Vec` inside the cycle loop.
fn streaming_allocs_for(iters: u64) -> (u64, u64) {
    let mut cfg = SystemConfig::paper().with_gpu_cores(1).with_analysis_gate(AnalysisGate::Off);
    cfg.sm.max_blocks = 2;
    let mut sim = Simulator::new(cfg);
    sim.set_trace_level(trace_level());
    let mut b = ProgramBuilder::new("stream");
    b.ldi(Reg(1), iters);
    let top = b.here();
    b.subi(Reg(1), Reg(1), 1);
    b.bra_nz(Reg(1), top);
    b.exit();
    let spec = LaunchSpec::new(b.build().unwrap(), 8, 1);
    let warm = sim.run_kernel(&spec).unwrap();
    let before = ALLOCS.load(Ordering::Relaxed);
    MEASURING.with(|m| m.set(true));
    let run = sim.run_kernel(&spec).unwrap();
    MEASURING.with(|m| m.set(false));
    assert_eq!(warm.cycles, run.cycles, "warm-up and measured runs agree");
    (ALLOCS.load(Ordering::Relaxed) - before, run.cycles)
}

#[test]
fn steady_state_cycle_loop_does_not_allocate() {
    // Pre-warm libtest's channel machinery: the harness lazily initializes
    // a thread-local mpmc Context (two heap allocations) the first time the
    // test thread parks on a channel, which can land inside the measured
    // window and flake the count by +2.
    let (tx, rx) = std::sync::mpsc::channel::<()>();
    tx.send(()).unwrap();
    rx.recv().unwrap();

    let (short_allocs, short_cycles) = allocs_for(50);
    let (long_allocs, long_cycles) = allocs_for(5_000);
    assert!(
        long_cycles > short_cycles * 50,
        "the long run must dwarf the short one ({short_cycles} vs {long_cycles} cycles)"
    );
    // Identical launch/teardown work, ~100x the cycles: any per-cycle
    // allocation would separate the two counts by tens of thousands.
    assert_eq!(
        short_allocs, long_allocs,
        "allocation count must be independent of cycles simulated \
         ({short_cycles} cycles -> {short_allocs} allocs, \
         {long_cycles} cycles -> {long_allocs} allocs)"
    );

    // Same property with dispatch active throughout the run: both runs
    // dispatch the same eight blocks through two recycled slots, so their
    // (per-block) dispatch allocations match and the cycle count still
    // must not leak into the total.
    let (stream_short_allocs, stream_short_cycles) = streaming_allocs_for(50);
    let (stream_long_allocs, stream_long_cycles) = streaming_allocs_for(5_000);
    assert!(
        stream_long_cycles > stream_short_cycles * 50,
        "the long streaming run must dwarf the short one \
         ({stream_short_cycles} vs {stream_long_cycles} cycles)"
    );
    assert_eq!(
        stream_short_allocs, stream_long_allocs,
        "streaming dispatch must not allocate per cycle \
         ({stream_short_cycles} cycles -> {stream_short_allocs} allocs, \
         {stream_long_cycles} cycles -> {stream_long_allocs} allocs)"
    );
}
