//! A deterministic, cheap hasher for the simulator's hot id-keyed maps.
//!
//! The memory model probes line- and word-keyed maps on every LSU attempt
//! (MSHR merge checks, stash valid bits, functional words), and a blocked
//! warp replays its access every cycle — so these probes sit on the hottest
//! path in the simulator. The standard library's default SipHash is
//! DoS-resistant but costs more than the probe itself for 8-byte keys.
//! [`FastHasher`] is a SplitMix64-style finalizer: two multiplies and three
//! shifts with full avalanche, which is plenty for trusted, well-spread
//! keys like line addresses and request ids.
//!
//! Determinism note: the hasher is fixed (no per-process random seed), but
//! no simulation result may depend on map iteration order anyway — every
//! consumer either probes by key or sorts before iterating. The fixed seed
//! just keeps wall-clock behavior reproducible too.

use std::hash::{BuildHasherDefault, Hasher};

/// SplitMix64-finalizer hasher for fixed-width integer keys.
///
/// Integer writes mix the value into the running state through the full
/// 64-bit finalizer; the byte-slice fallback (unused by the simulator's
/// keys) is FNV-1a.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    fn write_u64(&mut self, v: u64) {
        let mut z = (self.0 ^ v).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    fn write_u16(&mut self, v: u16) {
        self.write_u64(u64::from(v));
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// A `HashMap` keyed by small fixed-width ids, hashed with [`FastHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A `HashSet` of small fixed-width ids, hashed with [`FastHasher`].
pub type FastSet<K> = std::collections::HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_keys_spread_across_low_bits() {
        // HashMap uses the low bits of `finish`; sequential line addresses
        // must not collide there.
        let mut low = FastSet::default();
        for line in 0u64..1024 {
            let mut h = FastHasher::default();
            h.write_u64(line);
            low.insert(h.finish() & 0xfff);
        }
        // With full avalanche, 1024 sequential keys land on nearly as many
        // distinct 12-bit buckets as a random function would (~900).
        assert!(low.len() > 700, "poor low-bit dispersion: {}", low.len());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for k in 0..100u64 {
            m.insert(k * 64, k);
        }
        for k in 0..100u64 {
            assert_eq!(m.get(&(k * 64)), Some(&k));
        }
        assert_eq!(m.get(&7), None);
    }

    #[test]
    fn byte_fallback_distinguishes_values() {
        let mut a = FastHasher::default();
        a.write(b"hello");
        let mut b = FastHasher::default();
        b.write(b"world");
        assert_ne!(a.finish(), b.finish());
    }
}
