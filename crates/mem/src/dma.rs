//! The D2MA-style DMA engine for the scratchpad+DMA configuration.
//!
//! The engine transfers data between global memory and the scratchpad in
//! bulk, bypassing the core pipeline and the L1 cache but consuming MSHR
//! entries for its line fetches (which is why a larger MSHR lets it run
//! further ahead — the effect Figure 6.4 of the paper studies). Scratchpad
//! accesses that touch a range with an incomplete transfer are blocked at
//! core granularity, per the paper's stated approximation of D2MA.

use crate::line::{line_of, LineAddr};

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaDirection {
    /// Global memory → scratchpad (`dma.ld`).
    ToScratchpad,
    /// Scratchpad → global memory (`dma.st`).
    ToGlobal,
}

gsi_json::json_unit_enum!(DmaDirection { ToScratchpad, ToGlobal });

/// One in-flight bulk transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaTransfer {
    /// Scratchpad byte offset.
    pub local: u64,
    /// Global byte address.
    pub global: u64,
    /// Length in bytes.
    pub bytes: u64,
    /// Direction.
    pub dir: DmaDirection,
    issued_lines: u64,
    arrived_lines: u64,
}

impl DmaTransfer {
    /// Create a transfer descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the addresses or length are not word-aligned or the length
    /// is zero.
    pub fn new(local: u64, global: u64, bytes: u64, dir: DmaDirection) -> Self {
        assert!(bytes > 0, "empty DMA transfer");
        assert_eq!(local % 8, 0, "DMA local offset must be word-aligned");
        assert_eq!(global % 8, 0, "DMA global address must be word-aligned");
        assert_eq!(bytes % 8, 0, "DMA length must be word-aligned");
        DmaTransfer { local, global, bytes, dir, issued_lines: 0, arrived_lines: 0 }
    }

    /// Total global lines the transfer touches.
    pub fn total_lines(&self) -> u64 {
        line_of(self.global + self.bytes - 1).0 - line_of(self.global).0 + 1
    }

    /// First global line of the transfer.
    fn first_line(&self) -> LineAddr {
        line_of(self.global)
    }

    fn covers_line(&self, line: LineAddr) -> bool {
        line.0 >= self.first_line().0 && line.0 < self.first_line().0 + self.total_lines()
    }

    /// True when every line has been issued to the memory system (for
    /// stores, handed to the store buffer).
    pub fn fully_issued(&self) -> bool {
        self.issued_lines == self.total_lines()
    }

    /// True when the transfer no longer blocks scratchpad accesses:
    /// loads must have every line arrived; stores must be fully issued.
    pub fn complete(&self) -> bool {
        match self.dir {
            DmaDirection::ToScratchpad => self.arrived_lines == self.total_lines(),
            DmaDirection::ToGlobal => self.fully_issued(),
        }
    }

    /// True when the transfer covers the scratchpad byte at `local`.
    pub fn covers_local(&self, local: u64) -> bool {
        local >= self.local && local < self.local + self.bytes
    }
}

impl gsi_json::ToJson for DmaTransfer {
    fn to_json(&self) -> gsi_json::Value {
        gsi_json::obj! {
            "local" => self.local,
            "global" => self.global,
            "bytes" => self.bytes,
            "dir" => self.dir,
            "issued_lines" => self.issued_lines,
            "arrived_lines" => self.arrived_lines
        }
    }
}

impl gsi_json::FromJson for DmaTransfer {
    fn from_json(v: &gsi_json::Value) -> Result<Self, gsi_json::JsonError> {
        Ok(DmaTransfer {
            local: v.read("local")?,
            global: v.read("global")?,
            bytes: v.read("bytes")?,
            dir: v.read("dir")?,
            issued_lines: v.read("issued_lines")?,
            arrived_lines: v.read("arrived_lines")?,
        })
    }
}

/// The per-SM DMA engine: a list of transfers serviced in order, issuing up
/// to a configured number of lines per cycle.
#[derive(Debug, Clone, Default)]
pub struct DmaEngine {
    transfers: Vec<DmaTransfer>,
    started: u64,
    lines_issued: u64,
}

impl DmaEngine {
    /// An idle engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a transfer.
    pub fn start(&mut self, t: DmaTransfer) {
        self.transfers.push(t);
        self.started += 1;
    }

    /// Transfers started since construction (survives [`reset`](Self::reset)).
    pub fn transfers_started(&self) -> u64 {
        self.started
    }

    /// Lines issued to the memory system since construction.
    pub fn lines_issued(&self) -> u64 {
        self.lines_issued
    }

    /// True when a scratchpad access at `local` must stall with a
    /// pending-DMA structural hazard.
    pub fn blocks_local(&self, local: u64) -> bool {
        self.transfers.iter().any(|t| !t.complete() && t.covers_local(local))
    }

    /// True when every queued transfer has completed.
    pub fn all_complete(&self) -> bool {
        self.transfers.iter().all(DmaTransfer::complete)
    }

    /// True when any load transfer still has lines to fetch.
    pub fn wants_issue(&self) -> bool {
        self.transfers.iter().any(|t| !t.fully_issued())
    }

    /// The next line to issue, in transfer order: returns the global line
    /// and the direction. Call [`mark_issued`](Self::mark_issued) once the
    /// line has actually been accepted by the memory system.
    pub fn next_line(&self) -> Option<(LineAddr, DmaDirection)> {
        let t = self.transfers.iter().find(|t| !t.fully_issued())?;
        Some((LineAddr(t.first_line().0 + t.issued_lines), t.dir))
    }

    /// Record that the line returned by [`next_line`](Self::next_line) was
    /// issued.
    pub fn mark_issued(&mut self) {
        if let Some(t) = self.transfers.iter_mut().find(|t| !t.fully_issued()) {
            t.issued_lines += 1;
            self.lines_issued += 1;
            // Store lines "arrive" when drained by the store buffer; for
            // blocking purposes they only need to be issued.
        }
    }

    /// A fetched line arrived for a load transfer.
    pub fn on_line_arrived(&mut self, line: LineAddr) {
        if let Some(t) = self.transfers.iter_mut().find(|t| {
            t.dir == DmaDirection::ToScratchpad
                && t.covers_line(line)
                && t.arrived_lines < t.issued_lines
        }) {
            t.arrived_lines += 1;
        }
    }

    /// Drop every transfer (kernel end, after completion).
    pub fn reset(&mut self) {
        self.transfers.clear();
    }

    /// Number of queued transfers.
    pub fn len(&self) -> usize {
        self.transfers.len()
    }

    /// True when no transfers are queued.
    pub fn is_empty(&self) -> bool {
        self.transfers.is_empty()
    }

    /// Serialize queued transfers (in order) and lifetime counters.
    pub fn snapshot(&self) -> gsi_json::Value {
        use gsi_json::ToJson;
        gsi_json::obj! {
            "transfers" => self.transfers.to_json(),
            "started" => self.started,
            "lines_issued" => self.lines_issued
        }
    }

    /// Restore onto a fresh engine.
    pub fn restore(&mut self, v: &gsi_json::Value) -> Result<(), gsi_json::JsonError> {
        self.transfers = v.read("transfers")?;
        self.started = v.read("started")?;
        self.lines_issued = v.read("lines_issued")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn line_accounting() {
        let t = DmaTransfer::new(0, 0x1000, 256, DmaDirection::ToScratchpad);
        assert_eq!(t.total_lines(), 4);
        let t2 = DmaTransfer::new(0, 0x1000, 8, DmaDirection::ToScratchpad);
        assert_eq!(t2.total_lines(), 1);
    }

    #[test]
    fn load_blocks_until_all_lines_arrive() {
        let mut e = DmaEngine::new();
        e.start(DmaTransfer::new(0, 0x1000, 128, DmaDirection::ToScratchpad));
        assert!(e.blocks_local(0));
        assert!(e.blocks_local(120));
        assert!(!e.blocks_local(128));
        // Issue both lines.
        let (l0, _) = e.next_line().unwrap();
        assert_eq!(l0, line_of(0x1000));
        e.mark_issued();
        let (l1, _) = e.next_line().unwrap();
        assert_eq!(l1, line_of(0x1040));
        e.mark_issued();
        assert!(e.next_line().is_none());
        assert!(e.blocks_local(0), "issued but not arrived");
        e.on_line_arrived(line_of(0x1000));
        assert!(e.blocks_local(0));
        e.on_line_arrived(line_of(0x1040));
        assert!(!e.blocks_local(0));
        assert!(e.all_complete());
    }

    #[test]
    fn store_blocks_only_until_issued() {
        let mut e = DmaEngine::new();
        e.start(DmaTransfer::new(0, 0x1000, 128, DmaDirection::ToGlobal));
        assert!(e.blocks_local(64));
        e.mark_issued();
        e.mark_issued();
        assert!(!e.blocks_local(64));
        assert!(e.all_complete());
    }

    #[test]
    fn transfers_issue_in_order() {
        let mut e = DmaEngine::new();
        e.start(DmaTransfer::new(0, 0x1000, 64, DmaDirection::ToScratchpad));
        e.start(DmaTransfer::new(64, 0x2000, 64, DmaDirection::ToScratchpad));
        assert_eq!(e.next_line().unwrap().0, line_of(0x1000));
        e.mark_issued();
        assert_eq!(e.next_line().unwrap().0, line_of(0x2000));
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn empty_engine_is_complete() {
        let e = DmaEngine::new();
        assert!(e.all_complete());
        assert!(!e.wants_issue());
        assert!(e.next_line().is_none());
        assert!(e.is_empty());
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn unaligned_transfer_panics() {
        DmaTransfer::new(0, 0x1001, 64, DmaDirection::ToScratchpad);
    }

    #[test]
    fn lifetime_counters_survive_reset() {
        let mut e = DmaEngine::new();
        e.start(DmaTransfer::new(0, 0x1000, 128, DmaDirection::ToScratchpad));
        e.mark_issued();
        e.mark_issued();
        e.reset();
        e.start(DmaTransfer::new(0, 0x2000, 64, DmaDirection::ToGlobal));
        e.mark_issued();
        assert_eq!(e.transfers_started(), 2);
        assert_eq!(e.lines_issued(), 3);
    }
}
