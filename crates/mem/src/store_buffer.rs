//! The write-combining store buffer.
//!
//! Tracks pending writes at line granularity with per-word dirty masks,
//! enabling write combining and non-blocking stores for both coherence
//! protocols (Section 5 of the paper). The buffer is flushed when it becomes
//! full, at the end of a kernel, and on a release operation.

use crate::line::{LineAddr, WordMask};

/// A new line could not be recorded: the buffer is out of entries (a "full
/// store buffer" memory structural stall; the caller should trigger a
/// flush).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreBufferFull;

/// A fixed-capacity, FIFO-ordered write-combining buffer.
///
/// ```
/// use gsi_mem::{LineAddr, StoreBuffer, WordMask};
/// let mut sb = StoreBuffer::new(2);
/// assert!(!sb.record(LineAddr(1), WordMask(0b01)).unwrap()); // new entry
/// assert!(sb.record(LineAddr(1), WordMask(0b10)).unwrap());  // combined
/// assert_eq!(sb.pop_oldest(), Some((LineAddr(1), WordMask(0b11))));
/// ```
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    capacity: usize,
    entries: Vec<(LineAddr, WordMask)>,
    peak: usize,
    records: u64,
    combines: u64,
}

impl StoreBuffer {
    /// A buffer with `capacity` line entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store buffer capacity must be nonzero");
        StoreBuffer { capacity, entries: Vec::new(), peak: 0, records: 0, combines: 0 }
    }

    /// Entries in use.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no new line entry can be allocated.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Free entries.
    pub fn available(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when recording `line` would need a new entry.
    pub fn would_allocate(&self, line: LineAddr) -> bool {
        !self.entries.iter().any(|(l, _)| *l == line)
    }

    /// Record dirty words for `line`, combining with an existing entry when
    /// possible. Returns `Ok(true)` when combined, `Ok(false)` for a new
    /// entry.
    ///
    /// # Errors
    ///
    /// Returns [`StoreBufferFull`] when a new entry is needed but the
    /// buffer has no free slot.
    pub fn record(&mut self, line: LineAddr, mask: WordMask) -> Result<bool, StoreBufferFull> {
        if let Some((_, m)) = self.entries.iter_mut().find(|(l, _)| *l == line) {
            *m = m.union(mask);
            self.records += 1;
            self.combines += 1;
            return Ok(true);
        }
        if self.is_full() {
            return Err(StoreBufferFull);
        }
        self.entries.push((line, mask));
        self.records += 1;
        self.peak = self.peak.max(self.entries.len());
        Ok(false)
    }

    /// Highest simultaneous occupancy seen since construction.
    pub fn peak_occupancy(&self) -> usize {
        self.peak
    }

    /// Stores recorded (combined or not).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Stores that combined into an existing line entry.
    pub fn combines(&self) -> u64 {
        self.combines
    }

    /// Remove and return the oldest entry (flush order is FIFO).
    pub fn pop_oldest(&mut self) -> Option<(LineAddr, WordMask)> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0))
        }
    }

    /// Remove a specific line's entry, returning its mask.
    pub fn remove(&mut self, line: LineAddr) -> Option<WordMask> {
        let idx = self.entries.iter().position(|(l, _)| *l == line)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterate over entries in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = &(LineAddr, WordMask)> {
        self.entries.iter()
    }

    /// Serialize entries in FIFO order plus occupancy counters.
    pub fn snapshot(&self) -> gsi_json::Value {
        use gsi_json::{obj, ToJson, Value};
        let entries: Vec<Value> = self
            .entries
            .iter()
            .map(|(line, mask)| Value::Array(vec![line.to_json(), mask.to_json()]))
            .collect();
        obj! {
            "entries" => Value::Array(entries),
            "peak" => self.peak as u64,
            "records" => self.records,
            "combines" => self.combines
        }
    }

    /// Restore onto a freshly constructed buffer of the same capacity.
    pub fn restore(&mut self, v: &gsi_json::Value) -> Result<(), gsi_json::JsonError> {
        use gsi_json::{FromJson, JsonError, Value};
        let entries = match v.req("entries")? {
            Value::Array(entries) => entries,
            other => return Err(JsonError::expected("array", other)),
        };
        if entries.len() > self.capacity {
            return Err(JsonError::new("store-buffer snapshot exceeds capacity"));
        }
        self.entries.clear();
        for entry in entries {
            let fields = match entry {
                Value::Array(f) if f.len() == 2 => f,
                other => return Err(JsonError::expected("[line, mask]", other)),
            };
            self.entries.push((LineAddr::from_json(&fields[0])?, WordMask::from_json(&fields[1])?));
        }
        self.peak = v.read::<u64>("peak")? as usize;
        self.records = v.read("records")?;
        self.combines = v.read("combines")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn combining_does_not_consume_entries() {
        let mut sb = StoreBuffer::new(1);
        sb.record(LineAddr(1), WordMask(0b001)).unwrap();
        sb.record(LineAddr(1), WordMask(0b100)).unwrap();
        assert_eq!(sb.len(), 1);
        assert_eq!(sb.pop_oldest(), Some((LineAddr(1), WordMask(0b101))));
        assert!(sb.is_empty());
    }

    #[test]
    fn full_rejection() {
        let mut sb = StoreBuffer::new(1);
        sb.record(LineAddr(1), WordMask(1)).unwrap();
        assert!(sb.is_full());
        assert_eq!(sb.record(LineAddr(2), WordMask(1)), Err(StoreBufferFull));
        // But combining into the existing line still works at capacity.
        assert_eq!(sb.record(LineAddr(1), WordMask(2)), Ok(true));
    }

    #[test]
    fn fifo_flush_order() {
        let mut sb = StoreBuffer::new(3);
        sb.record(LineAddr(3), WordMask(1)).unwrap();
        sb.record(LineAddr(1), WordMask(1)).unwrap();
        sb.record(LineAddr(2), WordMask(1)).unwrap();
        assert_eq!(sb.pop_oldest().unwrap().0, LineAddr(3));
        assert_eq!(sb.pop_oldest().unwrap().0, LineAddr(1));
        assert_eq!(sb.pop_oldest().unwrap().0, LineAddr(2));
        assert_eq!(sb.pop_oldest(), None);
    }

    #[test]
    fn remove_specific_line() {
        let mut sb = StoreBuffer::new(2);
        sb.record(LineAddr(1), WordMask(1)).unwrap();
        sb.record(LineAddr(2), WordMask(2)).unwrap();
        assert_eq!(sb.remove(LineAddr(1)), Some(WordMask(1)));
        assert_eq!(sb.remove(LineAddr(1)), None);
        assert_eq!(sb.len(), 1);
    }

    #[test]
    fn would_allocate_predicts_record() {
        let mut sb = StoreBuffer::new(1);
        assert!(sb.would_allocate(LineAddr(9)));
        sb.record(LineAddr(9), WordMask(1)).unwrap();
        assert!(!sb.would_allocate(LineAddr(9)));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        StoreBuffer::new(0);
    }

    #[test]
    fn occupancy_counters_track_history() {
        let mut sb = StoreBuffer::new(4);
        sb.record(LineAddr(1), WordMask(1)).unwrap();
        sb.record(LineAddr(2), WordMask(1)).unwrap();
        sb.record(LineAddr(1), WordMask(2)).unwrap();
        sb.pop_oldest();
        sb.pop_oldest();
        sb.record(LineAddr(3), WordMask(1)).unwrap();
        assert_eq!(sb.peak_occupancy(), 2, "peak survives flushes");
        assert_eq!(sb.records(), 4);
        assert_eq!(sb.combines(), 1);
    }
}
