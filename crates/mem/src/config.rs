//! Memory-system configuration (the memory rows of the paper's Table 5.1).

/// Which local-memory structure the SMs use (case study 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalMemKind {
    /// The baseline software-managed scratchpad: data moves with explicit
    /// load/store instructions through the core pipeline.
    Scratchpad,
    /// Scratchpad plus a D2MA-style DMA engine that transfers data in bulk,
    /// bypassing the pipeline and the L1 but consuming MSHR entries.
    ScratchpadDma,
    /// The stash: a coherent, globally-mapped scratchpad that fills on
    /// demand and writes dirty data back lazily.
    Stash,
}

/// Sizing and latency parameters of the memory hierarchy.
///
/// Defaults reproduce Table 5.1: 32 KB 8-way L1 with 8 banks and a 1-cycle
/// hit, 16 KB scratchpad/stash with 32 banks, a 4 MB 16-bank NUCA L2, a
/// 32-entry MSHR, and a 32-entry write-combining store buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Coherence protocol for the GPU L1 caches.
    pub protocol: crate::Protocol,
    /// Local-memory structure.
    pub local_kind: LocalMemKind,

    /// L1 capacity in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// Number of L1 banks (conflicting line accesses serialize).
    pub l1_banks: u32,
    /// L1 hit latency in cycles.
    pub l1_hit_latency: u64,

    /// Miss-status holding registers per core.
    pub mshr_entries: usize,
    /// Write-combining store buffer entries per core.
    pub store_buffer_entries: usize,
    /// Store-buffer lines drained per cycle during a flush.
    pub flush_rate: u32,

    /// Scratchpad/stash capacity in bytes.
    pub scratch_bytes: u64,
    /// Scratchpad/stash banks.
    pub scratch_banks: u32,

    /// Number of L2 banks (one per mesh node).
    pub l2_banks: usize,
    /// Total L2 capacity in bytes across banks.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 bank access latency in cycles (tag + data + directory).
    pub l2_bank_latency: u64,

    /// Owner-L1 access latency for DeNovo remote fills.
    pub remote_l1_latency: u64,

    /// Main-memory access latency in cycles.
    pub dram_latency: u64,
    /// Minimum spacing between main-memory requests (bandwidth model).
    pub dram_gap: u64,

    /// DMA engine transfer rate: lines issued per cycle.
    pub dma_lines_per_cycle: u32,

    /// QuickRelease-style S-FIFO (Section 6.1.4 of the paper): track which
    /// stores were ordered before each release so later memory requests may
    /// keep issuing while the release drains. Eliminates pending-release
    /// structural stalls for the non-releasing warps.
    pub sfifo: bool,
    /// DeNovo owned atomics (the paper's footnote 1 and Section 6.1.4):
    /// atomics acquire line ownership, so repeated atomics from the same SM
    /// are serviced at its L1 instead of the L2.
    pub owned_atomics: bool,
}

gsi_json::json_unit_enum!(LocalMemKind { Scratchpad, ScratchpadDma, Stash });

gsi_json::json_struct!(MemConfig {
    protocol,
    local_kind,
    l1_bytes,
    l1_ways,
    l1_banks,
    l1_hit_latency,
    mshr_entries,
    store_buffer_entries,
    flush_rate,
    scratch_bytes,
    scratch_banks,
    l2_banks,
    l2_bytes,
    l2_ways,
    l2_bank_latency,
    remote_l1_latency,
    dram_latency,
    dram_gap,
    dma_lines_per_cycle,
    sfifo,
    owned_atomics,
});

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            protocol: crate::Protocol::GpuCoherence,
            local_kind: LocalMemKind::Scratchpad,
            l1_bytes: 32 * 1024,
            l1_ways: 8,
            l1_banks: 8,
            l1_hit_latency: 1,
            mshr_entries: 32,
            store_buffer_entries: 32,
            flush_rate: 1,
            scratch_bytes: 16 * 1024,
            scratch_banks: 32,
            l2_banks: 16,
            l2_bytes: 4 * 1024 * 1024,
            l2_ways: 16,
            l2_bank_latency: 18,
            remote_l1_latency: 5,
            dram_latency: 170,
            dram_gap: 4,
            dma_lines_per_cycle: 1,
            sfifo: false,
            owned_atomics: false,
        }
    }
}

impl MemConfig {
    /// Table 5.1 parameters with the given protocol and local-memory kind.
    pub fn paper(protocol: crate::Protocol, local_kind: LocalMemKind) -> Self {
        MemConfig { protocol, local_kind, ..Default::default() }
    }

    /// L1 lines.
    pub fn l1_lines(&self) -> usize {
        (self.l1_bytes / crate::LINE_BYTES) as usize
    }

    /// L1 sets.
    pub fn l1_sets(&self) -> usize {
        self.l1_lines() / self.l1_ways
    }

    /// Lines per L2 bank.
    pub fn l2_lines_per_bank(&self) -> usize {
        (self.l2_bytes / crate::LINE_BYTES) as usize / self.l2_banks
    }

    /// Sets per L2 bank.
    pub fn l2_sets_per_bank(&self) -> usize {
        self.l2_lines_per_bank() / self.l2_ways
    }

    /// Scale the MSHR and store buffer together, as the paper's Figure 6.4
    /// sweep does ("we also scale the store buffer size with the MSHR
    /// size").
    #[must_use]
    pub fn with_mshr(mut self, entries: usize) -> Self {
        self.mshr_entries = entries;
        self.store_buffer_entries = entries;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_5_1() {
        let c = MemConfig::default();
        assert_eq!(c.l1_bytes, 32 * 1024);
        assert_eq!(c.l1_ways, 8);
        assert_eq!(c.l1_banks, 8);
        assert_eq!(c.l1_hit_latency, 1);
        assert_eq!(c.mshr_entries, 32);
        assert_eq!(c.store_buffer_entries, 32);
        assert_eq!(c.scratch_bytes, 16 * 1024);
        assert_eq!(c.scratch_banks, 32);
        assert_eq!(c.l2_banks, 16);
        assert_eq!(c.l2_bytes, 4 * 1024 * 1024);
    }

    #[test]
    fn derived_geometry() {
        let c = MemConfig::default();
        assert_eq!(c.l1_lines(), 512);
        assert_eq!(c.l1_sets(), 64);
        assert_eq!(c.l2_lines_per_bank(), 4096);
        assert_eq!(c.l2_sets_per_bank(), 256);
    }

    #[test]
    fn with_mshr_scales_store_buffer_too() {
        let c = MemConfig::default().with_mshr(256);
        assert_eq!(c.mshr_entries, 256);
        assert_eq!(c.store_buffer_entries, 256);
    }
}
