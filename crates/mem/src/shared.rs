//! The shared side of the hierarchy: NUCA L2 banks (with the DeNovo
//! directory/registry) backed by the main-memory channel.

use crate::config::MemConfig;
use crate::dram::DramModel;
use crate::gmem::GlobalMem;
use crate::hash::FastMap;
use crate::line::LineAddr;
use crate::msg::{MemMsg, Provenance};
use gsi_chaos::ChaosEngine;
use gsi_noc::{Mesh, NodeId};
use gsi_trace::{NullSink, TraceEvent, TraceSink};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Aggregate L2/DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L2Stats {
    /// Read requests that hit in an L2 bank.
    pub read_hits: u64,
    /// Read requests that missed to main memory.
    pub read_misses: u64,
    /// Reads forwarded to a remote L1 owner (DeNovo).
    pub forwards: u64,
    /// Write-through messages processed.
    pub write_throughs: u64,
    /// Ownership registrations granted.
    pub registrations: u64,
    /// Ownership recalls issued.
    pub recalls: u64,
    /// Atomic operations serviced.
    pub atomics: u64,
}

gsi_json::json_struct!(L2Stats {
    read_hits,
    read_misses,
    forwards,
    write_throughs,
    registrations,
    recalls,
    atomics,
});

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RegWaiter {
    reply_to: NodeId,
    core: u8,
}

#[derive(Debug)]
struct L2Bank {
    node: NodeId,
    tags: crate::TagArray<()>,
    /// DeNovo directory: line -> owning core.
    registry: FastMap<LineAddr, u8>,
    /// Reads waiting on a DRAM fetch, merged by line.
    pending_fetch: FastMap<LineAddr, Vec<NodeId>>,
    /// Registrations waiting on an ownership recall.
    pending_reg: FastMap<LineAddr, Vec<RegWaiter>>,
    /// Atomics waiting on an ownership recall (owned-atomics mode).
    pending_atomics: FastMap<LineAddr, Vec<MemMsg>>,
    /// Incoming messages, ready when the bank pipeline reaches them.
    queue: BinaryHeap<Reverse<(u64, u64, MemMsg)>>,
    next_ready: u64,
    seq: u64,
    /// Messages this bank has accepted (hot-spot diagnostics).
    messages: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DramJob {
    bank: usize,
    line: LineAddr,
    is_write: bool,
}

gsi_json::json_struct!(RegWaiter { reply_to, core });
gsi_json::json_struct!(DramJob { bank, line, is_write });

/// The L2 + DRAM complex. One bank per mesh node; lines are interleaved
/// across banks by line address.
#[derive(Debug)]
pub struct SharedMem {
    cfg: MemConfig,
    banks: Vec<L2Bank>,
    dram: DramModel<DramJob>,
    /// Core index -> mesh node, for directory forwards and recalls.
    core_nodes: Vec<NodeId>,
    stats: L2Stats,
    chaos: ChaosEngine,
}

impl SharedMem {
    /// Build the shared memory for `cfg`, with cores living at the given
    /// mesh nodes. Bank `b` lives at mesh node `b`.
    pub fn new(cfg: MemConfig, core_nodes: Vec<NodeId>) -> Self {
        let banks = (0..cfg.l2_banks)
            .map(|b| L2Bank {
                node: NodeId(b as u8),
                tags: crate::TagArray::new(cfg.l2_sets_per_bank(), cfg.l2_ways),
                registry: FastMap::default(),
                pending_fetch: FastMap::default(),
                pending_reg: FastMap::default(),
                pending_atomics: FastMap::default(),
                queue: BinaryHeap::new(),
                next_ready: 0,
                seq: 0,
                messages: 0,
            })
            .collect();
        SharedMem {
            dram: DramModel::new(cfg.dram_latency, cfg.dram_gap),
            banks,
            cfg,
            core_nodes,
            stats: L2Stats::default(),
            chaos: ChaosEngine::disabled(),
        }
    }

    /// Install a fault-injection engine for the DRAM channel. Armed engines
    /// stretch a deterministic subset of bank accesses by bounded jitter.
    pub fn set_chaos(&mut self, chaos: ChaosEngine) {
        self.chaos = chaos;
    }

    /// Fault-injection counters for the shared side.
    pub fn chaos_stats(&self) -> &gsi_chaos::ChaosStats {
        self.chaos.stats()
    }

    /// The bank index servicing a line.
    pub fn bank_of_line(&self, line: LineAddr) -> usize {
        (line.0 as usize) % self.banks.len()
    }

    /// The mesh node of the bank servicing a line (where cores send their
    /// requests).
    pub fn node_of_line(&self, line: LineAddr) -> NodeId {
        self.banks[self.bank_of_line(line)].node
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &L2Stats {
        &self.stats
    }

    /// Whether `core` currently owns `line` in the directory (test/debug).
    pub fn owner_of(&self, line: LineAddr) -> Option<u8> {
        self.banks[self.bank_of_line(line)].registry.get(&line).copied()
    }

    /// True when no work is in flight anywhere on the shared side: all bank
    /// queues empty, no DRAM accesses pending, no fetches or recalls
    /// outstanding.
    pub fn quiescent(&self) -> bool {
        self.dram.in_flight() == 0
            && self.banks.iter().all(|b| {
                b.queue.is_empty()
                    && b.pending_fetch.is_empty()
                    && b.pending_reg.is_empty()
                    && b.pending_atomics.is_empty()
            })
    }

    /// The earliest future cycle at which a tick would do work: the next
    /// DRAM completion or the earliest ready bank-queue entry. `None` when
    /// every bank queue is empty and DRAM is idle (pending fetch/registry/
    /// atomic maps wait on DRAM or the mesh, which the calendar covers
    /// separately).
    pub fn next_wake(&self) -> Option<u64> {
        let bank_ready = self
            .banks
            .iter()
            .filter_map(|b| b.queue.peek().map(|Reverse((ready, _, _))| *ready))
            .min();
        match (self.dram.next_completion(), bank_ready) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Serialize every bank's directory, pending-work maps (sorted by line
    /// for a canonical encoding) and pipeline queue, plus the DRAM channel,
    /// stats, and chaos stream.
    pub fn snapshot(&self) -> gsi_json::Value {
        use gsi_json::{obj, ToJson, Value};
        fn sorted_map<V: ToJson>(map: &FastMap<LineAddr, V>) -> Value {
            let mut lines: Vec<&LineAddr> = map.keys().collect();
            lines.sort();
            Value::Array(
                lines
                    .into_iter()
                    .map(|l| Value::Array(vec![l.to_json(), map[l].to_json()]))
                    .collect(),
            )
        }
        let banks: Vec<Value> = self
            .banks
            .iter()
            .map(|bank| {
                let mut queue: Vec<&(u64, u64, MemMsg)> = bank.queue.iter().map(|r| &r.0).collect();
                queue.sort_by_key(|(ready, seq, _)| (*ready, *seq));
                let queue: Vec<Value> = queue
                    .into_iter()
                    .map(|(ready, seq, msg)| {
                        Value::Array(vec![Value::U64(*ready), Value::U64(*seq), msg.to_json()])
                    })
                    .collect();
                obj! {
                    "tags" => bank.tags.snapshot(),
                    "registry" => sorted_map(&bank.registry),
                    "pending_fetch" => sorted_map(&bank.pending_fetch),
                    "pending_reg" => sorted_map(&bank.pending_reg),
                    "pending_atomics" => sorted_map(&bank.pending_atomics),
                    "queue" => Value::Array(queue),
                    "next_ready" => bank.next_ready,
                    "seq" => bank.seq,
                    "messages" => bank.messages
                }
            })
            .collect();
        obj! {
            "banks" => Value::Array(banks),
            "dram" => self.dram.snapshot(),
            "stats" => self.stats.to_json(),
            "chaos" => self.chaos.snapshot()
        }
    }

    /// Restore onto a freshly constructed shared memory of the same
    /// configuration (and chaos engine, when armed).
    pub fn restore(&mut self, v: &gsi_json::Value) -> Result<(), gsi_json::JsonError> {
        use gsi_json::{FromJson, JsonError, Value};
        fn read_map<V: FromJson>(v: &Value, key: &str) -> Result<FastMap<LineAddr, V>, JsonError> {
            let pairs = match v.req(key)? {
                Value::Array(pairs) => pairs,
                other => return Err(JsonError::expected("array", other)),
            };
            let mut map = FastMap::default();
            for pair in pairs {
                let fields = match pair {
                    Value::Array(f) if f.len() == 2 => f,
                    other => return Err(JsonError::expected("[line, value]", other)),
                };
                map.insert(LineAddr::from_json(&fields[0])?, V::from_json(&fields[1])?);
            }
            Ok(map)
        }
        let banks = match v.req("banks")? {
            Value::Array(banks) => banks,
            other => return Err(JsonError::expected("array", other)),
        };
        if banks.len() != self.banks.len() {
            return Err(JsonError::new("shared-memory snapshot has a different bank count"));
        }
        for (bank, bv) in self.banks.iter_mut().zip(banks) {
            bank.tags.restore(bv.req("tags")?)?;
            bank.registry = read_map(bv, "registry")?;
            bank.pending_fetch = read_map(bv, "pending_fetch")?;
            bank.pending_reg = read_map(bv, "pending_reg")?;
            bank.pending_atomics = read_map(bv, "pending_atomics")?;
            bank.queue.clear();
            let queue = match bv.req("queue")? {
                Value::Array(queue) => queue,
                other => return Err(JsonError::expected("array", other)),
            };
            for entry in queue {
                let fields = match entry {
                    Value::Array(f) if f.len() == 3 => f,
                    other => return Err(JsonError::expected("[ready, seq, msg]", other)),
                };
                bank.queue.push(Reverse((
                    u64::from_json(&fields[0])?,
                    u64::from_json(&fields[1])?,
                    MemMsg::from_json(&fields[2])?,
                )));
            }
            bank.next_ready = bv.read("next_ready")?;
            bank.seq = bv.read("seq")?;
            bank.messages = bv.read("messages")?;
        }
        self.dram.restore(v.req("dram")?)?;
        self.stats = v.read("stats")?;
        self.chaos.restore(v.req("chaos")?)
    }

    /// Accept a message delivered by the mesh to an L2 bank node at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not host an L2 bank.
    pub fn deliver(&mut self, now: u64, node: NodeId, msg: MemMsg) {
        let bank = &mut self.banks[node.0 as usize];
        assert_eq!(bank.node, node, "message delivered to a node without a bank");
        let ready = (now + self.cfg.l2_bank_latency).max(bank.next_ready + 1);
        bank.next_ready = ready;
        bank.queue.push(Reverse((ready, bank.seq, msg)));
        bank.seq += 1;
        bank.messages += 1;
    }

    /// Messages accepted per bank so far — a hot-spot histogram. Skewed
    /// counts (e.g. every atomic landing on one bank) explain bank-queueing
    /// latency that per-category stats alone cannot.
    pub fn per_bank_messages(&self) -> Vec<u64> {
        self.banks.iter().map(|b| b.messages).collect()
    }

    /// Advance the shared memory one cycle: complete DRAM fetches and
    /// process every bank message that is ready.
    pub fn tick(&mut self, now: u64, mesh: &mut Mesh<MemMsg>, gmem: &mut GlobalMem) {
        self.tick_traced(now, mesh, gmem, &mut NullSink);
    }

    /// [`tick`](Self::tick), recording service-point and mesh events into
    /// `sink`.
    pub fn tick_traced<S: TraceSink>(
        &mut self,
        now: u64,
        mesh: &mut Mesh<MemMsg>,
        gmem: &mut GlobalMem,
        sink: &mut S,
    ) {
        // DRAM completions first: fills become visible this cycle.
        for job in self.dram.complete(now) {
            if job.is_write {
                continue;
            }
            let bank = &mut self.banks[job.bank];
            bank.tags.insert(job.line, ());
            if let Some(waiters) = bank.pending_fetch.remove(&job.line) {
                let bank_node = bank.node;
                for reply_to in waiters {
                    if sink.counters_on() {
                        // Cores sit at the mesh node matching their index.
                        sink.record(TraceEvent::ReqService {
                            cycle: now,
                            core: reply_to.0,
                            line: job.line.0,
                            point: Provenance::MainMemory,
                        });
                    }
                    let m = MemMsg::Fill { line: job.line, provenance: Provenance::MainMemory };
                    mesh.send_traced(now, bank_node, reply_to, m.size_bytes(), m, sink);
                }
            }
        }

        for b in 0..self.banks.len() {
            loop {
                let msg = {
                    let bank = &mut self.banks[b];
                    match bank.queue.peek() {
                        Some(Reverse((ready, _, _))) if *ready <= now => {
                            let Reverse((_, _, msg)) = bank.queue.pop().expect("peeked");
                            msg
                        }
                        _ => break,
                    }
                };
                self.handle(now, b, msg, mesh, gmem, sink);
            }
        }
    }

    fn send<S: TraceSink>(
        &self,
        now: u64,
        mesh: &mut Mesh<MemMsg>,
        from: NodeId,
        to: NodeId,
        msg: MemMsg,
        sink: &mut S,
    ) {
        mesh.send_traced(now, from, to, msg.size_bytes(), msg, sink);
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_atomic<S: TraceSink>(
        &mut self,
        now: u64,
        b: usize,
        addr: u64,
        kind: crate::AtomKind,
        a: u64,
        opb: u64,
        req: gsi_core::RequestId,
        reply_to: NodeId,
        mesh: &mut Mesh<MemMsg>,
        gmem: &mut GlobalMem,
        sink: &mut S,
    ) {
        self.stats.atomics += 1;
        let old = gmem.read_word(addr);
        let (new, ret) = kind.apply(old, a, opb);
        gmem.write_word(addr, new);
        let m = MemMsg::AtomicResp { req, value: ret };
        let bank_node = self.banks[b].node;
        self.send(now, mesh, bank_node, reply_to, m, sink);
    }

    fn handle<S: TraceSink>(
        &mut self,
        now: u64,
        b: usize,
        msg: MemMsg,
        mesh: &mut Mesh<MemMsg>,
        gmem: &mut GlobalMem,
        sink: &mut S,
    ) {
        let bank_node = self.banks[b].node;
        match msg {
            MemMsg::GetLine { line, reply_to, core } => {
                // Directory check: remote-owned lines are forwarded to the
                // owner, which responds directly to the requester.
                let owner = self.banks[b].registry.get(&line).copied();
                match owner {
                    Some(o) if o != core => {
                        self.stats.forwards += 1;
                        let fwd = MemMsg::FwdGet { line, reply_to };
                        let owner_node = self.core_nodes[o as usize];
                        self.send(now, mesh, bank_node, owner_node, fwd, sink);
                    }
                    _ => {
                        // Unowned, or owned by the requester itself (a
                        // registration racing with this read): serve from
                        // the L2/memory without disturbing the directory.
                        if self.banks[b].tags.get(line).is_some() {
                            self.stats.read_hits += 1;
                            if sink.counters_on() {
                                sink.record(TraceEvent::ReqService {
                                    cycle: now,
                                    core: reply_to.0,
                                    line: line.0,
                                    point: Provenance::L2,
                                });
                            }
                            let m = MemMsg::Fill { line, provenance: Provenance::L2 };
                            self.send(now, mesh, bank_node, reply_to, m, sink);
                        } else {
                            self.stats.read_misses += 1;
                            let bank = &mut self.banks[b];
                            let waiters = bank.pending_fetch.entry(line).or_default();
                            let first = waiters.is_empty();
                            waiters.push(reply_to);
                            if first {
                                let jitter = self.chaos.dram_extra_latency();
                                self.dram.access_jittered(
                                    now,
                                    jitter,
                                    DramJob { bank: b, line, is_write: false },
                                );
                            }
                        }
                    }
                }
            }
            MemMsg::WriteWords { line, reply_to, .. } => {
                self.stats.write_throughs += 1;
                let hit = self.banks[b].tags.get(line).is_some();
                if !hit {
                    // No-allocate on writes: pass through to main memory
                    // (bandwidth only).
                    let jitter = self.chaos.dram_extra_latency();
                    self.dram.access_jittered(
                        now,
                        jitter,
                        DramJob { bank: b, line, is_write: true },
                    );
                }
                self.send(now, mesh, bank_node, reply_to, MemMsg::WriteAck { line }, sink);
            }
            MemMsg::RegisterOwner { line, reply_to, core } => {
                let owner = self.banks[b].registry.get(&line).copied();
                match owner {
                    Some(o) if o == core => {
                        let ack = MemMsg::RegisterAck { line };
                        self.send(now, mesh, bank_node, reply_to, ack, sink);
                    }
                    Some(o) => {
                        self.stats.recalls += 1;
                        let bank = &mut self.banks[b];
                        let waiters = bank.pending_reg.entry(line).or_default();
                        let first = waiters.is_empty();
                        waiters.push(RegWaiter { reply_to, core });
                        if first {
                            let owner_node = self.core_nodes[o as usize];
                            let recall = MemMsg::Recall { line };
                            self.send(now, mesh, bank_node, owner_node, recall, sink);
                        }
                    }
                    None => {
                        self.stats.registrations += 1;
                        let bank = &mut self.banks[b];
                        bank.registry.insert(line, core);
                        // The freshest copy now lives at the owner.
                        bank.tags.remove(line);
                        let ack = MemMsg::RegisterAck { line };
                        self.send(now, mesh, bank_node, reply_to, ack, sink);
                    }
                }
            }
            MemMsg::OwnerWriteback { line, core } => {
                let bank = &mut self.banks[b];
                if bank.registry.get(&line) == Some(&core) {
                    bank.registry.remove(&line);
                }
                bank.tags.insert(line, ());
                self.dram.access(now, DramJob { bank: b, line, is_write: true });
                // Atomics that were waiting on this recall execute now;
                // ownership migrates to the last requester.
                if let Some(waiting) = self.banks[b].pending_atomics.remove(&line) {
                    for m in waiting {
                        if let MemMsg::AtomicOp { addr, kind, a, b: opb, req, reply_to, core } = m {
                            self.execute_atomic(
                                now, b, addr, kind, a, opb, req, reply_to, mesh, gmem, sink,
                            );
                            let bank = &mut self.banks[b];
                            bank.registry.insert(line, core);
                            bank.tags.remove(line);
                        }
                    }
                }
                // A recall may have been waiting on this writeback: grant
                // ownership to the first waiter; any further waiters must
                // recall from the new owner in turn.
                if let Some(mut waiters) = self.banks[b].pending_reg.remove(&line) {
                    if !waiters.is_empty() {
                        let w = waiters.remove(0);
                        self.stats.registrations += 1;
                        self.banks[b].registry.insert(line, w.core);
                        self.banks[b].tags.remove(line);
                        let ack = MemMsg::RegisterAck { line };
                        self.send(now, mesh, bank_node, w.reply_to, ack, sink);
                        if !waiters.is_empty() {
                            self.stats.recalls += 1;
                            let new_owner_node = self.core_nodes[w.core as usize];
                            self.send(
                                now,
                                mesh,
                                bank_node,
                                new_owner_node,
                                MemMsg::Recall { line },
                                sink,
                            );
                            self.banks[b].pending_reg.insert(line, waiters);
                        }
                    }
                }
            }
            MemMsg::AtomicOp { addr, kind, a, b: opb, req, reply_to, core } => {
                let line = crate::line_of(addr);
                if self.cfg.owned_atomics {
                    match self.banks[b].registry.get(&line).copied() {
                        Some(o) if o != core => {
                            // The line lives at another L1: recall it, then
                            // service the atomic and migrate ownership.
                            let bank = &mut self.banks[b];
                            let first = bank.pending_atomics.get(&line).is_none_or(Vec::is_empty)
                                && bank.pending_reg.get(&line).is_none_or(Vec::is_empty);
                            bank.pending_atomics.entry(line).or_default().push(MemMsg::AtomicOp {
                                addr,
                                kind,
                                a,
                                b: opb,
                                req,
                                reply_to,
                                core,
                            });
                            if first {
                                self.stats.recalls += 1;
                                let owner_node = self.core_nodes[o as usize];
                                self.send(
                                    now,
                                    mesh,
                                    bank_node,
                                    owner_node,
                                    MemMsg::Recall { line },
                                    sink,
                                );
                            }
                        }
                        _ => {
                            // Unowned (or a stale self-entry): execute here
                            // and grant the requester ownership so its later
                            // atomics hit locally.
                            self.execute_atomic(
                                now, b, addr, kind, a, opb, req, reply_to, mesh, gmem, sink,
                            );
                            let bank = &mut self.banks[b];
                            bank.registry.insert(line, core);
                            bank.tags.remove(line);
                        }
                    }
                } else {
                    self.execute_atomic(
                        now, b, addr, kind, a, opb, req, reply_to, mesh, gmem, sink,
                    );
                }
            }
            other => unreachable!("L2 bank received a response message: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsi_core::RequestId;
    use gsi_noc::MeshConfig;

    fn setup() -> (SharedMem, Mesh<MemMsg>, GlobalMem) {
        let cfg = MemConfig::default();
        let core_nodes: Vec<NodeId> = (0..15).map(NodeId).collect();
        (SharedMem::new(cfg, core_nodes), Mesh::new(MeshConfig::default()), GlobalMem::new())
    }

    /// Run ticks until `cycles` have elapsed, returning all messages
    /// delivered to `watch`.
    fn run(
        shared: &mut SharedMem,
        mesh: &mut Mesh<MemMsg>,
        gmem: &mut GlobalMem,
        cycles: u64,
        watch: NodeId,
    ) -> Vec<(u64, MemMsg)> {
        let mut out = Vec::new();
        for now in 0..cycles {
            for (node, msg) in mesh.deliver(now) {
                if node == watch {
                    out.push((now, msg));
                } else {
                    shared.deliver(now, node, msg);
                }
            }
            shared.tick(now, mesh, gmem);
        }
        out
    }

    #[test]
    fn bank_interleaving() {
        let (s, _, _) = setup();
        assert_eq!(s.bank_of_line(LineAddr(0)), 0);
        assert_eq!(s.bank_of_line(LineAddr(17)), 1);
        assert_eq!(s.node_of_line(LineAddr(5)), NodeId(5));
    }

    #[test]
    fn cold_read_goes_to_dram_then_hits_in_l2() {
        let (mut s, mut mesh, mut gmem) = setup();
        let line = LineAddr(32); // bank 0
        let requester = NodeId(3);
        s.deliver(0, NodeId(0), MemMsg::GetLine { line, reply_to: requester, core: 3 });
        let got = run(&mut s, &mut mesh, &mut gmem, 400, requester);
        assert_eq!(got.len(), 1);
        let (t1, m1) = got[0];
        assert!(matches!(m1, MemMsg::Fill { provenance: Provenance::MainMemory, .. }), "{m1:?}");
        assert!(t1 >= s.cfg.dram_latency, "first fill must pay DRAM latency");

        // Second read: L2 hit, much faster.
        s.deliver(400, NodeId(0), MemMsg::GetLine { line, reply_to: requester, core: 3 });
        let mut got2 = Vec::new();
        for now in 400..500 {
            for (node, msg) in mesh.deliver(now) {
                if node == requester {
                    got2.push((now, msg));
                } else {
                    s.deliver(now, node, msg);
                }
            }
            s.tick(now, &mut mesh, &mut gmem);
        }
        assert_eq!(got2.len(), 1);
        let (t2, m2) = got2[0];
        assert!(matches!(m2, MemMsg::Fill { provenance: Provenance::L2, .. }), "{m2:?}");
        assert!(t2 - 400 < t1, "L2 hit must be faster than DRAM");
        assert_eq!(s.stats().read_hits, 1);
        assert_eq!(s.stats().read_misses, 1);
    }

    #[test]
    fn concurrent_reads_of_same_line_merge_at_dram() {
        let (mut s, mut mesh, mut gmem) = setup();
        let line = LineAddr(16);
        s.deliver(0, NodeId(0), MemMsg::GetLine { line, reply_to: NodeId(1), core: 1 });
        s.deliver(0, NodeId(0), MemMsg::GetLine { line, reply_to: NodeId(2), core: 2 });
        for now in 0..400 {
            for (node, msg) in mesh.deliver(now) {
                if node.0 >= 1 && node.0 <= 2 {
                    continue;
                }
                s.deliver(now, node, msg);
            }
            s.tick(now, &mut mesh, &mut gmem);
        }
        assert_eq!(s.dram.requests, 1, "merged fetch");
    }

    #[test]
    fn registration_and_forwarding() {
        let (mut s, mut mesh, mut gmem) = setup();
        let line = LineAddr(48); // bank 0
                                 // Core 2 registers ownership.
        s.deliver(0, NodeId(0), MemMsg::RegisterOwner { line, reply_to: NodeId(2), core: 2 });
        let acks = run(&mut s, &mut mesh, &mut gmem, 100, NodeId(2));
        assert!(matches!(acks[0].1, MemMsg::RegisterAck { .. }));
        assert_eq!(s.owner_of(line), Some(2));

        // Core 5 reads: the bank must forward to core 2's node.
        s.deliver(100, NodeId(0), MemMsg::GetLine { line, reply_to: NodeId(5), core: 5 });
        let mut fwd = Vec::new();
        for now in 100..200 {
            for (node, msg) in mesh.deliver(now) {
                if node == NodeId(2) {
                    fwd.push(msg);
                } else if node.0 < 16 && !matches!(msg, MemMsg::Fill { .. }) {
                    s.deliver(now, node, msg);
                }
            }
            s.tick(now, &mut mesh, &mut gmem);
        }
        assert!(
            fwd.iter().any(|m| matches!(m, MemMsg::FwdGet { reply_to: NodeId(5), .. })),
            "{fwd:?}"
        );
        assert_eq!(s.stats().forwards, 1);
    }

    #[test]
    fn recall_transfers_ownership() {
        let (mut s, mut mesh, mut gmem) = setup();
        let line = LineAddr(64); // bank 0
        s.deliver(0, NodeId(0), MemMsg::RegisterOwner { line, reply_to: NodeId(1), core: 1 });
        run(&mut s, &mut mesh, &mut gmem, 100, NodeId(1));
        // Core 3 wants ownership: bank recalls from core 1.
        s.deliver(100, NodeId(0), MemMsg::RegisterOwner { line, reply_to: NodeId(3), core: 3 });
        let mut recall_seen = false;
        let mut ack3 = false;
        for now in 100..600 {
            for (node, msg) in mesh.deliver(now) {
                match (node, msg) {
                    (NodeId(1), MemMsg::Recall { line: l }) => {
                        recall_seen = true;
                        // Owner responds with a writeback.
                        let wb = MemMsg::OwnerWriteback { line: l, core: 1 };
                        mesh.send(now, NodeId(1), NodeId(0), wb.size_bytes(), wb);
                    }
                    (NodeId(3), MemMsg::RegisterAck { .. }) => ack3 = true,
                    (n, m)
                        if n.0 < 16
                            && !matches!(
                                m,
                                MemMsg::Fill { .. }
                                    | MemMsg::RegisterAck { .. }
                                    | MemMsg::WriteAck { .. }
                                    | MemMsg::AtomicResp { .. }
                            ) =>
                    {
                        s.deliver(now, n, m);
                    }
                    _ => {}
                }
            }
            s.tick(now, &mut mesh, &mut gmem);
        }
        assert!(recall_seen, "recall must reach the old owner");
        assert!(ack3, "new owner must be acked after the writeback");
        assert_eq!(s.owner_of(line), Some(3));
    }

    #[test]
    fn atomics_rmw_functional_memory_in_order() {
        let (mut s, mut mesh, mut gmem) = setup();
        let addr = 0u64; // line 0, bank 0
                         // Two CAS(0 -> 1): only the first may win.
        for core in [1u8, 2u8] {
            s.deliver(
                0,
                NodeId(0),
                MemMsg::AtomicOp {
                    addr,
                    kind: crate::AtomKind::Cas,
                    a: 0,
                    b: 1,
                    req: RequestId(core as u64),
                    reply_to: NodeId(core),
                    core,
                },
            );
        }
        let mut responses = Vec::new();
        for now in 0..200 {
            for (node, msg) in mesh.deliver(now) {
                if let MemMsg::AtomicResp { req, value } = msg {
                    responses.push((node, req, value));
                } else {
                    s.deliver(now, node, msg);
                }
            }
            s.tick(now, &mut mesh, &mut gmem);
        }
        assert_eq!(responses.len(), 2);
        let winners: Vec<_> = responses.iter().filter(|(_, _, v)| *v == 0).collect();
        assert_eq!(winners.len(), 1, "exactly one CAS wins: {responses:?}");
        assert_eq!(gmem.read_word(addr), 1);
        assert_eq!(s.stats().atomics, 2);
    }

    #[test]
    fn per_bank_histogram_tracks_hot_spots() {
        let (mut s, _, _) = setup();
        // Five messages to bank 0, one to bank 3.
        for i in 0..5 {
            s.deliver(
                i,
                NodeId(0),
                MemMsg::GetLine { line: LineAddr(16), reply_to: NodeId(1), core: 1 },
            );
        }
        s.deliver(
            9,
            NodeId(3),
            MemMsg::GetLine { line: LineAddr(3), reply_to: NodeId(1), core: 1 },
        );
        let hist = s.per_bank_messages();
        assert_eq!(hist[0], 5);
        assert_eq!(hist[3], 1);
        assert_eq!(hist.iter().sum::<u64>(), 6);
    }

    #[test]
    fn write_through_is_acked() {
        let (mut s, mut mesh, mut gmem) = setup();
        let line = LineAddr(80);
        s.deliver(
            0,
            NodeId(0),
            MemMsg::WriteWords { line, mask: crate::WordMask::FULL, reply_to: NodeId(4) },
        );
        let got = run(&mut s, &mut mesh, &mut gmem, 100, NodeId(4));
        assert!(matches!(got[0].1, MemMsg::WriteAck { .. }));
        assert_eq!(s.stats().write_throughs, 1);
    }
}
