//! The stash: a coherent, globally mapped scratchpad (Komuravelli et al.,
//! summarized in Section 6.2.1 of the GSI paper).
//!
//! A stash mapping associates a local byte range with a global byte range.
//! The first access to a mapped word generates a global request through the
//! stash map (bypassing the L1); once the data returns the word is valid and
//! all later accesses hit locally. Dirty words are lazily written back at
//! kernel end when the mapping requests it. Because the stash is part of
//! the coherent global address space, functional reads and writes go
//! straight to global memory via the translation.

use crate::hash::FastSet;
use crate::line::{line_of, LineAddr, WordMask, LINE_BYTES};

/// One local-to-global range mapping installed by `stash.map`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StashMapping {
    /// Local byte offset the range starts at.
    pub local: u64,
    /// Global byte address the range maps to.
    pub global: u64,
    /// Range length in bytes.
    pub bytes: u64,
    /// Whether dirty data is written back at kernel end.
    pub writeback: bool,
}

impl StashMapping {
    /// Translate a local byte address covered by this mapping.
    fn translate(&self, local: u64) -> Option<u64> {
        if local >= self.local && local < self.local + self.bytes {
            Some(self.global + (local - self.local))
        } else {
            None
        }
    }

    /// Translate a global byte address back to local space.
    fn reverse(&self, global: u64) -> Option<u64> {
        if global >= self.global && global < self.global + self.bytes {
            Some(self.local + (global - self.global))
        } else {
            None
        }
    }
}

impl gsi_json::ToJson for StashMapping {
    fn to_json(&self) -> gsi_json::Value {
        gsi_json::obj! {
            "local" => self.local,
            "global" => self.global,
            "bytes" => self.bytes,
            "writeback" => self.writeback
        }
    }
}

impl gsi_json::FromJson for StashMapping {
    fn from_json(v: &gsi_json::Value) -> Result<Self, gsi_json::JsonError> {
        Ok(StashMapping {
            local: v.read("local")?,
            global: v.read("global")?,
            bytes: v.read("bytes")?,
            writeback: v.read("writeback")?,
        })
    }
}

/// The stash state for one SM: mappings plus per-word valid/dirty bits.
#[derive(Debug, Clone, Default)]
pub struct StashMem {
    mappings: Vec<StashMapping>,
    /// Local word-aligned byte addresses whose data is present.
    valid: FastSet<u64>,
    /// Local word-aligned byte addresses written since fill.
    dirty: FastSet<u64>,
}

impl StashMem {
    /// An empty stash with no mappings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a mapping.
    ///
    /// # Panics
    ///
    /// Panics if the mapping is not word-aligned.
    pub fn map(&mut self, m: StashMapping) {
        assert_eq!(m.local % 8, 0, "stash mapping local offset must be word-aligned");
        assert_eq!(m.global % 8, 0, "stash mapping global address must be word-aligned");
        assert_eq!(m.bytes % 8, 0, "stash mapping length must be word-aligned");
        self.mappings.push(m);
    }

    /// Number of installed mappings.
    pub fn mapping_count(&self) -> usize {
        self.mappings.len()
    }

    /// Translate a local byte address to its global address, if mapped.
    pub fn translate(&self, local: u64) -> Option<u64> {
        self.mappings.iter().find_map(|m| m.translate(local))
    }

    /// Whether the word at `local` holds valid data (no fill needed).
    pub fn word_valid(&self, local: u64) -> bool {
        self.valid.contains(&(local & !7))
    }

    /// Mark the word at `local` valid (e.g. fully overwritten by a store).
    pub fn mark_valid(&mut self, local: u64) {
        self.valid.insert(local & !7);
    }

    /// Mark the word at `local` dirty (and valid).
    pub fn mark_dirty(&mut self, local: u64) {
        let w = local & !7;
        self.valid.insert(w);
        self.dirty.insert(w);
    }

    /// A global line fill arrived: mark every mapped local word of that
    /// global line valid. Returns how many words became valid.
    pub fn fill_global_line(&mut self, line: LineAddr) -> u32 {
        let base = line.base();
        let mut n = 0;
        for off in (0..LINE_BYTES).step_by(8) {
            let global = base + off;
            for m in &self.mappings {
                if let Some(local) = m.reverse(global) {
                    if self.valid.insert(local) {
                        n += 1;
                    }
                }
            }
        }
        n
    }

    /// The global lines (with word masks) that must be written back at
    /// kernel end: dirty words of writeback mappings.
    pub fn writeback_set(&self) -> Vec<(LineAddr, WordMask)> {
        let mut out: Vec<(LineAddr, WordMask)> = Vec::new();
        let mut dirty: Vec<u64> = self.dirty.iter().copied().collect();
        dirty.sort_unstable();
        for local in dirty {
            let Some(global) =
                self.mappings.iter().filter(|m| m.writeback).find_map(|m| m.translate(local))
            else {
                continue;
            };
            let line = line_of(global);
            match out.iter_mut().find(|(l, _)| *l == line) {
                Some((_, mask)) => mask.set_addr(global),
                None => out.push((line, WordMask::of_addr(global))),
            }
        }
        out
    }

    /// Remove every mapping overlapping the local range
    /// `[local, local + bytes)`, returning the lazy-writeback set (global
    /// lines and dirty-word masks) of the removed mappings. Valid and dirty
    /// bits in the range are cleared.
    ///
    /// This models stash reuse: when a new thread block maps its chunk over
    /// a slot a finished block used, the old block's dirty data must be
    /// written back before the region is recycled.
    pub fn unmap_overlapping(&mut self, local: u64, bytes: u64) -> Vec<(LineAddr, WordMask)> {
        let overlaps = |m: &StashMapping| m.local < local + bytes && local < m.local + m.bytes;
        let removed: Vec<StashMapping> =
            self.mappings.iter().copied().filter(|m| overlaps(m)).collect();
        if removed.is_empty() {
            return Vec::new();
        }
        // Writeback set of the removed mappings only.
        let mut out: Vec<(LineAddr, WordMask)> = Vec::new();
        let mut dirty: Vec<u64> = self.dirty.iter().copied().collect();
        dirty.sort_unstable();
        for local_word in dirty {
            let Some(global) =
                removed.iter().filter(|m| m.writeback).find_map(|m| m.translate(local_word))
            else {
                continue;
            };
            let line = line_of(global);
            match out.iter_mut().find(|(l, _)| *l == line) {
                Some((_, mask)) => mask.set_addr(global),
                None => out.push((line, WordMask::of_addr(global))),
            }
        }
        // Clear word state covered by the removed mappings.
        let covered = |w: u64| removed.iter().any(|m| w >= m.local && w < m.local + m.bytes);
        self.valid.retain(|&w| !covered(w));
        self.dirty.retain(|&w| !covered(w));
        self.mappings.retain(|m| !overlaps(m));
        out
    }

    /// Drop all mappings and word state (kernel end, after writeback).
    pub fn reset(&mut self) {
        self.mappings.clear();
        self.valid.clear();
        self.dirty.clear();
    }

    /// Count of valid words (diagnostic).
    pub fn valid_words(&self) -> usize {
        self.valid.len()
    }

    /// Count of dirty words (diagnostic).
    pub fn dirty_words(&self) -> usize {
        self.dirty.len()
    }

    /// Serialize mappings (installation order matters for translation) plus
    /// valid/dirty word sets (sorted for a canonical encoding).
    pub fn snapshot(&self) -> gsi_json::Value {
        use gsi_json::ToJson;
        let mut valid: Vec<u64> = self.valid.iter().copied().collect();
        valid.sort_unstable();
        let mut dirty: Vec<u64> = self.dirty.iter().copied().collect();
        dirty.sort_unstable();
        gsi_json::obj! {
            "mappings" => self.mappings.to_json(),
            "valid" => valid.to_json(),
            "dirty" => dirty.to_json()
        }
    }

    /// Restore onto a fresh stash.
    pub fn restore(&mut self, v: &gsi_json::Value) -> Result<(), gsi_json::JsonError> {
        self.mappings = v.read("mappings")?;
        self.valid = v.read::<Vec<u64>>("valid")?.into_iter().collect();
        self.dirty = v.read::<Vec<u64>>("dirty")?.into_iter().collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapped() -> StashMem {
        let mut s = StashMem::new();
        s.map(StashMapping { local: 0, global: 0x1000, bytes: 256, writeback: true });
        s
    }

    #[test]
    fn translation_within_and_outside_range() {
        let s = mapped();
        assert_eq!(s.translate(0), Some(0x1000));
        assert_eq!(s.translate(248), Some(0x10F8));
        assert_eq!(s.translate(256), None);
        assert_eq!(s.mapping_count(), 1);
    }

    #[test]
    fn first_touch_is_invalid_then_fill_validates() {
        let mut s = mapped();
        assert!(!s.word_valid(0));
        // Global line 0x1000/64 = line 64 covers locals 0..64.
        let n = s.fill_global_line(line_of(0x1000));
        assert_eq!(n, 8);
        assert!(s.word_valid(0));
        assert!(s.word_valid(56));
        assert!(!s.word_valid(64));
    }

    #[test]
    fn stores_mark_dirty_and_valid() {
        let mut s = mapped();
        s.mark_dirty(16);
        assert!(s.word_valid(16));
        assert_eq!(s.dirty_words(), 1);
    }

    #[test]
    fn writeback_set_groups_by_global_line() {
        let mut s = mapped();
        s.mark_dirty(0);
        s.mark_dirty(8);
        s.mark_dirty(64); // next global line
        let wb = s.writeback_set();
        assert_eq!(wb.len(), 2);
        assert_eq!(wb[0].0, line_of(0x1000));
        assert_eq!(wb[0].1.count(), 2);
        assert_eq!(wb[1].0, line_of(0x1040));
    }

    #[test]
    fn non_writeback_mappings_are_skipped() {
        let mut s = StashMem::new();
        s.map(StashMapping { local: 0, global: 0x2000, bytes: 64, writeback: false });
        s.mark_dirty(0);
        assert!(s.writeback_set().is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = mapped();
        s.mark_dirty(0);
        s.reset();
        assert_eq!(s.mapping_count(), 0);
        assert_eq!(s.valid_words(), 0);
        assert_eq!(s.dirty_words(), 0);
    }

    #[test]
    fn unaligned_word_addresses_round_down() {
        let mut s = mapped();
        s.mark_valid(13);
        assert!(s.word_valid(8));
        assert!(s.word_valid(15));
        assert!(!s.word_valid(16));
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn unaligned_mapping_panics() {
        StashMem::new().map(StashMapping { local: 4, global: 0, bytes: 64, writeback: true });
    }
}
