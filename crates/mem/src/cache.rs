//! A set-associative, LRU tag array. Timing-only: no data is stored.

use crate::line::LineAddr;

/// A line evicted by [`TagArray::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted<S> {
    /// The evicted line.
    pub line: LineAddr,
    /// Its state at eviction.
    pub state: S,
}

#[derive(Debug, Clone)]
struct Entry<S> {
    line: LineAddr,
    state: S,
    lru: u64,
}

/// A set-associative tag array with true-LRU replacement, generic over the
/// per-line coherence state `S`.
///
/// ```
/// use gsi_mem::{LineAddr, TagArray};
/// let mut c: TagArray<()> = TagArray::new(2, 2); // 2 sets x 2 ways
/// assert!(c.insert(LineAddr(0), ()).is_none());
/// assert!(c.insert(LineAddr(2), ()).is_none()); // same set (2 % 2 == 0)
/// let evicted = c.insert(LineAddr(4), ()).unwrap(); // set full: LRU out
/// assert_eq!(evicted.line, LineAddr(0));
/// ```
#[derive(Debug, Clone)]
pub struct TagArray<S> {
    sets: usize,
    ways: usize,
    entries: Vec<Vec<Entry<S>>>,
    stamp: u64,
}

impl<S> TagArray<S> {
    /// Create a tag array with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "cache geometry must be nonzero");
        TagArray { sets, ways, entries: (0..sets).map(|_| Vec::new()).collect(), stamp: 0 }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.0 as usize) % self.sets
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.entries.iter().map(Vec::len).sum()
    }

    /// True when no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity in lines.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Look up a line without updating LRU state.
    pub fn peek(&self, line: LineAddr) -> Option<&S> {
        let set = self.set_of(line);
        self.entries[set].iter().find(|e| e.line == line).map(|e| &e.state)
    }

    /// Look up a line, updating LRU state on hit.
    pub fn get(&mut self, line: LineAddr) -> Option<&mut S> {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_of(line);
        self.entries[set].iter_mut().find(|e| e.line == line).map(|e| {
            e.lru = stamp;
            &mut e.state
        })
    }

    /// Install (or update) a line, evicting the LRU way if the set is full.
    /// Returns the evicted line, if any.
    pub fn insert(&mut self, line: LineAddr, state: S) -> Option<Evicted<S>> {
        self.stamp += 1;
        let stamp = self.stamp;
        let ways = self.ways;
        let set = self.set_of(line);
        let set_entries = &mut self.entries[set];
        if let Some(e) = set_entries.iter_mut().find(|e| e.line == line) {
            e.state = state;
            e.lru = stamp;
            return None;
        }
        let evicted = if set_entries.len() == ways {
            let (idx, _) =
                set_entries.iter().enumerate().min_by_key(|(_, e)| e.lru).expect("nonempty set");
            let old = set_entries.swap_remove(idx);
            Some(Evicted { line: old.line, state: old.state })
        } else {
            None
        };
        set_entries.push(Entry { line, state, lru: stamp });
        evicted
    }

    /// Remove a line, returning its state.
    pub fn remove(&mut self, line: LineAddr) -> Option<S> {
        let set = self.set_of(line);
        let set_entries = &mut self.entries[set];
        let idx = set_entries.iter().position(|e| e.line == line)?;
        Some(set_entries.swap_remove(idx).state)
    }

    /// Keep only lines for which `f` returns true (used for acquire
    /// self-invalidation).
    pub fn retain(&mut self, mut f: impl FnMut(LineAddr, &S) -> bool) {
        for set in &mut self.entries {
            set.retain(|e| f(e.line, &e.state));
        }
    }

    /// Iterate over `(line, state)` of every resident line.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &S)> {
        self.entries.iter().flatten().map(|e| (e.line, &e.state))
    }
}

impl<S: gsi_json::ToJson> TagArray<S> {
    /// Serialize resident lines, per-way order and LRU stamps included, so a
    /// restored array evicts in exactly the same order.
    pub fn snapshot(&self) -> gsi_json::Value {
        use gsi_json::{obj, ToJson, Value};
        let sets: Vec<Value> = self
            .entries
            .iter()
            .map(|set| {
                Value::Array(
                    set.iter()
                        .map(|e| {
                            Value::Array(vec![
                                e.line.to_json(),
                                Value::U64(e.lru),
                                e.state.to_json(),
                            ])
                        })
                        .collect(),
                )
            })
            .collect();
        obj! { "stamp" => self.stamp, "sets" => Value::Array(sets) }
    }
}

impl<S: gsi_json::FromJson> TagArray<S> {
    /// Restore onto a freshly constructed array of the same geometry.
    pub fn restore(&mut self, v: &gsi_json::Value) -> Result<(), gsi_json::JsonError> {
        use gsi_json::{FromJson, JsonError, Value};
        let stamp: u64 = v.read("stamp")?;
        let sets = match v.req("sets")? {
            Value::Array(sets) => sets,
            other => return Err(JsonError::expected("array", other)),
        };
        if sets.len() != self.sets {
            return Err(JsonError::new("tag-array snapshot has a different geometry"));
        }
        let mut entries: Vec<Vec<Entry<S>>> = Vec::with_capacity(self.sets);
        for set in sets {
            let ways = match set {
                Value::Array(ways) => ways,
                other => return Err(JsonError::expected("array", other)),
            };
            if ways.len() > self.ways {
                return Err(JsonError::new("tag-array snapshot has a different geometry"));
            }
            let mut parsed = Vec::with_capacity(ways.len());
            for way in ways {
                let fields = match way {
                    Value::Array(f) if f.len() == 3 => f,
                    other => return Err(JsonError::expected("[line, lru, state]", other)),
                };
                parsed.push(Entry {
                    line: LineAddr::from_json(&fields[0])?,
                    lru: u64::from_json(&fields[1])?,
                    state: S::from_json(&fields[2])?,
                });
            }
            entries.push(parsed);
        }
        self.entries = entries;
        self.stamp = stamp;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn hit_miss_and_capacity() {
        let mut c: TagArray<u32> = TagArray::new(4, 2);
        assert!(c.is_empty());
        assert!(c.insert(LineAddr(0), 10).is_none());
        assert_eq!(c.peek(LineAddr(0)), Some(&10));
        assert_eq!(c.peek(LineAddr(4)), None);
        assert_eq!(c.capacity(), 8);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c: TagArray<u32> = TagArray::new(1, 2);
        c.insert(LineAddr(0), 0);
        c.insert(LineAddr(1), 1);
        // Touch line 0 so line 1 becomes LRU.
        assert!(c.get(LineAddr(0)).is_some());
        let ev = c.insert(LineAddr(2), 2).unwrap();
        assert_eq!(ev.line, LineAddr(1));
        assert_eq!(ev.state, 1);
        assert!(c.peek(LineAddr(0)).is_some());
    }

    #[test]
    fn peek_does_not_disturb_lru() {
        let mut c: TagArray<u32> = TagArray::new(1, 2);
        c.insert(LineAddr(0), 0);
        c.insert(LineAddr(1), 1);
        // Peek at 0 (no LRU update): 0 is still LRU and must be evicted.
        assert!(c.peek(LineAddr(0)).is_some());
        let ev = c.insert(LineAddr(2), 2).unwrap();
        assert_eq!(ev.line, LineAddr(0));
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c: TagArray<u32> = TagArray::new(1, 1);
        c.insert(LineAddr(0), 1);
        assert!(c.insert(LineAddr(0), 2).is_none());
        assert_eq!(c.peek(LineAddr(0)), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_and_retain() {
        let mut c: TagArray<u32> = TagArray::new(2, 2);
        c.insert(LineAddr(0), 0);
        c.insert(LineAddr(1), 1);
        c.insert(LineAddr(2), 2);
        assert_eq!(c.remove(LineAddr(1)), Some(1));
        assert_eq!(c.remove(LineAddr(1)), None);
        c.retain(|_, &s| s > 0);
        assert_eq!(c.len(), 1);
        assert!(c.peek(LineAddr(2)).is_some());
    }

    #[test]
    fn get_mut_allows_state_transitions() {
        let mut c: TagArray<u32> = TagArray::new(1, 1);
        c.insert(LineAddr(0), 1);
        *c.get(LineAddr(0)).unwrap() = 9;
        assert_eq!(c.peek(LineAddr(0)), Some(&9));
    }

    #[test]
    fn sets_isolate_lines() {
        let mut c: TagArray<u32> = TagArray::new(2, 1);
        assert!(c.insert(LineAddr(0), 0).is_none());
        assert!(c.insert(LineAddr(1), 1).is_none()); // different set
        let ev = c.insert(LineAddr(2), 2).unwrap(); // conflicts with 0
        assert_eq!(ev.line, LineAddr(0));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_geometry_panics() {
        let _: TagArray<()> = TagArray::new(0, 1);
    }
}
