//! The functional global memory: the single source of data values.

use crate::hash::FastMap;

/// A sparse, word-granular functional memory for the unified global address
/// space shared by the CPU and GPU.
///
/// All addresses are byte addresses and must be 8-byte aligned; unwritten
/// words read as zero.
///
/// ```
/// use gsi_mem::GlobalMem;
/// let mut m = GlobalMem::new();
/// m.write_word(0x100, 42);
/// assert_eq!(m.read_word(0x100), 42);
/// assert_eq!(m.read_word(0x108), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GlobalMem {
    words: FastMap<u64, u64>,
}

impl GlobalMem {
    /// An empty memory (all zeros).
    pub fn new() -> Self {
        Self::default()
    }

    /// Read the 64-bit word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn read_word(&self, addr: u64) -> u64 {
        assert_eq!(addr % 8, 0, "unaligned read at {addr:#x}");
        self.words.get(&addr).copied().unwrap_or(0)
    }

    /// Write the 64-bit word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn write_word(&mut self, addr: u64, value: u64) {
        assert_eq!(addr % 8, 0, "unaligned write at {addr:#x}");
        if value == 0 {
            self.words.remove(&addr);
        } else {
            self.words.insert(addr, value);
        }
    }

    /// Number of nonzero words currently stored.
    pub fn nonzero_words(&self) -> usize {
        self.words.len()
    }

    /// Serialize nonzero words as sorted `[addr, value]` pairs. The
    /// zero-removing write policy makes this encoding canonical: equal
    /// memories always produce byte-identical snapshots.
    pub fn snapshot(&self) -> gsi_json::Value {
        use gsi_json::Value;
        let mut pairs: Vec<(u64, u64)> = self.words.iter().map(|(&a, &v)| (a, v)).collect();
        pairs.sort_unstable();
        Value::Array(
            pairs
                .into_iter()
                .map(|(a, v)| Value::Array(vec![Value::U64(a), Value::U64(v)]))
                .collect(),
        )
    }

    /// Restore onto a fresh memory.
    pub fn restore(&mut self, v: &gsi_json::Value) -> Result<(), gsi_json::JsonError> {
        use gsi_json::{FromJson, JsonError, Value};
        let pairs = match v {
            Value::Array(pairs) => pairs,
            other => return Err(JsonError::expected("array", other)),
        };
        self.words.clear();
        for pair in pairs {
            let fields = match pair {
                Value::Array(f) if f.len() == 2 => f,
                other => return Err(JsonError::expected("[addr, value]", other)),
            };
            self.words.insert(u64::from_json(&fields[0])?, u64::from_json(&fields[1])?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        assert_eq!(GlobalMem::new().read_word(0), 0);
    }

    #[test]
    fn write_then_read() {
        let mut m = GlobalMem::new();
        m.write_word(8, 7);
        m.write_word(16, u64::MAX);
        assert_eq!(m.read_word(8), 7);
        assert_eq!(m.read_word(16), u64::MAX);
        assert_eq!(m.nonzero_words(), 2);
    }

    #[test]
    fn writing_zero_reclaims_storage() {
        let mut m = GlobalMem::new();
        m.write_word(8, 7);
        m.write_word(8, 0);
        assert_eq!(m.read_word(8), 0);
        assert_eq!(m.nonzero_words(), 0);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_read_panics() {
        GlobalMem::new().read_word(3);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_write_panics() {
        GlobalMem::new().write_word(5, 1);
    }
}
