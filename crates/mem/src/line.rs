//! Cache-line addressing helpers.

use std::fmt;

/// Bytes per cache line throughout the hierarchy.
pub const LINE_BYTES: u64 = 64;

/// 64-bit words per cache line.
pub const WORDS_PER_LINE: u64 = LINE_BYTES / 8;

/// A line-granular address (byte address divided by [`LINE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Byte address of the first byte of the line.
    pub fn base(self) -> u64 {
        self.0 * LINE_BYTES
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line@{:#x}", self.base())
    }
}

impl gsi_json::ToJson for LineAddr {
    fn to_json(&self) -> gsi_json::Value {
        gsi_json::Value::U64(self.0)
    }
}

impl gsi_json::FromJson for LineAddr {
    fn from_json(v: &gsi_json::Value) -> Result<Self, gsi_json::JsonError> {
        u64::from_json(v).map(LineAddr)
    }
}

/// The line containing a byte address.
#[inline]
pub fn line_of(addr: u64) -> LineAddr {
    LineAddr(addr / LINE_BYTES)
}

/// The word slot (0..[`WORDS_PER_LINE`]) of a byte address within its line.
#[inline]
pub fn word_index(addr: u64) -> u32 {
    ((addr % LINE_BYTES) / 8) as u32
}

/// A bitmask of dirty/valid 64-bit words within one line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WordMask(pub u8);

impl WordMask {
    /// The empty mask.
    pub const EMPTY: WordMask = WordMask(0);
    /// All words set.
    pub const FULL: WordMask = WordMask(0xff);

    /// Mask with only the word containing `addr` set.
    pub fn of_addr(addr: u64) -> WordMask {
        WordMask(1 << word_index(addr))
    }

    /// Set the word containing `addr`.
    pub fn set_addr(&mut self, addr: u64) {
        self.0 |= 1 << word_index(addr);
    }

    /// True if the word containing `addr` is set.
    pub fn contains_addr(self, addr: u64) -> bool {
        self.0 & (1 << word_index(addr)) != 0
    }

    /// Union with another mask.
    pub fn union(self, other: WordMask) -> WordMask {
        WordMask(self.0 | other.0)
    }

    /// Number of words set.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True when no word is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate over byte addresses of set words, given the owning line.
    pub fn addrs(self, line: LineAddr) -> impl Iterator<Item = u64> {
        let base = line.base();
        (0..WORDS_PER_LINE as u32)
            .filter(move |i| self.0 & (1 << i) != 0)
            .map(move |i| base + u64::from(i) * 8)
    }
}

impl gsi_json::ToJson for WordMask {
    fn to_json(&self) -> gsi_json::Value {
        gsi_json::Value::U64(u64::from(self.0))
    }
}

impl gsi_json::FromJson for WordMask {
    fn from_json(v: &gsi_json::Value) -> Result<Self, gsi_json::JsonError> {
        u8::from_json(v).map(WordMask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_word_decomposition() {
        assert_eq!(line_of(0), LineAddr(0));
        assert_eq!(line_of(63), LineAddr(0));
        assert_eq!(line_of(64), LineAddr(1));
        assert_eq!(word_index(0), 0);
        assert_eq!(word_index(8), 1);
        assert_eq!(word_index(63), 7);
        assert_eq!(word_index(64), 0);
        assert_eq!(LineAddr(2).base(), 128);
    }

    #[test]
    fn word_mask_ops() {
        let mut m = WordMask::EMPTY;
        assert!(m.is_empty());
        m.set_addr(8);
        m.set_addr(24);
        assert_eq!(m.count(), 2);
        assert!(m.contains_addr(8));
        assert!(m.contains_addr(11)); // same word as 8
        assert!(!m.contains_addr(0));
        let u = m.union(WordMask::of_addr(0));
        assert_eq!(u.count(), 3);
        assert_eq!(WordMask::FULL.count(), 8);
    }

    #[test]
    fn mask_addrs_iterates_set_words() {
        let mut m = WordMask::EMPTY;
        m.set_addr(64);
        m.set_addr(80);
        let addrs: Vec<u64> = m.addrs(LineAddr(1)).collect();
        assert_eq!(addrs, vec![64, 80]);
    }
}
