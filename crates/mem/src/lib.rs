//! # gsi-mem — the tightly coupled CPU-GPU memory hierarchy
//!
//! This crate models the memory system of the GSI paper's simulated machine
//! (Table 5.1): per-core private L1 caches with MSHRs and write-combining
//! store buffers, a banked NUCA L2 shared by every core, a main-memory
//! channel, and the three local-memory structures of case study 2
//! (scratchpad, scratchpad+DMA, and stash). Two coherence protocols are
//! implemented:
//!
//! * **GPU coherence** — the conventional software protocol of modern GPUs:
//!   reader-initiated invalidation (acquires self-invalidate the whole L1),
//!   write-through of dirty data via the store buffer, and atomics serviced
//!   at the L2.
//! * **DeNovo** — the hybrid hardware-software protocol of Sinclair et al.:
//!   stores obtain *ownership* by registering at the L2; owned lines survive
//!   acquires, need no re-registration on later flushes, and are supplied to
//!   remote readers by forwarding through the L2 directory (the source of
//!   the paper's "remote L1" stall sub-category).
//!
//! ## Timing vs. function
//!
//! The hierarchy is a *timing* model: caches hold tags and states, never
//! data. Functional values live in a single [`GlobalMem`]; plain loads and
//! stores access it at issue in the SM, while atomics perform their
//! read-modify-write at the L2 bank when serviced, so contended
//! compare-and-swap races resolve in simulated-time order. This split is
//! correct for the data-race-free programs the paper studies.
//!
//! The per-core façade is [`CoreMemUnit`]; the shared side is [`SharedMem`].
//! Both are driven once per GPU cycle and exchange [`MemMsg`]s over a
//! [`gsi_noc::Mesh`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod core_unit;
mod dma;
mod dram;
mod gmem;
mod hash;
mod line;
mod msg;
mod mshr;
mod protocol;
mod scratchpad;
mod shared;
mod stash;
mod store_buffer;

pub use cache::{Evicted, TagArray};
pub use config::{LocalMemKind, MemConfig};
pub use core_unit::{
    Completion, CoreMemStats, CoreMemUnit, LoadIssued, LsuReject, MIN_QUEUE_ENTRIES,
};
pub use dma::{DmaDirection, DmaEngine, DmaTransfer};
pub use dram::DramModel;
pub use gmem::GlobalMem;
pub use hash::{FastHasher, FastMap, FastSet};
pub use line::{line_of, word_index, LineAddr, WordMask, LINE_BYTES, WORDS_PER_LINE};
pub use msg::{AtomKind, MemMsg, Provenance};
pub use mshr::{Mshr, MshrOutcome};
pub use protocol::{L1State, Protocol};
pub use scratchpad::Scratchpad;
pub use shared::{L2Stats, SharedMem};
pub use stash::{StashMapping, StashMem};
pub use store_buffer::{StoreBuffer, StoreBufferFull};
