//! The per-SM memory unit: L1 cache, MSHRs, write-combining store buffer,
//! scratchpad/stash, and DMA engine, behind the load/store-unit interface
//! the SM issue stage talks to.
//!
//! Every `try_*` method either accepts the access (performing all timing
//! side effects) or rejects it with an [`LsuReject`] naming the structural
//! hazard — exactly the sub-causes of the paper's memory structural stalls.

use crate::config::{LocalMemKind, MemConfig};
use crate::dma::{DmaDirection, DmaEngine, DmaTransfer};
use crate::gmem::GlobalMem;
use crate::hash::{FastMap, FastSet};
use crate::line::{line_of, LineAddr, WordMask};
use crate::msg::{AtomKind, MemMsg, Provenance};
use crate::mshr::{Mshr, MshrOutcome};
use crate::protocol::{L1State, Protocol};
use crate::scratchpad::{bank_conflict_extra, Scratchpad};
use crate::stash::{StashMapping, StashMem};
use crate::store_buffer::{StoreBuffer, StoreBufferFull};
use crate::TagArray;
use gsi_chaos::ChaosEngine;
use gsi_core::{MemStructCause, RequestId};
use gsi_noc::NodeId;
use gsi_trace::{NullSink, TraceEvent, TraceSink};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Why the load/store unit rejected an access this cycle.
///
/// Maps one-to-one onto [`MemStructCause`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LsuReject {
    /// No free MSHR entry for a required line fetch.
    MshrFull,
    /// No free store-buffer entry for a written line.
    StoreBufferFull,
    /// The LSU is serializing a previous access's bank conflicts.
    BankConflict,
    /// A release is draining prior stores.
    PendingRelease,
    /// The access touches data covered by an incomplete DMA transfer.
    PendingDma,
}

impl LsuReject {
    /// The memory-structural stall sub-cause this rejection is booked as.
    pub fn cause(self) -> MemStructCause {
        match self {
            LsuReject::MshrFull => MemStructCause::MshrFull,
            LsuReject::StoreBufferFull => MemStructCause::StoreBufferFull,
            LsuReject::BankConflict => MemStructCause::BankConflict,
            LsuReject::PendingRelease => MemStructCause::PendingRelease,
            LsuReject::PendingDma => MemStructCause::PendingDma,
        }
    }
}

/// An accepted load: the outstanding request tokens the scoreboard must
/// wait on (one per line touched, including L1 hits, which complete after
/// the hit latency).
#[derive(Debug, Clone)]
pub struct LoadIssued {
    /// Request tokens; the destination register stays pending until every
    /// one completes.
    pub reqs: Vec<RequestId>,
}

/// A completed memory operation, handed back to the SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// One line of a load finished.
    Load {
        /// The request token from [`LoadIssued`].
        req: RequestId,
        /// Issuing warp.
        warp: u16,
        /// Destination register.
        reg: u8,
        /// Where the data was serviced (the paper's memory-data stall
        /// sub-classification).
        provenance: Provenance,
    },
    /// An atomic finished.
    Atomic {
        /// The request token returned by `try_atomic`.
        req: RequestId,
        /// Issuing warp.
        warp: u16,
        /// Destination register for the old value.
        reg: u8,
        /// The value returned by the operation.
        value: u64,
        /// Whether the atomic carried acquire semantics (the L1 has already
        /// been self-invalidated).
        acquire: bool,
        /// Whether the atomic carried release semantics.
        release: bool,
        /// Whether the destination register should receive `value`
        /// (false for atomic stores, which have no result).
        write_dst: bool,
    },
}

impl gsi_json::ToJson for Completion {
    fn to_json(&self) -> gsi_json::Value {
        use gsi_json::obj;
        match *self {
            Completion::Load { req, warp, reg, provenance } => obj! {
                "t" => "Load", "req" => req, "warp" => warp, "reg" => reg,
                "provenance" => provenance
            },
            Completion::Atomic { req, warp, reg, value, acquire, release, write_dst } => obj! {
                "t" => "Atomic", "req" => req, "warp" => warp, "reg" => reg, "value" => value,
                "acquire" => acquire, "release" => release, "write_dst" => write_dst
            },
        }
    }
}

impl gsi_json::FromJson for Completion {
    fn from_json(v: &gsi_json::Value) -> Result<Self, gsi_json::JsonError> {
        let tag: String = v.read("t")?;
        Ok(match tag.as_str() {
            "Load" => Completion::Load {
                req: v.read("req")?,
                warp: v.read("warp")?,
                reg: v.read("reg")?,
                provenance: v.read("provenance")?,
            },
            "Atomic" => Completion::Atomic {
                req: v.read("req")?,
                warp: v.read("warp")?,
                reg: v.read("reg")?,
                value: v.read("value")?,
                acquire: v.read("acquire")?,
                release: v.read("release")?,
                write_dst: v.read("write_dst")?,
            },
            other => {
                return Err(gsi_json::JsonError::new(format!(
                    "unknown Completion variant `{other}`"
                )))
            }
        })
    }
}

#[derive(Debug, Clone, Copy)]
enum TargetKind {
    /// A register load through the L1.
    Load { warp: u16, reg: u8, req: RequestId },
    /// A stash on-demand fill (also completes a register load).
    Stash { warp: u16, reg: u8, req: RequestId },
    /// A DMA engine line fetch.
    Dma,
}

impl gsi_json::ToJson for TargetKind {
    fn to_json(&self) -> gsi_json::Value {
        use gsi_json::obj;
        match *self {
            TargetKind::Load { warp, reg, req } => {
                obj! { "t" => "Load", "warp" => warp, "reg" => reg, "req" => req }
            }
            TargetKind::Stash { warp, reg, req } => {
                obj! { "t" => "Stash", "warp" => warp, "reg" => reg, "req" => req }
            }
            TargetKind::Dma => obj! { "t" => "Dma" },
        }
    }
}

impl gsi_json::FromJson for TargetKind {
    fn from_json(v: &gsi_json::Value) -> Result<Self, gsi_json::JsonError> {
        let tag: String = v.read("t")?;
        Ok(match tag.as_str() {
            "Load" => {
                TargetKind::Load { warp: v.read("warp")?, reg: v.read("reg")?, req: v.read("req")? }
            }
            "Stash" => TargetKind::Stash {
                warp: v.read("warp")?,
                reg: v.read("reg")?,
                req: v.read("req")?,
            },
            "Dma" => TargetKind::Dma,
            other => {
                return Err(gsi_json::JsonError::new(format!(
                    "unknown TargetKind variant `{other}`"
                )))
            }
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct MshrTarget {
    kind: TargetKind,
    primary: bool,
}

gsi_json::json_struct!(MshrTarget { kind, primary });

#[derive(Debug, Clone, Copy)]
struct AtomCtx {
    warp: u16,
    reg: u8,
    addr: u64,
    acquire: bool,
    release: bool,
    write_dst: bool,
}

gsi_json::json_struct!(AtomCtx { warp, reg, addr, acquire, release, write_dst });

/// Statistics for one core's memory unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreMemStats {
    /// L1 load hits (line granularity).
    pub l1_hits: u64,
    /// L1 load misses sent to the hierarchy.
    pub l1_misses: u64,
    /// Loads merged into in-flight MSHR entries.
    pub l1_coalesced: u64,
    /// Store-buffer write combines.
    pub sb_combines: u64,
    /// Lines written through on flushes (GPU coherence / stash writeback).
    pub flush_writes: u64,
    /// Lines registered for ownership on flushes (DeNovo).
    pub flush_registrations: u64,
    /// Flush lines skipped because the line was already owned (DeNovo).
    pub flush_owned_skips: u64,
    /// Acquire self-invalidations performed.
    pub acquire_invalidations: u64,
    /// Lines invalidated by acquires.
    pub lines_invalidated: u64,
    /// DMA lines issued.
    pub dma_lines: u64,
    /// Stash on-demand fills.
    pub stash_fills: u64,
    /// Stash hits (valid-word accesses).
    pub stash_hits: u64,
    /// Remote-L1 fills served for other cores (DeNovo forwarding).
    pub remote_serves: u64,
    /// Atomics serviced locally at the owning L1 (owned-atomics mode).
    pub owned_atomic_hits: u64,
}

gsi_json::json_struct!(CoreMemStats {
    l1_hits,
    l1_misses,
    l1_coalesced,
    sb_combines,
    flush_writes,
    flush_registrations,
    flush_owned_skips,
    acquire_invalidations,
    lines_invalidated,
    dma_lines,
    stash_fills,
    stash_hits,
    remote_serves,
    owned_atomic_hits,
});

#[derive(Debug, Clone, PartialEq, Eq)]
struct Scheduled(Completion);

impl Ord for Scheduled {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The memory unit of one SM.
#[derive(Debug)]
pub struct CoreMemUnit {
    core: u8,
    node: NodeId,
    cfg: MemConfig,
    l1: TagArray<L1State>,
    mshr: Mshr<MshrTarget>,
    sb: StoreBuffer,
    /// Kernel-end stash writeback queue, drained after the store buffer.
    endflush: Vec<(LineAddr, WordMask)>,
    scratch: Scratchpad,
    stash: StashMem,
    dma: DmaEngine,
    req_counter: u64,
    lsu_free_at: u64,
    lsu_busy_cause: MemStructCause,
    flushing: bool,
    release_flush: bool,
    pending_wracks: FastMap<LineAddr, u32>,
    pending_regs: FastMap<LineAddr, u32>,
    /// S-FIFO watermark: the lines ordered before the pending release.
    sfifo_pending: FastSet<LineAddr>,
    /// Posted releases (S-FIFO): each waits for its own watermark to drain
    /// before the release operation is sent to the L2.
    deferred_releases: Vec<(FastSet<LineAddr>, MemMsg)>,
    outstanding_atomics: FastMap<RequestId, AtomCtx>,
    local_done: BinaryHeap<Reverse<(u64, u64, Scheduled)>>,
    sched_seq: u64,
    completions: Vec<Completion>,
    outbox: Vec<(NodeId, MemMsg)>,
    delayed_out: BinaryHeap<Reverse<(u64, u64, NodeId, MemMsg)>>,
    stats: CoreMemStats,
    chaos: ChaosEngine,
    /// Scratch for the per-access line plan (sorted, deduplicated touched
    /// lines). A blocked warp replays its access every cycle until the LSU
    /// accepts it, so the plan must not allocate per attempt.
    line_plan: Vec<LineAddr>,
    /// Scratch for the per-store (line, word-mask) plan, same lifetime.
    store_plan: Vec<(LineAddr, WordMask)>,
}

/// The most lines one warp access can touch: 32 lanes x 8-byte words over
/// 64-byte lines. MSHRs and store buffers smaller than this could never
/// accept a fully strided warp access and would deadlock the replay loop.
pub const MIN_QUEUE_ENTRIES: usize = 4;

impl CoreMemUnit {
    /// Create the memory unit for core `core` living at mesh node `node`.
    ///
    /// # Panics
    ///
    /// Panics if the MSHR or store buffer has fewer than
    /// [`MIN_QUEUE_ENTRIES`] entries (a fully strided warp access would
    /// never fit and the issue replay would livelock).
    pub fn new(core: u8, node: NodeId, cfg: MemConfig) -> Self {
        assert!(
            cfg.mshr_entries >= MIN_QUEUE_ENTRIES,
            "MSHR must hold at least one full warp access ({MIN_QUEUE_ENTRIES} lines)"
        );
        assert!(
            cfg.store_buffer_entries >= MIN_QUEUE_ENTRIES,
            "store buffer must hold at least one full warp access ({MIN_QUEUE_ENTRIES} lines)"
        );
        CoreMemUnit {
            core,
            node,
            l1: TagArray::new(cfg.l1_sets(), cfg.l1_ways),
            mshr: Mshr::new(cfg.mshr_entries),
            sb: StoreBuffer::new(cfg.store_buffer_entries),
            endflush: Vec::new(),
            scratch: Scratchpad::new(cfg.scratch_bytes, cfg.scratch_banks),
            stash: StashMem::new(),
            dma: DmaEngine::new(),
            req_counter: 0,
            lsu_free_at: 0,
            lsu_busy_cause: MemStructCause::BankConflict,
            flushing: false,
            release_flush: false,
            pending_wracks: FastMap::default(),
            pending_regs: FastMap::default(),
            sfifo_pending: FastSet::default(),
            deferred_releases: Vec::new(),
            outstanding_atomics: FastMap::default(),
            local_done: BinaryHeap::new(),
            sched_seq: 0,
            completions: Vec::new(),
            outbox: Vec::new(),
            delayed_out: BinaryHeap::new(),
            stats: CoreMemStats::default(),
            chaos: ChaosEngine::disabled(),
            line_plan: Vec::new(),
            store_plan: Vec::new(),
            cfg,
        }
    }

    /// The configuration this unit was built with.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CoreMemStats {
        &self.stats
    }

    /// Install a fault-injection engine for this core's memory unit. Armed
    /// engines transiently reject MSHR allocations, pause store-buffer
    /// drains, and drop DMA bursts — always through the existing replay
    /// paths, so stall accounting stays conserved.
    pub fn set_chaos(&mut self, chaos: ChaosEngine) {
        self.chaos = chaos;
    }

    /// Fault-injection counters for this unit.
    pub fn chaos_stats(&self) -> &gsi_chaos::ChaosStats {
        self.chaos.stats()
    }

    // ------------------------------------------------------------------
    // Progress diagnostics (read by the simulator's forward-progress
    // watchdog; not on the hot path)
    // ------------------------------------------------------------------

    /// MSHR entries currently allocated.
    pub fn mshr_occupancy(&self) -> usize {
        self.mshr.len()
    }

    /// Total MSHR entries.
    pub fn mshr_capacity(&self) -> usize {
        self.mshr.capacity()
    }

    /// Store-buffer entries currently occupied.
    pub fn store_buffer_occupancy(&self) -> usize {
        self.sb.len()
    }

    /// Total store-buffer entries.
    pub fn store_buffer_capacity(&self) -> usize {
        self.sb.capacity()
    }

    /// Kernel-end stash writebacks still queued behind the store buffer.
    pub fn endflush_backlog(&self) -> usize {
        self.endflush.len()
    }

    /// True while the flush engine is draining.
    pub fn is_flushing(&self) -> bool {
        self.flushing
    }

    /// Atomics issued but not yet serviced by the L2.
    pub fn outstanding_atomic_count(&self) -> usize {
        self.outstanding_atomics.len()
    }

    /// True if the DMA engine still has lines to issue or await.
    pub fn dma_busy(&self) -> bool {
        !self.dma.all_complete()
    }

    fn alloc_req(&mut self) -> RequestId {
        self.req_counter += 1;
        RequestId((u64::from(self.core) << 48) | self.req_counter)
    }

    fn l2_node(&self, line: LineAddr) -> NodeId {
        NodeId((line.0 % self.cfg.l2_banks as u64) as u8)
    }

    fn schedule(&mut self, ready: u64, c: Completion) {
        self.local_done.push(Reverse((ready, self.sched_seq, Scheduled(c))));
        self.sched_seq += 1;
    }

    fn lsu_check(&self, now: u64) -> Result<(), LsuReject> {
        if now < self.lsu_free_at {
            Err(match self.lsu_busy_cause {
                MemStructCause::BankConflict => LsuReject::BankConflict,
                MemStructCause::MshrFull => LsuReject::MshrFull,
                MemStructCause::StoreBufferFull => LsuReject::StoreBufferFull,
                MemStructCause::PendingRelease => LsuReject::PendingRelease,
                MemStructCause::PendingDma => LsuReject::PendingDma,
            })
        } else {
            Ok(())
        }
    }

    fn occupy_lsu(&mut self, now: u64, extra: u64) {
        self.lsu_free_at = now + 1 + extra;
        if extra > 0 {
            self.lsu_busy_cause = MemStructCause::BankConflict;
        }
    }

    fn l1_bank_extra<'a>(&self, lines: impl Iterator<Item = &'a LineAddr>) -> u64 {
        bank_conflict_extra(lines.map(|l| (l.0 % u64::from(self.cfg.l1_banks), l.0)))
    }

    fn install_l1(&mut self, line: LineAddr, state: L1State) {
        // Upgrades win: never downgrade an Owned line to Valid.
        if let Some(s) = self.l1.get(line) {
            if *s == L1State::Owned && state == L1State::Valid {
                return;
            }
        }
        if let Some(evicted) = self.l1.insert(line, state) {
            if evicted.state == L1State::Owned {
                let msg = MemMsg::OwnerWriteback { line: evicted.line, core: self.core };
                let node = self.l2_node(evicted.line);
                self.outbox.push((node, msg));
            }
        }
    }

    // ------------------------------------------------------------------
    // LSU entry points (called by the SM at issue)
    // ------------------------------------------------------------------

    /// Issue a global load for the given per-lane byte addresses.
    ///
    /// # Errors
    ///
    /// Rejects with the structural hazard preventing issue; the SM replays
    /// the instruction next cycle.
    pub fn try_global_load(
        &mut self,
        now: u64,
        warp: u16,
        reg: u8,
        addrs: &[u64],
    ) -> Result<LoadIssued, LsuReject> {
        self.try_global_load_traced(now, warp, reg, addrs, &mut NullSink)
    }

    /// [`try_global_load`](Self::try_global_load) recording request-lifetime
    /// events: a [`TraceEvent::ReqIssue`] per line (with its merge status),
    /// a [`TraceEvent::ReqMshr`] per MSHR allocation, and an immediate
    /// [`TraceEvent::ReqFill`] for L1 hits (which complete locally after the
    /// hit latency).
    pub fn try_global_load_traced<S: TraceSink>(
        &mut self,
        now: u64,
        warp: u16,
        reg: u8,
        addrs: &[u64],
        sink: &mut S,
    ) -> Result<LoadIssued, LsuReject> {
        self.lsu_check(now)?;
        // Chaos: a transiently "stuck" MSHR bounces the access through the
        // same structural-hazard path a genuinely full MSHR takes, so the
        // SM replays next cycle and the stall books as MshrFull.
        if self.chaos.stall_mshr() {
            self.lsu_busy_cause = MemStructCause::MshrFull;
            return Err(LsuReject::MshrFull);
        }
        // The plan visits lines in ascending address order (the order the
        // old `BTreeSet` plan iterated), so request ids and outbox messages
        // are assigned identically — but a sorted scratch `Vec` costs no
        // allocation on the replay path.
        let mut lines = std::mem::take(&mut self.line_plan);
        lines.clear();
        lines.extend(addrs.iter().map(|&a| line_of(a)));
        if !lines.is_sorted() {
            lines.sort_unstable();
        }
        lines.dedup();
        // Plan: every line that misses L1 and has no in-flight fetch needs a
        // free MSHR entry. The count stops as soon as the free entries are
        // overcommitted, so a warp replaying against a saturated MSHR pays a
        // probe or two rather than a full scan.
        let available = self.mshr.available();
        let mut new_misses = 0usize;
        for &l in &lines {
            if self.l1.peek(l).is_none() && !self.mshr.contains(l) {
                new_misses += 1;
                if new_misses > available {
                    self.lsu_busy_cause = MemStructCause::MshrFull;
                    self.line_plan = lines;
                    return Err(LsuReject::MshrFull);
                }
            }
        }
        // Commit.
        let mut reqs = Vec::with_capacity(lines.len());
        for &line in &lines {
            let req = self.alloc_req();
            reqs.push(req);
            if self.l1.get(line).is_some() {
                self.stats.l1_hits += 1;
                let done = now + self.cfg.l1_hit_latency;
                self.schedule(
                    done,
                    Completion::Load { req, warp, reg, provenance: Provenance::L1 },
                );
                if sink.counters_on() {
                    sink.record(TraceEvent::ReqIssue {
                        cycle: now,
                        sm: self.core,
                        req,
                        line: line.0,
                        merged: false,
                    });
                    sink.record(TraceEvent::ReqFill {
                        cycle: done,
                        sm: self.core,
                        req,
                        line: line.0,
                        point: Provenance::L1,
                    });
                }
            } else {
                let primary = !self.mshr.contains(line);
                let target = MshrTarget { kind: TargetKind::Load { warp, reg, req }, primary };
                match self.mshr.allocate(line, target) {
                    Ok(MshrOutcome::Primary) => {
                        self.stats.l1_misses += 1;
                        let msg = MemMsg::GetLine { line, reply_to: self.node, core: self.core };
                        self.outbox.push((self.l2_node(line), msg));
                    }
                    Ok(MshrOutcome::Merged) => self.stats.l1_coalesced += 1,
                    Err(_) => unreachable!("capacity was checked in the plan phase"),
                }
                if sink.counters_on() {
                    sink.record(TraceEvent::ReqIssue {
                        cycle: now,
                        sm: self.core,
                        req,
                        line: line.0,
                        merged: !primary,
                    });
                    sink.record(TraceEvent::ReqMshr {
                        cycle: now,
                        sm: self.core,
                        line: line.0,
                        primary,
                    });
                }
            }
        }
        let extra = self.l1_bank_extra(lines.iter());
        self.occupy_lsu(now, extra);
        self.line_plan = lines;
        Ok(LoadIssued { reqs })
    }

    /// Issue a global store for the given per-lane byte addresses. Stores
    /// are non-blocking once buffered; the caller commits functional values
    /// itself.
    ///
    /// # Errors
    ///
    /// Rejects when a release flush is draining ([`LsuReject::PendingRelease`])
    /// or the store buffer is out of entries ([`LsuReject::StoreBufferFull`],
    /// which also triggers a capacity flush).
    pub fn try_global_store(&mut self, now: u64, addrs: &[u64]) -> Result<(), LsuReject> {
        self.try_global_store_traced(now, addrs, &mut NullSink)
    }

    /// [`try_global_store`](Self::try_global_store) recording a
    /// [`TraceEvent::StoreRecord`] per buffered line.
    pub fn try_global_store_traced<S: TraceSink>(
        &mut self,
        now: u64,
        addrs: &[u64],
        sink: &mut S,
    ) -> Result<(), LsuReject> {
        self.lsu_check(now)?;
        if self.release_flush && !self.cfg.sfifo {
            return Err(LsuReject::PendingRelease);
        }
        // Group lanes by touched line, ascending (the order the old
        // `BTreeMap` plan iterated), without allocating on the replay path.
        // One warp touches few lines, so the linear merge probe is cheap.
        let mut per_line = std::mem::take(&mut self.store_plan);
        per_line.clear();
        for &a in addrs {
            let l = line_of(a);
            match per_line.iter_mut().find(|(pl, _)| *pl == l) {
                Some((_, m)) => m.set_addr(a),
                None => {
                    let mut m = WordMask::default();
                    m.set_addr(a);
                    per_line.push((l, m));
                }
            }
        }
        per_line.sort_unstable_by_key(|&(l, _)| l);
        let needed = per_line.iter().filter(|&&(l, _)| self.sb.would_allocate(l)).count();
        if self.sb.available() < needed {
            // The paper's store buffer is flushed when it becomes full.
            self.begin_flush(false);
            self.lsu_busy_cause = MemStructCause::StoreBufferFull;
            self.store_plan = per_line;
            return Err(LsuReject::StoreBufferFull);
        }
        for &(line, mask) in &per_line {
            match self.sb.record(line, mask) {
                Ok(combined) => {
                    if combined {
                        self.stats.sb_combines += 1;
                    }
                    if sink.counters_on() {
                        sink.record(TraceEvent::StoreRecord {
                            cycle: now,
                            sm: self.core,
                            line: line.0,
                            combined,
                        });
                    }
                }
                Err(StoreBufferFull) => unreachable!("capacity was checked in the plan phase"),
            }
        }
        let extra = self.l1_bank_extra(per_line.iter().map(|(l, _)| l));
        self.occupy_lsu(now, extra);
        self.store_plan = per_line;
        Ok(())
    }

    /// Issue a local (scratchpad or stash) load.
    ///
    /// # Errors
    ///
    /// Rejects on pending DMA (scratchpad+DMA), full MSHR (stash on-demand
    /// fills), or LSU serialization.
    pub fn try_local_load(
        &mut self,
        now: u64,
        warp: u16,
        reg: u8,
        addrs: &[u64],
    ) -> Result<LoadIssued, LsuReject> {
        self.try_local_load_traced(now, warp, reg, addrs, &mut NullSink)
    }

    /// [`try_local_load`](Self::try_local_load) recording a
    /// [`TraceEvent::ScratchAccess`] (scratchpad) or
    /// [`TraceEvent::StashAccess`] (stash, with its hit/miss split).
    pub fn try_local_load_traced<S: TraceSink>(
        &mut self,
        now: u64,
        warp: u16,
        reg: u8,
        addrs: &[u64],
        sink: &mut S,
    ) -> Result<LoadIssued, LsuReject> {
        self.lsu_check(now)?;
        match self.cfg.local_kind {
            LocalMemKind::Scratchpad | LocalMemKind::ScratchpadDma => {
                if self.cfg.local_kind == LocalMemKind::ScratchpadDma
                    && addrs.iter().any(|&a| self.dma.blocks_local(a))
                {
                    self.lsu_busy_cause = MemStructCause::PendingDma;
                    return Err(LsuReject::PendingDma);
                }
                let req = self.alloc_req();
                let extra = self.scratch.conflict_extra_cycles(addrs);
                self.occupy_lsu(now, extra);
                self.schedule(
                    now + self.cfg.l1_hit_latency + extra,
                    Completion::Load { req, warp, reg, provenance: Provenance::L1 },
                );
                if sink.counters_on() {
                    sink.record(TraceEvent::ScratchAccess {
                        cycle: now,
                        sm: self.core,
                        store: false,
                    });
                }
                Ok(LoadIssued { reqs: vec![req] })
            }
            LocalMemKind::Stash => self.try_stash_load(now, warp, reg, addrs, sink),
        }
    }

    fn try_stash_load<S: TraceSink>(
        &mut self,
        now: u64,
        warp: u16,
        reg: u8,
        addrs: &[u64],
        sink: &mut S,
    ) -> Result<LoadIssued, LsuReject> {
        // Split words into stash hits and on-demand misses (by global line,
        // ascending — the order the old `BTreeSet` plan iterated). The
        // scratch plan avoids allocating on the per-cycle replay path.
        let mut miss_lines = std::mem::take(&mut self.line_plan);
        miss_lines.clear();
        let mut hit_words = 0usize;
        for &a in addrs {
            // One translation per word: unmapped words and valid mapped
            // words are stash hits; only invalid mapped words need a fill.
            match self.stash.translate(a) {
                Some(global) if !self.stash.word_valid(a) => miss_lines.push(line_of(global)),
                _ => hit_words += 1,
            }
        }
        if !miss_lines.is_sorted() {
            miss_lines.sort_unstable();
        }
        miss_lines.dedup();
        let any_hit = hit_words > 0;
        let available = self.mshr.available();
        let mut new_misses = 0usize;
        for &l in &miss_lines {
            if !self.mshr.contains(l) {
                new_misses += 1;
                if new_misses > available {
                    self.lsu_busy_cause = MemStructCause::MshrFull;
                    self.line_plan = miss_lines;
                    return Err(LsuReject::MshrFull);
                }
            }
        }
        if sink.counters_on() {
            sink.record(TraceEvent::StashAccess {
                cycle: now,
                sm: self.core,
                hit_words: hit_words.min(u8::MAX as usize) as u8,
                miss_lines: miss_lines.len().min(u8::MAX as usize) as u8,
            });
        }
        let mut reqs = Vec::new();
        if any_hit {
            self.stats.stash_hits += 1;
            let req = self.alloc_req();
            reqs.push(req);
            let extra = self.scratch.conflict_extra_cycles(addrs);
            self.occupy_lsu(now, extra);
            self.schedule(
                now + self.cfg.l1_hit_latency + extra,
                Completion::Load { req, warp, reg, provenance: Provenance::L1 },
            );
        } else {
            self.occupy_lsu(now, 0);
        }
        for &line in &miss_lines {
            self.stats.stash_fills += 1;
            let req = self.alloc_req();
            reqs.push(req);
            let primary = !self.mshr.contains(line);
            let target = MshrTarget { kind: TargetKind::Stash { warp, reg, req }, primary };
            match self.mshr.allocate(line, target) {
                Ok(MshrOutcome::Primary) => {
                    let msg = MemMsg::GetLine { line, reply_to: self.node, core: self.core };
                    self.outbox.push((self.l2_node(line), msg));
                }
                Ok(MshrOutcome::Merged) => {}
                Err(_) => unreachable!("capacity was checked in the plan phase"),
            }
            if sink.counters_on() {
                sink.record(TraceEvent::ReqIssue {
                    cycle: now,
                    sm: self.core,
                    req,
                    line: line.0,
                    merged: !primary,
                });
                sink.record(TraceEvent::ReqMshr {
                    cycle: now,
                    sm: self.core,
                    line: line.0,
                    primary,
                });
            }
        }
        self.line_plan = miss_lines;
        Ok(LoadIssued { reqs })
    }

    /// Issue a local (scratchpad or stash) store. Completes immediately;
    /// the caller commits functional values via
    /// [`local_write_word`](Self::local_write_word).
    ///
    /// # Errors
    ///
    /// Rejects on pending DMA or LSU serialization.
    pub fn try_local_store(&mut self, now: u64, addrs: &[u64]) -> Result<(), LsuReject> {
        self.try_local_store_traced(now, addrs, &mut NullSink)
    }

    /// [`try_local_store`](Self::try_local_store) recording a
    /// [`TraceEvent::ScratchAccess`].
    pub fn try_local_store_traced<S: TraceSink>(
        &mut self,
        now: u64,
        addrs: &[u64],
        sink: &mut S,
    ) -> Result<(), LsuReject> {
        self.lsu_check(now)?;
        if self.cfg.local_kind == LocalMemKind::ScratchpadDma
            && addrs.iter().any(|&a| self.dma.blocks_local(a))
        {
            self.lsu_busy_cause = MemStructCause::PendingDma;
            return Err(LsuReject::PendingDma);
        }
        if self.cfg.local_kind == LocalMemKind::Stash {
            for &a in addrs {
                if self.stash.translate(a).is_some() {
                    self.stash.mark_dirty(a);
                }
            }
        }
        if sink.counters_on() {
            sink.record(TraceEvent::ScratchAccess { cycle: now, sm: self.core, store: true });
        }
        let extra = self.scratch.conflict_extra_cycles(addrs);
        self.occupy_lsu(now, extra);
        Ok(())
    }

    /// Issue an atomic read-modify-write (serviced at the L2 bank).
    ///
    /// # Errors
    ///
    /// A release-semantics atomic is rejected with
    /// [`LsuReject::PendingRelease`] until the store buffer has fully
    /// drained (triggering the flush as a side effect).
    #[allow(clippy::too_many_arguments)]
    pub fn try_atomic(
        &mut self,
        now: u64,
        warp: u16,
        reg: u8,
        addr: u64,
        kind: AtomKind,
        a: u64,
        b: u64,
        acquire: bool,
        release: bool,
        gmem: &mut GlobalMem,
    ) -> Result<RequestId, LsuReject> {
        self.try_atomic_traced(
            now,
            warp,
            reg,
            addr,
            kind,
            a,
            b,
            acquire,
            release,
            gmem,
            &mut NullSink,
        )
    }

    /// [`try_atomic`](Self::try_atomic) recording a
    /// [`TraceEvent::AtomicIssue`] (and, for locally serviced atomics, the
    /// matching [`TraceEvent::AtomicDone`] at its completion cycle).
    #[allow(clippy::too_many_arguments)]
    pub fn try_atomic_traced<S: TraceSink>(
        &mut self,
        now: u64,
        warp: u16,
        reg: u8,
        addr: u64,
        kind: AtomKind,
        a: u64,
        b: u64,
        acquire: bool,
        release: bool,
        gmem: &mut GlobalMem,
        sink: &mut S,
    ) -> Result<RequestId, LsuReject> {
        self.lsu_check(now)?;
        // A release store to a line this L1 already owns is cheaper served
        // locally (the owned-atomics path below) than posted to the L2.
        let locally_owned = self.cfg.owned_atomics
            && self.cfg.protocol == Protocol::DeNovo
            && self.l1.peek(line_of(addr)) == Some(&L1State::Owned);
        if release && self.cfg.sfifo && kind == AtomKind::Store && !locally_owned {
            // QuickRelease-style posted release: the warp continues
            // immediately; the release operation itself is sent to the L2
            // once every store ordered before it (the S-FIFO contents) has
            // drained. Only pure release *stores* can be posted — CAS-style
            // releases need their return value.
            let watermark = self.watermark();
            if !watermark.is_empty() {
                self.begin_flush(false); // drain in the background
            }
            let req = self.alloc_req();
            let msg =
                MemMsg::AtomicOp { addr, kind, a, b, req, reply_to: self.node, core: self.core };
            self.deferred_releases.push((watermark, msg));
            if acquire {
                self.self_invalidate();
            }
            self.schedule(
                now + 1,
                Completion::Atomic { req, warp, reg, value: 0, acquire, release, write_dst: false },
            );
            self.occupy_lsu(now, 0);
            if sink.counters_on() {
                sink.record(TraceEvent::AtomicIssue { cycle: now, sm: self.core, req });
                sink.record(TraceEvent::AtomicDone { cycle: now + 1, sm: self.core, req });
            }
            return Ok(req);
        }
        if release {
            let ready = if self.cfg.sfifo {
                if !self.release_flush {
                    self.sfifo_pending = self.watermark();
                }
                self.sfifo_pending.is_empty()
            } else {
                self.flush_drained()
            };
            if !ready {
                self.begin_flush(true);
                self.lsu_busy_cause = MemStructCause::PendingRelease;
                return Err(LsuReject::PendingRelease);
            }
            self.release_flush = false;
        }
        if !release && self.release_flush && !self.cfg.sfifo {
            return Err(LsuReject::PendingRelease);
        }
        let req = self.alloc_req();
        let write_dst = kind != AtomKind::Store;
        let line = line_of(addr);
        // Owned atomics: a line this L1 owns is serviced locally, without a
        // round trip to the L2 (DeNovoSync-style; the paper's footnote 1).
        if self.cfg.owned_atomics
            && self.cfg.protocol == Protocol::DeNovo
            && self.l1.peek(line) == Some(&L1State::Owned)
        {
            self.stats.owned_atomic_hits += 1;
            let old = gmem.read_word(addr);
            let (new, ret) = kind.apply(old, a, b);
            gmem.write_word(addr, new);
            if acquire {
                self.self_invalidate();
            }
            self.schedule(
                now + self.cfg.l1_hit_latency,
                Completion::Atomic { req, warp, reg, value: ret, acquire, release, write_dst },
            );
            self.occupy_lsu(now, 0);
            if sink.counters_on() {
                sink.record(TraceEvent::AtomicIssue { cycle: now, sm: self.core, req });
                sink.record(TraceEvent::AtomicDone {
                    cycle: now + self.cfg.l1_hit_latency,
                    sm: self.core,
                    req,
                });
            }
            return Ok(req);
        }
        self.outstanding_atomics
            .insert(req, AtomCtx { warp, reg, addr, acquire, release, write_dst });
        let msg = MemMsg::AtomicOp { addr, kind, a, b, req, reply_to: self.node, core: self.core };
        self.outbox.push((self.l2_node(line), msg));
        self.occupy_lsu(now, 0);
        if sink.counters_on() {
            sink.record(TraceEvent::AtomicIssue { cycle: now, sm: self.core, req });
        }
        Ok(req)
    }

    /// Start a DMA transfer (scratchpad+DMA configuration). The functional
    /// copy happens now; the timing drains through the DMA engine.
    ///
    /// # Errors
    ///
    /// Rejects only on LSU serialization.
    pub fn start_dma(
        &mut self,
        now: u64,
        transfer: DmaTransfer,
        gmem: &mut GlobalMem,
    ) -> Result<(), LsuReject> {
        self.start_dma_traced(now, transfer, gmem, &mut NullSink)
    }

    /// [`start_dma`](Self::start_dma) recording a [`TraceEvent::DmaStart`].
    pub fn start_dma_traced<S: TraceSink>(
        &mut self,
        now: u64,
        transfer: DmaTransfer,
        gmem: &mut GlobalMem,
        sink: &mut S,
    ) -> Result<(), LsuReject> {
        self.lsu_check(now)?;
        if sink.counters_on() {
            sink.record(TraceEvent::DmaStart {
                cycle: now,
                sm: self.core,
                lines: transfer.total_lines(),
                to_scratchpad: transfer.dir == DmaDirection::ToScratchpad,
            });
        }
        for off in (0..transfer.bytes).step_by(8) {
            match transfer.dir {
                DmaDirection::ToScratchpad => {
                    let v = gmem.read_word(transfer.global + off);
                    self.scratch.write_word(transfer.local + off, v);
                }
                DmaDirection::ToGlobal => {
                    let v = self.scratch.read_word(transfer.local + off);
                    gmem.write_word(transfer.global + off, v);
                }
            }
        }
        self.dma.start(transfer);
        self.occupy_lsu(now, 0);
        Ok(())
    }

    /// Install a stash mapping (stash configuration).
    ///
    /// If the local range was previously mapped (a finished block's slot
    /// being recycled), the old mapping's dirty data is lazily written back
    /// through the flush engine before the new mapping takes effect.
    pub fn add_stash_mapping(&mut self, m: StashMapping) {
        let writeback = self.stash.unmap_overlapping(m.local, m.bytes);
        if !writeback.is_empty() {
            self.endflush.extend(writeback);
            self.begin_flush(false);
        }
        self.stash.map(m);
    }

    // ------------------------------------------------------------------
    // Functional access to the local address space
    // ------------------------------------------------------------------

    /// Read a local word: from the scratchpad, or through the stash mapping
    /// into global memory.
    pub fn local_read_word(&self, addr: u64, gmem: &GlobalMem) -> u64 {
        match self.cfg.local_kind {
            LocalMemKind::Scratchpad | LocalMemKind::ScratchpadDma => self.scratch.read_word(addr),
            LocalMemKind::Stash => match self.stash.translate(addr) {
                Some(global) => gmem.read_word(global),
                None => self.scratch.read_word(addr),
            },
        }
    }

    /// Write a local word (see [`local_read_word`](Self::local_read_word)).
    pub fn local_write_word(&mut self, addr: u64, value: u64, gmem: &mut GlobalMem) {
        match self.cfg.local_kind {
            LocalMemKind::Scratchpad | LocalMemKind::ScratchpadDma => {
                self.scratch.write_word(addr, value);
            }
            LocalMemKind::Stash => match self.stash.translate(addr) {
                Some(global) => gmem.write_word(global, value),
                None => self.scratch.write_word(addr, value),
            },
        }
    }

    // ------------------------------------------------------------------
    // Flush / synchronization
    // ------------------------------------------------------------------

    fn begin_flush(&mut self, release: bool) {
        self.flushing = true;
        self.release_flush |= release;
    }

    /// True when nothing remains to drain: the condition that unblocks a
    /// release.
    pub fn flush_drained(&self) -> bool {
        self.sb.is_empty()
            && self.endflush.is_empty()
            && self.pending_wracks.is_empty()
            && self.pending_regs.is_empty()
    }

    /// Whether stores are currently blocked by a draining release.
    pub fn release_blocked(&self) -> bool {
        self.release_flush
    }

    /// Kernel end: flush the store buffer, queue the stash writeback, and
    /// drain DMA. Poll [`drained`](Self::drained).
    pub fn begin_kernel_end_flush(&mut self) {
        self.endflush.extend(self.stash.writeback_set());
        self.begin_flush(false);
    }

    /// True when every buffer, ack, registration, DMA transfer, and atomic
    /// has drained — the SM's memory side is quiescent.
    pub fn drained(&self) -> bool {
        self.flush_drained()
            && self.dma.all_complete()
            && self.outstanding_atomics.is_empty()
            && self.mshr.is_empty()
            && self.deferred_releases.is_empty()
    }

    /// Reset per-kernel structures (after [`drained`](Self::drained)):
    /// stash mappings, DMA transfers, and the scratchpad contents.
    pub fn reset_for_kernel(&mut self) {
        debug_assert!(self.drained(), "reset before the memory side drained");
        self.stash.reset();
        self.dma.reset();
        self.scratch.clear();
        self.flushing = false;
        self.release_flush = false;
    }

    /// Acquire semantics: self-invalidate the L1 according to the protocol
    /// (everything under GPU coherence; unowned lines under DeNovo).
    pub fn self_invalidate(&mut self) {
        let protocol = self.cfg.protocol;
        let before = self.l1.len();
        self.l1.retain(|_, s| !s.invalidated_on_acquire(protocol));
        self.stats.acquire_invalidations += 1;
        self.stats.lines_invalidated += (before - self.l1.len()) as u64;
    }

    /// Resident L1 lines (diagnostic).
    pub fn l1_resident(&self) -> usize {
        self.l1.len()
    }

    /// Resident L1 lines in `Owned` state (diagnostic).
    pub fn l1_owned(&self) -> usize {
        self.l1.iter().filter(|(_, s)| **s == L1State::Owned).count()
    }

    // ------------------------------------------------------------------
    // Message plumbing (driven by the simulator)
    // ------------------------------------------------------------------

    /// The lines whose stores are ordered before a release issued now: the
    /// store buffer, the kernel-end queue, and everything awaiting an ack.
    fn watermark(&self) -> FastSet<LineAddr> {
        let mut wm: FastSet<LineAddr> = self.sb.iter().map(|(l, _)| *l).collect();
        wm.extend(self.endflush.iter().map(|(l, _)| *l));
        wm.extend(self.pending_wracks.keys().copied());
        wm.extend(self.pending_regs.keys().copied());
        wm
    }

    /// True while stores to `line` are buffered or awaiting acknowledgment.
    fn line_in_flight(&self, line: LineAddr) -> bool {
        self.pending_wracks.contains_key(&line)
            || self.pending_regs.contains_key(&line)
            || self.sb.iter().any(|(l, _)| *l == line)
            || self.endflush.iter().any(|(l, _)| *l == line)
    }

    /// A line finished draining somewhere: if nothing for it remains in
    /// flight, it no longer gates a pending S-FIFO release.
    fn maybe_clear_sfifo(&mut self, line: LineAddr) {
        if self.sfifo_pending.contains(&line)
            && !self.pending_wracks.contains_key(&line)
            && !self.pending_regs.contains_key(&line)
            && !self.sb.iter().any(|(l, _)| *l == line)
            && !self.endflush.iter().any(|(l, _)| *l == line)
        {
            self.sfifo_pending.remove(&line);
        }
    }

    /// Deliver a mesh message addressed to this core's node.
    pub fn deliver(&mut self, now: u64, msg: MemMsg) {
        self.deliver_traced(now, msg, &mut NullSink)
    }

    /// [`deliver`](Self::deliver) recording request-lifetime closures: a
    /// [`TraceEvent::ReqFill`] per completed load target, DMA line
    /// arrivals, atomic completions, and the remote-L1 service point for
    /// forwarded gets.
    pub fn deliver_traced<S: TraceSink>(&mut self, now: u64, msg: MemMsg, sink: &mut S) {
        match msg {
            MemMsg::Fill { line, provenance } => {
                let Some(targets) = self.mshr.complete(line) else { return };
                let mut install = false;
                for t in targets {
                    match t.kind {
                        TargetKind::Load { warp, reg, req } => {
                            install = true;
                            let p = if t.primary { provenance } else { Provenance::L1Coalescing };
                            self.completions.push(Completion::Load {
                                req,
                                warp,
                                reg,
                                provenance: p,
                            });
                            if sink.counters_on() {
                                sink.record(TraceEvent::ReqFill {
                                    cycle: now,
                                    sm: self.core,
                                    req,
                                    line: line.0,
                                    point: p,
                                });
                            }
                        }
                        TargetKind::Stash { warp, reg, req } => {
                            self.stash.fill_global_line(line);
                            let p = if t.primary { provenance } else { Provenance::L1Coalescing };
                            self.completions.push(Completion::Load {
                                req,
                                warp,
                                reg,
                                provenance: p,
                            });
                            if sink.counters_on() {
                                sink.record(TraceEvent::ReqFill {
                                    cycle: now,
                                    sm: self.core,
                                    req,
                                    line: line.0,
                                    point: p,
                                });
                            }
                        }
                        TargetKind::Dma => {
                            self.dma.on_line_arrived(line);
                            if sink.counters_on() {
                                sink.record(TraceEvent::DmaLine {
                                    cycle: now,
                                    sm: self.core,
                                    line: line.0,
                                    arrived: true,
                                });
                            }
                        }
                    }
                }
                if install {
                    self.install_l1(line, L1State::Valid);
                }
            }
            MemMsg::WriteAck { line } => {
                if let Some(n) = self.pending_wracks.get_mut(&line) {
                    *n -= 1;
                    if *n == 0 {
                        self.pending_wracks.remove(&line);
                    }
                }
                self.maybe_clear_sfifo(line);
            }
            MemMsg::RegisterAck { line } => {
                if let Some(n) = self.pending_regs.get_mut(&line) {
                    *n -= 1;
                    if *n == 0 {
                        self.pending_regs.remove(&line);
                    }
                }
                self.install_l1(line, L1State::Owned);
                self.maybe_clear_sfifo(line);
            }
            MemMsg::AtomicResp { req, value } => {
                if let Some(ctx) = self.outstanding_atomics.remove(&req) {
                    if sink.counters_on() {
                        sink.record(TraceEvent::AtomicDone { cycle: now, sm: self.core, req });
                    }
                    if ctx.acquire {
                        self.self_invalidate();
                    }
                    if self.cfg.owned_atomics && self.cfg.protocol == Protocol::DeNovo {
                        // The bank granted this core ownership of the
                        // atomic's line; later atomics hit locally.
                        self.install_l1(line_of(ctx.addr), L1State::Owned);
                    }
                    self.completions.push(Completion::Atomic {
                        req,
                        warp: ctx.warp,
                        reg: ctx.reg,
                        value,
                        acquire: ctx.acquire,
                        release: ctx.release,
                        write_dst: ctx.write_dst,
                    });
                }
            }
            MemMsg::FwdGet { line, reply_to } => {
                // Serve a remote reader directly from our owned copy after
                // the L1 access latency.
                self.stats.remote_serves += 1;
                let m = MemMsg::Fill { line, provenance: Provenance::RemoteL1 };
                self.delayed_out.push(Reverse((
                    now + self.cfg.remote_l1_latency,
                    self.sched_seq,
                    reply_to,
                    m,
                )));
                self.sched_seq += 1;
                if sink.counters_on() {
                    // Cores sit at the node matching their index, so the
                    // reply-to node identifies the requesting core.
                    sink.record(TraceEvent::ReqService {
                        cycle: now + self.cfg.remote_l1_latency,
                        core: reply_to.0,
                        line: line.0,
                        point: Provenance::RemoteL1,
                    });
                }
            }
            MemMsg::Recall { line } => {
                self.l1.remove(line);
                let msg = MemMsg::OwnerWriteback { line, core: self.core };
                self.outbox.push((self.l2_node(line), msg));
            }
            other => unreachable!("core received a request message: {other:?}"),
        }
    }

    /// Advance one cycle: drain the flush engine and DMA engine, and move
    /// scheduled local completions to the completion queue.
    pub fn tick(&mut self, now: u64) {
        self.tick_traced(now, &mut NullSink)
    }

    /// [`tick`](Self::tick) recording [`TraceEvent::StoreFlush`] per
    /// drained store-buffer entry and [`TraceEvent::DmaLine`] per issued
    /// DMA line.
    pub fn tick_traced<S: TraceSink>(&mut self, now: u64, sink: &mut S) {
        // Delayed remote serves.
        while let Some(Reverse((ready, _, _, _))) = self.delayed_out.peek() {
            if *ready > now {
                break;
            }
            let Reverse((_, _, to, msg)) = self.delayed_out.pop().expect("peeked");
            self.outbox.push((to, msg));
        }

        // Posted releases whose ordered stores have all drained go to the
        // L2 now.
        if !self.deferred_releases.is_empty() {
            let mut i = 0;
            while i < self.deferred_releases.len() {
                let ready = {
                    let (wm, _) = &self.deferred_releases[i];
                    !wm.iter().any(|&l| self.line_in_flight(l))
                };
                if ready {
                    let (_, msg) = self.deferred_releases.remove(i);
                    if let MemMsg::AtomicOp { addr, .. } = msg {
                        self.outbox.push((self.l2_node(line_of(addr)), msg));
                    }
                } else {
                    i += 1;
                }
            }
        }

        // A full store buffer flushes itself (paper, Section 5).
        if self.sb.is_full() && !self.flushing {
            self.begin_flush(false);
        }

        // Flush engine: drain store-buffer entries, then kernel-end stash
        // writebacks, at the configured rate.
        if self.flushing && !self.chaos.stall_store_buffer() {
            for _ in 0..self.cfg.flush_rate {
                if let Some((line, mask)) = self.sb.pop_oldest() {
                    self.drain_entry(line, mask, false);
                    if sink.counters_on() {
                        sink.record(TraceEvent::StoreFlush {
                            cycle: now,
                            sm: self.core,
                            line: line.0,
                        });
                    }
                } else if let Some((line, mask)) = self.endflush.first().copied() {
                    self.endflush.remove(0);
                    self.drain_entry(line, mask, true);
                    if sink.counters_on() {
                        sink.record(TraceEvent::StoreFlush {
                            cycle: now,
                            sm: self.core,
                            line: line.0,
                        });
                    }
                } else {
                    break;
                }
            }
            if self.flush_drained() {
                self.flushing = false;
                self.release_flush = false;
            }
        }

        // DMA engine: issue lines at the configured rate. A chaos-dropped
        // burst skips the whole cycle; the same lines retry next tick.
        let dma_dropped = self.dma.next_line().is_some() && self.chaos.drop_dma_burst();
        for _ in 0..self.cfg.dma_lines_per_cycle {
            if dma_dropped {
                break;
            }
            let Some((line, dir)) = self.dma.next_line() else { break };
            match dir {
                DmaDirection::ToScratchpad => {
                    let primary = !self.mshr.contains(line);
                    let target = MshrTarget { kind: TargetKind::Dma, primary };
                    if self.mshr.allocate(line, target).is_err() {
                        break; // MSHR full: the engine waits.
                    }
                    if primary {
                        let msg = MemMsg::GetLine { line, reply_to: self.node, core: self.core };
                        self.outbox.push((self.l2_node(line), msg));
                    }
                }
                DmaDirection::ToGlobal => {
                    if self.sb.record(line, WordMask::FULL).is_err() {
                        self.begin_flush(false);
                        break; // Store buffer full: the engine waits.
                    }
                }
            }
            self.stats.dma_lines += 1;
            self.dma.mark_issued();
            if sink.counters_on() {
                sink.record(TraceEvent::DmaLine {
                    cycle: now,
                    sm: self.core,
                    line: line.0,
                    arrived: false,
                });
            }
        }

        // Local completions that are ready.
        while let Some(Reverse((ready, _, _))) = self.local_done.peek() {
            if *ready > now {
                break;
            }
            let Reverse((_, _, Scheduled(c))) = self.local_done.pop().expect("peeked");
            self.completions.push(c);
        }
    }

    /// The earliest cycle at or after `now` (the next cycle about to be
    /// ticked) at which a tick would do work, given no new requests or
    /// deliveries arrive in between: `Some(now)` while any per-cycle
    /// engine (flush, DMA, deferred releases) has work or results are
    /// waiting to be drained, otherwise the earliest timer in the
    /// delayed-send and local-completion heaps. `None` when the unit is
    /// entirely idle. MSHR misses, write acks, and registrations wait on
    /// mesh deliveries, which the mesh's own calendar covers.
    pub fn next_wake(&self, now: u64) -> Option<u64> {
        if self.flushing
            || self.sb.is_full()
            || !self.deferred_releases.is_empty()
            || self.dma.wants_issue()
            || !self.completions.is_empty()
            || !self.outbox.is_empty()
        {
            return Some(now);
        }
        let delayed = self.delayed_out.peek().map(|Reverse((ready, _, _, _))| *ready);
        let local = self.local_done.peek().map(|Reverse((ready, _, _))| *ready);
        match (delayed, local) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn drain_entry(&mut self, line: LineAddr, mask: WordMask, force_write: bool) {
        match self.cfg.protocol {
            Protocol::DeNovo if !force_write => {
                if self.l1.peek(line) == Some(&L1State::Owned) {
                    // Already owned: the flush is free. This is the DeNovo
                    // advantage the paper's UTSD case study measures.
                    self.stats.flush_owned_skips += 1;
                    self.maybe_clear_sfifo(line);
                } else {
                    self.stats.flush_registrations += 1;
                    *self.pending_regs.entry(line).or_insert(0) += 1;
                    let msg = MemMsg::RegisterOwner { line, reply_to: self.node, core: self.core };
                    self.outbox.push((self.l2_node(line), msg));
                }
            }
            _ => {
                self.stats.flush_writes += 1;
                *self.pending_wracks.entry(line).or_insert(0) += 1;
                let msg = MemMsg::WriteWords { line, mask, reply_to: self.node };
                self.outbox.push((self.l2_node(line), msg));
            }
        }
    }

    /// Take the messages produced since the last call, as
    /// `(destination, message)` pairs.
    pub fn take_outbox(&mut self) -> Vec<(NodeId, MemMsg)> {
        std::mem::take(&mut self.outbox)
    }

    /// [`take_outbox`](Self::take_outbox) appending into a caller-provided
    /// buffer. The internal queue keeps its capacity, so a per-cycle caller
    /// reusing one buffer allocates nothing in steady state.
    pub fn drain_outbox(&mut self, out: &mut Vec<(NodeId, MemMsg)>) {
        out.append(&mut self.outbox);
    }

    /// Take the completions produced since the last call.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// [`take_completions`](Self::take_completions) appending into a
    /// caller-provided buffer, preserving the internal queue's capacity.
    pub fn drain_completions(&mut self, out: &mut Vec<Completion>) {
        out.append(&mut self.completions);
    }

    /// Serialize every piece of mutable unit state. Maps and sets are
    /// sorted by key, and heaps by their ordering keys, so equal states
    /// produce byte-identical snapshots. The per-access scratch plans are
    /// excluded (they are rebuilt from scratch on every LSU attempt).
    pub fn snapshot(&self) -> gsi_json::Value {
        use gsi_json::{obj, ToJson, Value};
        fn sorted_pairs<K: Ord + Copy + std::hash::Hash + ToJson, V: ToJson>(
            map: &FastMap<K, V>,
        ) -> Value {
            let mut keys: Vec<K> = map.keys().copied().collect();
            keys.sort();
            Value::Array(
                keys.into_iter()
                    .map(|k| Value::Array(vec![k.to_json(), map[&k].to_json()]))
                    .collect(),
            )
        }
        fn sorted_set(set: &FastSet<LineAddr>) -> Value {
            let mut lines: Vec<LineAddr> = set.iter().copied().collect();
            lines.sort();
            lines.to_json()
        }
        let deferred: Vec<Value> = self
            .deferred_releases
            .iter()
            .map(|(wm, msg)| Value::Array(vec![sorted_set(wm), msg.to_json()]))
            .collect();
        let mut local_done: Vec<&(u64, u64, Scheduled)> =
            self.local_done.iter().map(|r| &r.0).collect();
        local_done.sort_by_key(|(ready, seq, _)| (*ready, *seq));
        let local_done: Vec<Value> = local_done
            .into_iter()
            .map(|(ready, seq, Scheduled(c))| {
                Value::Array(vec![Value::U64(*ready), Value::U64(*seq), c.to_json()])
            })
            .collect();
        let mut delayed: Vec<&(u64, u64, NodeId, MemMsg)> =
            self.delayed_out.iter().map(|r| &r.0).collect();
        delayed.sort_by_key(|(ready, seq, _, _)| (*ready, *seq));
        let delayed: Vec<Value> = delayed
            .into_iter()
            .map(|(ready, seq, to, msg)| {
                Value::Array(vec![
                    Value::U64(*ready),
                    Value::U64(*seq),
                    to.to_json(),
                    msg.to_json(),
                ])
            })
            .collect();
        obj! {
            "l1" => self.l1.snapshot(),
            "mshr" => self.mshr.snapshot(),
            "sb" => self.sb.snapshot(),
            "endflush" => self.endflush.to_json(),
            "scratch" => self.scratch.snapshot(),
            "stash" => self.stash.snapshot(),
            "dma" => self.dma.snapshot(),
            "req_counter" => self.req_counter,
            "lsu_free_at" => self.lsu_free_at,
            "lsu_busy_cause" => self.lsu_busy_cause,
            "flushing" => self.flushing,
            "release_flush" => self.release_flush,
            "pending_wracks" => sorted_pairs(&self.pending_wracks),
            "pending_regs" => sorted_pairs(&self.pending_regs),
            "sfifo_pending" => sorted_set(&self.sfifo_pending),
            "deferred_releases" => Value::Array(deferred),
            "outstanding_atomics" => sorted_pairs(&self.outstanding_atomics),
            "local_done" => Value::Array(local_done),
            "sched_seq" => self.sched_seq,
            "completions" => self.completions.to_json(),
            "outbox" => self.outbox.to_json(),
            "delayed_out" => Value::Array(delayed),
            "stats" => self.stats.to_json(),
            "chaos" => self.chaos.snapshot()
        }
    }

    /// Restore onto a freshly constructed unit of the same configuration
    /// (and chaos engine, when armed).
    pub fn restore(&mut self, v: &gsi_json::Value) -> Result<(), gsi_json::JsonError> {
        use gsi_json::{FromJson, JsonError, Value};
        fn read_pairs<K: std::hash::Hash + Eq + FromJson, V: FromJson>(
            v: &Value,
            key: &str,
        ) -> Result<FastMap<K, V>, JsonError> {
            let pairs = match v.req(key)? {
                Value::Array(pairs) => pairs,
                other => return Err(JsonError::expected("array", other)),
            };
            let mut map = FastMap::default();
            for pair in pairs {
                let fields = match pair {
                    Value::Array(f) if f.len() == 2 => f,
                    other => return Err(JsonError::expected("[key, value]", other)),
                };
                map.insert(K::from_json(&fields[0])?, V::from_json(&fields[1])?);
            }
            Ok(map)
        }
        self.l1.restore(v.req("l1")?)?;
        self.mshr.restore(v.req("mshr")?)?;
        self.sb.restore(v.req("sb")?)?;
        self.endflush = v.read("endflush")?;
        self.scratch.restore(v.req("scratch")?)?;
        self.stash.restore(v.req("stash")?)?;
        self.dma.restore(v.req("dma")?)?;
        self.req_counter = v.read("req_counter")?;
        self.lsu_free_at = v.read("lsu_free_at")?;
        self.lsu_busy_cause = v.read("lsu_busy_cause")?;
        self.flushing = v.read("flushing")?;
        self.release_flush = v.read("release_flush")?;
        self.pending_wracks = read_pairs(v, "pending_wracks")?;
        self.pending_regs = read_pairs(v, "pending_regs")?;
        self.sfifo_pending = v.read::<Vec<LineAddr>>("sfifo_pending")?.into_iter().collect();
        self.deferred_releases.clear();
        let deferred = match v.req("deferred_releases")? {
            Value::Array(deferred) => deferred,
            other => return Err(JsonError::expected("array", other)),
        };
        for entry in deferred {
            let fields = match entry {
                Value::Array(f) if f.len() == 2 => f,
                other => return Err(JsonError::expected("[watermark, msg]", other)),
            };
            let wm: FastSet<LineAddr> =
                Vec::<LineAddr>::from_json(&fields[0])?.into_iter().collect();
            self.deferred_releases.push((wm, MemMsg::from_json(&fields[1])?));
        }
        self.outstanding_atomics = read_pairs(v, "outstanding_atomics")?;
        self.local_done.clear();
        let local_done = match v.req("local_done")? {
            Value::Array(local_done) => local_done,
            other => return Err(JsonError::expected("array", other)),
        };
        for entry in local_done {
            let fields = match entry {
                Value::Array(f) if f.len() == 3 => f,
                other => return Err(JsonError::expected("[ready, seq, completion]", other)),
            };
            self.local_done.push(Reverse((
                u64::from_json(&fields[0])?,
                u64::from_json(&fields[1])?,
                Scheduled(Completion::from_json(&fields[2])?),
            )));
        }
        self.sched_seq = v.read("sched_seq")?;
        self.completions = v.read("completions")?;
        self.outbox = v.read("outbox")?;
        self.delayed_out.clear();
        let delayed = match v.req("delayed_out")? {
            Value::Array(delayed) => delayed,
            other => return Err(JsonError::expected("array", other)),
        };
        for entry in delayed {
            let fields = match entry {
                Value::Array(f) if f.len() == 4 => f,
                other => return Err(JsonError::expected("[ready, seq, to, msg]", other)),
            };
            self.delayed_out.push(Reverse((
                u64::from_json(&fields[0])?,
                u64::from_json(&fields[1])?,
                NodeId::from_json(&fields[2])?,
                MemMsg::from_json(&fields[3])?,
            )));
        }
        self.stats = v.read("stats")?;
        self.line_plan.clear();
        self.store_plan.clear();
        self.chaos.restore(v.req("chaos")?)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn unit(protocol: Protocol, kind: LocalMemKind) -> CoreMemUnit {
        let cfg = MemConfig { protocol, local_kind: kind, ..Default::default() };
        CoreMemUnit::new(0, NodeId(0), cfg)
    }

    fn drain_completions(u: &mut CoreMemUnit, upto: u64) -> Vec<Completion> {
        let mut out = Vec::new();
        for now in 0..=upto {
            u.tick(now);
            out.extend(u.take_completions());
        }
        out
    }

    #[test]
    fn l1_hit_completes_locally_with_l1_provenance() {
        let mut u = unit(Protocol::GpuCoherence, LocalMemKind::Scratchpad);
        // Prime the line via a fill.
        let issued = u.try_global_load(0, 0, 1, &[0x100]).unwrap();
        assert_eq!(issued.reqs.len(), 1);
        let out = u.take_outbox();
        assert_eq!(out.len(), 1);
        u.deliver(5, MemMsg::Fill { line: line_of(0x100), provenance: Provenance::L2 });
        let c = u.take_completions();
        assert!(matches!(c[0], Completion::Load { provenance: Provenance::L2, .. }));
        // Second load hits.
        let _ = u.try_global_load(10, 0, 2, &[0x108]).unwrap();
        assert!(u.take_outbox().is_empty(), "hit must not generate traffic");
        let c = drain_completions(&mut u, 12);
        assert!(matches!(c[0], Completion::Load { provenance: Provenance::L1, .. }));
        assert_eq!(u.stats().l1_hits, 1);
    }

    #[test]
    fn coalesced_loads_merge_and_fill_together() {
        let mut u = unit(Protocol::GpuCoherence, LocalMemKind::Scratchpad);
        u.try_global_load(0, 0, 1, &[0x200]).unwrap();
        u.try_global_load(1, 1, 2, &[0x208]).unwrap(); // same line
        assert_eq!(u.take_outbox().len(), 1, "one GetLine for both");
        u.deliver(30, MemMsg::Fill { line: line_of(0x200), provenance: Provenance::MainMemory });
        let c = u.take_completions();
        assert_eq!(c.len(), 2);
        assert!(matches!(c[0], Completion::Load { provenance: Provenance::MainMemory, .. }));
        assert!(
            matches!(c[1], Completion::Load { provenance: Provenance::L1Coalescing, .. }),
            "merged target is an L1-coalescing service"
        );
    }

    #[test]
    fn mshr_exhaustion_rejects() {
        let cfg = MemConfig { mshr_entries: 4, ..Default::default() };
        let mut u = CoreMemUnit::new(0, NodeId(0), cfg);
        u.try_global_load(0, 0, 1, &[0x000]).unwrap();
        u.try_global_load(1, 1, 1, &[0x100]).unwrap();
        u.try_global_load(2, 2, 1, &[0x200]).unwrap();
        u.try_global_load(3, 3, 1, &[0x300]).unwrap();
        let err = u.try_global_load(4, 4, 1, &[0x400]).unwrap_err();
        assert_eq!(err, LsuReject::MshrFull);
        assert_eq!(err.cause(), MemStructCause::MshrFull);
    }

    #[test]
    fn lsu_serializes_on_bank_conflicts() {
        let mut u = unit(Protocol::GpuCoherence, LocalMemKind::Scratchpad);
        // 8 L1 banks; lines 0 and 8 share bank 0 -> 1 extra cycle.
        let addrs = [0u64, 8 * 64];
        u.try_global_load(0, 0, 1, &addrs).unwrap();
        let err = u.try_global_load(1, 1, 2, &[0x40]).unwrap_err();
        assert_eq!(err, LsuReject::BankConflict);
        assert!(u.try_global_load(2, 1, 2, &[0x40]).is_ok());
    }

    #[test]
    fn store_buffer_full_rejects_and_triggers_flush() {
        let cfg = MemConfig { store_buffer_entries: 4, ..Default::default() };
        let mut u = CoreMemUnit::new(0, NodeId(0), cfg);
        u.try_global_store(0, &[0]).unwrap();
        u.try_global_store(1, &[64]).unwrap();
        u.try_global_store(2, &[2 * 64]).unwrap();
        u.try_global_store(3, &[3 * 64]).unwrap();
        let err = u.try_global_store(4, &[4 * 64]).unwrap_err();
        assert_eq!(err, LsuReject::StoreBufferFull);
        // The flush engine drains entries over the next cycles.
        u.tick(3);
        u.tick(4);
        assert!(!u.take_outbox().is_empty(), "flush must emit write-throughs");
    }

    #[test]
    fn store_combining_within_a_line() {
        let mut u = unit(Protocol::GpuCoherence, LocalMemKind::Scratchpad);
        u.try_global_store(0, &[0x300]).unwrap();
        u.try_global_store(1, &[0x308]).unwrap();
        assert_eq!(u.stats().sb_combines, 1);
    }

    #[test]
    fn release_blocks_until_flush_drains_gpu_coherence() {
        let mut u = unit(Protocol::GpuCoherence, LocalMemKind::Scratchpad);
        u.try_global_store(0, &[0x400]).unwrap();
        // Release atomic must be rejected while the buffer drains.
        let err = u
            .try_atomic(1, 0, 1, 0x500, AtomKind::Store, 1, 0, false, true, &mut GlobalMem::new())
            .unwrap_err();
        assert_eq!(err, LsuReject::PendingRelease);
        assert!(u.release_blocked());
        // Other stores are blocked too.
        assert_eq!(u.try_global_store(2, &[0x600]).unwrap_err(), LsuReject::PendingRelease);
        // Drain: tick sends the write-through; ack it.
        u.tick(2);
        for (_, m) in u.take_outbox() {
            if let MemMsg::WriteWords { line, .. } = m {
                u.deliver(3, MemMsg::WriteAck { line });
            }
        }
        u.tick(4);
        assert!(!u.release_blocked());
        assert!(u
            .try_atomic(5, 0, 1, 0x500, AtomKind::Store, 1, 0, false, true, &mut GlobalMem::new())
            .is_ok());
    }

    #[test]
    fn denovo_flush_registers_instead_of_writing_data() {
        let mut u = unit(Protocol::DeNovo, LocalMemKind::Scratchpad);
        u.try_global_store(0, &[0x700]).unwrap();
        let _ =
            u.try_atomic(1, 0, 1, 0x800, AtomKind::Store, 1, 0, false, true, &mut GlobalMem::new());
        u.tick(2);
        let out = u.take_outbox();
        assert!(
            out.iter().any(|(_, m)| matches!(m, MemMsg::RegisterOwner { .. })),
            "DeNovo flush sends registrations: {out:?}"
        );
        assert_eq!(u.stats().flush_registrations, 1);
        // Ack: the line becomes owned.
        u.deliver(3, MemMsg::RegisterAck { line: line_of(0x700) });
        assert_eq!(u.l1_owned(), 1);
        // A second store + flush to the same line is free.
        u.tick(4);
        assert!(!u.release_blocked());
        u.try_global_store(5, &[0x708]).unwrap();
        let _ =
            u.try_atomic(6, 0, 1, 0x800, AtomKind::Store, 1, 0, false, true, &mut GlobalMem::new());
        u.tick(7);
        assert_eq!(u.stats().flush_owned_skips, 1);
        assert_eq!(u.stats().flush_registrations, 1, "no new registration");
    }

    #[test]
    fn acquire_invalidation_respects_protocol() {
        for (protocol, survivors) in [(Protocol::GpuCoherence, 0), (Protocol::DeNovo, 1)] {
            let mut u = unit(protocol, LocalMemKind::Scratchpad);
            // One valid line via fill.
            u.try_global_load(0, 0, 1, &[0x100]).unwrap();
            u.take_outbox();
            u.deliver(1, MemMsg::Fill { line: line_of(0x100), provenance: Provenance::L2 });
            // One owned line via store+flush+ack (DeNovo) — emulate by
            // delivering a RegisterAck directly.
            u.deliver(2, MemMsg::RegisterAck { line: line_of(0x900) });
            assert_eq!(u.l1_resident(), 2);
            u.self_invalidate();
            assert_eq!(u.l1_owned(), survivors, "protocol {protocol}");
        }
    }

    #[test]
    fn atomic_roundtrip_with_acquire_invalidates() {
        let mut u = unit(Protocol::GpuCoherence, LocalMemKind::Scratchpad);
        u.try_global_load(0, 0, 1, &[0x100]).unwrap();
        u.take_outbox();
        u.deliver(1, MemMsg::Fill { line: line_of(0x100), provenance: Provenance::L2 });
        u.take_completions();
        assert_eq!(u.l1_resident(), 1);
        let req = u
            .try_atomic(2, 3, 4, 0xA00, AtomKind::Cas, 0, 1, true, false, &mut GlobalMem::new())
            .unwrap();
        let out = u.take_outbox();
        assert!(matches!(out[0].1, MemMsg::AtomicOp { .. }));
        u.deliver(40, MemMsg::AtomicResp { req, value: 0 });
        let c = u.take_completions();
        assert!(matches!(
            c[0],
            Completion::Atomic { value: 0, acquire: true, warp: 3, reg: 4, write_dst: true, .. }
        ));
        assert_eq!(u.l1_resident(), 0, "acquire self-invalidated the L1");
    }

    #[test]
    fn scratchpad_load_is_local_and_fast() {
        let mut u = unit(Protocol::GpuCoherence, LocalMemKind::Scratchpad);
        let issued = u.try_local_load(0, 0, 1, &[0, 8, 16]).unwrap();
        assert_eq!(issued.reqs.len(), 1);
        assert!(u.take_outbox().is_empty());
        let c = drain_completions(&mut u, 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn dma_blocks_local_accesses_until_complete() {
        let mut u = unit(Protocol::GpuCoherence, LocalMemKind::ScratchpadDma);
        let mut gmem = GlobalMem::new();
        gmem.write_word(0x1000, 77);
        let t = DmaTransfer::new(0, 0x1000, 64, DmaDirection::ToScratchpad);
        u.start_dma(0, t, &mut gmem).unwrap();
        // Functional copy already happened.
        assert_eq!(u.local_read_word(0, &gmem), 77);
        // Timing: access blocked until the line arrives.
        assert_eq!(u.try_local_load(1, 0, 1, &[0]).unwrap_err(), LsuReject::PendingDma);
        u.tick(1); // engine issues the line
        let out = u.take_outbox();
        assert!(matches!(out[0].1, MemMsg::GetLine { .. }));
        u.deliver(50, MemMsg::Fill { line: line_of(0x1000), provenance: Provenance::MainMemory });
        assert!(u.try_local_load(51, 0, 1, &[0]).is_ok());
    }

    #[test]
    fn dma_fetches_consume_mshr_entries() {
        let cfg = MemConfig {
            local_kind: LocalMemKind::ScratchpadDma,
            mshr_entries: 4,
            ..Default::default()
        };
        let mut u = CoreMemUnit::new(0, NodeId(0), cfg);
        let mut gmem = GlobalMem::new();
        let t = DmaTransfer::new(0, 0x1000, 6 * 64, DmaDirection::ToScratchpad);
        u.start_dma(0, t, &mut gmem).unwrap();
        for c in 1..=5 {
            u.tick(c); // fifth line blocked: MSHR full
        }
        assert_eq!(u.take_outbox().len(), 4);
        // A global load now sees a full MSHR.
        assert_eq!(u.try_global_load(4, 0, 1, &[0x5000]).unwrap_err(), LsuReject::MshrFull);
    }

    #[test]
    fn stash_misses_fetch_on_demand_then_hit() {
        let mut u = unit(Protocol::DeNovo, LocalMemKind::Stash);
        u.add_stash_mapping(StashMapping { local: 0, global: 0x2000, bytes: 256, writeback: true });
        let issued = u.try_local_load(0, 0, 1, &[0, 8]).unwrap();
        assert_eq!(issued.reqs.len(), 1, "both words on one global line");
        let out = u.take_outbox();
        assert!(matches!(out[0].1, MemMsg::GetLine { .. }));
        u.deliver(40, MemMsg::Fill { line: line_of(0x2000), provenance: Provenance::L2 });
        let c = u.take_completions();
        assert_eq!(c.len(), 1);
        // Second access hits in the stash, no traffic.
        u.try_local_load(41, 0, 2, &[0]).unwrap();
        assert!(u.take_outbox().is_empty());
        assert_eq!(u.stats().stash_fills, 1);
    }

    #[test]
    fn stash_writeback_drains_at_kernel_end() {
        let mut u = unit(Protocol::DeNovo, LocalMemKind::Stash);
        let mut gmem = GlobalMem::new();
        u.add_stash_mapping(StashMapping { local: 0, global: 0x3000, bytes: 64, writeback: true });
        u.try_local_store(0, &[0]).unwrap();
        u.local_write_word(0, 9, &mut gmem);
        assert_eq!(gmem.read_word(0x3000), 9, "stash is coherent: writes hit global");
        u.begin_kernel_end_flush();
        assert!(!u.drained());
        u.tick(1);
        let out = u.take_outbox();
        assert!(
            out.iter().any(|(_, m)| matches!(m, MemMsg::WriteWords { .. })),
            "lazy writeback emits data: {out:?}"
        );
        for (_, m) in out {
            if let MemMsg::WriteWords { line, .. } = m {
                u.deliver(2, MemMsg::WriteAck { line });
            }
        }
        u.tick(3);
        assert!(u.drained());
        u.reset_for_kernel();
    }

    #[test]
    fn owned_eviction_writes_back() {
        // 1-set config via tiny L1: 64 lines, 8 ways -> 8 sets. Fill one set
        // with owned lines until eviction.
        let cfg = MemConfig {
            l1_bytes: 8 * 64,
            l1_ways: 1,
            protocol: Protocol::DeNovo,
            ..Default::default()
        };
        let mut u = CoreMemUnit::new(0, NodeId(0), cfg);
        // Two lines in the same set (8 sets, lines 0 and 8).
        u.deliver(0, MemMsg::RegisterAck { line: LineAddr(0) });
        u.deliver(1, MemMsg::RegisterAck { line: LineAddr(8) });
        let out = u.take_outbox();
        assert!(
            out.iter().any(|(_, m)| matches!(m, MemMsg::OwnerWriteback { line: LineAddr(0), .. })),
            "evicting an owned line must write it back: {out:?}"
        );
    }

    #[test]
    fn recall_relinquishes_ownership() {
        let mut u = unit(Protocol::DeNovo, LocalMemKind::Scratchpad);
        u.deliver(0, MemMsg::RegisterAck { line: LineAddr(5) });
        assert_eq!(u.l1_owned(), 1);
        u.deliver(1, MemMsg::Recall { line: LineAddr(5) });
        assert_eq!(u.l1_owned(), 0);
        let out = u.take_outbox();
        assert!(matches!(out.last().unwrap().1, MemMsg::OwnerWriteback { .. }));
    }

    #[test]
    fn posted_release_waits_for_watermarked_stores() {
        let cfg = MemConfig { sfifo: true, ..Default::default() };
        let mut u = CoreMemUnit::new(0, NodeId(0), cfg);
        let mut gmem = GlobalMem::new();
        u.try_global_store(0, &[0x400]).unwrap();
        // The release store is accepted immediately (posted)...
        let req =
            u.try_atomic(1, 0, 1, 0x500, AtomKind::Store, 1, 0, false, true, &mut gmem).unwrap();
        let _ = req;
        // ...and later stores are not blocked.
        assert!(u.try_global_store(2, &[0x600]).is_ok());
        // The release itself is not sent until the prior store is acked.
        u.tick(3);
        let out = u.take_outbox();
        assert!(
            !out.iter().any(|(_, m)| matches!(m, MemMsg::AtomicOp { .. })),
            "release must wait for the watermark: {out:?}"
        );
        for (_, m) in out {
            if let MemMsg::WriteWords { line, .. } = m {
                u.deliver(4, MemMsg::WriteAck { line });
            }
        }
        // Drain any remaining flush traffic and ack it.
        for t in 5..40 {
            u.tick(t);
            for (_, m) in u.take_outbox() {
                match m {
                    MemMsg::WriteWords { line, .. } => u.deliver(t, MemMsg::WriteAck { line }),
                    MemMsg::AtomicOp { .. } => {
                        assert!(
                            !u.line_in_flight(line_of(0x400)),
                            "release sent before its store drained"
                        );
                        return; // success
                    }
                    _ => {}
                }
            }
        }
        panic!("posted release was never sent");
    }

    #[test]
    fn owned_atomics_service_locally_after_grant() {
        let cfg =
            MemConfig { protocol: Protocol::DeNovo, owned_atomics: true, ..Default::default() };
        let mut u = CoreMemUnit::new(0, NodeId(0), cfg);
        let mut gmem = GlobalMem::new();
        // First atomic goes to the L2.
        let req =
            u.try_atomic(0, 0, 1, 0x800, AtomKind::Add, 5, 0, false, false, &mut gmem).unwrap();
        let out = u.take_outbox();
        assert!(matches!(out[0].1, MemMsg::AtomicOp { .. }));
        // The bank executes it and grants ownership (response installs it).
        gmem.write_word(0x800, 5);
        u.deliver(30, MemMsg::AtomicResp { req, value: 0 });
        assert_eq!(u.l1_owned(), 1);
        assert_eq!(u.take_completions().len(), 1);
        // Second atomic hits locally: no traffic, fast completion,
        // functional effect applied immediately.
        u.try_atomic(31, 0, 2, 0x800, AtomKind::Add, 3, 0, false, false, &mut gmem).unwrap();
        assert!(u.take_outbox().is_empty(), "owned atomic must not leave the core");
        assert_eq!(gmem.read_word(0x800), 8);
        assert_eq!(u.stats().owned_atomic_hits, 1);
        u.tick(32);
        let c = u.take_completions();
        assert!(matches!(c[0], Completion::Atomic { value: 5, .. }));
    }

    #[test]
    fn recall_ends_local_atomic_service() {
        let cfg =
            MemConfig { protocol: Protocol::DeNovo, owned_atomics: true, ..Default::default() };
        let mut u = CoreMemUnit::new(0, NodeId(0), cfg);
        let mut gmem = GlobalMem::new();
        u.deliver(0, MemMsg::RegisterAck { line: line_of(0x800) });
        u.try_atomic(1, 0, 1, 0x800, AtomKind::Add, 1, 0, false, false, &mut gmem).unwrap();
        assert_eq!(u.stats().owned_atomic_hits, 1);
        // Another core wants the line: after the recall, atomics go to L2.
        u.deliver(2, MemMsg::Recall { line: line_of(0x800) });
        u.take_outbox();
        u.try_atomic(3, 0, 2, 0x800, AtomKind::Add, 1, 0, false, false, &mut gmem).unwrap();
        let out = u.take_outbox();
        assert!(matches!(out[0].1, MemMsg::AtomicOp { .. }));
        assert_eq!(u.stats().owned_atomic_hits, 1, "no new local hit");
    }

    #[test]
    fn fwd_get_serves_remote_reader_after_latency() {
        let mut u = unit(Protocol::DeNovo, LocalMemKind::Scratchpad);
        u.deliver(0, MemMsg::FwdGet { line: LineAddr(3), reply_to: NodeId(9) });
        u.tick(0);
        assert!(u.take_outbox().is_empty(), "serve takes the owner-L1 latency");
        for t in 1..=u.config().remote_l1_latency {
            u.tick(t);
        }
        let out = u.take_outbox();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, NodeId(9));
        assert!(matches!(out[0].1, MemMsg::Fill { provenance: Provenance::RemoteL1, .. }));
        assert_eq!(u.stats().remote_serves, 1);
    }
}
