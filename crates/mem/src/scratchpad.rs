//! The software-managed scratchpad: a banked, directly addressed local
//! memory private to a thread block's SM.

/// A scratchpad memory holding functional data (unlike the caches, the
/// scratchpad *is* the storage for its address space).
///
/// Addresses are byte offsets into the scratchpad, 8-byte aligned.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    words: Vec<u64>,
    banks: u32,
}

impl Scratchpad {
    /// A scratchpad of `bytes` capacity with `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or `bytes` is not a multiple of 8.
    pub fn new(bytes: u64, banks: u32) -> Self {
        assert!(banks > 0, "scratchpad banks must be nonzero");
        assert_eq!(bytes % 8, 0, "scratchpad size must be word-aligned");
        Scratchpad { words: vec![0; (bytes / 8) as usize], banks }
    }

    /// Capacity in bytes.
    pub fn bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }

    /// Read the word at byte offset `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-range access.
    pub fn read_word(&self, addr: u64) -> u64 {
        assert_eq!(addr % 8, 0, "unaligned scratchpad read at {addr:#x}");
        self.words[(addr / 8) as usize]
    }

    /// Write the word at byte offset `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-range access.
    pub fn write_word(&mut self, addr: u64, value: u64) {
        assert_eq!(addr % 8, 0, "unaligned scratchpad write at {addr:#x}");
        self.words[(addr / 8) as usize] = value;
    }

    /// The bank servicing byte offset `addr` (word-interleaved).
    pub fn bank_of(&self, addr: u64) -> u32 {
        ((addr / 8) % u64::from(self.banks)) as u32
    }

    /// Extra serialization cycles caused by bank conflicts among the given
    /// word accesses: `max accesses to one bank - 1`, with accesses to the
    /// same word in the same bank broadcast for free.
    pub fn conflict_extra_cycles(&self, addrs: &[u64]) -> u64 {
        bank_conflict_extra(addrs.iter().map(|&a| (self.bank_of(a) as u64, a / 8)))
    }

    /// Zero all contents (kernel re-launch).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Serialize nonzero words sparsely as sorted `[index, value]` pairs.
    pub fn snapshot(&self) -> gsi_json::Value {
        use gsi_json::Value;
        let words: Vec<Value> = self
            .words
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0)
            .map(|(i, &w)| Value::Array(vec![Value::U64(i as u64), Value::U64(w)]))
            .collect();
        gsi_json::obj! { "len" => self.words.len() as u64, "words" => Value::Array(words) }
    }

    /// Restore onto a fresh scratchpad of the same capacity.
    pub fn restore(&mut self, v: &gsi_json::Value) -> Result<(), gsi_json::JsonError> {
        use gsi_json::{FromJson, JsonError, Value};
        if v.read::<u64>("len")? as usize != self.words.len() {
            return Err(JsonError::new("scratchpad snapshot has a different capacity"));
        }
        self.words.fill(0);
        let words = match v.req("words")? {
            Value::Array(words) => words,
            other => return Err(JsonError::expected("array", other)),
        };
        for pair in words {
            let fields = match pair {
                Value::Array(f) if f.len() == 2 => f,
                other => return Err(JsonError::expected("[index, value]", other)),
            };
            let idx = u64::from_json(&fields[0])? as usize;
            if idx >= self.words.len() {
                return Err(JsonError::new("scratchpad snapshot index out of range"));
            }
            self.words[idx] = u64::from_json(&fields[1])?;
        }
        Ok(())
    }
}

/// Generic bank-conflict computation: given `(bank, word)` pairs, the extra
/// cycles are `max distinct words mapped to one bank - 1`. Duplicate words
/// broadcast.
pub(crate) fn bank_conflict_extra(accesses: impl Iterator<Item = (u64, u64)>) -> u64 {
    let mut per_bank: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
        std::collections::HashMap::new();
    for (bank, word) in accesses {
        per_bank.entry(bank).or_default().insert(word);
    }
    per_bank.values().map(|words| words.len() as u64).max().unwrap_or(1).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut s = Scratchpad::new(64, 4);
        s.write_word(8, 99);
        assert_eq!(s.read_word(8), 99);
        assert_eq!(s.read_word(0), 0);
        assert_eq!(s.bytes(), 64);
    }

    #[test]
    fn bank_mapping_is_word_interleaved() {
        let s = Scratchpad::new(256, 4);
        assert_eq!(s.bank_of(0), 0);
        assert_eq!(s.bank_of(8), 1);
        assert_eq!(s.bank_of(32), 0);
    }

    #[test]
    fn no_conflict_when_strided_across_banks() {
        let s = Scratchpad::new(1024, 32);
        let addrs: Vec<u64> = (0..32).map(|i| i * 8).collect();
        assert_eq!(s.conflict_extra_cycles(&addrs), 0);
    }

    #[test]
    fn full_conflict_when_same_bank() {
        let s = Scratchpad::new(8192, 32);
        // Stride of 32 words: every access hits bank 0.
        let addrs: Vec<u64> = (0..4).map(|i| i * 32 * 8).collect();
        assert_eq!(s.conflict_extra_cycles(&addrs), 3);
    }

    #[test]
    fn same_word_broadcasts() {
        let s = Scratchpad::new(64, 4);
        let addrs = [16u64, 16, 16, 16];
        assert_eq!(s.conflict_extra_cycles(&addrs), 0);
    }

    #[test]
    fn clear_zeroes() {
        let mut s = Scratchpad::new(64, 4);
        s.write_word(0, 5);
        s.clear();
        assert_eq!(s.read_word(0), 0);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_access_panics() {
        Scratchpad::new(64, 4).read_word(3);
    }

    #[test]
    fn empty_access_set_has_no_conflict() {
        let s = Scratchpad::new(64, 4);
        assert_eq!(s.conflict_extra_cycles(&[]), 0);
    }
}
