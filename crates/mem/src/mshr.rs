//! Miss-status holding registers with request merging.

use crate::hash::FastMap;
use crate::line::LineAddr;

/// How an allocation was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; a request must be sent to the next level.
    Primary,
    /// Merged into an existing entry for the same line; the target will be
    /// satisfied by the response already in flight (the paper's
    /// "L1 coalescing" service point).
    Merged,
}

/// A fixed-capacity MSHR file tracking outstanding line fetches, generic
/// over the per-target bookkeeping `T`.
///
/// ```
/// use gsi_mem::{LineAddr, Mshr, MshrOutcome};
/// let mut m: Mshr<&str> = Mshr::new(2);
/// assert_eq!(m.allocate(LineAddr(1), "a").unwrap(), MshrOutcome::Primary);
/// assert_eq!(m.allocate(LineAddr(1), "b").unwrap(), MshrOutcome::Merged);
/// assert_eq!(m.allocate(LineAddr(2), "c").unwrap(), MshrOutcome::Primary);
/// assert!(m.allocate(LineAddr(3), "d").is_err()); // full
/// assert_eq!(m.complete(LineAddr(1)), Some(vec!["a", "b"]));
/// ```
#[derive(Debug, Clone)]
pub struct Mshr<T> {
    capacity: usize,
    entries: FastMap<LineAddr, Vec<T>>,
    peak: usize,
    merges: u64,
    allocations: u64,
}

impl<T> Mshr<T> {
    /// An MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be nonzero");
        Mshr { capacity, entries: FastMap::default(), peak: 0, merges: 0, allocations: 0 }
    }

    /// Entries in use.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are in use.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Free entries.
    pub fn available(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// True when no new entry can be allocated.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when there is already an entry for `line` (an allocation for it
    /// would merge).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.contains_key(&line)
    }

    /// Add a target for `line`, merging with an in-flight fetch when
    /// possible.
    ///
    /// # Errors
    ///
    /// Returns `Err(target)` (handing the target back) when a new entry is
    /// needed but the file is full — the condition the paper books as a
    /// "full MSHR" memory structural stall.
    pub fn allocate(&mut self, line: LineAddr, target: T) -> Result<MshrOutcome, T> {
        if let Some(targets) = self.entries.get_mut(&line) {
            targets.push(target);
            self.merges += 1;
            return Ok(MshrOutcome::Merged);
        }
        if self.is_full() {
            return Err(target);
        }
        self.entries.insert(line, vec![target]);
        self.allocations += 1;
        self.peak = self.peak.max(self.entries.len());
        Ok(MshrOutcome::Primary)
    }

    /// Highest simultaneous occupancy seen since construction.
    pub fn peak_occupancy(&self) -> usize {
        self.peak
    }

    /// Targets merged into in-flight entries (the paper's "L1 coalescing").
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Primary entries allocated.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// The fill for `line` arrived: free the entry and return its targets
    /// in allocation order (primary first).
    pub fn complete(&mut self, line: LineAddr) -> Option<Vec<T>> {
        self.entries.remove(&line)
    }
}

impl<T: gsi_json::ToJson> Mshr<T> {
    /// Serialize in-flight entries (sorted by line for a canonical encoding;
    /// targets keep allocation order) plus occupancy counters.
    pub fn snapshot(&self) -> gsi_json::Value {
        use gsi_json::{obj, ToJson, Value};
        let mut lines: Vec<&LineAddr> = self.entries.keys().collect();
        lines.sort();
        let entries: Vec<Value> = lines
            .into_iter()
            .map(|line| {
                let targets: Vec<Value> = self.entries[line].iter().map(ToJson::to_json).collect();
                Value::Array(vec![line.to_json(), Value::Array(targets)])
            })
            .collect();
        obj! {
            "entries" => Value::Array(entries),
            "peak" => self.peak as u64,
            "merges" => self.merges,
            "allocations" => self.allocations
        }
    }
}

impl<T: gsi_json::FromJson> Mshr<T> {
    /// Restore onto a freshly constructed file of the same capacity.
    pub fn restore(&mut self, v: &gsi_json::Value) -> Result<(), gsi_json::JsonError> {
        use gsi_json::{FromJson, JsonError, Value};
        let entries = match v.req("entries")? {
            Value::Array(entries) => entries,
            other => return Err(JsonError::expected("array", other)),
        };
        if entries.len() > self.capacity {
            return Err(JsonError::new("MSHR snapshot exceeds capacity"));
        }
        self.entries.clear();
        for entry in entries {
            let fields = match entry {
                Value::Array(f) if f.len() == 2 => f,
                other => return Err(JsonError::expected("[line, targets]", other)),
            };
            let line = LineAddr::from_json(&fields[0])?;
            let targets = Vec::<T>::from_json(&fields[1])?;
            self.entries.insert(line, targets);
        }
        self.peak = v.read::<u64>("peak")? as usize;
        self.merges = v.read("merges")?;
        self.allocations = v.read("allocations")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn merge_does_not_consume_capacity() {
        let mut m: Mshr<u32> = Mshr::new(1);
        assert_eq!(m.allocate(LineAddr(1), 0).unwrap(), MshrOutcome::Primary);
        for i in 1..10 {
            assert_eq!(m.allocate(LineAddr(1), i).unwrap(), MshrOutcome::Merged);
        }
        assert_eq!(m.len(), 1);
        assert!(m.is_full());
        assert_eq!(m.complete(LineAddr(1)).unwrap().len(), 10);
        assert!(m.is_empty());
    }

    #[test]
    fn full_rejection_returns_target() {
        let mut m: Mshr<&str> = Mshr::new(1);
        m.allocate(LineAddr(1), "x").unwrap();
        assert_eq!(m.allocate(LineAddr(2), "y"), Err("y"));
    }

    #[test]
    fn complete_unknown_line_is_none() {
        let mut m: Mshr<u32> = Mshr::new(1);
        assert_eq!(m.complete(LineAddr(7)), None);
    }

    #[test]
    fn availability_tracks_allocations() {
        let mut m: Mshr<u32> = Mshr::new(3);
        assert_eq!(m.available(), 3);
        m.allocate(LineAddr(1), 0).unwrap();
        m.allocate(LineAddr(2), 0).unwrap();
        assert_eq!(m.available(), 1);
        m.complete(LineAddr(1));
        assert_eq!(m.available(), 2);
        assert!(m.contains(LineAddr(2)));
        assert!(!m.contains(LineAddr(1)));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _: Mshr<()> = Mshr::new(0);
    }

    #[test]
    fn occupancy_counters_track_history() {
        let mut m: Mshr<u32> = Mshr::new(4);
        m.allocate(LineAddr(1), 0).unwrap();
        m.allocate(LineAddr(2), 0).unwrap();
        m.allocate(LineAddr(1), 1).unwrap();
        m.complete(LineAddr(1));
        m.complete(LineAddr(2));
        m.allocate(LineAddr(3), 0).unwrap();
        assert_eq!(m.peak_occupancy(), 2, "peak survives completions");
        assert_eq!(m.merges(), 1);
        assert_eq!(m.allocations(), 3);
    }
}
