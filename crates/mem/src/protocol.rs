//! Coherence protocols and L1 line states.

use std::fmt;

/// The two GPU L1 coherence protocols compared in case study 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Conventional software GPU coherence: self-invalidate everything on
    /// acquire, write dirty data through to the L2 on store-buffer flushes,
    /// no ownership.
    GpuCoherence,
    /// DeNovo: self-invalidate only unowned lines on acquire; store-buffer
    /// flushes obtain line ownership by registering at the L2 directory;
    /// owned lines are supplied to remote readers by forwarding.
    DeNovo,
}

gsi_json::json_unit_enum!(Protocol { GpuCoherence, DeNovo });

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::GpuCoherence => f.write_str("GPU coherence"),
            Protocol::DeNovo => f.write_str("DeNovo"),
        }
    }
}

/// State of a line present in an L1 cache (absent lines are invalid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L1State {
    /// A clean copy; discarded by acquire self-invalidation.
    Valid,
    /// A registered, dirty copy (DeNovo only). Survives acquires; must be
    /// written back when evicted or recalled.
    Owned,
}

gsi_json::json_unit_enum!(L1State { Valid, Owned });

impl L1State {
    /// Whether acquire self-invalidation removes a line in this state under
    /// the given protocol.
    pub fn invalidated_on_acquire(self, protocol: Protocol) -> bool {
        match (protocol, self) {
            (Protocol::GpuCoherence, _) => true,
            (Protocol::DeNovo, L1State::Valid) => true,
            (Protocol::DeNovo, L1State::Owned) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_coherence_invalidates_everything() {
        assert!(L1State::Valid.invalidated_on_acquire(Protocol::GpuCoherence));
        assert!(L1State::Owned.invalidated_on_acquire(Protocol::GpuCoherence));
    }

    #[test]
    fn denovo_keeps_owned_lines() {
        assert!(L1State::Valid.invalidated_on_acquire(Protocol::DeNovo));
        assert!(!L1State::Owned.invalidated_on_acquire(Protocol::DeNovo));
    }

    #[test]
    fn display() {
        assert_eq!(Protocol::GpuCoherence.to_string(), "GPU coherence");
        assert_eq!(Protocol::DeNovo.to_string(), "DeNovo");
    }
}
