//! The main-memory channel model: fixed access latency plus a bandwidth
//! constraint (a minimum gap between successive requests).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A single memory channel shared by all L2 banks.
///
/// Jobs carry an opaque payload `T` returned when the access completes.
#[derive(Debug, Clone)]
pub struct DramModel<T> {
    latency: u64,
    gap: u64,
    next_free: u64,
    jobs: BinaryHeap<Reverse<(u64, u64, JobWrap<T>)>>,
    seq: u64,
    /// Total requests serviced.
    pub requests: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct JobWrap<T>(T);

impl<T: Eq> Ord for JobWrap<T> {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<T: Eq> PartialOrd for JobWrap<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Eq> DramModel<T> {
    /// A channel with the given access latency and request gap.
    pub fn new(latency: u64, gap: u64) -> Self {
        DramModel {
            latency,
            gap: gap.max(1),
            next_free: 0,
            jobs: BinaryHeap::new(),
            seq: 0,
            requests: 0,
        }
    }

    /// Enqueue an access at cycle `now`; returns the completion cycle.
    pub fn access(&mut self, now: u64, payload: T) -> u64 {
        self.access_jittered(now, 0, payload)
    }

    /// [`access`](Self::access) with `extra` cycles of service-latency
    /// jitter (fault injection: a slow bank cycle). The bank's availability
    /// window (`gap`) is unchanged, only this access completes later.
    pub fn access_jittered(&mut self, now: u64, extra: u64, payload: T) -> u64 {
        let start = now.max(self.next_free);
        self.next_free = start + self.gap;
        let done = start + self.latency + extra;
        self.jobs.push(Reverse((done, self.seq, JobWrap(payload))));
        self.seq += 1;
        self.requests += 1;
        done
    }

    /// Pop every access completing at or before `now`.
    pub fn complete(&mut self, now: u64) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(Reverse((done, _, _))) = self.jobs.peek() {
            if *done > now {
                break;
            }
            let Reverse((_, _, JobWrap(p))) = self.jobs.pop().expect("peeked");
            out.push(p);
        }
        out
    }

    /// Accesses still in flight.
    pub fn in_flight(&self) -> usize {
        self.jobs.len()
    }

    /// Completion cycle of the earliest in-flight access, if any — the
    /// channel's contribution to the event calendar.
    pub fn next_completion(&self) -> Option<u64> {
        self.jobs.peek().map(|Reverse((done, _, _))| *done)
    }
}

impl<T: Eq + gsi_json::ToJson> DramModel<T> {
    /// Serialize channel availability and in-flight jobs (sorted by
    /// completion time and sequence, so re-pushing reproduces pop order).
    pub fn snapshot(&self) -> gsi_json::Value {
        use gsi_json::Value;
        let mut jobs: Vec<&(u64, u64, JobWrap<T>)> = self.jobs.iter().map(|r| &r.0).collect();
        jobs.sort_by_key(|(done, seq, _)| (*done, *seq));
        let jobs: Vec<Value> = jobs
            .into_iter()
            .map(|(done, seq, JobWrap(p))| {
                Value::Array(vec![Value::U64(*done), Value::U64(*seq), p.to_json()])
            })
            .collect();
        gsi_json::obj! {
            "next_free" => self.next_free,
            "seq" => self.seq,
            "requests" => self.requests,
            "jobs" => Value::Array(jobs)
        }
    }
}

impl<T: Eq + gsi_json::FromJson> DramModel<T> {
    /// Restore onto a freshly constructed channel of the same timing.
    pub fn restore(&mut self, v: &gsi_json::Value) -> Result<(), gsi_json::JsonError> {
        use gsi_json::{FromJson, JsonError, Value};
        self.next_free = v.read("next_free")?;
        self.seq = v.read("seq")?;
        self.requests = v.read("requests")?;
        self.jobs.clear();
        let jobs = match v.req("jobs")? {
            Value::Array(jobs) => jobs,
            other => return Err(JsonError::expected("array", other)),
        };
        for job in jobs {
            let fields = match job {
                Value::Array(f) if f.len() == 3 => f,
                other => return Err(JsonError::expected("[done, seq, payload]", other)),
            };
            self.jobs.push(Reverse((
                u64::from_json(&fields[0])?,
                u64::from_json(&fields[1])?,
                JobWrap(T::from_json(&fields[2])?),
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_applies() {
        let mut d: DramModel<u32> = DramModel::new(100, 4);
        let done = d.access(10, 1);
        assert_eq!(done, 110);
        assert!(d.complete(109).is_empty());
        assert_eq!(d.complete(110), vec![1]);
        assert_eq!(d.in_flight(), 0);
    }

    #[test]
    fn bandwidth_gap_serializes_bursts() {
        let mut d: DramModel<u32> = DramModel::new(100, 4);
        let a = d.access(0, 0);
        let b = d.access(0, 1);
        let c = d.access(0, 2);
        assert_eq!(a, 100);
        assert_eq!(b, 104);
        assert_eq!(c, 108);
        assert_eq!(d.requests, 3);
    }

    #[test]
    fn spaced_requests_see_no_queuing() {
        let mut d: DramModel<u32> = DramModel::new(100, 4);
        assert_eq!(d.access(0, 0), 100);
        assert_eq!(d.access(50, 1), 150);
    }

    #[test]
    fn completion_order_is_fifo_for_equal_times() {
        let mut d: DramModel<u32> = DramModel::new(10, 1);
        d.access(0, 7);
        d.access(0, 8);
        assert_eq!(d.complete(100), vec![7, 8]);
    }
}
