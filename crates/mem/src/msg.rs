//! The memory-protocol messages exchanged over the mesh.

use crate::line::{LineAddr, WordMask};
use gsi_core::RequestId;
use gsi_noc::NodeId;

/// Where a fill was serviced. This is exactly the paper's memory-data stall
/// sub-classification, so we reuse [`gsi_core::MemDataCause`].
pub type Provenance = gsi_core::MemDataCause;

/// Atomic read-modify-write kinds understood by the L2 banks.
///
/// Mirrors `gsi_isa::AtomOp`; the SM layer maps between them so this crate
/// stays independent of the ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AtomKind {
    /// Compare-and-swap: returns old; writes `b` if old equals `a`.
    Cas,
    /// Exchange: returns old; writes `a`.
    Exch,
    /// Fetch-and-add: returns old; writes `old + a`.
    Add,
    /// Atomic read: returns old.
    Load,
    /// Atomic write: writes `a`; returns old.
    Store,
}

impl AtomKind {
    /// Apply the operation to the current value, returning
    /// `(new_value, returned_value)`.
    pub fn apply(self, old: u64, a: u64, b: u64) -> (u64, u64) {
        match self {
            AtomKind::Cas => {
                if old == a {
                    (b, old)
                } else {
                    (old, old)
                }
            }
            AtomKind::Exch => (a, old),
            AtomKind::Add => (old.wrapping_add(a), old),
            AtomKind::Load => (old, old),
            AtomKind::Store => (a, old),
        }
    }
}

/// Messages carried by the mesh between cores (L1 side) and L2 banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemMsg {
    // ---- core -> L2 bank ----
    /// Read request for a line.
    GetLine {
        /// Requested line.
        line: LineAddr,
        /// Node to send the fill to.
        reply_to: NodeId,
        /// Requesting core index (for directory checks).
        core: u8,
    },
    /// GPU-coherence write-through of the dirty words of one line.
    WriteWords {
        /// Written line.
        line: LineAddr,
        /// Dirty words.
        mask: WordMask,
        /// Node to send the ack to.
        reply_to: NodeId,
    },
    /// DeNovo ownership registration for one line.
    RegisterOwner {
        /// Line to own.
        line: LineAddr,
        /// Node to send the ack to.
        reply_to: NodeId,
        /// Requesting core index.
        core: u8,
    },
    /// DeNovo writeback of an owned line (eviction or recall response).
    OwnerWriteback {
        /// Written-back line.
        line: LineAddr,
        /// Core relinquishing ownership (directory is only cleared when it
        /// still names this core).
        core: u8,
    },
    /// Atomic read-modify-write, serviced at the L2 bank (or forwarded to
    /// the owning L1 under owned atomics).
    AtomicOp {
        /// Word address.
        addr: u64,
        /// Operation.
        kind: AtomKind,
        /// First operand.
        a: u64,
        /// Second operand.
        b: u64,
        /// Request token echoed in the response.
        req: RequestId,
        /// Node to send the response to.
        reply_to: NodeId,
        /// Requesting core index (for ownership grants).
        core: u8,
    },

    // ---- L2 bank (or remote owner L1) -> core ----
    /// Data response for a line; completes every MSHR target waiting on it.
    Fill {
        /// Filled line.
        line: LineAddr,
        /// Where the data came from.
        provenance: Provenance,
    },
    /// Ack for one [`MemMsg::WriteWords`].
    WriteAck {
        /// Acked line.
        line: LineAddr,
    },
    /// Ack for one [`MemMsg::RegisterOwner`]; the core installs the line in
    /// `Owned` state.
    RegisterAck {
        /// Registered line.
        line: LineAddr,
    },
    /// Atomic result.
    AtomicResp {
        /// Echoed request token.
        req: RequestId,
        /// The value returned by the operation (the old memory value).
        value: u64,
    },

    // ---- L2 bank -> owner core (DeNovo) ----
    /// The directory forwards a read of an owned line to its owner, which
    /// responds directly to `reply_to` with a remote-L1 fill.
    FwdGet {
        /// Requested line.
        line: LineAddr,
        /// The original requester's node.
        reply_to: NodeId,
    },
    /// The directory recalls ownership (another core is registering); the
    /// owner invalidates and sends [`MemMsg::OwnerWriteback`].
    Recall {
        /// Recalled line.
        line: LineAddr,
    },
}

gsi_json::json_unit_enum!(AtomKind { Cas, Exch, Add, Load, Store });

impl gsi_json::ToJson for MemMsg {
    /// Tagged-object encoding: `{"t": "<variant>", …fields}`. Used by the
    /// simulator snapshot to serialize in-flight protocol traffic.
    fn to_json(&self) -> gsi_json::Value {
        use gsi_json::obj;
        match *self {
            MemMsg::GetLine { line, reply_to, core } => {
                obj! { "t" => "GetLine", "line" => line, "reply_to" => reply_to, "core" => core }
            }
            MemMsg::WriteWords { line, mask, reply_to } => {
                obj! { "t" => "WriteWords", "line" => line, "mask" => mask, "reply_to" => reply_to }
            }
            MemMsg::RegisterOwner { line, reply_to, core } => {
                obj! { "t" => "RegisterOwner", "line" => line, "reply_to" => reply_to, "core" => core }
            }
            MemMsg::OwnerWriteback { line, core } => {
                obj! { "t" => "OwnerWriteback", "line" => line, "core" => core }
            }
            MemMsg::AtomicOp { addr, kind, a, b, req, reply_to, core } => obj! {
                "t" => "AtomicOp", "addr" => addr, "kind" => kind, "a" => a, "b" => b,
                "req" => req, "reply_to" => reply_to, "core" => core
            },
            MemMsg::Fill { line, provenance } => {
                obj! { "t" => "Fill", "line" => line, "provenance" => provenance }
            }
            MemMsg::WriteAck { line } => obj! { "t" => "WriteAck", "line" => line },
            MemMsg::RegisterAck { line } => obj! { "t" => "RegisterAck", "line" => line },
            MemMsg::AtomicResp { req, value } => {
                obj! { "t" => "AtomicResp", "req" => req, "value" => value }
            }
            MemMsg::FwdGet { line, reply_to } => {
                obj! { "t" => "FwdGet", "line" => line, "reply_to" => reply_to }
            }
            MemMsg::Recall { line } => obj! { "t" => "Recall", "line" => line },
        }
    }
}

impl gsi_json::FromJson for MemMsg {
    fn from_json(v: &gsi_json::Value) -> Result<Self, gsi_json::JsonError> {
        let tag: String = v.read("t")?;
        Ok(match tag.as_str() {
            "GetLine" => MemMsg::GetLine {
                line: v.read("line")?,
                reply_to: v.read("reply_to")?,
                core: v.read("core")?,
            },
            "WriteWords" => MemMsg::WriteWords {
                line: v.read("line")?,
                mask: v.read("mask")?,
                reply_to: v.read("reply_to")?,
            },
            "RegisterOwner" => MemMsg::RegisterOwner {
                line: v.read("line")?,
                reply_to: v.read("reply_to")?,
                core: v.read("core")?,
            },
            "OwnerWriteback" => {
                MemMsg::OwnerWriteback { line: v.read("line")?, core: v.read("core")? }
            }
            "AtomicOp" => MemMsg::AtomicOp {
                addr: v.read("addr")?,
                kind: v.read("kind")?,
                a: v.read("a")?,
                b: v.read("b")?,
                req: v.read("req")?,
                reply_to: v.read("reply_to")?,
                core: v.read("core")?,
            },
            "Fill" => MemMsg::Fill { line: v.read("line")?, provenance: v.read("provenance")? },
            "WriteAck" => MemMsg::WriteAck { line: v.read("line")? },
            "RegisterAck" => MemMsg::RegisterAck { line: v.read("line")? },
            "AtomicResp" => MemMsg::AtomicResp { req: v.read("req")?, value: v.read("value")? },
            "FwdGet" => MemMsg::FwdGet { line: v.read("line")?, reply_to: v.read("reply_to")? },
            "Recall" => MemMsg::Recall { line: v.read("line")? },
            other => {
                return Err(gsi_json::JsonError::new(format!("unknown MemMsg variant `{other}`")))
            }
        })
    }
}

impl MemMsg {
    /// Size in bytes on the mesh: 8-byte control header, plus 8 bytes per
    /// data word carried.
    pub fn size_bytes(&self) -> u32 {
        match self {
            MemMsg::GetLine { .. }
            | MemMsg::RegisterOwner { .. }
            | MemMsg::WriteAck { .. }
            | MemMsg::RegisterAck { .. }
            | MemMsg::FwdGet { .. }
            | MemMsg::Recall { .. } => 8,
            MemMsg::AtomicOp { .. } => 24,
            MemMsg::AtomicResp { .. } => 16,
            MemMsg::WriteWords { mask, .. } => 8 + 8 * mask.count(),
            MemMsg::Fill { .. } | MemMsg::OwnerWriteback { .. } => 8 + 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_semantics() {
        assert_eq!(AtomKind::Cas.apply(0, 0, 1), (1, 0)); // success
        assert_eq!(AtomKind::Cas.apply(2, 0, 1), (2, 2)); // failure
        assert_eq!(AtomKind::Exch.apply(5, 9, 0), (9, 5));
        assert_eq!(AtomKind::Add.apply(10, 3, 0), (13, 10));
        assert_eq!(AtomKind::Add.apply(u64::MAX, 1, 0), (0, u64::MAX));
        assert_eq!(AtomKind::Load.apply(7, 0, 0), (7, 7));
        assert_eq!(AtomKind::Store.apply(7, 9, 0), (9, 7));
    }

    #[test]
    fn control_messages_are_small_and_data_messages_large() {
        let get = MemMsg::GetLine { line: LineAddr(1), reply_to: NodeId(0), core: 0 };
        assert_eq!(get.size_bytes(), 8);
        let fill = MemMsg::Fill { line: LineAddr(1), provenance: Provenance::L2 };
        assert_eq!(fill.size_bytes(), 72);
        // DeNovo registration carries no data: the traffic advantage of
        // ownership over write-through.
        let reg = MemMsg::RegisterOwner { line: LineAddr(1), reply_to: NodeId(0), core: 0 };
        let wt =
            MemMsg::WriteWords { line: LineAddr(1), mask: WordMask::FULL, reply_to: NodeId(0) };
        assert!(reg.size_bytes() < wt.size_bytes());
        assert_eq!(wt.size_bytes(), 72);
    }

    #[test]
    fn partial_write_through_scales_with_dirty_words() {
        let one =
            MemMsg::WriteWords { line: LineAddr(0), mask: WordMask(0b1), reply_to: NodeId(0) };
        assert_eq!(one.size_bytes(), 16);
    }
}
