//! Randomized tests for the hardware structures against simple reference
//! models, driven by a fixed-seed SplitMix64 generator (deterministic, no
//! external crates).

use gsi_mem::{LineAddr, Mshr, MshrOutcome, StoreBuffer, TagArray, WordMask};
use std::collections::{HashMap, HashSet};

/// Deterministic SplitMix64 generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n > 0`).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// The tag array never exceeds capacity, and a hit is returned iff the line
/// was inserted and not yet evicted/removed (checked against a reference
/// set maintained from the array's own reports).
#[test]
fn tag_array_matches_reference() {
    let mut rng = Rng::new(0x3E3_0001);
    for _case in 0..48 {
        let sets = 1 + rng.below(7) as usize;
        let ways = 1 + rng.below(3) as usize;
        let nops = 1 + rng.below(199) as usize;

        let mut c: TagArray<u32> = TagArray::new(sets, ways);
        let mut resident: HashSet<u64> = HashSet::new();
        for _ in 0..nops {
            let op = rng.below(3) as u8;
            let line = LineAddr(rng.below(64));
            match op {
                0 => {
                    let evicted = c.insert(line, 0);
                    resident.insert(line.0);
                    if let Some(e) = evicted {
                        assert!(resident.remove(&e.line.0), "evicted a non-resident line");
                        assert_ne!(e.line, line);
                    }
                }
                1 => {
                    let hit = c.get(line).is_some();
                    assert_eq!(hit, resident.contains(&line.0));
                }
                _ => {
                    let removed = c.remove(line).is_some();
                    assert_eq!(removed, resident.remove(&line.0));
                }
            }
            assert!(c.len() <= c.capacity());
            assert_eq!(c.len(), resident.len());
        }
    }
}

/// MSHR: entries never exceed capacity; merges never allocate; every
/// completion returns exactly the targets registered for that line.
#[test]
fn mshr_matches_reference() {
    let mut rng = Rng::new(0x3E3_0002);
    for _case in 0..48 {
        let cap = 1 + rng.below(7) as usize;
        let nops = 1 + rng.below(199) as usize;

        let mut m: Mshr<u32> = Mshr::new(cap);
        let mut model: HashMap<u64, Vec<u32>> = HashMap::new();
        for _ in 0..nops {
            let alloc = rng.flag();
            let line = rng.below(16);
            let tag = rng.below(1000) as u32;
            let line_a = LineAddr(line);
            if alloc {
                match m.allocate(line_a, tag) {
                    Ok(MshrOutcome::Primary) => {
                        assert!(!model.contains_key(&line));
                        model.insert(line, vec![tag]);
                    }
                    Ok(MshrOutcome::Merged) => {
                        model.get_mut(&line).expect("merge implies entry").push(tag);
                    }
                    Err(returned) => {
                        assert_eq!(returned, tag);
                        assert_eq!(model.len(), cap);
                        assert!(!model.contains_key(&line));
                    }
                }
            } else {
                let got = m.complete(line_a);
                let want = model.remove(&line);
                assert_eq!(got, want);
            }
            assert_eq!(m.len(), model.len());
            assert!(m.len() <= cap);
        }
    }
}

/// Store buffer: combining unions masks; drain order is FIFO by first
/// touch; capacity is respected.
#[test]
fn store_buffer_matches_reference() {
    let mut rng = Rng::new(0x3E3_0003);
    for _case in 0..48 {
        let cap = 1 + rng.below(7) as usize;
        let nops = 1 + rng.below(199) as usize;

        let mut sb = StoreBuffer::new(cap);
        let mut model: Vec<(u64, u8)> = Vec::new();
        for _ in 0..nops {
            let line = rng.below(16);
            let mask = 1 + rng.below(255) as u8;
            match sb.record(LineAddr(line), WordMask(mask)) {
                Ok(combined) => {
                    if combined {
                        let e = model.iter_mut().find(|(l, _)| *l == line).expect("present");
                        e.1 |= mask;
                    } else {
                        assert!(model.len() < cap);
                        model.push((line, mask));
                    }
                }
                Err(_full) => {
                    assert_eq!(model.len(), cap);
                    assert!(!model.iter().any(|(l, _)| *l == line));
                    // Drain one entry to make progress, FIFO order.
                    let (dl, dm) = sb.pop_oldest().expect("full buffer pops");
                    let (ml, mm) = model.remove(0);
                    assert_eq!(dl, LineAddr(ml));
                    assert_eq!(dm, WordMask(mm));
                }
            }
            assert_eq!(sb.len(), model.len());
        }
        // Final drain matches the model exactly.
        while let Some((l, m)) = sb.pop_oldest() {
            let (ml, mm) = model.remove(0);
            assert_eq!(l, LineAddr(ml));
            assert_eq!(m, WordMask(mm));
        }
        assert!(model.is_empty());
    }
}

/// WordMask set/contains agrees with a bit-set model and the address
/// iterator inverts it.
#[test]
fn word_mask_roundtrip() {
    let mut rng = Rng::new(0x3E3_0004);
    for _case in 0..48 {
        let naddrs = rng.below(16) as usize;
        let addrs: Vec<u64> = (0..naddrs).map(|_| rng.below(64)).collect();

        let base = 0x1000u64; // line-aligned
        let mut mask = WordMask::EMPTY;
        let mut model = HashSet::new();
        for a in &addrs {
            let byte = base + (a / 8) * 8;
            mask.set_addr(byte);
            model.insert(byte & !7);
        }
        for w in 0..8u64 {
            let byte = base + w * 8;
            assert_eq!(mask.contains_addr(byte), model.contains(&byte));
        }
        let listed: HashSet<u64> = mask.addrs(gsi_mem::line_of(base)).collect();
        assert_eq!(listed, model);
    }
}
