//! Property tests for the hardware structures against simple reference
//! models.

use gsi_mem::{LineAddr, Mshr, MshrOutcome, StoreBuffer, TagArray, WordMask};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

proptest! {
    /// The tag array never exceeds capacity, and a hit is returned iff the
    /// line was inserted and not yet evicted/removed (checked against a
    /// reference set maintained from the array's own reports).
    #[test]
    fn tag_array_matches_reference(
        ops in proptest::collection::vec((0u8..3, 0u64..64), 1..200),
        sets in 1usize..8,
        ways in 1usize..4,
    ) {
        let mut c: TagArray<u32> = TagArray::new(sets, ways);
        let mut resident: HashSet<u64> = HashSet::new();
        for (op, line) in ops {
            let line = LineAddr(line);
            match op {
                0 => {
                    let evicted = c.insert(line, 0);
                    resident.insert(line.0);
                    if let Some(e) = evicted {
                        prop_assert!(resident.remove(&e.line.0), "evicted a non-resident line");
                        prop_assert_ne!(e.line, line);
                    }
                }
                1 => {
                    let hit = c.get(line).is_some();
                    prop_assert_eq!(hit, resident.contains(&line.0));
                }
                _ => {
                    let removed = c.remove(line).is_some();
                    prop_assert_eq!(removed, resident.remove(&line.0));
                }
            }
            prop_assert!(c.len() <= c.capacity());
            prop_assert_eq!(c.len(), resident.len());
        }
    }

    /// MSHR: entries never exceed capacity; merges never allocate; every
    /// completion returns exactly the targets registered for that line.
    #[test]
    fn mshr_matches_reference(
        ops in proptest::collection::vec((any::<bool>(), 0u64..16, 0u32..1000), 1..200),
        cap in 1usize..8,
    ) {
        let mut m: Mshr<u32> = Mshr::new(cap);
        let mut model: HashMap<u64, Vec<u32>> = HashMap::new();
        for (alloc, line, tag) in ops {
            let line_a = LineAddr(line);
            if alloc {
                match m.allocate(line_a, tag) {
                    Ok(MshrOutcome::Primary) => {
                        prop_assert!(!model.contains_key(&line));
                        model.insert(line, vec![tag]);
                    }
                    Ok(MshrOutcome::Merged) => {
                        model.get_mut(&line).expect("merge implies entry").push(tag);
                    }
                    Err(returned) => {
                        prop_assert_eq!(returned, tag);
                        prop_assert_eq!(model.len(), cap);
                        prop_assert!(!model.contains_key(&line));
                    }
                }
            } else {
                let got = m.complete(line_a);
                let want = model.remove(&line);
                prop_assert_eq!(got, want);
            }
            prop_assert_eq!(m.len(), model.len());
            prop_assert!(m.len() <= cap);
        }
    }

    /// Store buffer: combining unions masks; drain order is FIFO by first
    /// touch; capacity is respected.
    #[test]
    fn store_buffer_matches_reference(
        ops in proptest::collection::vec((0u64..16, 1u8..=255), 1..200),
        cap in 1usize..8,
    ) {
        let mut sb = StoreBuffer::new(cap);
        let mut model: Vec<(u64, u8)> = Vec::new();
        for (line, mask) in ops {
            match sb.record(LineAddr(line), WordMask(mask)) {
                Ok(combined) => {
                    if combined {
                        let e = model.iter_mut().find(|(l, _)| *l == line).expect("present");
                        e.1 |= mask;
                    } else {
                        prop_assert!(model.len() < cap);
                        model.push((line, mask));
                    }
                }
                Err(()) => {
                    prop_assert_eq!(model.len(), cap);
                    prop_assert!(!model.iter().any(|(l, _)| *l == line));
                    // Drain one entry to make progress, FIFO order.
                    let (dl, dm) = sb.pop_oldest().expect("full buffer pops");
                    let (ml, mm) = model.remove(0);
                    prop_assert_eq!(dl, LineAddr(ml));
                    prop_assert_eq!(dm, WordMask(mm));
                }
            }
            prop_assert_eq!(sb.len(), model.len());
        }
        // Final drain matches the model exactly.
        while let Some((l, m)) = sb.pop_oldest() {
            let (ml, mm) = model.remove(0);
            prop_assert_eq!(l, LineAddr(ml));
            prop_assert_eq!(m, WordMask(mm));
        }
        prop_assert!(model.is_empty());
    }

    /// WordMask set/contains agrees with a bit-set model and the address
    /// iterator inverts it.
    #[test]
    fn word_mask_roundtrip(addrs in proptest::collection::vec(0u64..64, 0..16)) {
        let base = 0x1000u64; // line-aligned
        let mut mask = WordMask::EMPTY;
        let mut model = HashSet::new();
        for a in &addrs {
            let byte = base + (a / 8) * 8;
            mask.set_addr(byte);
            model.insert(byte & !7);
        }
        for w in 0..8u64 {
            let byte = base + w * 8;
            prop_assert_eq!(mask.contains_addr(byte), model.contains(&byte));
        }
        let listed: HashSet<u64> = mask.addrs(gsi_mem::line_of(base)).collect();
        prop_assert_eq!(listed, model);
    }
}
