//! # GSI core — GPU Stall Inspector
//!
//! This crate implements the contribution of *"GSI: A GPU Stall Inspector to
//! characterize the sources of memory stalls for tightly coupled GPUs"*
//! (Alsop, ISPASS 2016): a per-cycle stall attribution methodology for the
//! issue stage of a GPU streaming multiprocessor (SM).
//!
//! The methodology has two levels:
//!
//! 1. **Instruction classification** ([`classify_instruction`], Algorithm 1 of
//!    the paper): every warp instruction considered by the issue stage in a
//!    cycle is assigned the stall cause that is most *strongly* preventing it
//!    from issuing.
//! 2. **Cycle classification** ([`judge_cycle`], Algorithm 2): a cycle in
//!    which no instruction issues is assigned the *weakest* stall cause found
//!    among the considered instructions — the cause of the instruction that
//!    was closest to issuing, and therefore the most profitable to remove.
//!
//! Memory **data** stalls are sub-classified by where the dependency load was
//! serviced ([`MemDataCause`]). Because the service point is unknown while
//! the load is still in flight, stall cycles are first charged to the
//! outstanding request in an [`AttributionLedger`] and committed to the right
//! bucket when the fill returns. Memory **structural** stalls are
//! sub-classified by the cause of the load/store-unit rejection
//! ([`MemStructCause`]), which is known immediately.
//!
//! The [`StallCollector`] ties the pieces together for one SM, and
//! [`report`] renders breakdowns the way the paper's figures do (normalized
//! stacked bars, one per configuration).
//!
//! ```
//! use gsi_core::{InstrHazards, MemStructCause, StallKind, judge_cycle};
//!
//! // Two warps were considered this cycle: one blocked on a pending load,
//! // one rejected by a full MSHR. Nothing issued.
//! let blocked_on_load = InstrHazards::mem_data(gsi_core::RequestId(7));
//! let rejected = InstrHazards::mem_structural(MemStructCause::MshrFull);
//! let verdict = judge_cycle(false, &[blocked_on_load, rejected]);
//! // Algorithm 2 gives memory structural stalls the highest priority.
//! assert_eq!(verdict.kind, StallKind::MemoryStructural);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breakdown;
mod classify;
mod collector;
mod ledger;
pub mod report;
mod stall;

pub use breakdown::StallBreakdown;
pub use classify::{
    classify_cycle, classify_cycle_with, classify_instruction, judge_cycle, judge_cycle_scratch,
    judge_cycle_with, CyclePriority, CycleVerdict, InstrHazards,
};
pub use collector::{ConservationError, StallCollector};
pub use ledger::AttributionLedger;
pub use stall::{MemDataCause, MemStructCause, RequestId, StallKind};
