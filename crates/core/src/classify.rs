//! Algorithms 1 and 2 of the paper: instruction and issue-cycle stall
//! classification.

use crate::stall::{MemStructCause, RequestId, StallKind};

/// The hazards observed for one warp instruction considered by the issue
/// stage in one cycle.
///
/// This is the input to Algorithm 1. Each field corresponds to one branch of
/// the paper's priority chain; several may be true at once, and the
/// classifier picks the *strongest* (the one most likely to still hold next
/// cycle).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrHazards {
    /// The next instruction to issue is unavailable (instruction-buffer
    /// refetch after a taken branch).
    pub control: bool,
    /// The warp is blocked on a pending synchronization (acquire, release,
    /// or thread-block barrier).
    pub synchronization: bool,
    /// The instruction has a data hazard on a pending load; the id of the
    /// outstanding request is recorded so the stall can later be attributed
    /// to the level that services it.
    pub mem_data: Option<RequestId>,
    /// The instruction has a structural hazard on the load/store unit, with
    /// the rejection cause.
    pub mem_structural: Option<MemStructCause>,
    /// The instruction has a data hazard on a pending compute operation.
    pub compute_data: bool,
    /// The instruction has a structural hazard on a compute unit.
    pub compute_structural: bool,
}

impl InstrHazards {
    /// No hazards: the instruction can issue.
    pub fn none() -> Self {
        Self::default()
    }

    /// Convenience constructor for a control hazard.
    pub fn control() -> Self {
        Self { control: true, ..Self::default() }
    }

    /// Convenience constructor for a synchronization hazard.
    pub fn synchronization() -> Self {
        Self { synchronization: true, ..Self::default() }
    }

    /// Convenience constructor for a data hazard on the given pending load.
    pub fn mem_data(req: RequestId) -> Self {
        Self { mem_data: Some(req), ..Self::default() }
    }

    /// Convenience constructor for a load/store-unit structural hazard.
    pub fn mem_structural(cause: MemStructCause) -> Self {
        Self { mem_structural: Some(cause), ..Self::default() }
    }

    /// Convenience constructor for a data hazard on a pending compute op.
    pub fn compute_data() -> Self {
        Self { compute_data: true, ..Self::default() }
    }

    /// Convenience constructor for a compute-unit structural hazard.
    pub fn compute_structural() -> Self {
        Self { compute_structural: true, ..Self::default() }
    }

    /// True when no hazard prevents issue.
    pub fn can_issue(&self) -> bool {
        !self.control
            && !self.synchronization
            && self.mem_data.is_none()
            && self.mem_structural.is_none()
            && !self.compute_data
            && !self.compute_structural
    }
}

/// Algorithm 1: classify one considered warp instruction by the *strongest*
/// stall cause present.
///
/// Priority (strongest first): control, synchronization, memory data,
/// memory structural, compute data, compute structural; otherwise the
/// instruction can issue and the result is [`StallKind::NoStall`]. The
/// "idle" case of the paper's Algorithm 1 (no active warps at all) has no
/// per-instruction input and is handled by [`judge_cycle`] when the
/// considered set is empty.
///
/// ```
/// use gsi_core::{classify_instruction, InstrHazards, StallKind};
/// let mut h = InstrHazards::synchronization();
/// h.compute_data = true; // both present: sync is stronger
/// assert_eq!(classify_instruction(&h), StallKind::Synchronization);
/// ```
pub fn classify_instruction(h: &InstrHazards) -> StallKind {
    if h.control {
        StallKind::Control
    } else if h.synchronization {
        StallKind::Synchronization
    } else if h.mem_data.is_some() {
        StallKind::MemoryData
    } else if h.mem_structural.is_some() {
        StallKind::MemoryStructural
    } else if h.compute_data {
        StallKind::ComputeData
    } else if h.compute_structural {
        StallKind::ComputeStructural
    } else {
        StallKind::NoStall
    }
}

/// The order in which Algorithm 2 selects among the stall causes present
/// in a cycle.
///
/// The paper notes (Chapter 7) that GSI's methodology generalizes: "when
/// studying architectural changes that affect functional unit congestion or
/// latency, compute stalls may be prioritized ... instead of memory
/// stalls". A `CyclePriority` captures that choice; the default is the
/// paper's memory-focused Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CyclePriority {
    order: [StallKind; 6],
}

impl CyclePriority {
    /// The paper's Algorithm 2 ordering: memory structural, memory data,
    /// synchronization, compute structural, compute data, control.
    pub fn memory_focused() -> Self {
        CyclePriority {
            order: [
                StallKind::MemoryStructural,
                StallKind::MemoryData,
                StallKind::Synchronization,
                StallKind::ComputeStructural,
                StallKind::ComputeData,
                StallKind::Control,
            ],
        }
    }

    /// Prioritize compute stalls — for studying functional-unit congestion
    /// or latency changes.
    pub fn compute_focused() -> Self {
        CyclePriority {
            order: [
                StallKind::ComputeStructural,
                StallKind::ComputeData,
                StallKind::Synchronization,
                StallKind::MemoryStructural,
                StallKind::MemoryData,
                StallKind::Control,
            ],
        }
    }

    /// Prioritize control stalls — for studying divergence-related software
    /// changes.
    pub fn control_focused() -> Self {
        CyclePriority {
            order: [
                StallKind::Control,
                StallKind::Synchronization,
                StallKind::MemoryStructural,
                StallKind::MemoryData,
                StallKind::ComputeStructural,
                StallKind::ComputeData,
            ],
        }
    }

    /// A custom ordering.
    ///
    /// # Errors
    ///
    /// Returns the offending kind if `order` is not a permutation of the
    /// six stall categories (everything except `NoStall` and `Idle`).
    pub fn custom(order: [StallKind; 6]) -> Result<Self, StallKind> {
        for (i, k) in order.iter().enumerate() {
            if matches!(k, StallKind::NoStall | StallKind::Idle) {
                return Err(*k);
            }
            if order[..i].contains(k) {
                return Err(*k);
            }
        }
        Ok(CyclePriority { order })
    }

    /// The ordering, highest priority first.
    pub fn order(&self) -> &[StallKind; 6] {
        &self.order
    }
}

impl Default for CyclePriority {
    fn default() -> Self {
        Self::memory_focused()
    }
}

/// Algorithm 2: classify the issue cycle from the classifications of the
/// individual considered instructions.
///
/// Priority (selected first): no-stall (if anything issued), memory
/// structural, memory data, synchronization, compute structural, compute
/// data, control, idle. The cycle takes the *weakest* stall cause found —
/// the cause of the instruction closest to issuing — except that memory and
/// synchronization stalls are deliberately prioritized over compute stalls
/// (the paper's focus is the memory system), so this is not an exact
/// inversion of Algorithm 1.
///
/// `issued` must be true when at least one instruction issued this cycle.
pub fn classify_cycle(issued: bool, instr_kinds: &[StallKind]) -> StallKind {
    classify_cycle_with(&CyclePriority::memory_focused(), issued, instr_kinds)
}

/// [`classify_cycle`] under an explicit [`CyclePriority`].
pub fn classify_cycle_with(
    priority: &CyclePriority,
    issued: bool,
    instr_kinds: &[StallKind],
) -> StallKind {
    if issued {
        return StallKind::NoStall;
    }
    for &k in priority.order() {
        if instr_kinds.contains(&k) {
            return k;
        }
    }
    StallKind::Idle
}

/// The outcome of classifying one issue cycle: the chosen category plus the
/// detail needed for sub-classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleVerdict {
    /// The category charged to this cycle.
    pub kind: StallKind,
    /// For [`StallKind::MemoryStructural`] cycles, the rejection cause of
    /// the instruction that determined the verdict.
    pub mem_structural: Option<MemStructCause>,
    /// For [`StallKind::MemoryData`] cycles, the outstanding request the
    /// stall should be charged to in the attribution ledger.
    pub blocking_request: Option<RequestId>,
}

impl CycleVerdict {
    /// A verdict with no sub-classification detail.
    pub fn bare(kind: StallKind) -> Self {
        CycleVerdict { kind, mem_structural: None, blocking_request: None }
    }
}

/// Run Algorithm 1 over every considered instruction and Algorithm 2 over
/// the results, returning the cycle verdict with sub-classification detail
/// taken from the first instruction whose classification matches the cycle's.
///
/// An empty `considered` slice yields an [`StallKind::Idle`] verdict (the
/// "no active warps" case), unless `issued` is true.
pub fn judge_cycle(issued: bool, considered: &[InstrHazards]) -> CycleVerdict {
    judge_cycle_with(&CyclePriority::memory_focused(), issued, considered)
}

/// [`judge_cycle`] under an explicit [`CyclePriority`].
pub fn judge_cycle_with(
    priority: &CyclePriority,
    issued: bool,
    considered: &[InstrHazards],
) -> CycleVerdict {
    let mut kinds = Vec::new();
    judge_cycle_scratch(priority, issued, considered, &mut kinds)
}

/// [`judge_cycle_with`] writing the intermediate Algorithm-1 results into a
/// caller-provided scratch buffer, so the per-cycle issue stage does not
/// allocate on stalled cycles. `kinds_scratch` is cleared first; its
/// contents afterwards are the per-instruction classifications.
pub fn judge_cycle_scratch(
    priority: &CyclePriority,
    issued: bool,
    considered: &[InstrHazards],
    kinds_scratch: &mut Vec<StallKind>,
) -> CycleVerdict {
    if issued {
        return CycleVerdict::bare(StallKind::NoStall);
    }
    kinds_scratch.clear();
    kinds_scratch.extend(considered.iter().map(classify_instruction));
    let kind = classify_cycle_with(priority, false, kinds_scratch);
    let mut verdict = CycleVerdict::bare(kind);
    if let Some(pos) = kinds_scratch.iter().position(|&k| k == kind) {
        let h = &considered[pos];
        match kind {
            StallKind::MemoryStructural => verdict.mem_structural = h.mem_structural,
            StallKind::MemoryData => verdict.blocking_request = h.mem_data,
            _ => {}
        }
    }
    verdict
}

gsi_json::json_struct!(CyclePriority { order });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stall::MemDataCause;

    #[test]
    fn instruction_priority_chain() {
        // Build a hazard set with everything on, then peel from strongest.
        let mut h = InstrHazards {
            control: true,
            synchronization: true,
            mem_data: Some(RequestId(1)),
            mem_structural: Some(MemStructCause::MshrFull),
            compute_data: true,
            compute_structural: true,
        };
        assert_eq!(classify_instruction(&h), StallKind::Control);
        h.control = false;
        assert_eq!(classify_instruction(&h), StallKind::Synchronization);
        h.synchronization = false;
        assert_eq!(classify_instruction(&h), StallKind::MemoryData);
        h.mem_data = None;
        assert_eq!(classify_instruction(&h), StallKind::MemoryStructural);
        h.mem_structural = None;
        assert_eq!(classify_instruction(&h), StallKind::ComputeData);
        h.compute_data = false;
        assert_eq!(classify_instruction(&h), StallKind::ComputeStructural);
        h.compute_structural = false;
        assert_eq!(classify_instruction(&h), StallKind::NoStall);
        assert!(h.can_issue());
    }

    #[test]
    fn cycle_priority_chain() {
        let all = [
            StallKind::Control,
            StallKind::Synchronization,
            StallKind::MemoryData,
            StallKind::MemoryStructural,
            StallKind::ComputeData,
            StallKind::ComputeStructural,
        ];
        assert_eq!(classify_cycle(false, &all), StallKind::MemoryStructural);
        let without =
            |k: StallKind| -> Vec<StallKind> { all.iter().copied().filter(|&x| x != k).collect() };
        let mut rest = without(StallKind::MemoryStructural);
        assert_eq!(classify_cycle(false, &rest), StallKind::MemoryData);
        rest.retain(|&x| x != StallKind::MemoryData);
        assert_eq!(classify_cycle(false, &rest), StallKind::Synchronization);
        rest.retain(|&x| x != StallKind::Synchronization);
        assert_eq!(classify_cycle(false, &rest), StallKind::ComputeStructural);
        rest.retain(|&x| x != StallKind::ComputeStructural);
        assert_eq!(classify_cycle(false, &rest), StallKind::ComputeData);
        rest.retain(|&x| x != StallKind::ComputeData);
        assert_eq!(classify_cycle(false, &rest), StallKind::Control);
        rest.retain(|&x| x != StallKind::Control);
        assert_eq!(classify_cycle(false, &rest), StallKind::Idle);
    }

    #[test]
    fn issue_wins_over_everything() {
        assert_eq!(classify_cycle(true, &[StallKind::MemoryStructural]), StallKind::NoStall);
        let v = judge_cycle(true, &[InstrHazards::mem_structural(MemStructCause::MshrFull)]);
        assert_eq!(v.kind, StallKind::NoStall);
    }

    #[test]
    fn empty_cycle_is_idle() {
        assert_eq!(classify_cycle(false, &[]), StallKind::Idle);
        assert_eq!(judge_cycle(false, &[]).kind, StallKind::Idle);
    }

    #[test]
    fn verdict_carries_structural_cause() {
        let considered = [
            InstrHazards::synchronization(),
            InstrHazards::mem_structural(MemStructCause::PendingRelease),
        ];
        let v = judge_cycle(false, &considered);
        assert_eq!(v.kind, StallKind::MemoryStructural);
        assert_eq!(v.mem_structural, Some(MemStructCause::PendingRelease));
        assert_eq!(v.blocking_request, None);
    }

    #[test]
    fn verdict_carries_blocking_request() {
        let considered = [InstrHazards::compute_data(), InstrHazards::mem_data(RequestId(99))];
        let v = judge_cycle(false, &considered);
        assert_eq!(v.kind, StallKind::MemoryData);
        assert_eq!(v.blocking_request, Some(RequestId(99)));
    }

    #[test]
    fn verdict_detail_comes_from_first_matching_instruction() {
        let considered = [
            InstrHazards::mem_structural(MemStructCause::BankConflict),
            InstrHazards::mem_structural(MemStructCause::MshrFull),
        ];
        let v = judge_cycle(false, &considered);
        assert_eq!(v.mem_structural, Some(MemStructCause::BankConflict));
    }

    #[test]
    fn priority_variants_reorder_selection() {
        let kinds = [StallKind::ComputeData, StallKind::MemoryData, StallKind::Control];
        assert_eq!(
            classify_cycle_with(&CyclePriority::memory_focused(), false, &kinds),
            StallKind::MemoryData
        );
        assert_eq!(
            classify_cycle_with(&CyclePriority::compute_focused(), false, &kinds),
            StallKind::ComputeData
        );
        assert_eq!(
            classify_cycle_with(&CyclePriority::control_focused(), false, &kinds),
            StallKind::Control
        );
    }

    #[test]
    fn custom_priority_validation() {
        let ok = CyclePriority::custom([
            StallKind::Control,
            StallKind::ComputeData,
            StallKind::ComputeStructural,
            StallKind::MemoryData,
            StallKind::MemoryStructural,
            StallKind::Synchronization,
        ]);
        assert!(ok.is_ok());
        let dup = CyclePriority::custom([
            StallKind::Control,
            StallKind::Control,
            StallKind::ComputeStructural,
            StallKind::MemoryData,
            StallKind::MemoryStructural,
            StallKind::Synchronization,
        ]);
        assert_eq!(dup, Err(StallKind::Control));
        let bad = CyclePriority::custom([
            StallKind::NoStall,
            StallKind::Control,
            StallKind::ComputeStructural,
            StallKind::MemoryData,
            StallKind::MemoryStructural,
            StallKind::Synchronization,
        ]);
        assert_eq!(bad, Err(StallKind::NoStall));
    }

    #[test]
    fn scratch_judge_is_bit_identical_to_the_allocating_reference() {
        // Enumerate every hazard combination over a two-instruction window;
        // the scratch-buffer variant must agree with the allocating wrapper
        // (the reference path) on every input, reusing one buffer throughout.
        let hazard = |bits: u32| InstrHazards {
            control: bits & 1 != 0,
            synchronization: bits & 2 != 0,
            mem_data: (bits & 4 != 0).then_some(RequestId(u64::from(bits))),
            mem_structural: (bits & 8 != 0).then_some(MemStructCause::BankConflict),
            compute_data: bits & 16 != 0,
            compute_structural: bits & 32 != 0,
        };
        let mut scratch = Vec::new();
        for priority in [CyclePriority::memory_focused(), CyclePriority::compute_focused()] {
            for a in 0..64u32 {
                for b in 0..64u32 {
                    for issued in [false, true] {
                        let considered = [hazard(a), hazard(b)];
                        let reference = judge_cycle_with(&priority, issued, &considered);
                        let fast =
                            judge_cycle_scratch(&priority, issued, &considered, &mut scratch);
                        assert_eq!(reference, fast, "a={a} b={b} issued={issued}");
                    }
                }
            }
        }
    }

    #[test]
    fn default_priority_is_the_papers() {
        assert_eq!(CyclePriority::default(), CyclePriority::memory_focused());
    }

    #[test]
    fn mem_data_cause_unused_but_linked() {
        // Keep MemDataCause in scope for the module docs.
        assert_eq!(MemDataCause::ALL.len(), 5);
    }
}
