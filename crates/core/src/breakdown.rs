//! Accumulated stall-cycle breakdowns, the unit of reporting.

use crate::stall::{MemDataCause, MemStructCause, StallKind};
use std::ops::{Add, AddAssign};

/// A complete stall breakdown: cycles per category, plus the memory data and
/// memory structural sub-breakdowns.
///
/// Breakdowns form a commutative monoid under [`Add`]: per-SM breakdowns are
/// summed into a machine-wide breakdown, and breakdowns of repeated runs can
/// be merged.
///
/// ```
/// use gsi_core::{StallBreakdown, StallKind};
/// let mut b = StallBreakdown::new();
/// b.add_cycle(StallKind::NoStall);
/// b.add_cycle(StallKind::Synchronization);
/// assert_eq!(b.total_cycles(), 2);
/// assert_eq!(b.cycles(StallKind::Synchronization), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    kinds: [u64; 8],
    mem_data: [u64; 5],
    mem_struct: [u64; 5],
}

impl StallBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge one cycle to `kind` (no sub-classification).
    #[inline]
    pub fn add_cycle(&mut self, kind: StallKind) {
        self.kinds[kind.index()] += 1;
    }

    /// Charge `n` cycles to `kind`.
    #[inline]
    pub fn add_cycles(&mut self, kind: StallKind, n: u64) {
        self.kinds[kind.index()] += n;
    }

    /// Charge `n` memory-data stall cycles to the sub-bucket for `cause`.
    ///
    /// This only updates the sub-breakdown; the top-level
    /// [`StallKind::MemoryData`] count is charged per cycle by
    /// [`add_cycle`](Self::add_cycle) when the cycle verdict is recorded.
    #[inline]
    pub fn add_mem_data(&mut self, cause: MemDataCause, n: u64) {
        self.mem_data[cause.index()] += n;
    }

    /// Charge `n` memory-structural stall cycles to the sub-bucket for
    /// `cause`.
    #[inline]
    pub fn add_mem_struct(&mut self, cause: MemStructCause, n: u64) {
        self.mem_struct[cause.index()] += n;
    }

    /// Cycles charged to `kind`.
    #[inline]
    pub fn cycles(&self, kind: StallKind) -> u64 {
        self.kinds[kind.index()]
    }

    /// Memory-data stall cycles attributed to `cause`.
    #[inline]
    pub fn mem_data_cycles(&self, cause: MemDataCause) -> u64 {
        self.mem_data[cause.index()]
    }

    /// Memory-structural stall cycles attributed to `cause`.
    #[inline]
    pub fn mem_struct_cycles(&self, cause: MemStructCause) -> u64 {
        self.mem_struct[cause.index()]
    }

    /// Total cycles across all categories (the SM-cycles of execution).
    pub fn total_cycles(&self) -> u64 {
        self.kinds.iter().sum()
    }

    /// Total stall cycles (everything except `NoStall`).
    pub fn total_stall_cycles(&self) -> u64 {
        self.total_cycles() - self.cycles(StallKind::NoStall)
    }

    /// Sum of the memory-data sub-buckets.
    pub fn mem_data_total(&self) -> u64 {
        self.mem_data.iter().sum()
    }

    /// Sum of the memory-structural sub-buckets.
    pub fn mem_struct_total(&self) -> u64 {
        self.mem_struct.iter().sum()
    }

    /// Fraction of total cycles charged to `kind`; 0 when the breakdown is
    /// empty.
    pub fn fraction(&self, kind: StallKind) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.cycles(kind) as f64 / total as f64
        }
    }

    /// Iterate over `(kind, cycles)` pairs in taxonomy order.
    pub fn iter(&self) -> impl Iterator<Item = (StallKind, u64)> + '_ {
        StallKind::ALL.iter().map(move |&k| (k, self.cycles(k)))
    }

    /// Iterate over the memory-data sub-breakdown.
    pub fn iter_mem_data(&self) -> impl Iterator<Item = (MemDataCause, u64)> + '_ {
        MemDataCause::ALL.iter().map(move |&c| (c, self.mem_data_cycles(c)))
    }

    /// Iterate over the memory-structural sub-breakdown.
    pub fn iter_mem_struct(&self) -> impl Iterator<Item = (MemStructCause, u64)> + '_ {
        MemStructCause::ALL.iter().map(move |&c| (c, self.mem_struct_cycles(c)))
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &StallBreakdown) {
        for i in 0..8 {
            self.kinds[i] += other.kinds[i];
        }
        for i in 0..5 {
            self.mem_data[i] += other.mem_data[i];
            self.mem_struct[i] += other.mem_struct[i];
        }
    }

    /// Per-category values scaled so that `reference`'s total is 1.0 — the
    /// normalization used by every figure in the paper.
    ///
    /// Returns `(kind, normalized)` in taxonomy order. When the reference is
    /// empty all values are 0.
    pub fn normalized_to(&self, reference: &StallBreakdown) -> Vec<(StallKind, f64)> {
        let denom = reference.total_cycles();
        StallKind::ALL
            .iter()
            .map(|&k| {
                let v = if denom == 0 { 0.0 } else { self.cycles(k) as f64 / denom as f64 };
                (k, v)
            })
            .collect()
    }
}

impl Add for StallBreakdown {
    type Output = StallBreakdown;
    fn add(mut self, rhs: StallBreakdown) -> StallBreakdown {
        self.merge(&rhs);
        self
    }
}

impl AddAssign<&StallBreakdown> for StallBreakdown {
    fn add_assign(&mut self, rhs: &StallBreakdown) {
        self.merge(rhs);
    }
}

impl<'a> std::iter::Sum<&'a StallBreakdown> for StallBreakdown {
    fn sum<I: Iterator<Item = &'a StallBreakdown>>(iter: I) -> Self {
        let mut acc = StallBreakdown::new();
        for b in iter {
            acc.merge(b);
        }
        acc
    }
}

gsi_json::json_struct!(StallBreakdown { kinds, mem_data, mem_struct });

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StallBreakdown {
        let mut b = StallBreakdown::new();
        b.add_cycles(StallKind::NoStall, 10);
        b.add_cycles(StallKind::MemoryData, 5);
        b.add_cycles(StallKind::MemoryStructural, 3);
        b.add_cycles(StallKind::Synchronization, 2);
        b.add_mem_data(MemDataCause::L2, 4);
        b.add_mem_data(MemDataCause::MainMemory, 1);
        b.add_mem_struct(MemStructCause::MshrFull, 3);
        b
    }

    #[test]
    fn totals() {
        let b = sample();
        assert_eq!(b.total_cycles(), 20);
        assert_eq!(b.total_stall_cycles(), 10);
        assert_eq!(b.mem_data_total(), 5);
        assert_eq!(b.mem_struct_total(), 3);
    }

    #[test]
    fn fractions() {
        let b = sample();
        assert!((b.fraction(StallKind::NoStall) - 0.5).abs() < 1e-12);
        assert_eq!(StallBreakdown::new().fraction(StallKind::NoStall), 0.0);
    }

    #[test]
    fn merge_is_componentwise_sum() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.total_cycles(), 40);
        assert_eq!(a.mem_data_cycles(MemDataCause::L2), 8);
        assert_eq!(a.mem_struct_cycles(MemStructCause::MshrFull), 6);
    }

    #[test]
    fn add_and_sum_agree_with_merge() {
        let a = sample() + sample();
        let s: StallBreakdown = [sample(), sample()].iter().sum();
        assert_eq!(a, s);
    }

    #[test]
    fn normalization_against_reference() {
        let a = sample();
        let norm = a.normalized_to(&a);
        let total: f64 = norm.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-12);

        let mut double = sample();
        double.merge(&sample());
        let norm2 = double.normalized_to(&a);
        let total2: f64 = norm2.iter().map(|(_, v)| v).sum();
        assert!((total2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_to_empty_reference_is_zero() {
        let a = sample();
        for (_, v) in a.normalized_to(&StallBreakdown::new()) {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn iterators_cover_everything() {
        let b = sample();
        assert_eq!(b.iter().map(|(_, v)| v).sum::<u64>(), b.total_cycles());
        assert_eq!(b.iter_mem_data().map(|(_, v)| v).sum::<u64>(), b.mem_data_total());
        assert_eq!(b.iter_mem_struct().map(|(_, v)| v).sum::<u64>(), b.mem_struct_total());
    }
}
