//! Rendering stall breakdowns the way the paper's figures present them:
//! stacked horizontal bars, one per configuration, normalized to a baseline,
//! plus CSV output for external plotting.

use crate::breakdown::StallBreakdown;
use crate::stall::{MemDataCause, MemStructCause, StallKind};
use std::fmt::Write as _;

/// Which panel of a paper figure to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Panel {
    /// Panel (a): the full execution-time breakdown across all eight
    /// categories.
    Execution,
    /// Panel (b): the memory data stall sub-breakdown.
    MemData,
    /// Panel (c): the memory structural stall sub-breakdown.
    MemStruct,
}

/// One ASCII glyph per category, used as the bar fill.
fn kind_glyph(kind: StallKind) -> char {
    match kind {
        StallKind::NoStall => '#',
        StallKind::Idle => '.',
        StallKind::Control => 'c',
        StallKind::Synchronization => 's',
        StallKind::MemoryData => 'd',
        StallKind::MemoryStructural => 'm',
        StallKind::ComputeData => 'k',
        StallKind::ComputeStructural => 'u',
    }
}

fn mem_data_glyph(cause: MemDataCause) -> char {
    match cause {
        MemDataCause::L1 => '1',
        MemDataCause::L1Coalescing => 'o',
        MemDataCause::L2 => '2',
        MemDataCause::RemoteL1 => 'r',
        MemDataCause::MainMemory => 'M',
    }
}

fn mem_struct_glyph(cause: MemStructCause) -> char {
    match cause {
        MemStructCause::MshrFull => 'H',
        MemStructCause::StoreBufferFull => 'B',
        MemStructCause::BankConflict => 'K',
        MemStructCause::PendingRelease => 'R',
        MemStructCause::PendingDma => 'A',
    }
}

/// A named collection of breakdowns that renders as one paper-style figure.
///
/// The first entry is the normalization baseline, matching the paper's
/// "normalized to GPU coherence" / "normalized to baseline scratchpad"
/// presentation.
///
/// ```
/// use gsi_core::{report::Figure, StallBreakdown, StallKind};
/// let mut base = StallBreakdown::new();
/// base.add_cycles(StallKind::NoStall, 50);
/// base.add_cycles(StallKind::Synchronization, 50);
/// let mut better = StallBreakdown::new();
/// better.add_cycles(StallKind::NoStall, 50);
/// better.add_cycles(StallKind::Synchronization, 10);
/// let fig = Figure::new("demo")
///     .with_entry("baseline", base)
///     .with_entry("improved", better);
/// let text = fig.render(gsi_core::report::Panel::Execution, 40);
/// assert!(text.contains("baseline"));
/// assert!(text.contains("improved"));
/// ```
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure title (e.g. `"Figure 6.2: UTSD"`).
    pub title: String,
    /// Configurations in presentation order; the first is the baseline.
    pub entries: Vec<(String, StallBreakdown)>,
}

impl Figure {
    /// Create an empty figure with the given title.
    pub fn new(title: impl Into<String>) -> Self {
        Figure { title: title.into(), entries: Vec::new() }
    }

    /// Append a configuration (builder style).
    #[must_use]
    pub fn with_entry(mut self, name: impl Into<String>, b: StallBreakdown) -> Self {
        self.entries.push((name.into(), b));
        self
    }

    /// Append a configuration.
    pub fn push(&mut self, name: impl Into<String>, b: StallBreakdown) {
        self.entries.push((name.into(), b));
    }

    /// The baseline breakdown (first entry), if any.
    pub fn baseline(&self) -> Option<&StallBreakdown> {
        self.entries.first().map(|(_, b)| b)
    }

    fn segments(&self, panel: Panel, b: &StallBreakdown) -> Vec<(char, &'static str, u64)> {
        match panel {
            Panel::Execution => {
                StallKind::ALL.iter().map(|&k| (kind_glyph(k), k.short(), b.cycles(k))).collect()
            }
            Panel::MemData => MemDataCause::ALL
                .iter()
                .map(|&c| (mem_data_glyph(c), c.short(), b.mem_data_cycles(c)))
                .collect(),
            Panel::MemStruct => MemStructCause::ALL
                .iter()
                .map(|&c| (mem_struct_glyph(c), c.short(), b.mem_struct_cycles(c)))
                .collect(),
        }
    }

    fn panel_total(panel: Panel, b: &StallBreakdown) -> u64 {
        match panel {
            Panel::Execution => b.total_cycles(),
            Panel::MemData => b.mem_data_total(),
            Panel::MemStruct => b.mem_struct_total(),
        }
    }

    /// Render one panel as normalized stacked text bars of at most `width`
    /// characters for the baseline, with a legend and a numeric table.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn render(&self, panel: Panel, width: usize) -> String {
        assert!(width > 0, "bar width must be nonzero");
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let denom = self.baseline().map(|b| Self::panel_total(panel, b)).unwrap_or(0);
        let name_w = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);

        let mut used: Vec<(char, &'static str)> = Vec::new();
        for (name, b) in &self.entries {
            let segs = self.segments(panel, b);
            let mut bar = String::new();
            for (glyph, label, v) in &segs {
                if *v > 0 && !used.iter().any(|(g, _)| g == glyph) {
                    used.push((*glyph, label));
                }
                let chars = if denom == 0 {
                    0
                } else {
                    ((*v as f64 / denom as f64) * width as f64).round() as usize
                };
                for _ in 0..chars {
                    bar.push(*glyph);
                }
            }
            let norm =
                if denom == 0 { 0.0 } else { Self::panel_total(panel, b) as f64 / denom as f64 };
            let _ = writeln!(out, "{name:>name_w$} |{bar} {norm:.2}");
        }
        if !used.is_empty() {
            let legend: Vec<String> =
                used.iter().map(|(g, label)| format!("{g}={label}")).collect();
            let _ = writeln!(out, "legend: {}", legend.join("  "));
        }
        out
    }

    /// Render one panel with each bar normalized to its own total (a
    /// composition view): every bar is `width` characters and shows the
    /// category mix, which is the right view when entries have very
    /// different absolute magnitudes.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn render_fractions(&self, panel: Panel, width: usize) -> String {
        assert!(width > 0, "bar width must be nonzero");
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let name_w = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut used: Vec<(char, &'static str)> = Vec::new();
        for (name, b) in &self.entries {
            let segs = self.segments(panel, b);
            let denom = Self::panel_total(panel, b);
            let mut bar = String::new();
            for (glyph, label, v) in &segs {
                if *v > 0 && !used.iter().any(|(g, _)| g == glyph) {
                    used.push((*glyph, label));
                }
                let chars = if denom == 0 {
                    0
                } else {
                    ((*v as f64 / denom as f64) * width as f64).round() as usize
                };
                for _ in 0..chars {
                    bar.push(*glyph);
                }
            }
            let _ = writeln!(out, "{name:>name_w$} |{bar}");
        }
        if !used.is_empty() {
            let legend: Vec<String> =
                used.iter().map(|(g, label)| format!("{g}={label}")).collect();
            let _ = writeln!(out, "legend: {}", legend.join("  "));
        }
        out
    }

    /// Render all three panels.
    pub fn render_all(&self, width: usize) -> String {
        let mut out = String::new();
        for (panel, tag) in [
            (Panel::Execution, "(a) execution time breakdown"),
            (Panel::MemData, "(b) memory data stall breakdown"),
            (Panel::MemStruct, "(c) memory structural stall breakdown"),
        ] {
            let _ = writeln!(out, "--- {tag} ---");
            out.push_str(&self.render(panel, width));
            out.push('\n');
        }
        out
    }

    /// CSV with one row per configuration: absolute cycle counts of every
    /// category and sub-category, plus totals. Configuration names are
    /// quoted per RFC 4180 when they contain separators, quotes, or
    /// newlines.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("config,total");
        for k in StallKind::ALL {
            let _ = write!(out, ",{}", k.short());
        }
        for c in MemDataCause::ALL {
            let _ = write!(out, ",data:{}", c.short());
        }
        for c in MemStructCause::ALL {
            let _ = write!(out, ",struct:{}", c.short());
        }
        out.push('\n');
        for (name, b) in &self.entries {
            let _ = write!(out, "{},{}", csv_field(name), b.total_cycles());
            for k in StallKind::ALL {
                let _ = write!(out, ",{}", b.cycles(k));
            }
            for c in MemDataCause::ALL {
                let _ = write!(out, ",{}", b.mem_data_cycles(c));
            }
            for c in MemStructCause::ALL {
                let _ = write!(out, ",{}", b.mem_struct_cycles(c));
            }
            out.push('\n');
        }
        out
    }
}

/// Quote a CSV field per RFC 4180 when it contains a separator, quote, or
/// line break; embedded quotes are doubled. Plain fields pass through
/// unallocated.
fn csv_field(s: &str) -> std::borrow::Cow<'_, str> {
    if s.contains(['"', ',', '\n', '\r']) {
        std::borrow::Cow::Owned(format!("\"{}\"", s.replace('"', "\"\"")))
    } else {
        std::borrow::Cow::Borrowed(s)
    }
}

/// Render an epoch series as a one-line timeline: one glyph per epoch,
/// showing the dominant stall category in that interval (ties broken by
/// taxonomy order). Useful for seeing phases — e.g. a kernel's copy-in,
/// compute, and writeback phases have visibly different dominant stalls.
///
/// ```
/// use gsi_core::{report::render_timeline, StallBreakdown, StallKind};
/// let mut busy = StallBreakdown::new();
/// busy.add_cycles(StallKind::NoStall, 10);
/// let mut stalled = StallBreakdown::new();
/// stalled.add_cycles(StallKind::MemoryData, 10);
/// let line = render_timeline(&[busy, stalled]);
/// assert!(line.starts_with("#d"));
/// ```
pub fn render_timeline(epochs: &[StallBreakdown]) -> String {
    let mut out = String::new();
    for e in epochs {
        let (kind, _) = StallKind::ALL
            .iter()
            .map(|&k| (k, e.cycles(k)))
            .max_by_key(|&(k, v)| (v, std::cmp::Reverse(k.index())))
            .unwrap_or((StallKind::Idle, 0));
        out.push(kind_glyph(kind));
    }
    out
}

/// Percentage change from `from` to `to` (e.g. `-28.0` for a 28% drop).
/// Returns 0 when `from` is zero.
pub fn percent_change(from: u64, to: u64) -> f64 {
    if from == 0 {
        0.0
    } else {
        (to as f64 - from as f64) / from as f64 * 100.0
    }
}

/// Multiplicative factor from `from` to `to` (e.g. `13.0` for "13X").
/// Returns `f64::INFINITY` when `from` is zero and `to` nonzero, 1.0 when
/// both are zero.
pub fn factor(from: u64, to: u64) -> f64 {
    if from == 0 {
        if to == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        to as f64 / from as f64
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn sample(no_stall: u64, sync: u64, mem: u64) -> StallBreakdown {
        let mut b = StallBreakdown::new();
        b.add_cycles(StallKind::NoStall, no_stall);
        b.add_cycles(StallKind::Synchronization, sync);
        b.add_cycles(StallKind::MemoryData, mem);
        b.add_mem_data(MemDataCause::L2, mem);
        b
    }

    #[test]
    fn render_includes_names_legend_and_normalization() {
        let fig = Figure::new("t")
            .with_entry("base", sample(10, 10, 0))
            .with_entry("half", sample(5, 5, 0));
        let text = fig.render(Panel::Execution, 20);
        assert!(text.contains("base"));
        assert!(text.contains("half"));
        assert!(text.contains("legend:"));
        assert!(text.contains("1.00"));
        assert!(text.contains("0.50"));
    }

    #[test]
    fn bar_length_tracks_magnitude() {
        let fig = Figure::new("t")
            .with_entry("base", sample(20, 0, 0))
            .with_entry("tiny", sample(1, 0, 0));
        let text = fig.render(Panel::Execution, 40);
        let lines: Vec<&str> = text.lines().collect();
        let base_hashes = lines[1].matches('#').count();
        let tiny_hashes = lines[2].matches('#').count();
        assert_eq!(base_hashes, 40);
        assert!(tiny_hashes <= 2);
    }

    #[test]
    fn mem_data_panel_uses_subbreakdown() {
        let fig = Figure::new("t").with_entry("only", sample(0, 0, 8));
        let text = fig.render(Panel::MemData, 16);
        assert!(text.contains('2'), "L2 glyph expected: {text}");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let fig =
            Figure::new("t").with_entry("a", sample(1, 2, 3)).with_entry("b", sample(4, 5, 6));
        let csv = fig.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("config,total"));
        assert!(lines[1].starts_with("a,6"));
        assert!(lines[2].starts_with("b,15"));
        let cols = lines[0].split(',').count();
        assert_eq!(lines[1].split(',').count(), cols);
    }

    #[test]
    fn csv_header_row_lists_every_category_once() {
        let fig = Figure::new("t").with_entry("a", sample(1, 2, 3));
        let csv = fig.to_csv();
        let header: Vec<&str> = csv.lines().next().unwrap().split(',').collect();
        assert_eq!(header[0], "config");
        assert_eq!(header[1], "total");
        assert_eq!(
            header.len(),
            2 + StallKind::ALL.len() + MemDataCause::ALL.len() + MemStructCause::ALL.len()
        );
        for k in StallKind::ALL {
            assert!(header.contains(&k.short()), "missing {}", k.short());
        }
        let mut dedup = header.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), header.len(), "duplicate header column");
    }

    #[test]
    fn csv_quotes_fields_with_separators_and_quotes() {
        let fig = Figure::new("t")
            .with_entry("mesh 4x4, 15 SMs", sample(1, 0, 0))
            .with_entry("the \"big\" config", sample(2, 0, 0))
            .with_entry("plain", sample(3, 0, 0));
        let csv = fig.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[1].starts_with("\"mesh 4x4, 15 SMs\",1"), "{csv}");
        assert!(lines[2].starts_with("\"the \"\"big\"\" config\",2"), "{csv}");
        assert!(lines[3].starts_with("plain,3"), "unquoted when clean: {csv}");
        // Every row still parses to the same column count once quoted
        // fields are collapsed.
        let cols = lines[0].split(',').count();
        assert_eq!(lines[3].split(',').count(), cols);
    }

    #[test]
    fn empty_figure_renders_without_panic() {
        let fig = Figure::new("empty");
        let text = fig.render(Panel::Execution, 10);
        assert!(text.contains("empty"));
    }

    #[test]
    fn render_all_has_three_panels() {
        let fig = Figure::new("t").with_entry("x", sample(1, 1, 1));
        let text = fig.render_all(10);
        assert!(text.contains("(a)"));
        assert!(text.contains("(b)"));
        assert!(text.contains("(c)"));
    }

    #[test]
    fn fraction_view_normalizes_each_bar() {
        let fig = Figure::new("t")
            .with_entry("big", sample(1000, 1000, 0))
            .with_entry("small", sample(1, 1, 0));
        let text = fig.render_fractions(Panel::Execution, 20);
        // Both bars are full width despite the 1000x magnitude difference.
        for line in text.lines().skip(1).take(2) {
            let bar_len = line.chars().filter(|&c| c == '#' || c == 's').count();
            assert!((19..=21).contains(&bar_len), "{line}");
        }
    }

    #[test]
    fn timeline_shows_dominant_kind_per_epoch() {
        let mut a = StallBreakdown::new();
        a.add_cycles(StallKind::NoStall, 5);
        a.add_cycles(StallKind::MemoryData, 2);
        let mut b = StallBreakdown::new();
        b.add_cycles(StallKind::Synchronization, 9);
        let mut c = StallBreakdown::new();
        c.add_cycles(StallKind::MemoryStructural, 4);
        assert_eq!(render_timeline(&[a, b, c]), "#sm");
        assert_eq!(render_timeline(&[]), "");
    }

    #[test]
    fn percent_change_and_factor() {
        assert!((percent_change(100, 72) - -28.0).abs() < 1e-9);
        assert_eq!(percent_change(0, 5), 0.0);
        assert_eq!(factor(2, 26), 13.0);
        assert_eq!(factor(0, 0), 1.0);
        assert!(factor(0, 3).is_infinite());
    }

    #[test]
    #[should_panic(expected = "bar width")]
    fn zero_width_panics() {
        Figure::new("t").render(Panel::Execution, 0);
    }
}
