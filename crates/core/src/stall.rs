//! The stall taxonomy of the paper (Chapter 4).

use std::fmt;

/// Classification of one issue cycle or one considered warp instruction.
///
/// These are the eight categories of Section 4.1 of the paper. `NoStall`
/// means an instruction was able to issue; every other variant names the
/// condition that prevented issue.
///
/// ```
/// use gsi_core::StallKind;
/// assert_eq!(StallKind::ALL.len(), 8);
/// assert_eq!(StallKind::MemoryData.to_string(), "memory data");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallKind {
    /// An instruction was able to issue this cycle.
    NoStall,
    /// No active warps were available to issue instructions.
    Idle,
    /// The instruction supplied by the instruction buffer is not the next
    /// instruction to be executed in the warp (e.g. refetch after a taken
    /// branch).
    Control,
    /// The warp is blocked on a pending synchronization operation: an
    /// acquire, a release, or a thread-block barrier.
    Synchronization,
    /// The instruction depends on the output of a pending load.
    MemoryData,
    /// A ready memory instruction was rejected by the load/store unit.
    MemoryStructural,
    /// The instruction depends on the output of a pending compute
    /// (non-memory) instruction.
    ComputeData,
    /// A compute instruction could not issue because the appropriate compute
    /// unit is occupied.
    ComputeStructural,
}

impl StallKind {
    /// All eight categories, in taxonomy order.
    pub const ALL: [StallKind; 8] = [
        StallKind::NoStall,
        StallKind::Idle,
        StallKind::Control,
        StallKind::Synchronization,
        StallKind::MemoryData,
        StallKind::MemoryStructural,
        StallKind::ComputeData,
        StallKind::ComputeStructural,
    ];

    /// Dense index of this kind within [`StallKind::ALL`], usable as an
    /// array index.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            StallKind::NoStall => 0,
            StallKind::Idle => 1,
            StallKind::Control => 2,
            StallKind::Synchronization => 3,
            StallKind::MemoryData => 4,
            StallKind::MemoryStructural => 5,
            StallKind::ComputeData => 6,
            StallKind::ComputeStructural => 7,
        }
    }

    /// Short fixed-width label used in bar-chart legends.
    pub fn short(self) -> &'static str {
        match self {
            StallKind::NoStall => "nostall",
            StallKind::Idle => "idle",
            StallKind::Control => "control",
            StallKind::Synchronization => "sync",
            StallKind::MemoryData => "mem-data",
            StallKind::MemoryStructural => "mem-struct",
            StallKind::ComputeData => "comp-data",
            StallKind::ComputeStructural => "comp-struct",
        }
    }

    /// True for either memory stall category.
    pub fn is_memory(self) -> bool {
        matches!(self, StallKind::MemoryData | StallKind::MemoryStructural)
    }
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StallKind::NoStall => "no stall",
            StallKind::Idle => "idle",
            StallKind::Control => "control",
            StallKind::Synchronization => "synchronization",
            StallKind::MemoryData => "memory data",
            StallKind::MemoryStructural => "memory structural",
            StallKind::ComputeData => "compute data",
            StallKind::ComputeStructural => "compute structural",
        };
        f.write_str(s)
    }
}

/// Where a dependency load was serviced (Section 4.3).
///
/// Memory data stalls are sub-classified by the level of the memory
/// hierarchy that ultimately supplied the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemDataCause {
    /// Satisfied by the local L1 cache (hit, or LSU-internal delay).
    L1,
    /// Missed in L1 but satisfied by the response to another outstanding
    /// request for the same line (an MSHR merge).
    L1Coalescing,
    /// Satisfied by the shared L2 cache.
    L2,
    /// Satisfied by a remote core's L1 cache. Only possible under protocols
    /// like DeNovo that allow ownership in L1 caches.
    RemoteL1,
    /// Satisfied by main memory.
    MainMemory,
}

impl MemDataCause {
    /// All five service points, nearest first.
    pub const ALL: [MemDataCause; 5] = [
        MemDataCause::L1,
        MemDataCause::L1Coalescing,
        MemDataCause::L2,
        MemDataCause::RemoteL1,
        MemDataCause::MainMemory,
    ];

    /// Dense index within [`MemDataCause::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MemDataCause::L1 => 0,
            MemDataCause::L1Coalescing => 1,
            MemDataCause::L2 => 2,
            MemDataCause::RemoteL1 => 3,
            MemDataCause::MainMemory => 4,
        }
    }

    /// Short label for legends.
    pub fn short(self) -> &'static str {
        match self {
            MemDataCause::L1 => "L1",
            MemDataCause::L1Coalescing => "L1-coalesce",
            MemDataCause::L2 => "L2",
            MemDataCause::RemoteL1 => "remote-L1",
            MemDataCause::MainMemory => "mem",
        }
    }
}

impl fmt::Display for MemDataCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemDataCause::L1 => "L1 cache",
            MemDataCause::L1Coalescing => "L1 coalescing",
            MemDataCause::L2 => "L2 cache",
            MemDataCause::RemoteL1 => "remote L1 cache",
            MemDataCause::MainMemory => "main memory",
        };
        f.write_str(s)
    }
}

/// Why the load/store unit rejected a ready memory instruction
/// (Section 4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemStructCause {
    /// No free miss-status holding register.
    MshrFull,
    /// No free write-combining store buffer entry.
    StoreBufferFull,
    /// Accesses were not evenly strided across cache or local-memory banks.
    BankConflict,
    /// A release operation is draining prior stores; subsequent stores are
    /// blocked until the flush completes.
    PendingRelease,
    /// The instruction touches scratchpad data whose DMA transfer has not
    /// yet completed.
    PendingDma,
}

impl MemStructCause {
    /// All five rejection causes.
    pub const ALL: [MemStructCause; 5] = [
        MemStructCause::MshrFull,
        MemStructCause::StoreBufferFull,
        MemStructCause::BankConflict,
        MemStructCause::PendingRelease,
        MemStructCause::PendingDma,
    ];

    /// Dense index within [`MemStructCause::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MemStructCause::MshrFull => 0,
            MemStructCause::StoreBufferFull => 1,
            MemStructCause::BankConflict => 2,
            MemStructCause::PendingRelease => 3,
            MemStructCause::PendingDma => 4,
        }
    }

    /// Short label for legends.
    pub fn short(self) -> &'static str {
        match self {
            MemStructCause::MshrFull => "MSHR-full",
            MemStructCause::StoreBufferFull => "SB-full",
            MemStructCause::BankConflict => "bank-conflict",
            MemStructCause::PendingRelease => "pend-release",
            MemStructCause::PendingDma => "pend-DMA",
        }
    }
}

impl fmt::Display for MemStructCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemStructCause::MshrFull => "full MSHR",
            MemStructCause::StoreBufferFull => "full store buffer",
            MemStructCause::BankConflict => "bank conflict",
            MemStructCause::PendingRelease => "pending release",
            MemStructCause::PendingDma => "pending DMA",
        };
        f.write_str(s)
    }
}

/// Identifier of an outstanding memory request, used to charge stall cycles
/// to a load whose service point is not yet known.
///
/// Request ids are allocated by the memory system and must be unique among
/// in-flight requests of one SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

gsi_json::json_unit_enum!(StallKind {
    NoStall,
    Idle,
    Control,
    Synchronization,
    MemoryData,
    MemoryStructural,
    ComputeData,
    ComputeStructural,
});

gsi_json::json_unit_enum!(MemDataCause { L1, L1Coalescing, L2, RemoteL1, MainMemory });

gsi_json::json_unit_enum!(MemStructCause {
    MshrFull,
    StoreBufferFull,
    BankConflict,
    PendingRelease,
    PendingDma,
});

impl gsi_json::ToJson for RequestId {
    fn to_json(&self) -> gsi_json::Value {
        gsi_json::Value::U64(self.0)
    }
}

impl gsi_json::FromJson for RequestId {
    fn from_json(v: &gsi_json::Value) -> Result<Self, gsi_json::JsonError> {
        v.as_u64().map(RequestId).ok_or_else(|| gsi_json::JsonError::expected("request id", v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_are_dense_and_match_all() {
        for (i, k) in StallKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn mem_data_indices_are_dense() {
        for (i, c) in MemDataCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn mem_struct_indices_are_dense() {
        for (i, c) in MemStructCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn display_is_nonempty_and_lowercase() {
        for k in StallKind::ALL {
            let s = k.to_string();
            assert!(!s.is_empty());
            assert_eq!(s, s.to_lowercase());
        }
    }

    #[test]
    fn memory_kinds() {
        assert!(StallKind::MemoryData.is_memory());
        assert!(StallKind::MemoryStructural.is_memory());
        assert!(!StallKind::Synchronization.is_memory());
        assert!(!StallKind::NoStall.is_memory());
    }

    #[test]
    fn request_id_display() {
        assert_eq!(RequestId(42).to_string(), "req#42");
    }
}
