//! The per-SM stall collector: the object the simulator drives each cycle.

use crate::breakdown::StallBreakdown;
use crate::classify::CycleVerdict;
use crate::ledger::AttributionLedger;
use crate::stall::{MemDataCause, RequestId, StallKind};

/// A violated conservation invariant: some recorded stall cycles are
/// missing from (or double-counted in) the breakdown. Indicates collector
/// state corruption — a simulator bug, not a property of the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConservationError {
    /// The top-level buckets do not sum to the observed cycle count.
    TotalMismatch {
        /// Cycles in the breakdown's top-level buckets.
        bucketed: u64,
        /// Cycles the collector was shown.
        observed: u64,
    },
    /// The memory-data sub-breakdown (plus in-flight and unattributable
    /// charges) does not sum to its parent bucket.
    MemDataMismatch {
        /// The parent memory-data bucket.
        parent: u64,
        /// Committed + in-flight + unattributable memory-data cycles.
        accounted: u64,
    },
    /// The memory-structural sub-breakdown (plus causeless cycles) does not
    /// sum to its parent bucket.
    MemStructMismatch {
        /// The parent memory-structural bucket.
        parent: u64,
        /// Sub-classified + causeless memory-structural cycles.
        accounted: u64,
    },
}

impl std::fmt::Display for ConservationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ConservationError::TotalMismatch { bucketed, observed } => write!(
                f,
                "stall accounting violated: {bucketed} bucketed cycles != {observed} observed"
            ),
            ConservationError::MemDataMismatch { parent, accounted } => write!(
                f,
                "memory-data sub-breakdown violated: parent {parent} != accounted {accounted}"
            ),
            ConservationError::MemStructMismatch { parent, accounted } => write!(
                f,
                "memory-structural sub-breakdown violated: parent {parent} != accounted {accounted}"
            ),
        }
    }
}

impl std::error::Error for ConservationError {}

/// Collects the stall breakdown for one SM.
///
/// The issue stage calls [`record_cycle`](Self::record_cycle) once per cycle
/// with the verdict produced by [`judge_cycle`](crate::judge_cycle); the
/// memory system calls [`on_fill`](Self::on_fill) whenever a load completes,
/// carrying the service point so pending memory-data charges can be
/// committed.
///
/// Profiling can be disabled ([`set_enabled`](Self::set_enabled)) to measure
/// GSI's own overhead; a disabled collector records nothing.
///
/// ```
/// use gsi_core::*;
/// let mut c = StallCollector::new();
/// let v = judge_cycle(false, &[InstrHazards::mem_data(RequestId(1))]);
/// c.record_cycle(&v);
/// c.on_fill(RequestId(1), MemDataCause::L2);
/// assert_eq!(c.breakdown().cycles(StallKind::MemoryData), 1);
/// assert_eq!(c.breakdown().mem_data_cycles(MemDataCause::L2), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StallCollector {
    breakdown: StallBreakdown,
    ledger: AttributionLedger,
    enabled: bool,
    unresolved: u64,
    /// Issue-cycle verdicts recorded (for the conservation invariant: every
    /// observed cycle must land in exactly one breakdown bucket).
    observed_cycles: u64,
    /// Memory-data cycles whose verdict carried no blocking request, so
    /// they can never be sub-classified.
    uncharged_mem_data: u64,
    /// Memory-structural cycles whose verdict carried no rejection cause.
    uncaused_mem_struct: u64,
    /// Optional Aerialvision-style time series: one breakdown per epoch of
    /// `epoch_len` cycles.
    epoch_len: u64,
    epoch_cursor: u64,
    epochs: Vec<StallBreakdown>,
}

impl StallCollector {
    /// A new, enabled collector.
    pub fn new() -> Self {
        StallCollector {
            breakdown: StallBreakdown::new(),
            ledger: AttributionLedger::new(),
            enabled: true,
            unresolved: 0,
            observed_cycles: 0,
            uncharged_mem_data: 0,
            uncaused_mem_struct: 0,
            epoch_len: 0,
            epoch_cursor: 0,
            epochs: Vec::new(),
        }
    }

    /// Additionally record a time series: one breakdown per `epoch_len`
    /// cycles (the per-interval view Aerialvision pioneered, which the
    /// paper cites as related work). Pass 0 to disable.
    pub fn set_epoch_len(&mut self, epoch_len: u64) {
        self.epoch_len = epoch_len;
        self.epoch_cursor = 0;
        self.epochs.clear();
    }

    /// The recorded epochs so far (empty unless
    /// [`set_epoch_len`](Self::set_epoch_len) enabled the series).
    ///
    /// Retroactive memory-data attributions are booked to the epoch in
    /// which the fill returns.
    pub fn epochs(&self) -> &[StallBreakdown] {
        &self.epochs
    }

    /// Enable or disable recording. Disabled collectors ignore all events.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the collector is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record the verdict for one issue cycle.
    ///
    /// Memory-structural verdicts are booked to their sub-bucket
    /// immediately; memory-data verdicts charge the blocking request in the
    /// ledger for later commitment.
    pub fn record_cycle(&mut self, verdict: &CycleVerdict) {
        if !self.enabled {
            return;
        }
        self.observed_cycles += 1;
        self.breakdown.add_cycle(verdict.kind);
        if self.epoch_len > 0 {
            if self.epoch_cursor == 0 {
                self.epochs.push(StallBreakdown::new());
            }
            self.epochs.last_mut().expect("pushed").add_cycle(verdict.kind);
            self.epoch_cursor = (self.epoch_cursor + 1) % self.epoch_len;
        }
        match verdict.kind {
            StallKind::MemoryStructural => {
                if let Some(cause) = verdict.mem_structural {
                    self.breakdown.add_mem_struct(cause, 1);
                    if let Some(e) = self.epochs.last_mut() {
                        e.add_mem_struct(cause, 1);
                    }
                } else {
                    self.uncaused_mem_struct += 1;
                }
            }
            StallKind::MemoryData => {
                if let Some(req) = verdict.blocking_request {
                    self.ledger.charge(req);
                } else {
                    self.uncharged_mem_data += 1;
                }
            }
            _ => {}
        }
        self.debug_check_invariants();
    }

    /// Record the same verdict for `n` consecutive cycles — the bulk form
    /// of [`record_cycle`](Self::record_cycle) the event-driven engine uses
    /// when it skips a quiet stretch. Produces exactly the state `n`
    /// individual `record_cycle` calls with this verdict would: the epoch
    /// series is advanced chunk by chunk so epoch boundaries land on the
    /// same cycles, and memory-data charges accumulate against the same
    /// blocking request.
    pub fn record_cycles(&mut self, verdict: &CycleVerdict, n: u64) {
        if !self.enabled || n == 0 {
            return;
        }
        self.observed_cycles += n;
        self.breakdown.add_cycles(verdict.kind, n);
        let structural_cause = match verdict.kind {
            StallKind::MemoryStructural => verdict.mem_structural,
            _ => None,
        };
        if self.epoch_len > 0 {
            let mut left = n;
            while left > 0 {
                if self.epoch_cursor == 0 {
                    self.epochs.push(StallBreakdown::new());
                }
                let chunk = left.min(self.epoch_len - self.epoch_cursor);
                let epoch = self.epochs.last_mut().expect("pushed");
                epoch.add_cycles(verdict.kind, chunk);
                if let Some(cause) = structural_cause {
                    epoch.add_mem_struct(cause, chunk);
                }
                self.epoch_cursor = (self.epoch_cursor + chunk) % self.epoch_len;
                left -= chunk;
            }
        }
        match verdict.kind {
            StallKind::MemoryStructural => {
                if let Some(cause) = structural_cause {
                    self.breakdown.add_mem_struct(cause, n);
                } else {
                    self.uncaused_mem_struct += n;
                }
            }
            StallKind::MemoryData => {
                if let Some(req) = verdict.blocking_request {
                    self.ledger.charge_n(req, n);
                } else {
                    self.uncharged_mem_data += n;
                }
            }
            _ => {}
        }
        self.debug_check_invariants();
    }

    /// A load completed: commit any stall cycles charged against it to the
    /// sub-bucket for its service point.
    pub fn on_fill(&mut self, req: RequestId, serviced_at: MemDataCause) {
        if !self.enabled {
            return;
        }
        let cycles = self.ledger.commit(req);
        if cycles > 0 {
            self.breakdown.add_mem_data(serviced_at, cycles);
            if let Some(e) = self.epochs.last_mut() {
                e.add_mem_data(serviced_at, cycles);
            }
        }
        self.debug_check_invariants();
    }

    /// GSI's accounting invariants, checked (in debug builds) after every
    /// recorded event: every observed cycle lands in exactly one top-level
    /// bucket, and each memory sub-breakdown partitions its parent once
    /// in-flight and unattributable charges are accounted for.
    fn debug_check_invariants(&self) {
        debug_assert_eq!(self.validate(), Ok(()), "conservation invariant violated");
    }

    /// Check the conservation invariants, in any build profile. The
    /// simulator calls this at end of run so corrupted accounting surfaces
    /// as a typed error instead of silently skewed results.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`ConservationError`].
    pub fn validate(&self) -> Result<(), ConservationError> {
        let bucketed = self.breakdown.total_cycles();
        if bucketed != self.observed_cycles {
            return Err(ConservationError::TotalMismatch {
                bucketed,
                observed: self.observed_cycles,
            });
        }
        let md_parent = self.breakdown.cycles(StallKind::MemoryData);
        let md_accounted =
            self.breakdown.mem_data_total() + self.ledger.pending_total() + self.uncharged_mem_data;
        if md_parent != md_accounted {
            return Err(ConservationError::MemDataMismatch {
                parent: md_parent,
                accounted: md_accounted,
            });
        }
        let ms_parent = self.breakdown.cycles(StallKind::MemoryStructural);
        let ms_accounted = self.breakdown.mem_struct_total() + self.uncaused_mem_struct;
        if ms_parent != ms_accounted {
            return Err(ConservationError::MemStructMismatch {
                parent: ms_parent,
                accounted: ms_accounted,
            });
        }
        Ok(())
    }

    /// Mutable access to the underlying breakdown, for tests that need to
    /// corrupt collector state and watch [`validate`](Self::validate) catch
    /// it. Not part of the stable API.
    #[doc(hidden)]
    pub fn breakdown_mut(&mut self) -> &mut StallBreakdown {
        &mut self.breakdown
    }

    /// The breakdown accumulated so far.
    ///
    /// Note that memory-data charges for still-in-flight requests are not
    /// yet visible in the sub-breakdown; call [`finish`](Self::finish) at end
    /// of simulation first.
    pub fn breakdown(&self) -> &StallBreakdown {
        &self.breakdown
    }

    /// Finish collection: drain charges against requests that never
    /// completed (booked as [`MemDataCause::MainMemory`], the conservative
    /// choice) and return the final breakdown.
    pub fn finish(mut self) -> StallBreakdown {
        self.debug_check_invariants();
        let dangling = self.ledger.drain_unresolved();
        if dangling > 0 {
            self.unresolved = dangling;
            self.breakdown.add_mem_data(MemDataCause::MainMemory, dangling);
        }
        debug_assert_eq!(
            self.breakdown.cycles(StallKind::MemoryData),
            self.breakdown.mem_data_total() + self.uncharged_mem_data,
            "after finish, the memory-data sub-breakdown must sum to its parent"
        );
        self.breakdown
    }

    /// Stall cycles whose request never completed (diagnostic; only nonzero
    /// after [`finish`](Self::finish) found dangling charges).
    pub fn unresolved_cycles(&self) -> u64 {
        self.unresolved
    }

    /// Reset all state, keeping the enabled flag and epoch length.
    pub fn reset(&mut self) {
        let enabled = self.enabled;
        let epoch_len = self.epoch_len;
        *self = StallCollector::new();
        self.enabled = enabled;
        self.epoch_len = epoch_len;
    }

    /// Take the recorded epochs, leaving the series empty.
    pub fn take_epochs(&mut self) -> Vec<StallBreakdown> {
        std::mem::take(&mut self.epochs)
    }

    /// Serialize the full collector state, including in-flight ledger
    /// charges and the epoch series.
    pub fn snapshot(&self) -> gsi_json::Value {
        use gsi_json::ToJson;
        gsi_json::obj! {
            "breakdown" => self.breakdown.to_json(),
            "ledger" => self.ledger.snapshot(),
            "enabled" => self.enabled,
            "unresolved" => self.unresolved,
            "observed_cycles" => self.observed_cycles,
            "uncharged_mem_data" => self.uncharged_mem_data,
            "uncaused_mem_struct" => self.uncaused_mem_struct,
            "epoch_len" => self.epoch_len,
            "epoch_cursor" => self.epoch_cursor,
            "epochs" => self.epochs.to_json()
        }
    }

    /// Restore onto a fresh collector.
    pub fn restore(&mut self, v: &gsi_json::Value) -> Result<(), gsi_json::JsonError> {
        self.breakdown = v.read("breakdown")?;
        self.ledger.restore(v.req("ledger")?)?;
        self.enabled = v.read("enabled")?;
        self.unresolved = v.read("unresolved")?;
        self.observed_cycles = v.read("observed_cycles")?;
        self.uncharged_mem_data = v.read("uncharged_mem_data")?;
        self.uncaused_mem_struct = v.read("uncaused_mem_struct")?;
        self.epoch_len = v.read("epoch_len")?;
        self.epoch_cursor = v.read("epoch_cursor")?;
        self.epochs = v.read("epochs")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::classify::{judge_cycle, InstrHazards};
    use crate::stall::MemStructCause;

    #[test]
    fn records_structural_subcause_immediately() {
        let mut c = StallCollector::new();
        let v = judge_cycle(false, &[InstrHazards::mem_structural(MemStructCause::PendingDma)]);
        c.record_cycle(&v);
        assert_eq!(c.breakdown().cycles(StallKind::MemoryStructural), 1);
        assert_eq!(c.breakdown().mem_struct_cycles(MemStructCause::PendingDma), 1);
    }

    #[test]
    fn mem_data_committed_on_fill() {
        let mut c = StallCollector::new();
        let v = judge_cycle(false, &[InstrHazards::mem_data(RequestId(5))]);
        c.record_cycle(&v);
        c.record_cycle(&v);
        // Not yet committed.
        assert_eq!(c.breakdown().mem_data_total(), 0);
        assert_eq!(c.breakdown().cycles(StallKind::MemoryData), 2);
        c.on_fill(RequestId(5), MemDataCause::RemoteL1);
        assert_eq!(c.breakdown().mem_data_cycles(MemDataCause::RemoteL1), 2);
    }

    #[test]
    fn finish_books_dangling_charges_to_main_memory() {
        let mut c = StallCollector::new();
        let v = judge_cycle(false, &[InstrHazards::mem_data(RequestId(1))]);
        c.record_cycle(&v);
        let b = c.finish();
        assert_eq!(b.mem_data_cycles(MemDataCause::MainMemory), 1);
        assert_eq!(b.mem_data_total(), b.cycles(StallKind::MemoryData));
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let mut c = StallCollector::new();
        c.set_enabled(false);
        assert!(!c.is_enabled());
        let v = judge_cycle(false, &[InstrHazards::synchronization()]);
        c.record_cycle(&v);
        c.on_fill(RequestId(1), MemDataCause::L1);
        assert_eq!(c.breakdown().total_cycles(), 0);
    }

    #[test]
    fn reset_preserves_enabled_flag() {
        let mut c = StallCollector::new();
        c.set_enabled(false);
        c.reset();
        assert!(!c.is_enabled());
        c.set_enabled(true);
        c.record_cycle(&CycleVerdict::bare(StallKind::Idle));
        c.reset();
        assert!(c.is_enabled());
        assert_eq!(c.breakdown().total_cycles(), 0);
    }

    #[test]
    fn epochs_partition_the_breakdown() {
        let mut c = StallCollector::new();
        c.set_epoch_len(3);
        for i in 0..10 {
            let kind = if i % 2 == 0 { StallKind::NoStall } else { StallKind::Idle };
            c.record_cycle(&CycleVerdict::bare(kind));
        }
        assert_eq!(c.epochs().len(), 4, "10 cycles / 3 per epoch -> 4 epochs");
        let total: u64 = c.epochs().iter().map(|e| e.total_cycles()).sum();
        assert_eq!(total, c.breakdown().total_cycles());
        assert_eq!(c.epochs()[0].total_cycles(), 3);
        assert_eq!(c.epochs()[3].total_cycles(), 1);
    }

    #[test]
    fn epoch_series_disabled_by_default() {
        let mut c = StallCollector::new();
        c.record_cycle(&CycleVerdict::bare(StallKind::Idle));
        assert!(c.epochs().is_empty());
    }

    #[test]
    fn fills_book_into_current_epoch() {
        let mut c = StallCollector::new();
        c.set_epoch_len(2);
        let v = judge_cycle(false, &[InstrHazards::mem_data(RequestId(9))]);
        c.record_cycle(&v);
        c.record_cycle(&v);
        c.record_cycle(&v); // second epoch begins
        c.on_fill(RequestId(9), MemDataCause::L2);
        let epochs = c.epochs();
        assert_eq!(epochs.len(), 2);
        assert_eq!(epochs[1].mem_data_cycles(MemDataCause::L2), 3);
    }

    #[test]
    fn bare_verdicts_without_detail_stay_consistent() {
        // Hand-built verdicts can lack a blocking request or rejection
        // cause; the conservation invariants must still hold (the cycles
        // are counted but never sub-classified).
        let mut c = StallCollector::new();
        c.record_cycle(&CycleVerdict::bare(StallKind::MemoryData));
        c.record_cycle(&CycleVerdict::bare(StallKind::MemoryStructural));
        let v = judge_cycle(false, &[InstrHazards::mem_data(RequestId(4))]);
        c.record_cycle(&v);
        c.on_fill(RequestId(4), MemDataCause::L1);
        let b = c.finish();
        assert_eq!(b.cycles(StallKind::MemoryData), 2);
        assert_eq!(b.mem_data_total(), 1, "the bare cycle has no sub-bucket");
        assert_eq!(b.cycles(StallKind::MemoryStructural), 1);
        assert_eq!(b.mem_struct_total(), 0);
    }

    #[test]
    fn validate_catches_corrupted_state() {
        let mut c = StallCollector::new();
        c.record_cycle(&CycleVerdict::bare(StallKind::NoStall));
        assert_eq!(c.validate(), Ok(()));
        // Corrupt the breakdown behind the collector's back.
        c.breakdown_mut().add_cycle(StallKind::Idle);
        assert_eq!(
            c.validate(),
            Err(ConservationError::TotalMismatch { bucketed: 2, observed: 1 })
        );

        let mut c = StallCollector::new();
        let v = judge_cycle(false, &[InstrHazards::mem_data(RequestId(3))]);
        c.record_cycle(&v);
        c.breakdown_mut().add_mem_data(MemDataCause::L2, 5);
        let err = c.validate().unwrap_err();
        assert!(matches!(err, ConservationError::MemDataMismatch { parent: 1, accounted: 6 }));
        assert!(err.to_string().contains("memory-data"), "{err}");

        let mut c = StallCollector::new();
        let vs =
            judge_cycle(false, &[InstrHazards::mem_structural(MemStructCause::StoreBufferFull)]);
        c.record_cycle(&vs);
        c.breakdown_mut().add_mem_struct(MemStructCause::StoreBufferFull, 1);
        assert!(matches!(c.validate(), Err(ConservationError::MemStructMismatch { .. })));
    }

    #[test]
    fn subtotals_partition_totals_after_finish() {
        let mut c = StallCollector::new();
        // 3 mem-data cycles on two requests, 2 structural, 1 no-stall.
        let v1 = judge_cycle(false, &[InstrHazards::mem_data(RequestId(1))]);
        let v2 = judge_cycle(false, &[InstrHazards::mem_data(RequestId(2))]);
        c.record_cycle(&v1);
        c.record_cycle(&v1);
        c.record_cycle(&v2);
        let vs = judge_cycle(false, &[InstrHazards::mem_structural(MemStructCause::MshrFull)]);
        c.record_cycle(&vs);
        c.record_cycle(&vs);
        c.record_cycle(&judge_cycle(true, &[]));
        c.on_fill(RequestId(1), MemDataCause::L2);
        let b = c.finish();
        assert_eq!(b.cycles(StallKind::MemoryData), b.mem_data_total());
        assert_eq!(b.cycles(StallKind::MemoryStructural), b.mem_struct_total());
        assert_eq!(b.total_cycles(), 6);
    }
}
