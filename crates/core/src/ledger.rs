//! Retroactive attribution of memory-data stall cycles.
//!
//! The sub-category of a memory data stall is *where the dependency load was
//! serviced* (Section 4.3) — information that only exists once the fill
//! returns. The ledger accumulates stall cycles charged against an
//! outstanding request and commits them to the right bucket when the
//! request's provenance becomes known.

use crate::stall::RequestId;
use std::collections::HashMap;

/// Accumulates memory-data stall cycles charged to in-flight requests.
///
/// ```
/// use gsi_core::{AttributionLedger, MemDataCause, RequestId};
/// let mut ledger = AttributionLedger::new();
/// ledger.charge(RequestId(3));
/// ledger.charge(RequestId(3));
/// assert_eq!(ledger.commit(RequestId(3)), 2); // fill arrived; 2 cycles to book
/// assert_eq!(ledger.commit(RequestId(3)), 0); // idempotent
/// # let _ = MemDataCause::L2;
/// ```
#[derive(Debug, Clone, Default)]
pub struct AttributionLedger {
    pending: HashMap<RequestId, u64>,
}

impl AttributionLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge one stall cycle against an outstanding request.
    pub fn charge(&mut self, req: RequestId) {
        *self.pending.entry(req).or_insert(0) += 1;
    }

    /// Charge `n` stall cycles against an outstanding request at once (the
    /// event engine's bulk credit for a skipped stretch).
    pub fn charge_n(&mut self, req: RequestId, n: u64) {
        if n > 0 {
            *self.pending.entry(req).or_insert(0) += n;
        }
    }

    /// The request completed: remove and return the cycles accumulated
    /// against it (zero if none were charged).
    #[must_use]
    pub fn commit(&mut self, req: RequestId) -> u64 {
        self.pending.remove(&req).unwrap_or(0)
    }

    /// Cycles currently charged to `req` but not yet committed.
    pub fn outstanding(&self, req: RequestId) -> u64 {
        self.pending.get(&req).copied().unwrap_or(0)
    }

    /// Number of requests with uncommitted charges.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Total cycles charged but not yet committed, across all requests.
    pub fn pending_total(&self) -> u64 {
        self.pending.values().sum()
    }

    /// True when no charges are outstanding.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Drain every uncommitted charge, returning the total.
    ///
    /// Used at end of simulation for requests that never completed (there
    /// should be none in a correct run; a nonzero result is a diagnostic).
    pub fn drain_unresolved(&mut self) -> u64 {
        let total = self.pending.values().sum();
        self.pending.clear();
        total
    }

    /// Serialize outstanding charges as sorted `[request, cycles]` pairs.
    pub fn snapshot(&self) -> gsi_json::Value {
        use gsi_json::{ToJson, Value};
        let mut pairs: Vec<(RequestId, u64)> = self.pending.iter().map(|(&r, &n)| (r, n)).collect();
        pairs.sort();
        Value::Array(
            pairs
                .into_iter()
                .map(|(r, n)| Value::Array(vec![r.to_json(), Value::U64(n)]))
                .collect(),
        )
    }

    /// Restore onto a fresh ledger.
    pub fn restore(&mut self, v: &gsi_json::Value) -> Result<(), gsi_json::JsonError> {
        use gsi_json::{FromJson, JsonError, Value};
        let pairs = match v {
            Value::Array(pairs) => pairs,
            other => return Err(JsonError::expected("array", other)),
        };
        self.pending.clear();
        for pair in pairs {
            let fields = match pair {
                Value::Array(f) if f.len() == 2 => f,
                other => return Err(JsonError::expected("[request, cycles]", other)),
            };
            self.pending.insert(RequestId::from_json(&fields[0])?, u64::from_json(&fields[1])?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let mut l = AttributionLedger::new();
        for _ in 0..5 {
            l.charge(RequestId(1));
        }
        l.charge(RequestId(2));
        assert_eq!(l.outstanding(RequestId(1)), 5);
        assert_eq!(l.outstanding(RequestId(2)), 1);
        assert_eq!(l.outstanding(RequestId(3)), 0);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn commit_removes() {
        let mut l = AttributionLedger::new();
        l.charge(RequestId(9));
        assert_eq!(l.commit(RequestId(9)), 1);
        assert!(l.is_empty());
        assert_eq!(l.commit(RequestId(9)), 0);
    }

    #[test]
    fn commit_unknown_is_zero() {
        let mut l = AttributionLedger::new();
        assert_eq!(l.commit(RequestId(1234)), 0);
    }

    #[test]
    fn drain_unresolved_clears() {
        let mut l = AttributionLedger::new();
        l.charge(RequestId(1));
        l.charge(RequestId(1));
        l.charge(RequestId(2));
        assert_eq!(l.drain_unresolved(), 3);
        assert!(l.is_empty());
        assert_eq!(l.drain_unresolved(), 0);
    }

    #[test]
    fn pending_total_sums_all_requests() {
        let mut l = AttributionLedger::new();
        assert_eq!(l.pending_total(), 0);
        l.charge(RequestId(1));
        l.charge(RequestId(1));
        l.charge(RequestId(2));
        assert_eq!(l.pending_total(), 3);
        let _ = l.commit(RequestId(1));
        assert_eq!(l.pending_total(), 1);
    }
}
