//! Randomized tests for the classification algorithms and breakdown
//! algebra, driven by a fixed-seed SplitMix64 generator (deterministic, no
//! external crates).

use gsi_core::{
    classify_cycle, classify_instruction, judge_cycle, InstrHazards, MemDataCause, MemStructCause,
    RequestId, StallBreakdown, StallCollector, StallKind,
};

/// Deterministic SplitMix64 generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n > 0`).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flag(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

const MEM_STRUCTS: &[MemStructCause] = &[
    MemStructCause::MshrFull,
    MemStructCause::StoreBufferFull,
    MemStructCause::BankConflict,
    MemStructCause::PendingRelease,
    MemStructCause::PendingDma,
];

fn random_hazards(rng: &mut Rng) -> InstrHazards {
    InstrHazards {
        control: rng.flag(),
        synchronization: rng.flag(),
        mem_data: if rng.flag() { Some(RequestId(rng.next())) } else { None },
        mem_structural: if rng.flag() {
            Some(MEM_STRUCTS[rng.below(MEM_STRUCTS.len() as u64) as usize])
        } else {
            None
        },
        compute_data: rng.flag(),
        compute_structural: rng.flag(),
    }
}

/// Algorithm 1 returns NoStall iff no hazard is present.
#[test]
fn instruction_classification_is_no_stall_iff_clean() {
    let mut rng = Rng::new(0xC04E_0001);
    for _ in 0..256 {
        let h = random_hazards(&mut rng);
        assert_eq!(classify_instruction(&h) == StallKind::NoStall, h.can_issue());
    }
}

/// Algorithm 1 never invents hazards: the returned kind's flag is set.
#[test]
fn instruction_classification_reflects_a_real_hazard() {
    let mut rng = Rng::new(0xC04E_0002);
    for _ in 0..256 {
        let h = random_hazards(&mut rng);
        match classify_instruction(&h) {
            StallKind::Control => assert!(h.control),
            StallKind::Synchronization => assert!(h.synchronization),
            StallKind::MemoryData => assert!(h.mem_data.is_some()),
            StallKind::MemoryStructural => assert!(h.mem_structural.is_some()),
            StallKind::ComputeData => assert!(h.compute_data),
            StallKind::ComputeStructural => assert!(h.compute_structural),
            StallKind::NoStall => assert!(h.can_issue()),
            StallKind::Idle => panic!("Algorithm 1 never yields Idle"),
        }
    }
}

/// Algorithm 2 yields a kind that was actually present (or Idle/NoStall).
#[test]
fn cycle_classification_picks_present_kind() {
    let mut rng = Rng::new(0xC04E_0003);
    for _ in 0..256 {
        let n = rng.below(8) as usize;
        let hazards: Vec<InstrHazards> = (0..n).map(|_| random_hazards(&mut rng)).collect();
        let issued = rng.flag();

        let kinds: Vec<StallKind> = hazards.iter().map(classify_instruction).collect();
        let verdict = classify_cycle(issued, &kinds);
        if issued {
            assert_eq!(verdict, StallKind::NoStall);
        } else if kinds.iter().all(|&k| k == StallKind::NoStall) && !kinds.is_empty() {
            // All considered could issue but none did (slot limits): the
            // weakest-stall rule has nothing to blame, so Idle results.
            assert_eq!(verdict, StallKind::Idle);
        } else if kinds.is_empty() {
            assert_eq!(verdict, StallKind::Idle);
        } else {
            assert!(kinds.contains(&verdict), "{verdict:?} not in {kinds:?}");
        }
    }
}

/// judge_cycle's sub-classification detail comes from a matching
/// instruction.
#[test]
fn verdict_detail_is_consistent() {
    let mut rng = Rng::new(0xC04E_0004);
    for _ in 0..256 {
        let n = rng.below(8) as usize;
        let hazards: Vec<InstrHazards> = (0..n).map(|_| random_hazards(&mut rng)).collect();

        let v = judge_cycle(false, &hazards);
        if v.kind == StallKind::MemoryStructural {
            assert!(hazards.iter().any(|h| h.mem_structural == v.mem_structural));
        }
        if v.kind == StallKind::MemoryData {
            assert!(hazards.iter().any(|h| h.mem_data == v.blocking_request));
        }
    }
}

/// Breakdown merge is commutative and associative; totals are linear.
#[test]
fn breakdown_algebra() {
    let mut rng = Rng::new(0xC04E_0005);
    for _ in 0..64 {
        let draw = |rng: &mut Rng| -> Vec<u64> { (0..8).map(|_| rng.below(1000)).collect() };
        let (counts_a, counts_b, counts_c) = (draw(&mut rng), draw(&mut rng), draw(&mut rng));
        let mk = |counts: &[u64]| {
            let mut b = StallBreakdown::new();
            for (k, &n) in StallKind::ALL.iter().zip(counts) {
                b.add_cycles(*k, n);
            }
            b
        };
        let (a, b, c) = (mk(&counts_a), mk(&counts_b), mk(&counts_c));
        assert_eq!(a.clone() + b.clone(), b.clone() + a.clone());
        assert_eq!((a.clone() + b.clone()) + c.clone(), a.clone() + (b.clone() + c.clone()));
        assert_eq!((a.clone() + b.clone()).total_cycles(), a.total_cycles() + b.total_cycles());
    }
}

/// The collector conserves cycles: every recorded verdict lands in exactly
/// one bucket, and committed memory-data cycles equal charged ones.
#[test]
fn collector_conserves_cycles() {
    let mut rng = Rng::new(0xC04E_0006);
    for _ in 0..64 {
        let ncycles = 1 + rng.below(99) as usize;
        let cycles: Vec<(InstrHazards, bool)> =
            (0..ncycles).map(|_| (random_hazards(&mut rng), rng.flag())).collect();

        let mut c = StallCollector::new();
        let mut outstanding = Vec::new();
        let mut recorded = 0u64;
        for (h, fill_now) in &cycles {
            let v = judge_cycle(false, std::slice::from_ref(h));
            c.record_cycle(&v);
            recorded += 1;
            if let Some(req) = v.blocking_request {
                outstanding.push(req);
            }
            if *fill_now {
                if let Some(req) = outstanding.pop() {
                    c.on_fill(req, MemDataCause::L2);
                }
            }
        }
        let b = c.finish();
        assert_eq!(b.total_cycles(), recorded);
        assert_eq!(b.mem_data_total(), b.cycles(StallKind::MemoryData));
    }
}

/// Normalization against self always sums to 1 for non-empty breakdowns.
#[test]
fn self_normalization_sums_to_one() {
    let mut rng = Rng::new(0xC04E_0007);
    for _ in 0..64 {
        let mut b = StallBreakdown::new();
        for k in StallKind::ALL.iter() {
            b.add_cycles(*k, rng.below(1000));
        }
        if b.total_cycles() == 0 {
            continue;
        }
        let total: f64 = b.normalized_to(&b).iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
