//! Property tests for the classification algorithms and breakdown algebra.

use gsi_core::{
    classify_cycle, classify_instruction, judge_cycle, InstrHazards, MemDataCause,
    MemStructCause, RequestId, StallBreakdown, StallCollector, StallKind,
};
use proptest::prelude::*;

fn arb_mem_struct() -> impl Strategy<Value = MemStructCause> {
    prop_oneof![
        Just(MemStructCause::MshrFull),
        Just(MemStructCause::StoreBufferFull),
        Just(MemStructCause::BankConflict),
        Just(MemStructCause::PendingRelease),
        Just(MemStructCause::PendingDma),
    ]
}

fn arb_hazards() -> impl Strategy<Value = InstrHazards> {
    (
        any::<bool>(),
        any::<bool>(),
        proptest::option::of(any::<u64>()),
        proptest::option::of(arb_mem_struct()),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(control, synchronization, req, ms, cd, cs)| InstrHazards {
            control,
            synchronization,
            mem_data: req.map(RequestId),
            mem_structural: ms,
            compute_data: cd,
            compute_structural: cs,
        })
}

proptest! {
    /// Algorithm 1 returns NoStall iff no hazard is present.
    #[test]
    fn instruction_classification_is_no_stall_iff_clean(h in arb_hazards()) {
        prop_assert_eq!(classify_instruction(&h) == StallKind::NoStall, h.can_issue());
    }

    /// Algorithm 1 never invents hazards: the returned kind's flag is set.
    #[test]
    fn instruction_classification_reflects_a_real_hazard(h in arb_hazards()) {
        match classify_instruction(&h) {
            StallKind::Control => prop_assert!(h.control),
            StallKind::Synchronization => prop_assert!(h.synchronization),
            StallKind::MemoryData => prop_assert!(h.mem_data.is_some()),
            StallKind::MemoryStructural => prop_assert!(h.mem_structural.is_some()),
            StallKind::ComputeData => prop_assert!(h.compute_data),
            StallKind::ComputeStructural => prop_assert!(h.compute_structural),
            StallKind::NoStall => prop_assert!(h.can_issue()),
            StallKind::Idle => prop_assert!(false, "Algorithm 1 never yields Idle"),
        }
    }

    /// Algorithm 2 yields a kind that was actually present (or Idle/NoStall).
    #[test]
    fn cycle_classification_picks_present_kind(
        hazards in proptest::collection::vec(arb_hazards(), 0..8),
        issued in any::<bool>(),
    ) {
        let kinds: Vec<StallKind> = hazards.iter().map(classify_instruction).collect();
        let verdict = classify_cycle(issued, &kinds);
        if issued {
            prop_assert_eq!(verdict, StallKind::NoStall);
        } else if kinds.iter().all(|&k| k == StallKind::NoStall) && !kinds.is_empty() {
            // All considered could issue but none did (slot limits): the
            // weakest-stall rule has nothing to blame, so Idle results.
            prop_assert_eq!(verdict, StallKind::Idle);
        } else if kinds.is_empty() {
            prop_assert_eq!(verdict, StallKind::Idle);
        } else {
            prop_assert!(kinds.contains(&verdict), "{:?} not in {:?}", verdict, kinds);
        }
    }

    /// judge_cycle's sub-classification detail comes from a matching
    /// instruction.
    #[test]
    fn verdict_detail_is_consistent(
        hazards in proptest::collection::vec(arb_hazards(), 0..8),
    ) {
        let v = judge_cycle(false, &hazards);
        if v.kind == StallKind::MemoryStructural {
            prop_assert!(hazards.iter().any(|h| h.mem_structural == v.mem_structural));
        }
        if v.kind == StallKind::MemoryData {
            prop_assert!(hazards.iter().any(|h| h.mem_data == v.blocking_request));
        }
    }

    /// Breakdown merge is commutative and associative; totals are linear.
    #[test]
    fn breakdown_algebra(
        counts_a in proptest::collection::vec(0u64..1000, 8),
        counts_b in proptest::collection::vec(0u64..1000, 8),
        counts_c in proptest::collection::vec(0u64..1000, 8),
    ) {
        let mk = |counts: &[u64]| {
            let mut b = StallBreakdown::new();
            for (k, &n) in StallKind::ALL.iter().zip(counts) {
                b.add_cycles(*k, n);
            }
            b
        };
        let (a, b, c) = (mk(&counts_a), mk(&counts_b), mk(&counts_c));
        prop_assert_eq!(a.clone() + b.clone(), b.clone() + a.clone());
        prop_assert_eq!(
            (a.clone() + b.clone()) + c.clone(),
            a.clone() + (b.clone() + c.clone())
        );
        prop_assert_eq!(
            (a.clone() + b.clone()).total_cycles(),
            a.total_cycles() + b.total_cycles()
        );
    }

    /// The collector conserves cycles: every recorded verdict lands in
    /// exactly one bucket, and committed memory-data cycles equal charged
    /// ones.
    #[test]
    fn collector_conserves_cycles(
        cycles in proptest::collection::vec((arb_hazards(), any::<bool>()), 1..100),
    ) {
        let mut c = StallCollector::new();
        let mut outstanding = Vec::new();
        let mut recorded = 0u64;
        for (h, fill_now) in &cycles {
            let v = judge_cycle(false, std::slice::from_ref(h));
            c.record_cycle(&v);
            recorded += 1;
            if let Some(req) = v.blocking_request {
                outstanding.push(req);
            }
            if *fill_now {
                if let Some(req) = outstanding.pop() {
                    c.on_fill(req, MemDataCause::L2);
                }
            }
        }
        let b = c.finish();
        prop_assert_eq!(b.total_cycles(), recorded);
        prop_assert_eq!(b.mem_data_total(), b.cycles(StallKind::MemoryData));
    }

    /// Normalization against self always sums to 1 for non-empty breakdowns.
    #[test]
    fn self_normalization_sums_to_one(
        counts in proptest::collection::vec(0u64..1000, 8),
    ) {
        prop_assume!(counts.iter().sum::<u64>() > 0);
        let mut b = StallBreakdown::new();
        for (k, &n) in StallKind::ALL.iter().zip(&counts) {
            b.add_cycles(*k, n);
        }
        let total: f64 = b.normalized_to(&b).iter().map(|(_, v)| v).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}
