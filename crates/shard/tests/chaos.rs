//! Worker-kill recovery: a sweep running under `--chaos-kill` with a
//! pinned seed — workers SIGKILLed mid-unit, respawned, units retried —
//! must merge to artifacts byte-identical to a failure-free run, with no
//! unit simulated twice in the merged output. A journal interrupted
//! partway and resumed must converge to the same bytes.

#![allow(clippy::unwrap_used)]

use gsi_bench::plan::SweepPlan;
use gsi_json::Value;
use gsi_shard::{run_plan, ShardConfig};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_gsi-shard").to_string(), "--worker".to_string()]
}

fn plan() -> SweepPlan {
    SweepPlan::parse(r#"{"name":"chaos","workloads":["spmv","bfs"],"protocols":["gpu","denovo"]}"#)
        .unwrap()
}

fn config(out: &Path) -> ShardConfig {
    ShardConfig {
        workers: 2,
        worker_cmd: worker_cmd(),
        deadline: Duration::from_secs(120),
        heartbeat: Duration::from_secs(60),
        backoff_base: Duration::from_millis(5),
        out_dir: out.to_path_buf(),
        journal_path: out.join("journal.jsonl"),
        quiet: true,
        ..ShardConfig::default()
    }
}

fn artifacts(out: &Path) -> (String, String) {
    (
        std::fs::read_to_string(out.join("figures.txt")).unwrap(),
        std::fs::read_to_string(out.join("rows.json")).unwrap(),
    )
}

fn unit_indices(out: &Path) -> Vec<u64> {
    let rows = Value::parse(&std::fs::read_to_string(out.join("rows.json")).unwrap()).unwrap();
    rows.get("rows")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .map(|r| r.get("unit").unwrap().as_u64().unwrap())
        .collect()
}

#[test]
fn chaos_killed_sweep_merges_byte_identical_to_a_clean_run() {
    let base = std::env::temp_dir().join(format!("gsi-chaos-{}", std::process::id()));
    let clean_dir = base.join("clean");
    let chaos_dir = base.join("chaos");
    let p = plan();

    let clean = run_plan(&p, config(&clean_dir)).unwrap();
    assert_eq!(clean.ok, p.unit_count());
    assert_eq!(clean.chaos_kills, 0);

    // Seed 7 at p=0.8 is known to fire many kills on this plan (the
    // draw is deterministic, so this stays true forever).
    let cfg = ShardConfig { chaos_kill: 0.8, chaos_seed: 7, ..config(&chaos_dir) };
    let chaos = run_plan(&p, cfg).unwrap();
    assert_eq!(chaos.ok, p.unit_count(), "chaos must only delay units, not lose them");
    assert!(chaos.chaos_kills > 0, "p=0.8 fired no kills; the chaos path went untested");
    assert!(chaos.workers_spawned > clean.workers_spawned, "kills must have forced respawns");

    let (clean_figs, clean_rows) = artifacts(&clean_dir);
    let (chaos_figs, chaos_rows) = artifacts(&chaos_dir);
    assert_eq!(clean_figs, chaos_figs, "figures differ between clean and chaos runs");
    assert_eq!(clean_rows, chaos_rows, "rows differ between clean and chaos runs");

    // No unit appears twice in the merged output.
    let indices = unit_indices(&chaos_dir);
    let unique: BTreeSet<u64> = indices.iter().copied().collect();
    assert_eq!(indices.len(), unique.len(), "a unit was merged twice");
    assert_eq!(unique.len(), p.unit_count());

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn interrupted_journal_resumes_to_byte_identical_artifacts() {
    let base = std::env::temp_dir().join(format!("gsi-resume-{}", std::process::id()));
    let clean_dir = base.join("clean");
    let cut_dir = base.join("cut");
    let p = plan();

    run_plan(&p, config(&clean_dir)).unwrap();

    // Simulate a supervisor SIGKILLed mid-sweep: keep the journal's
    // header plus its first two outcome records (a prefix a real crash
    // could leave — every append is fsync'd), plus a torn half-record
    // the way an in-flight write would tear.
    let journal = std::fs::read_to_string(clean_dir.join("journal.jsonl")).unwrap();
    let mut lines = journal.lines();
    let keep: Vec<&str> = lines.by_ref().take(3).collect();
    assert_eq!(keep.len(), 3, "clean journal shorter than expected");
    let torn = lines.next().unwrap();
    let mut partial = keep.join("\n");
    partial.push('\n');
    partial.push_str(&torn[..torn.len() / 2]); // no trailing newline: torn
    std::fs::create_dir_all(&cut_dir).unwrap();
    let journal_path: PathBuf = cut_dir.join("journal.jsonl");
    std::fs::write(&journal_path, partial).unwrap();

    let cfg = ShardConfig { resume: true, chaos_kill: 0.5, chaos_seed: 11, ..config(&cut_dir) };
    let resumed = run_plan(&p, cfg).unwrap();
    assert_eq!(resumed.resumed_units, 2, "exactly the journaled prefix should be skipped");
    assert_eq!(resumed.ok, p.unit_count());

    let (clean_figs, clean_rows) = artifacts(&clean_dir);
    let (cut_figs, cut_rows) = artifacts(&cut_dir);
    assert_eq!(clean_figs, cut_figs, "figures differ after interrupt + resume");
    assert_eq!(clean_rows, cut_rows, "rows differ after interrupt + resume");

    // The resumed journal must also contain each unit exactly once.
    let replayed = gsi_shard::replay(&std::fs::read(&journal_path).unwrap()).unwrap();
    let indices: Vec<usize> =
        replayed.outcomes.iter().filter_map(gsi_shard::Record::unit_index).collect();
    let unique: BTreeSet<usize> = indices.iter().copied().collect();
    assert_eq!(indices.len(), unique.len(), "journal double-counts a unit after resume");
    assert_eq!(unique.len(), p.unit_count());

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn a_poisonous_worker_command_quarantines_not_hangs() {
    let base = std::env::temp_dir().join(format!("gsi-poison-{}", std::process::id()));
    let p = SweepPlan::parse(r#"{"name":"poison","workloads":["spmv"]}"#).unwrap();
    // A worker that accepts the request then dies without answering.
    let cfg = ShardConfig {
        workers: 1,
        worker_cmd: vec![
            "/bin/sh".to_string(),
            "-c".to_string(),
            "read _line; echo doomed >&2; exit 7".to_string(),
        ],
        max_strikes: 2,
        backoff_base: Duration::from_millis(5),
        out_dir: base.clone(),
        journal_path: base.join("journal.jsonl"),
        quiet: true,
        ..ShardConfig::default()
    };
    let outcome = run_plan(&p, cfg).unwrap();
    assert_eq!(outcome.poisoned, 1, "the unit should be quarantined");
    assert_eq!(outcome.ok, 0);
    // The quarantine record carries the worker's stderr tail.
    let journal = std::fs::read_to_string(base.join("journal.jsonl")).unwrap();
    assert!(journal.contains("doomed"), "stderr tail missing from poison record:\n{journal}");
    // And the manifest is typed about the degradation.
    let manifest =
        Value::parse(&std::fs::read_to_string(base.join("manifest.json")).unwrap()).unwrap();
    assert_eq!(manifest.get("status").and_then(Value::as_str), Some("degraded"));
    std::fs::remove_dir_all(&base).ok();
}
