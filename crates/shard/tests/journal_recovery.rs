//! Journal recovery property tests: for *every* byte offset, a journal
//! truncated or corrupted there either replays a valid prefix or reports
//! a typed error — it never panics and never double-counts a unit.

#![allow(clippy::unwrap_used)]

use gsi_bench::merge::{UnitFailure, UnitResult};
use gsi_bench::plan::SweepPlan;
use gsi_shard::{replay, Journal, JournalError, Record};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn plan() -> SweepPlan {
    SweepPlan::parse(
        r#"{"name":"prop","workloads":["spmv","bfs","uts"],"protocols":["gpu","denovo"]}"#,
    )
    .unwrap()
}

/// A journal with a header and one record per unit (mixed outcomes).
fn build_journal(plan: &SweepPlan) -> (Vec<u8>, Vec<Record>) {
    let mut records = vec![Record::Header {
        plan: plan.name.clone(),
        plan_digest: plan.digest(),
        total_units: plan.unit_count(),
    }];
    for unit in plan.units() {
        records.push(if unit.index == 3 {
            Record::Failed(UnitFailure {
                index: unit.index,
                name: unit.name.clone(),
                status: "poisoned".into(),
                message: "worker died; stderr tail:\nsignal: 9".into(),
            })
        } else {
            Record::Ok(UnitResult {
                index: unit.index,
                name: unit.name.clone(),
                workload: unit.workload.clone(),
                cycles: 1000 + unit.index as u64,
                instructions: 100,
                breakdown: gsi_core::StallBreakdown::default(),
                links: Vec::new(),
            })
        });
    }
    let mut bytes = Vec::new();
    for r in &records {
        bytes.extend_from_slice(r.encode().as_bytes());
        bytes.push(b'\n');
    }
    (bytes, records)
}

/// The clean unit-record sequence (what full replay should yield).
fn clean_outcomes(records: &[Record]) -> Vec<Record> {
    records.iter().filter(|r| r.unit_index().is_some()).cloned().collect()
}

/// Replayed outcomes must be a prefix of the clean sequence with unique
/// indices. Returns how many outcomes replayed.
fn assert_valid_prefix(bytes: &[u8], clean: &[Record], context: &str) -> usize {
    match replay(bytes) {
        Err(JournalError::MissingHeader) => 0,
        Err(e) => panic!("{context}: unexpected error kind {e}"),
        Ok(r) => {
            assert!(
                r.valid_bytes as usize <= bytes.len(),
                "{context}: valid prefix longer than input"
            );
            let mut seen = BTreeSet::new();
            for (i, rec) in r.outcomes.iter().enumerate() {
                let idx = rec.unit_index().unwrap();
                assert!(seen.insert(idx), "{context}: unit {idx} double-counted");
                assert_eq!(rec, &clean[i], "{context}: outcome {i} not a clean prefix");
            }
            r.outcomes.len()
        }
    }
}

#[test]
fn truncation_at_every_byte_offset_replays_a_valid_prefix() {
    let p = plan();
    let (bytes, records) = build_journal(&p);
    let clean = clean_outcomes(&records);
    assert_eq!(assert_valid_prefix(&bytes, &clean, "intact"), clean.len());
    for cut in 0..bytes.len() {
        let n = assert_valid_prefix(&bytes[..cut], &clean, &format!("truncated at {cut}"));
        assert!(n <= clean.len());
    }
}

#[test]
fn corruption_at_every_byte_offset_replays_a_valid_prefix() {
    let p = plan();
    let (bytes, records) = build_journal(&p);
    let clean = clean_outcomes(&records);
    // Two corruption styles per offset: a flipped low bit (plausible
    // media error) and a hard overwrite with an invalid UTF-8 byte.
    for offset in 0..bytes.len() {
        for (what, garbage) in [("bitflip", bytes[offset] ^ 0x01), ("overwrite", 0xFF)] {
            let mut corrupt = bytes.clone();
            corrupt[offset] = garbage;
            assert_valid_prefix(&corrupt, &clean, &format!("{what} at {offset}"));
        }
    }
}

#[test]
fn resume_after_corruption_truncates_and_never_double_counts() {
    let p = plan();
    let (bytes, records) = build_journal(&p);
    let clean = clean_outcomes(&records);
    let dir = std::env::temp_dir().join(format!("gsi-shard-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join("journal.jsonl");

    // Corrupt midway through the file, resume, and append the missing
    // outcomes again — replay must still see each unit exactly once.
    let offset = bytes.len() * 2 / 3;
    let mut corrupt = bytes.clone();
    corrupt[offset] ^= 0x10;
    std::fs::write(&path, &corrupt).unwrap();

    let (mut journal, replayed) = Journal::resume(&path, &p).unwrap();
    let survivors: BTreeSet<usize> =
        replayed.outcomes.iter().filter_map(Record::unit_index).collect();
    assert!(survivors.len() < clean.len(), "corruption should have cost some records");
    // The file was truncated back to the valid prefix on disk.
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        replayed.valid_bytes,
        "resume must truncate the corrupt tail"
    );
    for rec in &clean {
        if !survivors.contains(&rec.unit_index().unwrap()) {
            journal.append(rec).unwrap();
        }
    }
    drop(journal);
    let full = replay(&std::fs::read(&path).unwrap()).unwrap();
    let indices: Vec<usize> = full.outcomes.iter().filter_map(Record::unit_index).collect();
    let unique: BTreeSet<usize> = indices.iter().copied().collect();
    assert_eq!(indices.len(), unique.len(), "double-counted units after resume");
    assert_eq!(unique.len(), clean.len(), "resume + re-append must recover every unit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_against_the_wrong_plan_is_a_typed_error() {
    let p = plan();
    let (bytes, _) = build_journal(&p);
    let dir = std::env::temp_dir().join(format!("gsi-shard-wrongplan-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.jsonl");
    std::fs::write(&path, &bytes).unwrap();
    let other = SweepPlan::parse(r#"{"name":"prop","workloads":["spmv"]}"#).unwrap();
    match Journal::resume(&path, &other) {
        Err(JournalError::PlanMismatch { expected, found }) => {
            assert_eq!(expected, other.digest());
            assert_eq!(found, p.digest());
        }
        other => panic!("expected PlanMismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
