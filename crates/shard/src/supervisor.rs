//! The shard supervisor: plan in, fault-tolerant sweep out.
//!
//! The supervisor expands a [`SweepPlan`] into work units, spawns a pool
//! of worker subprocesses (the gsi-serve protocol over stdio), and runs
//! the scheduling loop:
//!
//! * **Dispatch** — idle workers get the lowest-index ready unit; the
//!   request's protocol `id` is the unit index, so frames self-identify.
//! * **Liveness** — every frame refreshes a per-worker heartbeat clock;
//!   a worker silent past the heartbeat window, or a unit running past
//!   its deadline, is SIGKILLed and its unit retried.
//! * **Retries & quarantine** — deterministic error frames and worker
//!   deaths are *strikes* with exponential backoff; a unit that reaches
//!   `max_strikes` is journaled as `failed` (typed error) or `poisoned`
//!   (it kept killing workers — the record carries the stderr tail) and
//!   never retried again.
//! * **Chaos** — with `--chaos-kill p`, each dispatch attempt is
//!   pre-selected for a SIGKILL by a splitmix64 draw over
//!   `(seed, unit, attempt)`. Chaos kills are self-inflicted: the unit
//!   is requeued with **no** strike, so a chaos run completes the same
//!   set of units as a clean run — the basis of the byte-identity
//!   recovery tests.
//! * **Durability** — every outcome is appended to the fsync'd
//!   [`Journal`] *before* it is merged, and the merged figure/row
//!   artifacts are atomically rewritten after every unit, so killing the
//!   supervisor at any instant loses at most in-flight (re-runnable)
//!   work. `resume` replays the journal and skips completed units.

use crate::journal::{Journal, JournalError, Record};
use crate::worker::{Assignment, Worker, WorkerEvent};
use gsi_bench::merge::{MergedReport, UnitFailure, UnitResult};
use gsi_bench::plan::{SweepPlan, WorkUnit};
use gsi_json::Value;
use gsi_workloads::hash::splitmix64;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// Scheduler poll granularity; deadlines and heartbeats are checked at
/// this resolution.
const TICK: Duration = Duration::from_millis(25);

/// Supervisor configuration.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Worker process pool size.
    pub workers: usize,
    /// Worker command line (program + args); must speak the serve
    /// protocol on stdio.
    pub worker_cmd: Vec<String>,
    /// Per-attempt wall-clock deadline before the worker is killed.
    pub deadline: Duration,
    /// Max silence (no frames) before a busy worker is presumed hung.
    pub heartbeat: Duration,
    /// Strikes before a unit is quarantined (`poisoned`/`failed`).
    pub max_strikes: u32,
    /// First retry backoff; doubles per strike.
    pub backoff_base: Duration,
    /// Probability that any given dispatch attempt is chaos-killed.
    pub chaos_kill: f64,
    /// Seed for the deterministic chaos draw.
    pub chaos_seed: u64,
    /// Artifact directory (`figures.txt`, `rows.json`, `manifest.json`).
    pub out_dir: PathBuf,
    /// Journal file path.
    pub journal_path: PathBuf,
    /// Replay an existing journal instead of starting fresh.
    pub resume: bool,
    /// Suppress progress lines on stderr.
    pub quiet: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            workers: 2,
            worker_cmd: Vec::new(),
            deadline: Duration::from_secs(300),
            heartbeat: Duration::from_secs(60),
            max_strikes: 3,
            backoff_base: Duration::from_millis(50),
            chaos_kill: 0.0,
            chaos_seed: 0,
            out_dir: PathBuf::from("shard-out"),
            journal_path: PathBuf::from("shard-out/journal.jsonl"),
            resume: false,
            quiet: false,
        }
    }
}

/// How a finished (or abandoned) sweep went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardOutcome {
    /// Units with simulation results.
    pub ok: usize,
    /// Units quarantined with a typed worker error.
    pub failed: usize,
    /// Units quarantined for killing workers.
    pub poisoned: usize,
    /// Total plan units.
    pub total: usize,
    /// Units replayed from the journal rather than simulated.
    pub resumed_units: usize,
    /// Chaos SIGKILLs delivered.
    pub chaos_kills: u64,
    /// Worker processes spawned over the sweep's lifetime.
    pub workers_spawned: usize,
}

/// A sweep that could not run at all (as opposed to one that degraded).
#[derive(Debug)]
pub enum ShardError {
    /// Journal open/replay failed (corrupt beyond the header, foreign
    /// plan, I/O).
    Journal(JournalError),
    /// Artifact or journal I/O failed mid-run.
    Io(io::Error),
    /// Workers die continuously without producing a single frame of
    /// useful work — almost always a bad `worker_cmd`.
    WorkersFailing {
        /// Consecutive spontaneous worker deaths observed.
        deaths: usize,
        /// Stderr tail of the last corpse.
        stderr: String,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Journal(e) => write!(f, "{e}"),
            ShardError::Io(e) => write!(f, "shard I/O error: {e}"),
            ShardError::WorkersFailing { deaths, stderr } => write!(
                f,
                "{deaths} consecutive worker deaths without progress; check the worker \
                 command. last stderr:\n{stderr}"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<io::Error> for ShardError {
    fn from(e: io::Error) -> Self {
        ShardError::Io(e)
    }
}

impl From<JournalError> for ShardError {
    fn from(e: JournalError) -> Self {
        ShardError::Journal(e)
    }
}

/// Atomically publish `text` at `dir/name` (write-temp-then-rename, same
/// discipline as the serve cache).
fn write_atomic(dir: &std::path::Path, name: &str, text: &str) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(".{name}.tmp"));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, dir.join(name))
}

/// The deterministic chaos draw: is `(unit, attempt)` selected for a
/// SIGKILL under this seed and probability?
fn chaos_marked(seed: u64, p: f64, unit: usize, attempt: u32) -> bool {
    if p <= 0.0 {
        return false;
    }
    let x = splitmix64(
        seed ^ (unit as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ u64::from(attempt).wrapping_mul(0xd1b5_4a32_d192_ed03),
    );
    (x as f64 / u64::MAX as f64) < p
}

struct Supervisor {
    cfg: ShardConfig,
    units: Vec<WorkUnit>,
    merged: MergedReport,
    journal: Journal,
    /// `(not_before, unit)` retry queue; each pending unit appears once.
    queue: Vec<(Instant, usize)>,
    attempts: Vec<u32>,
    strikes: Vec<u32>,
    workers: BTreeMap<usize, Worker>,
    next_worker_id: usize,
    rx: Receiver<WorkerEvent>,
    tx: Sender<WorkerEvent>,
    resumed_units: usize,
    chaos_kills: u64,
    workers_spawned: usize,
    /// Spontaneous worker deaths since the last useful frame.
    deaths_in_a_row: usize,
    last_stderr: String,
}

impl Supervisor {
    fn log(&self, msg: &str) {
        if !self.cfg.quiet {
            eprintln!("gsi-shard: {msg}");
        }
    }

    fn spawn_worker(&mut self) -> io::Result<()> {
        let id = self.next_worker_id;
        self.next_worker_id += 1;
        let w = Worker::spawn(id, &self.cfg.worker_cmd, self.tx.clone())?;
        self.workers.insert(id, w);
        self.workers_spawned += 1;
        Ok(())
    }

    /// Keep the pool at strength while useful work remains: one worker
    /// per outstanding unit, up to the configured pool size.
    fn top_up(&mut self) -> Result<(), ShardError> {
        let outstanding =
            self.queue.len() + self.workers.values().filter(|w| w.assignment.is_some()).count();
        while self.workers.len() < self.cfg.workers.min(outstanding.max(1)) && outstanding > 0 {
            self.spawn_worker()?;
        }
        Ok(())
    }

    /// Hand every idle worker the lowest-index ready unit.
    fn dispatch(&mut self) {
        let now = Instant::now();
        let idle: Vec<usize> = self
            .workers
            .iter()
            .filter(|(_, w)| w.assignment.is_none())
            .map(|(&id, _)| id)
            .collect();
        for wid in idle {
            // Lowest unit index among ready entries, for a stable order.
            let Some(qpos) = self
                .queue
                .iter()
                .enumerate()
                .filter(|(_, (nb, _))| *nb <= now)
                .min_by_key(|(_, (_, u))| *u)
                .map(|(i, _)| i)
            else {
                break;
            };
            let (_, unit) = self.queue.swap_remove(qpos);
            self.attempts[unit] += 1;
            let attempt = self.attempts[unit];
            let chaos = chaos_marked(self.cfg.chaos_seed, self.cfg.chaos_kill, unit, attempt);
            let line = self.units[unit].request_line(unit as u64);
            let send_result = match self.workers.get_mut(&wid) {
                Some(w) => {
                    w.assignment =
                        Some(Assignment { unit, attempt, started: now, last_frame: now, chaos });
                    w.send_line(&line)
                }
                None => continue,
            };
            if let Err(e) = send_result {
                // The worker died between polls; put the unit back
                // (no strike — it never ran) and let Eof bookkeeping
                // retire the corpse.
                self.log(&format!("worker {wid}: dispatch failed ({e}); requeueing unit {unit}"));
                self.attempts[unit] -= 1;
                self.queue.push((now, unit));
                if let Some(mut w) = self.workers.remove(&wid) {
                    w.kill();
                    self.last_stderr = w.reap();
                }
                continue;
            }
            if chaos {
                // Self-inflicted SIGKILL mid-flight. Retire the worker
                // immediately so any frames it raced out are ignored,
                // and requeue without a strike: chaos is not the unit's
                // fault, which is what keeps a chaos run's merged output
                // identical to a clean run's.
                self.chaos_kills += 1;
                self.log(&format!(
                    "chaos: killing worker {wid} running unit {unit} (attempt {attempt})"
                ));
                if let Some(mut w) = self.workers.remove(&wid) {
                    w.kill();
                    w.reap();
                }
                self.queue.push((Instant::now(), unit));
            }
        }
    }

    /// A unit attempt failed; strike it and either requeue with backoff
    /// or quarantine it (`status` = `failed` or `poisoned`).
    fn strike(&mut self, unit: usize, status: &str, message: String) -> Result<(), ShardError> {
        self.strikes[unit] += 1;
        let strikes = self.strikes[unit];
        if strikes >= self.cfg.max_strikes {
            self.log(&format!(
                "unit {unit} ({}) quarantined as {status} after {strikes} strikes: {message}",
                self.units[unit].name
            ));
            self.settle(Record::Failed(UnitFailure {
                index: unit,
                name: self.units[unit].name.clone(),
                status: status.to_string(),
                message,
            }))?;
        } else {
            let backoff = self.cfg.backoff_base * 2u32.saturating_pow(strikes - 1);
            self.log(&format!(
                "unit {unit} ({}) strike {strikes}/{}: {message}; retrying in {backoff:?}",
                self.units[unit].name, self.cfg.max_strikes
            ));
            self.queue.push((Instant::now() + backoff, unit));
        }
        Ok(())
    }

    /// Journal an outcome (durably) and fold it into the merged report,
    /// then republish the artifacts.
    fn settle(&mut self, record: Record) -> Result<(), ShardError> {
        let duplicate = match &record {
            Record::Ok(r) => self.merged.done(r.index),
            Record::Failed(f) => self.merged.done(f.index),
            Record::Header { .. } => false,
        };
        if duplicate {
            return Ok(());
        }
        // Journal first: an outcome is only acted on once it is durable.
        self.journal.append(&record)?;
        match record {
            Record::Ok(r) => {
                self.merged.insert(r);
            }
            Record::Failed(f) => {
                self.merged.insert_failure(f);
            }
            Record::Header { .. } => {}
        }
        self.publish(false)?;
        Ok(())
    }

    /// Atomically rewrite the figure, row, and manifest artifacts.
    fn publish(&mut self, finished: bool) -> io::Result<()> {
        write_atomic(&self.cfg.out_dir, "figures.txt", &self.merged.figures_text())?;
        write_atomic(
            &self.cfg.out_dir,
            "rows.json",
            &format!("{}\n", self.merged.rows_json().to_string_pretty()),
        )?;
        let rows = self.merged.rows_json();
        let failures = rows
            .get("rows")
            .and_then(Value::as_array)
            .map(|rs| {
                rs.iter().filter(|r| r.get("status").and_then(Value::as_str) != Some("ok")).count()
            })
            .unwrap_or(0);
        let status = if !finished && !self.merged.is_complete() {
            "partial"
        } else if failures > 0 {
            "degraded"
        } else {
            "complete"
        };
        let manifest = gsi_json::obj! {
            "status" => status,
            "plan" => rows.get("plan").cloned().unwrap_or(Value::Null),
            "plan_digest" => rows.get("plan_digest").cloned().unwrap_or(Value::Null),
            "total_units" => self.units.len(),
            "merged_units" => self.merged.outcome_count(),
            "failed_units" => failures,
            "resumed_units" => self.resumed_units,
            "chaos_kills" => self.chaos_kills,
            "workers_spawned" => self.workers_spawned,
            "attempts" => self.attempts.clone(),
        };
        write_atomic(
            &self.cfg.out_dir,
            "manifest.json",
            &format!("{}\n", manifest.to_string_pretty()),
        )
    }

    fn handle_frame(&mut self, wid: usize, frame: Value) -> Result<(), ShardError> {
        // Frames from retired workers (chaos/deadline kills) are stale.
        let Some(worker) = self.workers.get_mut(&wid) else {
            return Ok(());
        };
        let Some(assign) = worker.assignment.clone() else {
            return Ok(());
        };
        if frame.get("id").and_then(Value::as_u64) != Some(assign.unit as u64) {
            return Ok(());
        }
        if let Some(a) = worker.assignment.as_mut() {
            a.last_frame = Instant::now();
        }
        self.deaths_in_a_row = 0;
        match frame.get("event").and_then(Value::as_str) {
            Some("result") => {
                if let Some(w) = self.workers.get_mut(&wid) {
                    w.assignment = None;
                }
                match frame
                    .req("result")
                    .and_then(|r| UnitResult::from_result(&self.units[assign.unit], r))
                {
                    Ok(result) => {
                        self.log(&format!(
                            "unit {} ({}) done: {} cycles",
                            assign.unit, result.name, result.cycles
                        ));
                        self.settle(Record::Ok(result))?;
                    }
                    Err(e) => {
                        self.strike(
                            assign.unit,
                            "failed",
                            format!("malformed result payload: {e}"),
                        )?;
                    }
                }
            }
            Some("error") => {
                if let Some(w) = self.workers.get_mut(&wid) {
                    w.assignment = None;
                }
                let message = frame
                    .get("message")
                    .and_then(Value::as_str)
                    .unwrap_or("worker reported an untyped error")
                    .to_string();
                self.strike(assign.unit, "failed", message)?;
            }
            // dispatched / running / progress: heartbeat already updated.
            _ => {}
        }
        Ok(())
    }

    fn handle_eof(&mut self, wid: usize) -> Result<(), ShardError> {
        let Some(worker) = self.workers.remove(&wid) else {
            return Ok(()); // already retired by chaos or deadline
        };
        let assignment = worker.assignment.clone();
        let stderr = worker.reap();
        self.last_stderr = stderr.clone();
        self.deaths_in_a_row += 1;
        match assignment {
            Some(a) if !self.merged.done(a.unit) => {
                if a.chaos {
                    // Shouldn't happen (chaos retires the worker map
                    // entry first), but requeue harmlessly if it does.
                    self.queue.push((Instant::now(), a.unit));
                } else {
                    let detail = if stderr.is_empty() {
                        "worker died (no stderr)".to_string()
                    } else {
                        format!("worker died; stderr tail:\n{stderr}")
                    };
                    self.log(&format!("worker {wid} died running unit {}", a.unit));
                    self.strike(a.unit, "poisoned", detail)?;
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Kill workers that blew their deadline or went silent.
    fn check_liveness(&mut self) -> Result<(), ShardError> {
        let now = Instant::now();
        let overdue: Vec<(usize, usize, &'static str)> = self
            .workers
            .iter()
            .filter_map(|(&wid, w)| {
                let a = w.assignment.as_ref()?;
                if now.duration_since(a.started) >= self.cfg.deadline {
                    Some((wid, a.unit, "deadline exceeded"))
                } else if now.duration_since(a.last_frame) >= self.cfg.heartbeat {
                    Some((wid, a.unit, "no heartbeat"))
                } else {
                    None
                }
            })
            .collect();
        for (wid, unit, why) in overdue {
            if let Some(mut w) = self.workers.remove(&wid) {
                w.kill();
                let stderr = w.reap();
                self.log(&format!("worker {wid}: {why} on unit {unit}; killed"));
                self.strike(unit, "poisoned", format!("{why}; stderr tail:\n{stderr}"))?;
            }
        }
        Ok(())
    }

    fn run(&mut self) -> Result<(), ShardError> {
        // A worker pool that does nothing but die means the sweep can
        // never progress; fail typed instead of spinning.
        let death_limit = (2 * self.cfg.workers).max(10);
        while !self.merged.is_complete() {
            if self.deaths_in_a_row >= death_limit {
                return Err(ShardError::WorkersFailing {
                    deaths: self.deaths_in_a_row,
                    stderr: self.last_stderr.clone(),
                });
            }
            self.top_up()?;
            self.dispatch();
            match self.rx.recv_timeout(TICK) {
                Ok(WorkerEvent::Frame(wid, frame)) => self.handle_frame(wid, frame)?,
                Ok(WorkerEvent::Eof(wid)) => self.handle_eof(wid)?,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => unreachable!("supervisor holds a sender"),
            }
            self.check_liveness()?;
        }
        // Drain the pool: closing stdin ends each worker's request loop.
        for (_, mut w) in std::mem::take(&mut self.workers) {
            w.close_stdin();
            w.reap();
        }
        self.publish(true)?;
        Ok(())
    }
}

/// Run a sweep plan under the supervisor. See the module docs for the
/// failure model; this returns `Err` only when the sweep cannot run at
/// all — individual unit failures degrade the [`ShardOutcome`] instead.
///
/// # Errors
///
/// [`ShardError::Journal`] for unusable journals, [`ShardError::Io`] for
/// artifact/journal I/O, [`ShardError::WorkersFailing`] when the worker
/// command never produces work.
pub fn run_plan(plan: &SweepPlan, cfg: ShardConfig) -> Result<ShardOutcome, ShardError> {
    let units = plan.units();
    let mut merged = MergedReport::new(plan);
    let mut resumed_units = 0usize;
    let journal = if cfg.resume {
        let (journal, replay) = Journal::resume(&cfg.journal_path, plan)?;
        for record in replay.outcomes {
            match record {
                Record::Ok(r) => {
                    if merged.insert(r) {
                        resumed_units += 1;
                    }
                }
                Record::Failed(f) => {
                    if merged.insert_failure(f) {
                        resumed_units += 1;
                    }
                }
                Record::Header { .. } => {}
            }
        }
        journal
    } else {
        Journal::create(&cfg.journal_path, plan)?
    };

    let (tx, rx) = channel();
    let queue: Vec<(Instant, usize)> =
        units.iter().filter(|u| !merged.done(u.index)).map(|u| (Instant::now(), u.index)).collect();
    let total = units.len();
    let mut sup = Supervisor {
        attempts: vec![0; total],
        strikes: vec![0; total],
        units,
        merged,
        journal,
        queue,
        workers: BTreeMap::new(),
        next_worker_id: 0,
        rx,
        tx,
        resumed_units,
        chaos_kills: 0,
        workers_spawned: 0,
        deaths_in_a_row: 0,
        last_stderr: String::new(),
        cfg,
    };
    sup.log(&format!(
        "plan {} ({} units, {} already journaled)",
        plan.name, total, sup.resumed_units
    ));
    let result = sup.run();
    // Publish whatever we have even on a typed failure — graceful
    // degradation means the partial manifest is always current.
    let _ = sup.publish(false);
    result?;

    let rows = sup.merged.rows_json();
    let count = |status: &str| {
        rows.get("rows")
            .and_then(Value::as_array)
            .map(|rs| {
                rs.iter()
                    .filter(|r| r.get("status").and_then(Value::as_str) == Some(status))
                    .count()
            })
            .unwrap_or(0)
    };
    Ok(ShardOutcome {
        ok: count("ok"),
        failed: count("failed"),
        poisoned: count("poisoned"),
        total,
        resumed_units: sup.resumed_units,
        chaos_kills: sup.chaos_kills,
        workers_spawned: sup.workers_spawned,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn chaos_draw_is_deterministic_and_probability_shaped() {
        for unit in 0..20 {
            for attempt in 1..4 {
                assert_eq!(
                    chaos_marked(42, 0.3, unit, attempt),
                    chaos_marked(42, 0.3, unit, attempt),
                );
                assert!(!chaos_marked(42, 0.0, unit, attempt));
                assert!(chaos_marked(42, 1.0, unit, attempt));
            }
        }
        // Roughly p of draws fire (loose bound; the draw is a hash).
        let fired = (0..1000u64).filter(|&u| chaos_marked(7, 0.3, u as usize, 1)).count();
        assert!((150..450).contains(&fired), "p=0.3 fired {fired}/1000");
        // Different seeds decorrelate.
        let fired_other = (0..1000u64).filter(|&u| chaos_marked(8, 0.3, u as usize, 1)).count();
        assert_ne!(fired, 0);
        assert_ne!(fired_other, 0);
    }

    #[test]
    fn write_atomic_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("gsi-shard-atomic-{}", std::process::id()));
        write_atomic(&dir, "a.txt", "hello").unwrap();
        write_atomic(&dir, "a.txt", "world").unwrap();
        assert_eq!(std::fs::read_to_string(dir.join("a.txt")).unwrap(), "world");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
