//! Worker subprocess management.
//!
//! A worker is any process speaking the gsi-serve line-JSON protocol on
//! stdin/stdout — by default `gsi-shard --worker`, which is the serve
//! request loop in-process. The supervisor holds a [`Worker`] handle per
//! process; a reader thread per worker forwards parsed stdout frames to
//! the supervisor's single event channel (tagged with the worker id), and
//! a second thread keeps a bounded tail of the worker's stderr so a
//! poisoned unit's quarantine record can say *why* the worker died.

use gsi_json::Value;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Lines of stderr kept per worker for poison-quarantine records.
const STDERR_TAIL_LINES: usize = 20;

/// An event from a worker's reader thread.
#[derive(Debug)]
pub enum WorkerEvent {
    /// A parsed protocol frame from the worker's stdout.
    Frame(usize, Value),
    /// The worker's stdout closed: it exited or was killed.
    Eof(usize),
}

/// The unit a busy worker is currently running.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Unit index (also the request's protocol `id`).
    pub unit: usize,
    /// Which dispatch attempt of the unit this is (1-based).
    pub attempt: u32,
    /// When the unit was dispatched (deadline clock).
    pub started: Instant,
    /// When the worker last produced a frame (heartbeat clock).
    pub last_frame: Instant,
    /// This attempt was pre-selected for a chaos kill.
    pub chaos: bool,
}

/// A live worker subprocess.
#[derive(Debug)]
pub struct Worker {
    /// Supervisor-assigned worker id (tags this worker's events).
    pub id: usize,
    child: Child,
    stdin: Option<ChildStdin>,
    stderr_tail: Arc<Mutex<VecDeque<String>>>,
    stderr_thread: Option<std::thread::JoinHandle<()>>,
    /// The unit this worker is running, if busy.
    pub assignment: Option<Assignment>,
}

impl Worker {
    /// Spawn `cmd` with piped stdio and start its reader threads, which
    /// send [`WorkerEvent`]s tagged with `id` to `events`.
    ///
    /// # Errors
    ///
    /// Propagates spawn failures (missing binary, fd exhaustion); an
    /// empty `cmd` is rejected up front.
    pub fn spawn(
        id: usize,
        cmd: &[String],
        events: Sender<WorkerEvent>,
    ) -> std::io::Result<Worker> {
        let (program, args) = cmd.split_first().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "empty worker command")
        })?;
        let mut child = Command::new(program)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()?;
        let stdin = child.stdin.take();
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| std::io::Error::other("worker stdout not captured"))?;
        let stderr = child.stderr.take();

        std::thread::spawn(move || {
            let reader = BufReader::new(stdout);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                if let Ok(frame) = Value::parse(&line) {
                    if events.send(WorkerEvent::Frame(id, frame)).is_err() {
                        return; // supervisor gone
                    }
                }
                // Unparseable stdout noise is ignored; liveness is
                // tracked by frames, not raw bytes.
            }
            let _ = events.send(WorkerEvent::Eof(id));
        });

        let stderr_tail = Arc::new(Mutex::new(VecDeque::new()));
        let mut stderr_thread = None;
        if let Some(stderr) = stderr {
            let tail = Arc::clone(&stderr_tail);
            stderr_thread = Some(std::thread::spawn(move || {
                for line in BufReader::new(stderr).lines() {
                    let Ok(line) = line else { break };
                    if let Ok(mut tail) = tail.lock() {
                        if tail.len() == STDERR_TAIL_LINES {
                            tail.pop_front();
                        }
                        tail.push_back(line);
                    }
                }
            }));
        }

        Ok(Worker { id, child, stdin, stderr_tail, stderr_thread, assignment: None })
    }

    /// Send one request line to the worker.
    ///
    /// # Errors
    ///
    /// A broken pipe here means the worker died; the supervisor will
    /// also observe the `Eof` event.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        let stdin = self.stdin.as_mut().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::BrokenPipe, "worker stdin already closed")
        })?;
        stdin.write_all(line.as_bytes())?;
        stdin.write_all(b"\n")?;
        stdin.flush()
    }

    /// SIGKILL the worker. Idempotent; reaping happens in [`Worker::reap`].
    pub fn kill(&mut self) {
        let _ = self.child.kill();
    }

    /// Close stdin (lets a well-behaved worker drain and exit) without
    /// killing it.
    pub fn close_stdin(&mut self) {
        self.stdin = None;
    }

    /// Wait for the process to exit and return its stderr tail joined
    /// with newlines (empty string if the worker said nothing). Joins
    /// the stderr thread first so the tail is complete, not racy.
    pub fn reap(mut self) -> String {
        let _ = self.child.wait();
        if let Some(t) = self.stderr_thread.take() {
            let _ = t.join();
        }
        self.stderr_snapshot()
    }

    /// The current stderr tail without waiting for exit.
    pub fn stderr_snapshot(&self) -> String {
        self.stderr_tail
            .lock()
            .map(|t| t.iter().cloned().collect::<Vec<_>>().join("\n"))
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn spawn_rejects_an_empty_command() {
        let (tx, _rx) = channel();
        assert!(Worker::spawn(0, &[], tx).is_err());
    }

    #[test]
    fn frames_arrive_tagged_and_eof_follows() {
        let (tx, rx) = channel();
        // A worker that emits one frame, some noise, then exits.
        let mut w = Worker::spawn(
            7,
            &[
                "/bin/sh".to_string(),
                "-c".to_string(),
                r#"echo '{"id":1,"event":"result"}'; echo noise; echo oops >&2"#.to_string(),
            ],
            tx,
        )
        .unwrap();
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            WorkerEvent::Frame(id, v) => {
                assert_eq!(id, 7);
                assert_eq!(v.get("event").and_then(Value::as_str), Some("result"));
            }
            other => panic!("expected a frame, got {other:?}"),
        }
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            WorkerEvent::Eof(id) => assert_eq!(id, 7),
            other => panic!("expected eof, got {other:?}"),
        }
        w.close_stdin();
        let tail = w.reap();
        assert_eq!(tail, "oops");
    }

    #[test]
    fn kill_produces_eof_and_stderr_tail_is_bounded() {
        let (tx, rx) = channel();
        let script = format!(
            "i=0; while [ $i -lt {} ]; do echo line$i >&2; i=$((i+1)); done; exec sleep 60",
            STDERR_TAIL_LINES + 5
        );
        let mut w =
            Worker::spawn(0, &["/bin/sh".to_string(), "-c".to_string(), script], tx).unwrap();
        // Give the stderr thread a moment to drain all lines.
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            let tail = w.stderr_snapshot();
            if tail.lines().count() == STDERR_TAIL_LINES
                && tail.lines().last() == Some(&format!("line{}", STDERR_TAIL_LINES + 4))
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(w.stderr_snapshot().lines().count(), STDERR_TAIL_LINES);
        w.kill();
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            WorkerEvent::Eof(0) => {}
            other => panic!("expected eof after kill, got {other:?}"),
        }
        w.reap();
    }
}
