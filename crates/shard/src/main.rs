//! `gsi-shard` — supervise a sharded sweep, or be one of its workers.
//!
//! ```text
//! gsi-shard --plan FILE [--out DIR] [--workers N] [--resume]
//!           [--deadline SECS] [--heartbeat SECS] [--max-strikes K]
//!           [--backoff-ms MS] [--chaos-kill P] [--chaos-seed S]
//!           [--worker-cmd \"PROG ARGS...\"] [--bench FILE] [--quiet]
//! gsi-shard --worker
//! ```
//!
//! The supervisor writes three artifacts into `--out` (default
//! `shard-out/`), each rewritten atomically after every completed unit:
//!
//! * `figures.txt` — merged paper-style stall breakdowns + NoC heatmaps
//!   (deterministic: byte-identical across clean/chaos/resumed runs);
//! * `rows.json` — one row per unit, sorted by unit index (same
//!   determinism contract);
//! * `manifest.json` — the operational story (attempts, chaos kills,
//!   partial/degraded/complete status); *not* deterministic.
//!
//! The journal lives at `--out/journal.jsonl` unless overridden by
//! `--journal`; `--resume` replays it and skips completed units.
//!
//! `--worker` runs the gsi-serve request loop on stdio and is what the
//! supervisor spawns by default; `--worker-cmd` substitutes any other
//! program speaking the same protocol (e.g. `gsi-serve --stdio`).
//!
//! Exit status: 0 on a fully successful sweep, 3 when the sweep finished
//! but some units were quarantined (`failed`/`poisoned` — a *degraded*
//! result with a typed manifest), 1 when the sweep could not run.

use gsi_bench::plan::SweepPlan;
use gsi_shard::{run_plan, ShardConfig};
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: gsi-shard --plan FILE [--out DIR] [--journal FILE] [--workers N] [--resume]\n\
         \x20                [--deadline SECS] [--heartbeat SECS] [--max-strikes K]\n\
         \x20                [--backoff-ms MS] [--chaos-kill P] [--chaos-seed S]\n\
         \x20                [--worker-cmd CMDLINE] [--bench FILE] [--quiet]\n\
         \x20      gsi-shard --worker"
    );
    std::process::exit(2);
}

/// Append this sweep's deterministic rows to the benchmark ledger under
/// the `shard` key (same merge discipline as the serve client).
fn merge_bench(path: &str, rows_doc: &gsi_json::Value) {
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| gsi_json::Value::parse(&s).ok())
        .unwrap_or_else(|| gsi_json::Value::Object(Vec::new()));
    let mut all = doc
        .get("shard")
        .and_then(gsi_json::Value::as_array)
        .map(<[gsi_json::Value]>::to_vec)
        .unwrap_or_default();
    all.push(rows_doc.clone());
    doc.set("shard", gsi_json::Value::Array(all));
    if let Err(e) = std::fs::write(path, doc.to_string_pretty()) {
        eprintln!("write {path}: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--worker") {
        // Worker mode: the serve request loop over stdio. No cache dir —
        // the supervisor's journal is the system of record, and workers
        // must stay stateless so killing one loses nothing.
        let stdin = std::io::stdin();
        let server = gsi_serve::Server::new(None);
        if let Err(e) = server.handle_connection(stdin.lock(), std::io::stdout()) {
            if e.kind() != std::io::ErrorKind::BrokenPipe {
                eprintln!("worker error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let mut plan_path: Option<String> = None;
    let mut journal: Option<PathBuf> = None;
    let mut bench: Option<String> = None;
    let mut cfg = ShardConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--plan" => plan_path = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--out" => cfg.out_dir = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--journal" => journal = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--workers" => {
                cfg.workers = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--resume" => cfg.resume = true,
            "--deadline" => {
                cfg.deadline = it
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|&s| s > 0.0)
                    .map(Duration::from_secs_f64)
                    .unwrap_or_else(|| usage())
            }
            "--heartbeat" => {
                cfg.heartbeat = it
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|&s| s > 0.0)
                    .map(Duration::from_secs_f64)
                    .unwrap_or_else(|| usage())
            }
            "--max-strikes" => {
                cfg.max_strikes = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&k| k >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--backoff-ms" => {
                cfg.backoff_base = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .map(Duration::from_millis)
                    .unwrap_or_else(|| usage())
            }
            "--chaos-kill" => {
                cfg.chaos_kill = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|p| (0.0..=1.0).contains(p))
                    .unwrap_or_else(|| usage())
            }
            "--chaos-seed" => {
                cfg.chaos_seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--worker-cmd" => {
                cfg.worker_cmd = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .split_whitespace()
                    .map(str::to_string)
                    .collect();
                if cfg.worker_cmd.is_empty() {
                    usage();
                }
            }
            "--bench" => bench = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--quiet" => cfg.quiet = true,
            _ => usage(),
        }
    }
    let Some(plan_path) = plan_path else { usage() };
    cfg.journal_path = journal.unwrap_or_else(|| cfg.out_dir.join("journal.jsonl"));
    if cfg.worker_cmd.is_empty() {
        let exe = std::env::current_exe().unwrap_or_else(|e| {
            eprintln!("cannot locate own executable for worker mode: {e}");
            std::process::exit(1);
        });
        cfg.worker_cmd = vec![exe.to_string_lossy().into_owned(), "--worker".to_string()];
    }

    let text = std::fs::read_to_string(&plan_path).unwrap_or_else(|e| {
        eprintln!("read {plan_path}: {e}");
        std::process::exit(1);
    });
    let plan = SweepPlan::parse(&text).unwrap_or_else(|e| {
        eprintln!("{plan_path}: {e}");
        std::process::exit(1);
    });

    let out_dir = cfg.out_dir.clone();
    match run_plan(&plan, cfg) {
        Ok(outcome) => {
            eprintln!(
                "gsi-shard: {}/{} units ok ({} failed, {} poisoned, {} resumed, \
                 {} chaos kills, {} workers)",
                outcome.ok,
                outcome.total,
                outcome.failed,
                outcome.poisoned,
                outcome.resumed_units,
                outcome.chaos_kills,
                outcome.workers_spawned,
            );
            if let Some(path) = bench {
                match std::fs::read_to_string(out_dir.join("rows.json"))
                    .map_err(|e| e.to_string())
                    .and_then(|s| gsi_json::Value::parse(&s).map_err(|e| e.to_string()))
                {
                    Ok(rows) => merge_bench(&path, &rows),
                    Err(e) => {
                        eprintln!("cannot merge bench rows: {e}");
                        std::process::exit(1);
                    }
                }
            }
            if outcome.failed + outcome.poisoned > 0 {
                std::process::exit(3); // degraded: see manifest.json
            }
        }
        Err(e) => {
            eprintln!("gsi-shard: {e}");
            std::process::exit(1);
        }
    }
}
