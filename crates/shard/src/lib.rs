//! # gsi-shard — fault-tolerant sharded sweep execution
//!
//! Takes a declarative [`SweepPlan`](gsi_bench::plan::SweepPlan), fans
//! its work units out across a pool of worker subprocesses (each one the
//! gsi-serve line-JSON protocol over stdio), and survives everything the
//! environment throws at it:
//!
//! * workers that crash, hang, or go silent (heartbeats, deadlines,
//!   SIGKILL + retry with exponential backoff);
//! * units that *keep* killing workers (poison quarantine with the
//!   worker's stderr tail, after a bounded number of strikes);
//! * its own death at any instant (an append-only, fsync'd, checksummed
//!   journal of outcomes; `--resume` replays the valid prefix, truncates
//!   torn trailing records, and skips completed units);
//! * adversarial testing (`--chaos-kill p` SIGKILLs the supervisor's own
//!   workers on a deterministic, seeded draw).
//!
//! Outcomes merge online into paper-style stall-breakdown figures and
//! NoC heatmaps (via [`gsi_bench::merge`]), rewritten atomically after
//! every unit — so the artifact directory is always a consistent partial
//! view, and a chaos-interrupted, resumed sweep produces byte-identical
//! figures to a clean run of the same plan and seed.
//!
//! See `DESIGN.md` §15 for the failure model and journal format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod supervisor;
pub mod worker;

pub use journal::{replay, Journal, JournalError, Record, Replay};
pub use supervisor::{run_plan, ShardConfig, ShardError, ShardOutcome};
pub use worker::{Assignment, Worker, WorkerEvent};
