//! The append-only, fsync'd, checksummed outcome journal.
//!
//! One line per record: `{"digest":"<fnv1a128>","record":{...}}`, where
//! the digest covers the record's canonical compact gsi-json encoding.
//! The first record is always a header pinning the plan name, plan
//! content digest, and unit count; every later record is one unit
//! outcome (`ok`, `failed`, or `poisoned`). Appends are `sync_data`'d
//! before the supervisor acts on them, so a journaled outcome survives
//! SIGKILL of the supervisor itself.
//!
//! Recovery ([`replay`]) is prefix-based: records are validated in order
//! (well-formed UTF-8 line, parseable JSON, digest matches the
//! re-encoded record, record decodes) and replay stops at the *first*
//! invalid byte — a torn final write, a flipped bit, or garbage
//! appended by another process all simply end the valid prefix. Resuming
//! truncates the file back to that prefix, so the journal is again
//! well-formed before new appends land. Duplicate unit indices keep the
//! first occurrence; a resumed sweep therefore never double-counts a
//! unit no matter how the previous run died.

use gsi_bench::merge::{UnitFailure, UnitResult};
use gsi_bench::plan::SweepPlan;
use gsi_json::{fnv1a128, FromJson, JsonError, ToJson, Value};
use std::collections::BTreeSet;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// The first record of every journal: which plan this is.
    Header {
        /// Plan name.
        plan: String,
        /// Content digest of the plan's canonical encoding.
        plan_digest: String,
        /// How many units the plan expands to.
        total_units: usize,
    },
    /// A unit completed with a simulation result.
    Ok(UnitResult),
    /// A unit was abandoned: deterministic failure or poison quarantine.
    Failed(UnitFailure),
}

impl Record {
    /// The canonical record encoding (digest input).
    pub fn to_json(&self) -> Value {
        match self {
            Record::Header { plan, plan_digest, total_units } => gsi_json::obj! {
                "type" => "header",
                "plan" => plan,
                "plan_digest" => plan_digest,
                "total_units" => *total_units,
            },
            Record::Ok(r) => gsi_json::obj! { "type" => "ok", "unit" => r.to_json() },
            Record::Failed(f) => gsi_json::obj! { "type" => "failed", "unit" => f.to_json() },
        }
    }

    fn from_json(v: &Value) -> Result<Record, JsonError> {
        match v.req("type")?.as_str() {
            Some("header") => Ok(Record::Header {
                plan: String::from_json(v.req("plan")?)?,
                plan_digest: String::from_json(v.req("plan_digest")?)?,
                total_units: usize::from_json(v.req("total_units")?)?,
            }),
            Some("ok") => Ok(Record::Ok(UnitResult::from_json(v.req("unit")?)?)),
            Some("failed") => Ok(Record::Failed(UnitFailure::from_json(v.req("unit")?)?)),
            _ => Err(JsonError::new("unknown journal record type")),
        }
    }

    /// The unit index this record settles, if it is a unit record.
    pub fn unit_index(&self) -> Option<usize> {
        match self {
            Record::Header { .. } => None,
            Record::Ok(r) => Some(r.index),
            Record::Failed(f) => Some(f.index),
        }
    }

    /// Encode as a journal line (no trailing newline).
    pub fn encode(&self) -> String {
        let record = self.to_json();
        gsi_json::obj! { "digest" => fnv1a128(&record.to_string()), "record" => record }.to_string()
    }
}

/// Why a journal could not be opened for resumption.
#[derive(Debug)]
pub enum JournalError {
    /// The file could not be read or written.
    Io(io::Error),
    /// No valid header record — an empty, foreign, or corrupt-from-the-
    /// first-byte file.
    MissingHeader,
    /// The journal belongs to a different plan than the one being
    /// resumed; replaying it would misattribute every unit index.
    PlanMismatch {
        /// The digest of the plan being resumed.
        expected: String,
        /// The digest recorded in the journal header.
        found: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::MissingHeader => {
                write!(f, "journal has no valid header record; not resumable")
            }
            JournalError::PlanMismatch { expected, found } => {
                write!(f, "journal belongs to plan {found}, not the requested plan {expected}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// The result of replaying journal bytes: the validated prefix.
#[derive(Debug)]
pub struct Replay {
    /// Plan name from the header.
    pub plan: String,
    /// Plan content digest from the header.
    pub plan_digest: String,
    /// Unit count from the header.
    pub total_units: usize,
    /// Unit outcomes in journal order, deduplicated (first wins).
    pub outcomes: Vec<Record>,
    /// Bytes of the valid prefix (header + valid unit lines).
    pub valid_bytes: u64,
}

/// Validate one journal line; `None` means the line (and therefore the
/// rest of the file) is not part of the valid prefix.
fn decode_line(bytes: &[u8]) -> Option<Record> {
    let text = std::str::from_utf8(bytes).ok()?;
    let v = Value::parse(text).ok()?;
    let digest = v.get("digest")?.as_str()?;
    let record = v.get("record")?;
    if fnv1a128(&record.to_string()) != digest {
        return None;
    }
    Record::from_json(record).ok()
}

/// Replay raw journal bytes into their longest valid prefix.
///
/// Pure (no I/O), so recovery behavior can be property-tested against
/// every possible truncation and corruption offset.
///
/// # Errors
///
/// [`JournalError::MissingHeader`] if the first valid record is not a
/// header (which includes the empty file).
pub fn replay(bytes: &[u8]) -> Result<Replay, JournalError> {
    let mut pos = 0usize;
    let mut header: Option<(String, String, usize)> = None;
    let mut outcomes: Vec<Record> = Vec::new();
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    while pos < bytes.len() {
        // A line without its newline is a torn final write: not valid.
        let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
            break;
        };
        let Some(record) = decode_line(&bytes[pos..pos + nl]) else {
            break;
        };
        match (&record, header.is_some()) {
            (Record::Header { plan, plan_digest, total_units }, false) => {
                header = Some((plan.clone(), plan_digest.clone(), *total_units));
            }
            // A second header, or units before any header, end the
            // valid prefix — the file was spliced or overwritten.
            (Record::Header { .. }, true) | (_, false) => break,
            (_, true) => {
                let index = record.unit_index().unwrap_or(usize::MAX);
                if seen.insert(index) {
                    outcomes.push(record);
                }
                // A replayed duplicate is dropped, not an error: the
                // supervisor may legitimately have re-journaled after a
                // crash between append and acknowledgment.
            }
        }
        pos += nl + 1;
    }
    let (plan, plan_digest, total_units) = header.ok_or(JournalError::MissingHeader)?;
    Ok(Replay { plan, plan_digest, total_units, outcomes, valid_bytes: pos as u64 })
}

/// An open journal, ready to append.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Start a fresh journal for a plan (truncating any existing file)
    /// and durably write its header.
    ///
    /// # Errors
    ///
    /// Any underlying file I/O error.
    pub fn create(path: &Path, plan: &SweepPlan) -> io::Result<Journal> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let file = File::create(path)?;
        let mut journal = Journal { file, path: path.to_path_buf() };
        journal.append(&Record::Header {
            plan: plan.name.clone(),
            plan_digest: plan.digest(),
            total_units: plan.unit_count(),
        })?;
        Ok(journal)
    }

    /// Resume an existing journal: replay its valid prefix, verify it
    /// belongs to `plan`, truncate any torn/corrupt tail, and reopen
    /// for appending.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on file errors, [`JournalError::MissingHeader`]
    /// /[`JournalError::PlanMismatch`] on unusable journals.
    pub fn resume(path: &Path, plan: &SweepPlan) -> Result<(Journal, Replay), JournalError> {
        let bytes = std::fs::read(path)?;
        let replay = replay(&bytes)?;
        let expected = plan.digest();
        if replay.plan_digest != expected {
            return Err(JournalError::PlanMismatch { expected, found: replay.plan_digest.clone() });
        }
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(replay.valid_bytes)?;
        // Re-seek to the new end: set_len does not move the cursor.
        let file = {
            drop(file);
            OpenOptions::new().append(true).open(path)?
        };
        Ok((Journal { file, path: path.to_path_buf() }, replay))
    }

    /// Durably append one record: the write is `sync_data`'d before
    /// returning, so callers may treat a returned `Ok` as "this outcome
    /// survives any later crash".
    ///
    /// # Errors
    ///
    /// Any underlying file I/O error.
    pub fn append(&mut self, record: &Record) -> io::Result<()> {
        let mut line = record.encode();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn plan() -> SweepPlan {
        SweepPlan::parse(r#"{"name":"j","workloads":["spmv","bfs"]}"#).unwrap()
    }

    fn ok_record(index: usize) -> Record {
        Record::Ok(UnitResult {
            index,
            name: format!("u{index}"),
            workload: "spmv".into(),
            cycles: 100 + index as u64,
            instructions: 10,
            breakdown: gsi_core::StallBreakdown::default(),
            links: Vec::new(),
        })
    }

    #[test]
    fn create_append_resume_round_trips() {
        let dir = std::env::temp_dir().join(format!("gsi-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        let p = plan();
        {
            let mut j = Journal::create(&path, &p).unwrap();
            j.append(&ok_record(0)).unwrap();
            j.append(&Record::Failed(UnitFailure {
                index: 1,
                name: "u1".into(),
                status: "poisoned".into(),
                message: "signal: 9".into(),
            }))
            .unwrap();
        }
        let (_, replay) = Journal::resume(&path, &p).unwrap();
        assert_eq!(replay.plan, "j");
        assert_eq!(replay.total_units, 2);
        assert_eq!(replay.outcomes.len(), 2);
        assert_eq!(replay.outcomes[0].unit_index(), Some(0));
        assert_eq!(replay.outcomes[1].unit_index(), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_units_keep_the_first_record() {
        let p = plan();
        let mut bytes = Vec::new();
        let header = Record::Header {
            plan: p.name.clone(),
            plan_digest: p.digest(),
            total_units: p.unit_count(),
        };
        for r in [&header, &ok_record(0), &ok_record(0)] {
            bytes.extend_from_slice(r.encode().as_bytes());
            bytes.push(b'\n');
        }
        let replay = replay(&bytes).unwrap();
        assert_eq!(replay.outcomes.len(), 1, "duplicate unit must not double-count");
        assert_eq!(replay.valid_bytes, bytes.len() as u64, "dup is dropped, not corruption");
    }

    #[test]
    fn resume_refuses_foreign_or_headerless_journals() {
        let dir = std::env::temp_dir().join(format!("gsi-journal-f-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = plan();

        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, b"").unwrap();
        assert!(matches!(Journal::resume(&empty, &p), Err(JournalError::MissingHeader)));

        let garbage = dir.join("garbage.jsonl");
        std::fs::write(&garbage, b"not a journal\n").unwrap();
        assert!(matches!(Journal::resume(&garbage, &p), Err(JournalError::MissingHeader)));

        let other = SweepPlan::parse(r#"{"name":"other","workloads":["uts"]}"#).unwrap();
        let foreign = dir.join("foreign.jsonl");
        Journal::create(&foreign, &other).unwrap();
        assert!(matches!(Journal::resume(&foreign, &p), Err(JournalError::PlanMismatch { .. })));
        // And the error message is presentable.
        let msg = Journal::resume(&foreign, &p).unwrap_err().to_string();
        assert!(msg.contains("plan"), "unhelpful message: {msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_truncates_a_torn_tail_and_appends_cleanly() {
        let dir = std::env::temp_dir().join(format!("gsi-journal-t-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let p = plan();
        {
            let mut j = Journal::create(&path, &p).unwrap();
            j.append(&ok_record(0)).unwrap();
        }
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a torn write: half of a record, no newline.
        let mut bytes = std::fs::read(&path).unwrap();
        let torn = ok_record(1).encode();
        bytes.extend_from_slice(&torn.as_bytes()[..torn.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let (mut j, replay) = Journal::resume(&path, &p).unwrap();
        assert_eq!(replay.outcomes.len(), 1);
        assert_eq!(replay.valid_bytes, clean_len);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len, "tail not truncated");
        j.append(&ok_record(1)).unwrap();
        drop(j);
        let again = replay_file(&path);
        assert_eq!(again.outcomes.len(), 2, "append after truncation must extend the prefix");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn replay_file(path: &Path) -> Replay {
        replay(&std::fs::read(path).unwrap()).unwrap()
    }

    #[test]
    fn a_flipped_bit_ends_the_valid_prefix() {
        let p = plan();
        let mut bytes = Vec::new();
        let header = Record::Header {
            plan: p.name.clone(),
            plan_digest: p.digest(),
            total_units: p.unit_count(),
        };
        for r in [&header, &ok_record(0), &ok_record(1)] {
            bytes.extend_from_slice(r.encode().as_bytes());
            bytes.push(b'\n');
        }
        let header_len = header.encode().len() + 1;
        // Flip a bit inside record 0's payload (past its digest field).
        let mut corrupt = bytes.clone();
        corrupt[header_len + 60] ^= 0x01;
        let replay = replay(&corrupt).unwrap();
        assert_eq!(replay.outcomes.len(), 0, "corrupt record must not replay");
        assert_eq!(replay.valid_bytes as usize, header_len);
    }
}
