//! ASCII renderings of the derived metrics: the NoC link heatmap, the
//! latency histograms, and the per-warp stall timelines.

use crate::buffer::TraceBuffer;
use crate::event::DIR_NAMES;
use gsi_core::{MemDataCause, StallKind};
use std::fmt::Write as _;

/// Density ramp for heatmap cells, dark to bright.
const SHADE: &[u8] = b" .:-=+*#%@";

/// One glyph per [`StallKind`], in dense-index order (the `short()` names
/// collide on their first letters, so the timeline uses its own alphabet).
const KIND_GLYPHS: [char; 8] = ['.', 'i', 'c', 'y', 'M', 'S', 'd', 'x'];

fn shade(frac: f64) -> char {
    let idx = (frac.clamp(0.0, 1.0) * (SHADE.len() - 1) as f64).round() as usize;
    SHADE[idx] as char
}

impl TraceBuffer {
    /// Render the per-node NoC utilization heatmap for a `width` × `height`
    /// mesh over `cycles` simulated cycles, with the busiest links listed
    /// below the grid.
    pub fn render_heatmap(&self, width: usize, height: usize, cycles: u64) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "NoC link utilization ({width}x{height} mesh, {cycles} cycles)");
        for y in 0..height {
            out.push_str("  ");
            for x in 0..width {
                let node = y * width + x;
                let busy: u64 =
                    (0..4).map(|d| self.link_busy().get(node * 4 + d).copied().unwrap_or(0)).sum();
                let frac = if cycles == 0 { 0.0 } else { busy as f64 / (4.0 * cycles as f64) };
                out.push(shade(frac));
                out.push(' ');
            }
            out.push('\n');
        }
        let _ = writeln!(out, "  scale: '{}' idle .. '@' saturated", SHADE[0] as char);
        let mut links: Vec<(usize, u64, u64)> = (0..self.link_busy().len())
            .map(|li| (li, self.link_busy()[li], self.link_queued()[li]))
            .filter(|&(_, busy, queued)| busy > 0 || queued > 0)
            .collect();
        links.sort_by_key(|&(_, busy, _)| std::cmp::Reverse(busy));
        for &(li, busy, queued) in links.iter().take(5) {
            let _ = writeln!(
                out,
                "  node {:2} {}: busy {} queued {}",
                li / 4,
                DIR_NAMES[li % 4],
                busy,
                queued
            );
        }
        out
    }

    /// Render the per-service-point latency histograms (log2 buckets) as
    /// horizontal bars. Service points with no fills are omitted.
    pub fn render_histograms(&self) -> String {
        let mut out = String::new();
        for &point in &MemDataCause::ALL {
            let hist = self.latency_histogram(point);
            let fills: u64 = hist.iter().sum();
            if fills == 0 {
                continue;
            }
            let _ = writeln!(out, "fill latency [{}] ({} fills)", point.short(), fills);
            let max = *hist.iter().max().unwrap_or(&1);
            let top = hist.iter().rposition(|&b| b > 0).unwrap_or(0);
            for (b, &n) in hist.iter().enumerate().take(top + 1) {
                if n == 0 {
                    continue;
                }
                let bar = (n * 40).div_ceil(max.max(1)) as usize;
                let _ = writeln!(
                    out,
                    "  {:>10} | {} {}",
                    format!("2^{b}..2^{}", b + 1),
                    "#".repeat(bar),
                    n
                );
            }
        }
        if out.is_empty() {
            out.push_str("no fills recorded\n");
        }
        out
    }

    /// Render the per-warp stall timelines: one row per warp that recorded
    /// any stall, one glyph per timeline window (dominant stall kind).
    pub fn render_timelines(&self) -> String {
        let cfg = *self.config();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "warp stall timelines ({} cycles/slot; {})",
            cfg.timeline_window,
            StallKind::ALL
                .iter()
                .map(|k| format!("{}={}", KIND_GLYPHS[k.index()], k.short()))
                .collect::<Vec<_>>()
                .join(" ")
        );
        // Trim all rows to the last slot any warp touched.
        let mut last_slot = 0usize;
        let mut rows: Vec<(usize, usize, String)> = Vec::new();
        for sm in 0..cfg.sms {
            for warp in 0..cfg.max_warps {
                let mut row = String::with_capacity(cfg.timeline_slots);
                let mut touched = false;
                for slot in 0..cfg.timeline_slots {
                    match self.timeline_glyph(sm, warp, slot) {
                        Some(kind) => {
                            touched = true;
                            last_slot = last_slot.max(slot);
                            row.push(KIND_GLYPHS[kind.index()]);
                        }
                        None => row.push(' '),
                    }
                }
                if touched {
                    rows.push((sm, warp, row));
                }
            }
        }
        if rows.is_empty() {
            out.push_str("no warp stalls recorded\n");
            return out;
        }
        for (sm, warp, row) in rows {
            let _ = writeln!(out, "  sm{sm:02}.w{warp:02} |{}|", &row[..=last_slot]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::{TraceConfig, TraceLevel, TraceSink};
    use gsi_core::RequestId;

    #[test]
    fn heatmap_shows_hot_links() {
        let mut b = TraceBuffer::new(TraceConfig::for_system(TraceLevel::Counters, 16, 1, 1));
        b.record(TraceEvent::MeshHop { cycle: 1, node: 5, dir: 0, queued: 10, busy: 400 });
        let art = b.render_heatmap(4, 4, 100);
        assert!(art.contains("4x4 mesh"));
        assert!(art.contains("node  5 E: busy 400 queued 10"));
        assert!(art.contains('@'), "saturated link renders as '@': {art}");
    }

    #[test]
    fn histograms_render_bars() {
        let mut b = TraceBuffer::new(TraceConfig::for_system(TraceLevel::Full, 4, 1, 1));
        let req = RequestId(1);
        b.record(TraceEvent::ReqIssue { cycle: 0, sm: 0, req, line: 1, merged: false });
        b.record(TraceEvent::ReqFill {
            cycle: 100,
            sm: 0,
            req,
            line: 1,
            point: MemDataCause::MainMemory,
        });
        let art = b.render_histograms();
        assert!(art.contains("fill latency [mem] (1 fills)"), "{art}");
        assert!(art.contains("2^6..2^7"), "100 cycles is bucket 6: {art}");
    }

    #[test]
    fn empty_renders_are_graceful() {
        let b = TraceBuffer::disabled();
        assert!(b.render_histograms().contains("no fills"));
        assert!(b.render_timelines().contains("no warp stalls"));
    }

    #[test]
    fn timelines_render_dominant_glyphs() {
        let mut cfg = TraceConfig::for_system(TraceLevel::Full, 1, 2, 2);
        cfg.timeline_window = 10;
        cfg.timeline_slots = 4;
        let mut b = TraceBuffer::new(cfg);
        for c in 0..10 {
            b.record(TraceEvent::WarpStall {
                cycle: c,
                sm: 1,
                warp: 0,
                kind: StallKind::MemoryData,
                cause_pc: 3,
            });
        }
        b.record(TraceEvent::WarpStall {
            cycle: 12,
            sm: 1,
            warp: 0,
            kind: StallKind::Control,
            cause_pc: u32::MAX,
        });
        let art = b.render_timelines();
        assert!(art.contains("sm01.w00 |Mc"), "{art}");
        assert!(!art.contains("sm00.w00"), "idle warps omitted: {art}");
    }
}
