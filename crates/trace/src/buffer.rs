//! The concrete event sink: a fixed-capacity ring buffer plus online
//! derived metrics.
//!
//! Everything the buffer will ever need is allocated when it is
//! constructed; recording an event performs no heap allocation, so a
//! configured buffer preserves the simulator's allocation-free cycle loop
//! (`tests/alloc_free.rs` runs with the counters level enabled to enforce
//! this).

use crate::event::{TraceEvent, EVENT_KINDS};
use crate::profile::{Subsystem, SubsystemProfile};
use crate::{TraceLevel, TraceSink};
use gsi_core::{MemDataCause, RequestId, StallKind};

/// Log2 latency-histogram buckets: bucket `b` counts fills whose
/// issue-to-fill latency lies in `[2^b, 2^(b+1))` cycles (bucket 0 also
/// holds zero-latency fills).
pub const HIST_BUCKETS: usize = 32;

/// Number of memory service points (the rows of the latency histogram).
pub const SERVICE_POINTS: usize = 5;

const SLOT_EMPTY: u64 = u64::MAX;
const SLOT_PROBES: usize = 16;
const LINE_MASK: u64 = (1 << 56) - 1;
const GLYPH_EMPTY: u8 = u8::MAX;

/// Sizing and verbosity of a [`TraceBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Verbosity level.
    pub level: TraceLevel,
    /// Mesh nodes (the link heatmap holds `nodes * 4` links).
    pub nodes: usize,
    /// SMs in the system.
    pub sms: usize,
    /// Maximum resident warps per SM (sizes the per-warp timelines).
    pub max_warps: usize,
    /// Event ring capacity (full level only).
    pub event_capacity: usize,
    /// Open-addressed request-lifetime slots.
    pub lifetime_slots: usize,
    /// Completed request-lifetime ring capacity (full level only).
    pub completed_capacity: usize,
    /// Cycles per per-warp timeline slot.
    pub timeline_window: u64,
    /// Timeline slots retained per warp.
    pub timeline_slots: usize,
    /// Cycles per self-profiling snapshot window.
    pub profile_window: u64,
    /// Self-profiling windows retained.
    pub profile_windows: usize,
}

impl TraceConfig {
    /// A configuration recording nothing and allocating nothing.
    pub fn off() -> Self {
        TraceConfig {
            level: TraceLevel::Off,
            nodes: 0,
            sms: 0,
            max_warps: 0,
            event_capacity: 0,
            lifetime_slots: 0,
            completed_capacity: 0,
            timeline_window: 1,
            timeline_slots: 0,
            profile_window: 0,
            profile_windows: 0,
        }
    }

    /// Default sizing for a system with `nodes` mesh nodes, `sms` SMs, and
    /// up to `max_warps` warps per SM.
    pub fn for_system(level: TraceLevel, nodes: usize, sms: usize, max_warps: usize) -> Self {
        if level == TraceLevel::Off {
            return TraceConfig::off();
        }
        TraceConfig {
            level,
            nodes,
            sms,
            max_warps,
            event_capacity: if level == TraceLevel::Full { 1 << 16 } else { 0 },
            lifetime_slots: 4096,
            completed_capacity: if level == TraceLevel::Full { 4096 } else { 0 },
            timeline_window: 512,
            timeline_slots: 192,
            profile_window: 4096,
            profile_windows: 64,
        }
    }
}

/// One request lifetime being tracked, keyed by `(core, line)` — L2-bank
/// messages carry no request id, so service points identify the in-flight
/// fetch by the requesting core and the line address.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// `core << 56 | line`, or [`SLOT_EMPTY`] when free.
    key: u64,
    req: u64,
    issue: u64,
    mshr: u64,
    service: u64,
    point: u8,
}

const SLOT_FREE: Slot =
    Slot { key: SLOT_EMPTY, req: 0, issue: 0, mshr: 0, service: u64::MAX, point: u8::MAX };

/// A fully traced request lifetime: issue → MSHR → service point → fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedReq {
    /// The request id.
    pub req: RequestId,
    /// Issuing SM.
    pub sm: u8,
    /// Line address fetched.
    pub line: u64,
    /// Where the hierarchy serviced it.
    pub point: MemDataCause,
    /// Cycle the request left the LSU.
    pub issue_cycle: u64,
    /// Cycle the MSHR entry was allocated.
    pub mshr_cycle: u64,
    /// Cycle the service point produced the data.
    pub service_cycle: u64,
    /// Cycle the fill closed the request at the core.
    pub fill_cycle: u64,
}

impl CompletedReq {
    /// Cycles from issue to MSHR allocation.
    pub fn mshr_wait(&self) -> u64 {
        self.mshr_cycle - self.issue_cycle
    }

    /// Cycles from MSHR allocation to the service point.
    pub fn service_wait(&self) -> u64 {
        self.service_cycle - self.mshr_cycle
    }

    /// Cycles from the service point to the fill.
    pub fn fill_wait(&self) -> u64 {
        self.fill_cycle - self.service_cycle
    }

    /// End-to-end latency (the per-stage waits sum to this by
    /// construction).
    pub fn total_latency(&self) -> u64 {
        self.fill_cycle - self.issue_cycle
    }
}

/// The ring-buffer sink with online derived metrics (see the crate docs).
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    cfg: TraceConfig,
    // Event ring (full level).
    events: Vec<TraceEvent>,
    head: usize,
    dropped: u64,
    // Per-kind counters.
    counts: [u64; EVENT_KINDS],
    // Latency histograms: [service point][log2 bucket].
    latency_hist: [[u64; HIST_BUCKETS]; SERVICE_POINTS],
    // Per-link utilization: nodes * 4 entries, indexed `node * 4 + dir`.
    links_busy: Vec<u64>,
    links_queued: Vec<u64>,
    // Request-lifetime slots (open addressing, fixed probes).
    slots: Vec<Slot>,
    slot_drops: u64,
    // Completed lifetimes ring (full level).
    completed: Vec<CompletedReq>,
    completed_head: usize,
    // Per-warp stall timelines (full level).
    tl_counts: Vec<[u32; 8]>,
    tl_slot: Vec<u32>,
    tl_glyphs: Vec<u8>,
    // Self-profiling.
    profile: SubsystemProfile,
    self_profile: bool,
}

impl TraceBuffer {
    /// Build a buffer, pre-allocating every structure `cfg` asks for.
    pub fn new(cfg: TraceConfig) -> Self {
        let warps = cfg.sms * cfg.max_warps;
        let timelines = if cfg.level == TraceLevel::Full { warps } else { 0 };
        TraceBuffer {
            events: Vec::with_capacity(cfg.event_capacity),
            head: 0,
            dropped: 0,
            counts: [0; EVENT_KINDS],
            latency_hist: [[0; HIST_BUCKETS]; SERVICE_POINTS],
            links_busy: vec![0; cfg.nodes * 4],
            links_queued: vec![0; cfg.nodes * 4],
            slots: vec![SLOT_FREE; cfg.lifetime_slots],
            slot_drops: 0,
            completed: Vec::with_capacity(cfg.completed_capacity),
            completed_head: 0,
            tl_counts: vec![[0; 8]; timelines],
            tl_slot: vec![0; timelines],
            tl_glyphs: vec![GLYPH_EMPTY; timelines * cfg.timeline_slots],
            profile: SubsystemProfile::new(cfg.profile_window, cfg.profile_windows),
            self_profile: false,
            cfg,
        }
    }

    /// A buffer recording nothing (the default sink of a fresh simulator).
    pub fn disabled() -> Self {
        TraceBuffer::new(TraceConfig::off())
    }

    /// The configured verbosity.
    pub fn level(&self) -> TraceLevel {
        self.cfg.level
    }

    /// The configuration the buffer was built with.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Enable or disable wall-time self-profiling laps.
    pub fn set_self_profiling(&mut self, on: bool) {
        self.self_profile = on;
    }

    /// Whether the run loop should measure subsystem laps.
    #[inline]
    pub fn self_profiling(&self) -> bool {
        self.self_profile
    }

    /// Record a measured subsystem lap (no-op unless self-profiling is on).
    #[inline]
    pub fn profile_add(&mut self, sub: Subsystem, nanos: u64) {
        self.profile.add(sub, nanos);
    }

    /// Mark the end of a simulated cycle for the self-profiler.
    #[inline]
    pub fn profile_end_cycle(&mut self) {
        self.profile.end_cycle();
    }

    /// The accumulated self-profile.
    pub fn profile(&self) -> &SubsystemProfile {
        &self.profile
    }

    /// Per-kind event counts, indexed like
    /// [`EVENT_KIND_NAMES`](crate::EVENT_KIND_NAMES).
    pub fn counts(&self) -> &[u64; EVENT_KINDS] {
        &self.counts
    }

    /// The count of one event kind by name; 0 for unknown names.
    pub fn count(&self, kind_name: &str) -> u64 {
        crate::EVENT_KIND_NAMES.iter().position(|&n| n == kind_name).map_or(0, |i| self.counts[i])
    }

    /// Events overwritten after the ring filled.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Request lifetimes that could not be tracked (slot table contention).
    pub fn dropped_lifetimes(&self) -> u64 {
        self.slot_drops
    }

    /// The latency histogram (log2 buckets) for one service point.
    pub fn latency_histogram(&self, point: MemDataCause) -> &[u64; HIST_BUCKETS] {
        &self.latency_hist[point.index()]
    }

    /// Per-link busy cycles (serialization), indexed `node * 4 + dir`.
    pub fn link_busy(&self) -> &[u64] {
        &self.links_busy
    }

    /// Per-link queued cycles (congestion), indexed `node * 4 + dir`.
    pub fn link_queued(&self) -> &[u64] {
        &self.links_queued
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let n = self.events.len();
        let head = self.head;
        (0..n).map(move |i| &self.events[(head + i) % n])
    }

    /// Completed request lifetimes, oldest first.
    pub fn completed(&self) -> impl Iterator<Item = &CompletedReq> {
        let n = self.completed.len();
        let head = self.completed_head;
        (0..n).map(move |i| &self.completed[(head + i) % n])
    }

    /// The dominant stall kind per timeline slot for one warp (`None` when
    /// the warp never stalled in that window). Index `slot` ranges over
    /// `config().timeline_slots`.
    pub fn timeline_glyph(&self, sm: usize, warp: usize, slot: usize) -> Option<StallKind> {
        let wi = sm * self.cfg.max_warps + warp;
        if wi >= self.tl_slot.len() || slot >= self.cfg.timeline_slots {
            return None;
        }
        // The current (unfinalized) slot is derived from the live counts.
        if slot as u32 == self.tl_slot[wi] {
            if let Some(k) = argmax_kind(&self.tl_counts[wi]) {
                return Some(k);
            }
        }
        let g = self.tl_glyphs[wi * self.cfg.timeline_slots + slot];
        if g == GLYPH_EMPTY {
            None
        } else {
            Some(StallKind::ALL[g as usize])
        }
    }

    /// Clear all recorded state, keeping every allocation and the
    /// configuration (for reuse across kernels).
    pub fn reset(&mut self) {
        self.events.clear();
        self.head = 0;
        self.dropped = 0;
        self.counts = [0; EVENT_KINDS];
        self.latency_hist = [[0; HIST_BUCKETS]; SERVICE_POINTS];
        self.links_busy.iter_mut().for_each(|v| *v = 0);
        self.links_queued.iter_mut().for_each(|v| *v = 0);
        self.slots.iter_mut().for_each(|s| *s = SLOT_FREE);
        self.slot_drops = 0;
        self.completed.clear();
        self.completed_head = 0;
        self.tl_counts.iter_mut().for_each(|c| *c = [0; 8]);
        self.tl_slot.iter_mut().for_each(|s| *s = 0);
        self.tl_glyphs.iter_mut().for_each(|g| *g = GLYPH_EMPTY);
        self.profile = SubsystemProfile::new(self.cfg.profile_window, self.cfg.profile_windows);
    }

    // ---- internal recording machinery ----

    fn push_event(&mut self, ev: TraceEvent) {
        if self.events.capacity() == 0 {
            return;
        }
        if self.events.len() < self.events.capacity() {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.events.len();
            self.dropped += 1;
        }
    }

    fn push_completed(&mut self, c: CompletedReq) {
        if self.completed.capacity() == 0 {
            return;
        }
        if self.completed.len() < self.completed.capacity() {
            self.completed.push(c);
        } else {
            self.completed[self.completed_head] = c;
            self.completed_head = (self.completed_head + 1) % self.completed.len();
        }
    }

    fn slot_index(&self, key: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let n = self.slots.len();
        let h = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % n;
        (0..SLOT_PROBES.min(n)).map(|i| (h + i) % n).find(|&idx| self.slots[idx].key == key)
    }

    fn slot_open(&mut self, core: u8, line: u64, req: u64, cycle: u64) {
        if self.slots.is_empty() {
            return;
        }
        let key = slot_key(core, line);
        let n = self.slots.len();
        let h = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % n;
        for i in 0..SLOT_PROBES.min(n) {
            let idx = (h + i) % n;
            let s = &mut self.slots[idx];
            if s.key == SLOT_EMPTY || s.key == key {
                *s =
                    Slot { key, req, issue: cycle, mshr: cycle, service: u64::MAX, point: u8::MAX };
                return;
            }
        }
        self.slot_drops += 1;
    }

    fn slot_set_mshr(&mut self, core: u8, line: u64, cycle: u64) {
        if let Some(idx) = self.slot_index(slot_key(core, line)) {
            self.slots[idx].mshr = cycle;
        }
    }

    fn slot_set_service(&mut self, core: u8, line: u64, cycle: u64, point: MemDataCause) {
        if let Some(idx) = self.slot_index(slot_key(core, line)) {
            let s = &mut self.slots[idx];
            // First service point wins (a merged DRAM fetch services every
            // waiter at once; later forwards describe other requests).
            if s.service == u64::MAX {
                s.service = cycle;
                s.point = point.index() as u8;
            }
        }
    }

    /// Close the slot for `(core, line)` if one is open, booking the
    /// measured latency; returns whether a slot was found. Only the primary
    /// (slot-opening) request ever finds one — its fill is delivered before
    /// any merged waiter's, so merged fills land in the `false` path.
    fn slot_close(
        &mut self,
        core: u8,
        req: RequestId,
        line: u64,
        cycle: u64,
        point: MemDataCause,
    ) -> bool {
        let Some(idx) = self.slot_index(slot_key(core, line)) else {
            return false;
        };
        let s = self.slots[idx];
        self.slots[idx] = SLOT_FREE;
        // Requests whose service point never reported (L1 hits, local
        // completions) collapse the service stage onto the MSHR stage.
        let service = if s.service == u64::MAX { s.mshr } else { s.service };
        let latency = cycle.saturating_sub(s.issue);
        if self.cfg.level == TraceLevel::Full {
            self.push_completed(CompletedReq {
                req: RequestId(s.req),
                sm: core,
                line,
                point,
                issue_cycle: s.issue,
                mshr_cycle: s.mshr,
                service_cycle: service.clamp(s.mshr, cycle),
                fill_cycle: cycle,
            });
        }
        let _ = req;
        self.latency_hist[point.index()][log2_bucket(latency)] += 1;
        true
    }

    /// Record a fill whose latency is already known at the call site (L1
    /// hits and coalesced fills complete locally without a tracked slot).
    fn direct_latency(&mut self, point: MemDataCause, latency: u64) {
        self.latency_hist[point.index()][log2_bucket(latency)] += 1;
    }

    fn timeline_mark(&mut self, sm: u8, warp: u16, cycle: u64, kind: StallKind) {
        if self.tl_counts.is_empty() || (warp as usize) >= self.cfg.max_warps {
            return;
        }
        let wi = sm as usize * self.cfg.max_warps + warp as usize;
        if wi >= self.tl_counts.len() {
            return;
        }
        let slot =
            ((cycle / self.cfg.timeline_window).min(self.cfg.timeline_slots as u64 - 1)) as u32;
        if slot != self.tl_slot[wi] {
            // Finalize the previous slot's dominant kind.
            if let Some(k) = argmax_kind(&self.tl_counts[wi]) {
                let prev = self.tl_slot[wi] as usize;
                self.tl_glyphs[wi * self.cfg.timeline_slots + prev] = k.index() as u8;
            }
            self.tl_counts[wi] = [0; 8];
            self.tl_slot[wi] = slot;
        }
        self.tl_counts[wi][kind.index()] += 1;
    }
}

fn slot_key(core: u8, line: u64) -> u64 {
    ((core as u64) << 56) | (line & LINE_MASK)
}

fn log2_bucket(latency: u64) -> usize {
    if latency == 0 {
        0
    } else {
        (63 - latency.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

fn argmax_kind(counts: &[u32; 8]) -> Option<StallKind> {
    let (mut best, mut best_count) = (0, 0u32);
    for (i, &c) in counts.iter().enumerate() {
        if c > best_count {
            best = i;
            best_count = c;
        }
    }
    if best_count == 0 {
        None
    } else {
        Some(StallKind::ALL[best])
    }
}

impl TraceSink for TraceBuffer {
    #[inline]
    fn counters_on(&self) -> bool {
        self.cfg.level >= TraceLevel::Counters
    }

    #[inline]
    fn events_on(&self) -> bool {
        self.cfg.level == TraceLevel::Full
    }

    fn record(&mut self, ev: TraceEvent) {
        if self.cfg.level == TraceLevel::Off {
            return;
        }
        self.counts[ev.kind_index()] += 1;
        match ev {
            TraceEvent::ReqIssue { cycle, sm, req, line, merged: false } => {
                self.slot_open(sm, line, req.0, cycle);
            }
            TraceEvent::ReqMshr { cycle, sm, line, primary: true } => {
                self.slot_set_mshr(sm, line, cycle);
            }
            TraceEvent::ReqService { cycle, core, line, point } => {
                self.slot_set_service(core, line, cycle, point);
            }
            TraceEvent::ReqFill { cycle, sm, req, line, point } => {
                let closed = self.slot_close(sm, req, line, cycle, point);
                if !closed && (point == MemDataCause::L1 || point == MemDataCause::L1Coalescing) {
                    // A merged waiter's fill: its wait is covered by the
                    // primary's slot, so book it at zero extra latency.
                    self.direct_latency(point, 0);
                }
            }
            TraceEvent::MeshHop { node, dir, queued, busy, .. } => {
                let li = node as usize * 4 + dir as usize;
                if li < self.links_busy.len() {
                    self.links_busy[li] += busy as u64;
                    self.links_queued[li] += queued as u64;
                }
            }
            TraceEvent::WarpStall { cycle, sm, warp, kind, .. } => {
                self.timeline_mark(sm, warp, cycle, kind);
            }
            _ => {}
        }
        if self.cfg.level == TraceLevel::Full {
            self.push_event(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_buffer() -> TraceBuffer {
        TraceBuffer::new(TraceConfig::for_system(TraceLevel::Full, 16, 4, 8))
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut b = TraceBuffer::disabled();
        assert!(!b.counters_on());
        assert!(!b.events_on());
        b.record(TraceEvent::MeshDeliver { cycle: 1, node: 0 });
        assert_eq!(b.counts().iter().sum::<u64>(), 0);
        assert_eq!(b.events().count(), 0);
    }

    #[test]
    fn counters_level_counts_without_ring() {
        let mut b = TraceBuffer::new(TraceConfig::for_system(TraceLevel::Counters, 16, 4, 8));
        assert!(b.counters_on());
        assert!(!b.events_on());
        b.record(TraceEvent::MeshDeliver { cycle: 1, node: 0 });
        b.record(TraceEvent::MeshDeliver { cycle: 2, node: 1 });
        assert_eq!(b.count("mesh_deliver"), 2);
        assert_eq!(b.events().count(), 0, "no ring at counters level");
    }

    #[test]
    fn ring_keeps_the_tail_and_counts_drops() {
        let mut cfg = TraceConfig::for_system(TraceLevel::Full, 1, 1, 1);
        cfg.event_capacity = 4;
        let mut b = TraceBuffer::new(cfg);
        for c in 0..10 {
            b.record(TraceEvent::MeshDeliver { cycle: c, node: 0 });
        }
        let cycles: Vec<u64> = b.events().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
        assert_eq!(b.dropped_events(), 6);
        assert_eq!(b.count("mesh_deliver"), 10, "counters see every event");
    }

    #[test]
    fn request_lifetime_tracks_stages() {
        let mut b = full_buffer();
        let req = RequestId(42);
        b.record(TraceEvent::ReqIssue { cycle: 100, sm: 2, req, line: 7, merged: false });
        b.record(TraceEvent::ReqMshr { cycle: 100, sm: 2, line: 7, primary: true });
        b.record(TraceEvent::ReqService {
            cycle: 160,
            core: 2,
            line: 7,
            point: MemDataCause::MainMemory,
        });
        b.record(TraceEvent::ReqFill {
            cycle: 190,
            sm: 2,
            req,
            line: 7,
            point: MemDataCause::MainMemory,
        });
        let done: Vec<_> = b.completed().copied().collect();
        assert_eq!(done.len(), 1);
        let c = done[0];
        assert_eq!(c.req, req);
        assert_eq!(c.total_latency(), 90);
        assert_eq!(c.mshr_wait() + c.service_wait() + c.fill_wait(), c.total_latency());
        assert_eq!(c.service_wait(), 60);
        assert_eq!(c.fill_wait(), 30);
        // The histogram booked the 90-cycle fill into bucket log2(90) = 6.
        assert_eq!(b.latency_histogram(MemDataCause::MainMemory)[6], 1);
    }

    #[test]
    fn primary_fill_closes_the_slot_and_merged_fills_book_directly() {
        let mut b = full_buffer();
        b.record(TraceEvent::ReqIssue {
            cycle: 10,
            sm: 0,
            req: RequestId(1),
            line: 3,
            merged: false,
        });
        b.record(TraceEvent::ReqIssue {
            cycle: 11,
            sm: 0,
            req: RequestId(2),
            line: 3,
            merged: true,
        });
        // The primary's fill is delivered first and closes the slot.
        b.record(TraceEvent::ReqFill {
            cycle: 50,
            sm: 0,
            req: RequestId(1),
            line: 3,
            point: MemDataCause::L2,
        });
        assert_eq!(b.completed().count(), 1);
        // The merged waiter's fill finds no slot and books directly.
        b.record(TraceEvent::ReqFill {
            cycle: 50,
            sm: 0,
            req: RequestId(2),
            line: 3,
            point: MemDataCause::L1Coalescing,
        });
        assert_eq!(b.completed().count(), 1, "merged fill opens no lifetime");
        assert_eq!(b.latency_histogram(MemDataCause::L1Coalescing)[0], 1);
        // 40-cycle primary latency lands in bucket 5.
        assert_eq!(b.latency_histogram(MemDataCause::L2)[5], 1);
    }

    #[test]
    fn l1_hit_lifetime_closes_with_hit_latency() {
        let mut b = full_buffer();
        let req = RequestId(7);
        b.record(TraceEvent::ReqIssue { cycle: 20, sm: 1, req, line: 9, merged: false });
        b.record(TraceEvent::ReqFill { cycle: 24, sm: 1, req, line: 9, point: MemDataCause::L1 });
        let done: Vec<_> = b.completed().copied().collect();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].total_latency(), 4);
        // 4-cycle latency lands in bucket 2.
        assert_eq!(b.latency_histogram(MemDataCause::L1)[2], 1);
    }

    #[test]
    fn mesh_hops_accumulate_the_link_heatmap() {
        let mut b = full_buffer();
        b.record(TraceEvent::MeshHop { cycle: 5, node: 3, dir: 0, queued: 2, busy: 4 });
        b.record(TraceEvent::MeshHop { cycle: 9, node: 3, dir: 0, queued: 1, busy: 4 });
        assert_eq!(b.link_busy()[3 * 4], 8);
        assert_eq!(b.link_queued()[3 * 4], 3);
    }

    #[test]
    fn warp_timeline_tracks_dominant_kind() {
        let mut cfg = TraceConfig::for_system(TraceLevel::Full, 1, 2, 4);
        cfg.timeline_window = 10;
        cfg.timeline_slots = 8;
        let mut b = TraceBuffer::new(cfg);
        for c in 0..10 {
            let kind = if c < 7 { StallKind::MemoryData } else { StallKind::Control };
            b.record(TraceEvent::WarpStall { cycle: c, sm: 1, warp: 2, kind, cause_pc: 7 });
        }
        b.record(TraceEvent::WarpStall {
            cycle: 15,
            sm: 1,
            warp: 2,
            kind: StallKind::Idle,
            cause_pc: 7,
        });
        assert_eq!(b.timeline_glyph(1, 2, 0), Some(StallKind::MemoryData));
        assert_eq!(b.timeline_glyph(1, 2, 1), Some(StallKind::Idle), "live slot");
        assert_eq!(b.timeline_glyph(1, 2, 2), None);
        assert_eq!(b.timeline_glyph(0, 0, 0), None, "untouched warp");
    }

    #[test]
    fn reset_clears_state_but_keeps_capacity() {
        let mut b = full_buffer();
        b.record(TraceEvent::MeshDeliver { cycle: 1, node: 0 });
        let cap = b.events.capacity();
        b.reset();
        assert_eq!(b.events().count(), 0);
        assert_eq!(b.counts().iter().sum::<u64>(), 0);
        assert_eq!(b.events.capacity(), cap);
    }

    #[test]
    fn log2_buckets() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 0);
        assert_eq!(log2_bucket(2), 1);
        assert_eq!(log2_bucket(3), 1);
        assert_eq!(log2_bucket(1024), 10);
        assert_eq!(log2_bucket(u64::MAX), HIST_BUCKETS - 1);
    }
}
