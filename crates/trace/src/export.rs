//! Exporters: Chrome `trace_event` JSON (Perfetto / `chrome://tracing`),
//! JSONL, and a JSON metrics summary.

use crate::buffer::TraceBuffer;
use crate::event::{DIR_NAMES, EVENT_KIND_NAMES};
use gsi_core::MemDataCause;
use gsi_json::{obj, Value};

impl TraceBuffer {
    /// The trace in Chrome `trace_event` format, loadable in Perfetto or
    /// `chrome://tracing`.
    ///
    /// Completed request lifetimes become `"X"` complete events (one lane
    /// per SM, `ts` in simulated cycles, per-stage waits in `args`);
    /// retained ring events become `"i"` instant events on a global lane.
    pub fn chrome_trace(&self) -> Value {
        let mut events: Vec<Value> = Vec::new();
        events.push(obj! {
            "ph" => "M",
            "pid" => 0u64,
            "name" => "process_name",
            "args" => obj! { "name" => "events" },
        });
        let mut named: Vec<bool> = vec![false; 256];
        for c in self.completed() {
            if !named[c.sm as usize] {
                named[c.sm as usize] = true;
                events.push(obj! {
                    "ph" => "M",
                    "pid" => (c.sm as u64 + 1),
                    "name" => "process_name",
                    "args" => obj! { "name" => format!("sm{}", c.sm) },
                });
            }
            events.push(obj! {
                "ph" => "X",
                "pid" => (c.sm as u64 + 1),
                "tid" => (c.req.0 & 0xffff),
                "ts" => c.issue_cycle,
                "dur" => c.total_latency().max(1),
                "name" => c.point.short(),
                "cat" => "request",
                "args" => obj! {
                    "line" => c.line,
                    "mshr_wait" => c.mshr_wait(),
                    "service_wait" => c.service_wait(),
                    "fill_wait" => c.fill_wait(),
                },
            });
        }
        for ev in self.events() {
            events.push(obj! {
                "ph" => "i",
                "pid" => 0u64,
                "tid" => 0u64,
                "ts" => ev.cycle(),
                "s" => "t",
                "name" => ev.kind_name(),
                "cat" => "event",
                "args" => ev.to_json(),
            });
        }
        obj! { "traceEvents" => Value::Array(events) }
    }

    /// The retained ring events as JSON Lines (one compact object per
    /// line), oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push_str(&ev.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// A JSON summary of every derived metric: per-kind counts, latency
    /// histograms, the link heatmap, lifetime-tracking health, and the
    /// self-profile.
    pub fn to_json(&self) -> Value {
        let counts: Vec<Value> = EVENT_KIND_NAMES
            .iter()
            .zip(self.counts().iter())
            .map(|(&name, &n)| obj! { "kind" => name, "count" => n })
            .collect();
        let hists: Vec<Value> = MemDataCause::ALL
            .iter()
            .map(|&p| {
                let h = self.latency_histogram(p);
                let top = h.iter().rposition(|&b| b > 0).map_or(0, |i| i + 1);
                obj! {
                    "point" => p.short(),
                    "fills" => h.iter().sum::<u64>(),
                    "log2_buckets" => Value::Array(
                        h[..top].iter().map(|&b| Value::U64(b)).collect(),
                    ),
                }
            })
            .collect();
        let links: Vec<Value> = (0..self.link_busy().len())
            .filter(|&li| self.link_busy()[li] > 0 || self.link_queued()[li] > 0)
            .map(|li| {
                obj! {
                    "node" => (li / 4) as u64,
                    "dir" => DIR_NAMES[li % 4],
                    "busy" => self.link_busy()[li],
                    "queued" => self.link_queued()[li],
                }
            })
            .collect();
        obj! {
            "level" => self.level().name(),
            "counts" => Value::Array(counts),
            "dropped_events" => self.dropped_events(),
            "dropped_lifetimes" => self.dropped_lifetimes(),
            "completed_lifetimes" => self.completed().count() as u64,
            "latency_histograms" => Value::Array(hists),
            "links" => Value::Array(links),
            "profile" => self.profile().to_json(),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::buffer::HIST_BUCKETS;
    use crate::event::TraceEvent;
    use crate::profile::Subsystem;
    use crate::{TraceConfig, TraceLevel, TraceSink};
    use gsi_core::RequestId;

    fn traced_buffer() -> TraceBuffer {
        let mut b = TraceBuffer::new(TraceConfig::for_system(TraceLevel::Full, 16, 4, 8));
        let req = RequestId(9);
        b.record(TraceEvent::ReqIssue { cycle: 10, sm: 1, req, line: 5, merged: false });
        b.record(TraceEvent::ReqMshr { cycle: 10, sm: 1, line: 5, primary: true });
        b.record(TraceEvent::ReqService { cycle: 40, core: 1, line: 5, point: MemDataCause::L2 });
        b.record(TraceEvent::ReqFill { cycle: 55, sm: 1, req, line: 5, point: MemDataCause::L2 });
        b.record(TraceEvent::MeshHop { cycle: 12, node: 1, dir: 2, queued: 1, busy: 3 });
        b.profile_add(Subsystem::Cores, 100);
        b.profile_end_cycle();
        b
    }

    #[test]
    fn chrome_trace_has_complete_and_instant_events() {
        let b = traced_buffer();
        let v = b.chrome_trace();
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let phase = |e: &Value| e.get("ph").and_then(|p| p.as_str()).unwrap().to_string();
        let xs: Vec<&Value> = events.iter().filter(|e| phase(e) == "X").collect();
        assert_eq!(xs.len(), 1);
        let x = xs[0];
        assert_eq!(x.get("ts").unwrap().as_u64(), Some(10));
        assert_eq!(x.get("dur").unwrap().as_u64(), Some(45));
        assert_eq!(x.get("name").unwrap().as_str(), Some("L2"));
        let args = x.get("args").unwrap();
        assert_eq!(args.get("service_wait").unwrap().as_u64(), Some(30));
        assert_eq!(args.get("fill_wait").unwrap().as_u64(), Some(15));
        assert!(events.iter().any(|e| phase(e) == "i"));
        assert!(events.iter().any(|e| phase(e) == "M"));
        // The serialized document round-trips through the parser.
        let text = v.to_string_pretty();
        let reparsed = Value::parse(&text).expect("chrome trace is valid JSON");
        assert_eq!(
            reparsed.get("traceEvents").and_then(|e| e.as_array()).map(<[Value]>::len),
            Some(events.len()),
        );
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let b = traced_buffer();
        let text = b.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), b.events().count());
        for line in lines {
            let v = Value::parse(line).expect("each line parses");
            assert!(v.get("ev").is_some());
            assert!(v.get("cycle").is_some());
        }
    }

    #[test]
    fn summary_reports_counts_and_histograms() {
        let b = traced_buffer();
        let v = b.to_json();
        assert_eq!(v.get("level").unwrap().as_str(), Some("full"));
        assert_eq!(v.get("completed_lifetimes").unwrap().as_u64(), Some(1));
        let hists = v.get("latency_histograms").and_then(|h| h.as_array()).unwrap();
        let l2 =
            hists.iter().find(|h| h.get("point").and_then(|p| p.as_str()) == Some("L2")).unwrap();
        assert_eq!(l2.get("fills").unwrap().as_u64(), Some(1));
        let buckets = l2.get("log2_buckets").and_then(|x| x.as_array()).unwrap();
        assert!(buckets.len() <= HIST_BUCKETS);
        // 45-cycle latency lands in bucket 5.
        assert_eq!(buckets[5].as_u64(), Some(1));
        let links = v.get("links").and_then(|l| l.as_array()).unwrap();
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].get("dir").unwrap().as_str(), Some("N"));
    }
}
