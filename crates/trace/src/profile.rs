//! Simulator-overhead self-profiling: wall-time per subsystem per cycle
//! window.
//!
//! The simulation loop measures each subsystem's lap with a monotonic
//! clock and feeds the nanoseconds here; the profile accumulates lifetime
//! totals plus a bounded ring of per-window snapshots so a slow stretch of
//! a run can be localized in time as well as by subsystem.

use gsi_json::{obj, Value};

/// The top-level phases of one simulated cycle, as split by the simulator's
/// run loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subsystem {
    /// Mesh delivery and routing of due messages.
    MeshDeliver,
    /// The shared side: L2 banks and DRAM.
    Shared,
    /// Block dispatch bookkeeping.
    Dispatch,
    /// Per-core work: memory units and SM issue stages.
    Cores,
    /// Draining core outboxes into the mesh.
    Outbox,
}

/// Number of profiled subsystems.
pub const SUBSYSTEMS: usize = 5;

impl Subsystem {
    /// All subsystems in loop order.
    pub const ALL: [Subsystem; SUBSYSTEMS] = [
        Subsystem::MeshDeliver,
        Subsystem::Shared,
        Subsystem::Dispatch,
        Subsystem::Cores,
        Subsystem::Outbox,
    ];

    /// Dense index for accumulation arrays.
    pub fn index(self) -> usize {
        match self {
            Subsystem::MeshDeliver => 0,
            Subsystem::Shared => 1,
            Subsystem::Dispatch => 2,
            Subsystem::Cores => 3,
            Subsystem::Outbox => 4,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::MeshDeliver => "mesh_deliver",
            Subsystem::Shared => "shared",
            Subsystem::Dispatch => "dispatch",
            Subsystem::Cores => "cores",
            Subsystem::Outbox => "outbox",
        }
    }
}

/// Accumulated per-subsystem wall time, with a bounded per-window history.
#[derive(Debug, Clone)]
pub struct SubsystemProfile {
    totals_nanos: [u64; SUBSYSTEMS],
    current: [u64; SUBSYSTEMS],
    cycles: u64,
    window_cycles: u64,
    /// Ring of per-window snapshots (nanos per subsystem), oldest
    /// overwritten first.
    windows: Vec<[u64; SUBSYSTEMS]>,
    head: usize,
    len: usize,
}

impl SubsystemProfile {
    /// A profile that snapshots every `window_cycles` cycles, keeping the
    /// most recent `capacity` windows. Pass `window_cycles = 0` to record
    /// totals only.
    pub fn new(window_cycles: u64, capacity: usize) -> Self {
        SubsystemProfile {
            totals_nanos: [0; SUBSYSTEMS],
            current: [0; SUBSYSTEMS],
            cycles: 0,
            window_cycles,
            windows: vec![[0; SUBSYSTEMS]; capacity],
            head: 0,
            len: 0,
        }
    }

    /// Add a measured lap for `sub`.
    #[inline]
    pub fn add(&mut self, sub: Subsystem, nanos: u64) {
        let i = sub.index();
        self.totals_nanos[i] += nanos;
        self.current[i] += nanos;
    }

    /// Mark the end of a simulated cycle; snapshots the current window when
    /// the boundary is reached.
    #[inline]
    pub fn end_cycle(&mut self) {
        self.cycles += 1;
        if self.window_cycles > 0 && self.cycles.is_multiple_of(self.window_cycles) {
            let snap = std::mem::replace(&mut self.current, [0; SUBSYSTEMS]);
            if !self.windows.is_empty() {
                self.windows[self.head] = snap;
                self.head = (self.head + 1) % self.windows.len();
                self.len = (self.len + 1).min(self.windows.len());
            }
        }
    }

    /// Lifetime nanoseconds per subsystem, in [`Subsystem::ALL`] order.
    pub fn totals_nanos(&self) -> &[u64; SUBSYSTEMS] {
        &self.totals_nanos
    }

    /// Total measured nanoseconds across subsystems.
    pub fn total_nanos(&self) -> u64 {
        self.totals_nanos.iter().sum()
    }

    /// Cycles profiled.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The retained per-window snapshots, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &[u64; SUBSYSTEMS]> {
        let (head, len, n) = (self.head, self.len, self.windows.len());
        (0..len).map(move |i| &self.windows[(head + n - len + i) % n])
    }

    /// The profile as a JSON object (totals, shares, and window history).
    pub fn to_json(&self) -> Value {
        let total = self.total_nanos();
        let per_sub: Vec<Value> = Subsystem::ALL
            .iter()
            .map(|&s| {
                let nanos = self.totals_nanos[s.index()];
                let share = if total == 0 { 0.0 } else { nanos as f64 / total as f64 };
                obj! { "subsystem" => s.name(), "nanos" => nanos, "share" => share }
            })
            .collect();
        let windows: Vec<Value> = self
            .windows()
            .map(|w| Value::Array(w.iter().map(|&n| Value::U64(n)).collect()))
            .collect();
        obj! {
            "cycles" => self.cycles,
            "total_nanos" => total,
            "window_cycles" => self.window_cycles,
            "subsystems" => Value::Array(per_sub),
            "windows" => Value::Array(windows),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn totals_accumulate_across_windows() {
        let mut p = SubsystemProfile::new(2, 4);
        for _ in 0..6 {
            p.add(Subsystem::Cores, 10);
            p.add(Subsystem::Shared, 5);
            p.end_cycle();
        }
        assert_eq!(p.cycles(), 6);
        assert_eq!(p.totals_nanos()[Subsystem::Cores.index()], 60);
        assert_eq!(p.total_nanos(), 90);
        let windows: Vec<_> = p.windows().collect();
        assert_eq!(windows.len(), 3, "6 cycles / 2-cycle windows");
        for w in windows {
            assert_eq!(w[Subsystem::Cores.index()], 20);
        }
    }

    #[test]
    fn window_ring_keeps_only_the_tail() {
        let mut p = SubsystemProfile::new(1, 2);
        for i in 0..5u64 {
            p.add(Subsystem::Outbox, i);
            p.end_cycle();
        }
        let windows: Vec<u64> = p.windows().map(|w| w[Subsystem::Outbox.index()]).collect();
        assert_eq!(windows, vec![3, 4], "only the last two windows survive");
    }

    #[test]
    fn json_shares_sum_to_one() {
        let mut p = SubsystemProfile::new(0, 0);
        p.add(Subsystem::MeshDeliver, 25);
        p.add(Subsystem::Cores, 75);
        let v = p.to_json();
        let subs = v.get("subsystems").and_then(|s| s.as_array()).unwrap();
        let total: f64 =
            subs.iter().map(|s| s.get("share").and_then(|x| x.as_f64()).unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subsystem_indices_are_dense() {
        for (i, s) in Subsystem::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }
}
