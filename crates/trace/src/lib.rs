//! # gsi-trace — cycle-level observability for the GSI simulator
//!
//! The stall breakdowns of `gsi-core` answer *how many* issue slots each
//! stall source wasted; this crate answers *which cycles, warps, requests,
//! and links* produced them. Every simulation layer is instrumented with
//! typed [`TraceEvent`]s recorded through a [`TraceSink`]:
//!
//! * [`NullSink`] — the zero-cost default. Its `enabled` predicates are
//!   constant `false`, so instrumented code monomorphizes to the exact
//!   pre-instrumentation hot path.
//! * [`TraceBuffer`] — a fixed-capacity ring-buffer sink that additionally
//!   derives metrics online: per-service-point latency histograms (log2
//!   buckets), a per-link NoC utilization heatmap, per-warp stall
//!   timelines, request-lifetime tracking (issue → MSHR → service point →
//!   fill), per-kind event counters, and wall-time self-profiling per
//!   simulator subsystem. All storage is pre-allocated when the buffer is
//!   configured, preserving the simulator's allocation-free cycle loop.
//!
//! Recorded traces export as Chrome `trace_event` JSON (loadable in
//! Perfetto / `chrome://tracing`), JSONL, and ASCII timeline/heatmap
//! renderings.
//!
//! ```
//! use gsi_trace::{TraceBuffer, TraceConfig, TraceEvent, TraceLevel, TraceSink};
//! let mut buf = TraceBuffer::new(TraceConfig::for_system(TraceLevel::Full, 16, 15, 48));
//! buf.record(TraceEvent::MeshDeliver { cycle: 3, node: 2 });
//! assert_eq!(buf.events().count(), 1);
//! ```

mod buffer;
mod event;
mod export;
mod profile;
mod render;

pub use buffer::{CompletedReq, TraceBuffer, TraceConfig};
pub use event::{TraceEvent, DIR_NAMES, EVENT_KINDS, EVENT_KIND_NAMES};
pub use profile::{Subsystem, SubsystemProfile, SUBSYSTEMS};

/// How much the tracing layer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// Record nothing (the disabled path is a single predictable branch).
    #[default]
    Off,
    /// Derived metrics only: per-kind counters, latency histograms, the
    /// link heatmap, and request-lifetime stage tracking — no event ring.
    Counters,
    /// Everything `Counters` records, plus the typed event ring buffer and
    /// the per-warp stall timelines.
    Full,
}

impl TraceLevel {
    /// All levels, in increasing verbosity.
    pub const ALL: [TraceLevel; 3] = [TraceLevel::Off, TraceLevel::Counters, TraceLevel::Full];

    /// The level's lowercase name (`off` / `counters` / `full`).
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Counters => "counters",
            TraceLevel::Full => "full",
        }
    }

    /// Parse a level name as produced by [`name`](Self::name).
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" => Some(TraceLevel::Off),
            "counters" => Some(TraceLevel::Counters),
            "full" => Some(TraceLevel::Full),
            _ => None,
        }
    }
}

impl std::fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The recording interface instrumentation points write to.
///
/// Call sites guard event construction on the two predicates:
///
/// ```ignore
/// if sink.counters_on() {
///     sink.record(TraceEvent::MeshDeliver { cycle, node });
/// }
/// ```
///
/// `counters_on` gates ordinary events; `events_on` additionally gates the
/// highest-frequency feeds (per-warp, per-cycle) that only the full level
/// consumes. For [`NullSink`] both predicates are constant `false`, so the
/// guarded block — including event construction — compiles away entirely.
pub trait TraceSink {
    /// True when the sink wants any events at all (level ≥ counters).
    #[inline]
    fn counters_on(&self) -> bool {
        false
    }

    /// True when the sink wants the high-frequency event feeds too
    /// (level = full).
    #[inline]
    fn events_on(&self) -> bool {
        false
    }

    /// Record one event. Only called under one of the predicates above.
    #[inline]
    fn record(&mut self, _ev: TraceEvent) {}
}

/// The no-op sink: recording through it costs nothing and the disabled
/// instrumentation path is branch-free after inlining.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_roundtrip() {
        assert!(TraceLevel::Off < TraceLevel::Counters);
        assert!(TraceLevel::Counters < TraceLevel::Full);
        for l in TraceLevel::ALL {
            assert_eq!(TraceLevel::parse(l.name()), Some(l));
            assert_eq!(format!("{l}"), l.name());
        }
        assert_eq!(TraceLevel::parse("bogus"), None);
    }

    #[test]
    fn null_sink_is_off() {
        let s = NullSink;
        assert!(!s.counters_on());
        assert!(!s.events_on());
    }
}
