//! The typed event vocabulary of the tracing layer.
//!
//! Every event is a small `Copy` value stamped with the simulated cycle it
//! describes, so recording one into the ring buffer is a branch and a
//! couple of word moves — no heap traffic on the hot path.

use gsi_core::{MemDataCause, MemStructCause, RequestId, StallKind};
use gsi_json::Value;

/// Mesh link directions, matching the order used by the mesh's per-link
/// reservation table (`node * 4 + dir`).
pub const DIR_NAMES: [&str; 4] = ["E", "W", "N", "S"];

/// One traced occurrence inside the simulator.
///
/// Node and line identifiers are raw integers rather than the `NodeId` /
/// `LineAddr` newtypes so this crate sits below `gsi-noc` and `gsi-mem` in
/// the dependency graph (both instrument themselves with these events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The issue stage's Algorithm-2 verdict for one SM-cycle.
    IssueVerdict {
        /// Cycle judged.
        cycle: u64,
        /// SM index.
        sm: u8,
        /// The cycle's classification.
        kind: StallKind,
        /// Instructions issued this cycle.
        issued: u8,
    },
    /// One warp's Algorithm-1 classification when it was considered and did
    /// not issue (the per-warp stall timeline feed).
    WarpStall {
        /// Cycle considered.
        cycle: u64,
        /// SM index.
        sm: u8,
        /// Warp index within the SM.
        warp: u16,
        /// Why the warp's next instruction could not issue.
        kind: StallKind,
        /// Pc of the causal instruction the blame walk identified
        /// (`u32::MAX` when unknown), so exported slices carry their
        /// root cause.
        cause_pc: u32,
    },
    /// The LSU refused an otherwise-issuable memory instruction.
    LsuReject {
        /// Cycle of the rejection.
        cycle: u64,
        /// SM index.
        sm: u8,
        /// Warp whose instruction was rejected.
        warp: u16,
        /// Structural cause of the rejection.
        cause: MemStructCause,
    },
    /// A memory request left the LSU (start of its lifetime).
    ReqIssue {
        /// Issue cycle.
        cycle: u64,
        /// Issuing SM.
        sm: u8,
        /// The request id.
        req: RequestId,
        /// Line address being fetched.
        line: u64,
        /// True when this request merged into an existing MSHR entry.
        merged: bool,
    },
    /// A request allocated (or merged into) an MSHR entry.
    ReqMshr {
        /// Allocation cycle.
        cycle: u64,
        /// Owning SM.
        sm: u8,
        /// Line address of the entry.
        line: u64,
        /// True for the primary (line-fetching) allocation.
        primary: bool,
    },
    /// A request reached the point in the hierarchy that serviced it.
    ReqService {
        /// Service cycle.
        cycle: u64,
        /// The requesting core the fill will return to.
        core: u8,
        /// Line address serviced.
        line: u64,
        /// Where the data came from.
        point: MemDataCause,
    },
    /// A fill closed out a request at the issuing core (end of lifetime).
    ReqFill {
        /// Fill cycle.
        cycle: u64,
        /// SM that issued the request.
        sm: u8,
        /// The request id.
        req: RequestId,
        /// Line address filled.
        line: u64,
        /// Service point reported by the fill.
        point: MemDataCause,
    },
    /// An atomic operation was sent to its L2 bank.
    AtomicIssue {
        /// Issue cycle.
        cycle: u64,
        /// Issuing SM.
        sm: u8,
        /// The request id.
        req: RequestId,
    },
    /// An atomic response arrived back at the core.
    AtomicDone {
        /// Completion cycle.
        cycle: u64,
        /// SM that issued the atomic.
        sm: u8,
        /// The request id.
        req: RequestId,
    },
    /// A message was injected into the mesh (enqueue).
    MeshSend {
        /// Injection cycle.
        cycle: u64,
        /// Source node.
        src: u8,
        /// Destination node.
        dst: u8,
        /// Payload bytes.
        bytes: u32,
        /// Cycle the mesh will deliver it.
        deliver_at: u64,
    },
    /// One hop of a message over a mesh link.
    MeshHop {
        /// Cycle the message departed over the link.
        cycle: u64,
        /// Node the link leaves from.
        node: u8,
        /// Link direction (index into [`DIR_NAMES`]).
        dir: u8,
        /// Cycles spent queued behind earlier traffic on this link.
        queued: u32,
        /// Serialization cycles the link is busy with this message.
        busy: u32,
    },
    /// The mesh delivered a message to its destination (dequeue).
    MeshDeliver {
        /// Delivery cycle.
        cycle: u64,
        /// Destination node.
        node: u8,
    },
    /// The store buffer accepted a store.
    StoreRecord {
        /// Cycle of the store.
        cycle: u64,
        /// SM index.
        sm: u8,
        /// Line written.
        line: u64,
        /// True when the store combined into an existing entry.
        combined: bool,
    },
    /// A store-buffer entry was drained toward the hierarchy.
    StoreFlush {
        /// Cycle the entry drained.
        cycle: u64,
        /// SM index.
        sm: u8,
        /// Line flushed.
        line: u64,
    },
    /// A bulk DMA transfer was queued.
    DmaStart {
        /// Start cycle.
        cycle: u64,
        /// SM index.
        sm: u8,
        /// Global lines the transfer covers.
        lines: u64,
        /// Direction: true = global → scratchpad.
        to_scratchpad: bool,
    },
    /// One line of a DMA transfer was issued to, or arrived from, memory.
    DmaLine {
        /// Cycle of the step.
        cycle: u64,
        /// SM index.
        sm: u8,
        /// Global line.
        line: u64,
        /// False when issued, true when the fetched line arrived.
        arrived: bool,
    },
    /// A stash access, split into locally valid words and missing lines.
    StashAccess {
        /// Access cycle.
        cycle: u64,
        /// SM index.
        sm: u8,
        /// Lanes satisfied from the stash.
        hit_words: u8,
        /// Global lines that had to be fetched.
        miss_lines: u8,
    },
    /// A scratchpad access (always a hit; DMA blocking is a reject).
    ScratchAccess {
        /// Access cycle.
        cycle: u64,
        /// SM index.
        sm: u8,
        /// True for a store.
        store: bool,
    },
}

/// Number of distinct event kinds (the width of the per-kind counters).
pub const EVENT_KINDS: usize = 18;

/// Short names of each event kind, indexed by [`TraceEvent::kind_index`].
pub const EVENT_KIND_NAMES: [&str; EVENT_KINDS] = [
    "issue_verdict",
    "warp_stall",
    "lsu_reject",
    "req_issue",
    "req_mshr",
    "req_service",
    "req_fill",
    "atomic_issue",
    "atomic_done",
    "mesh_send",
    "mesh_hop",
    "mesh_deliver",
    "store_record",
    "store_flush",
    "dma_start",
    "dma_line",
    "stash_access",
    "scratch_access",
];

impl TraceEvent {
    /// The cycle stamped on the event.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::IssueVerdict { cycle, .. }
            | TraceEvent::WarpStall { cycle, .. }
            | TraceEvent::LsuReject { cycle, .. }
            | TraceEvent::ReqIssue { cycle, .. }
            | TraceEvent::ReqMshr { cycle, .. }
            | TraceEvent::ReqService { cycle, .. }
            | TraceEvent::ReqFill { cycle, .. }
            | TraceEvent::AtomicIssue { cycle, .. }
            | TraceEvent::AtomicDone { cycle, .. }
            | TraceEvent::MeshSend { cycle, .. }
            | TraceEvent::MeshHop { cycle, .. }
            | TraceEvent::MeshDeliver { cycle, .. }
            | TraceEvent::StoreRecord { cycle, .. }
            | TraceEvent::StoreFlush { cycle, .. }
            | TraceEvent::DmaStart { cycle, .. }
            | TraceEvent::DmaLine { cycle, .. }
            | TraceEvent::StashAccess { cycle, .. }
            | TraceEvent::ScratchAccess { cycle, .. } => cycle,
        }
    }

    /// Dense index of the event's kind, for per-kind counters.
    pub fn kind_index(&self) -> usize {
        match self {
            TraceEvent::IssueVerdict { .. } => 0,
            TraceEvent::WarpStall { .. } => 1,
            TraceEvent::LsuReject { .. } => 2,
            TraceEvent::ReqIssue { .. } => 3,
            TraceEvent::ReqMshr { .. } => 4,
            TraceEvent::ReqService { .. } => 5,
            TraceEvent::ReqFill { .. } => 6,
            TraceEvent::AtomicIssue { .. } => 7,
            TraceEvent::AtomicDone { .. } => 8,
            TraceEvent::MeshSend { .. } => 9,
            TraceEvent::MeshHop { .. } => 10,
            TraceEvent::MeshDeliver { .. } => 11,
            TraceEvent::StoreRecord { .. } => 12,
            TraceEvent::StoreFlush { .. } => 13,
            TraceEvent::DmaStart { .. } => 14,
            TraceEvent::DmaLine { .. } => 15,
            TraceEvent::StashAccess { .. } => 16,
            TraceEvent::ScratchAccess { .. } => 17,
        }
    }

    /// The kind's short name (see [`EVENT_KIND_NAMES`]).
    pub fn kind_name(&self) -> &'static str {
        EVENT_KIND_NAMES[self.kind_index()]
    }

    /// The event as a JSON object (the JSONL export row).
    pub fn to_json(&self) -> Value {
        use gsi_json::obj;
        match *self {
            TraceEvent::IssueVerdict { cycle, sm, kind, issued } => obj! {
                "ev" => self.kind_name(),
                "cycle" => cycle,
                "sm" => sm as u64,
                "kind" => kind.short(),
                "issued" => issued as u64,
            },
            TraceEvent::WarpStall { cycle, sm, warp, kind, cause_pc } => {
                let mut v = obj! {
                    "ev" => self.kind_name(),
                    "cycle" => cycle,
                    "sm" => sm as u64,
                    "warp" => warp as u64,
                    "kind" => kind.short(),
                };
                // The sentinel means "no causal instruction": export null so
                // consumers need no knowledge of the sentinel value.
                if cause_pc == u32::MAX {
                    v.set("cause_pc", Value::Null);
                } else {
                    v.set("cause_pc", cause_pc as u64);
                }
                v
            }
            TraceEvent::LsuReject { cycle, sm, warp, cause } => obj! {
                "ev" => self.kind_name(),
                "cycle" => cycle,
                "sm" => sm as u64,
                "warp" => warp as u64,
                "cause" => cause.short(),
            },
            TraceEvent::ReqIssue { cycle, sm, req, line, merged } => obj! {
                "ev" => self.kind_name(),
                "cycle" => cycle,
                "sm" => sm as u64,
                "req" => req.0,
                "line" => line,
                "merged" => merged,
            },
            TraceEvent::ReqMshr { cycle, sm, line, primary } => obj! {
                "ev" => self.kind_name(),
                "cycle" => cycle,
                "sm" => sm as u64,
                "line" => line,
                "primary" => primary,
            },
            TraceEvent::ReqService { cycle, core, line, point } => obj! {
                "ev" => self.kind_name(),
                "cycle" => cycle,
                "core" => core as u64,
                "line" => line,
                "point" => point.short(),
            },
            TraceEvent::ReqFill { cycle, sm, req, line, point } => obj! {
                "ev" => self.kind_name(),
                "cycle" => cycle,
                "sm" => sm as u64,
                "req" => req.0,
                "line" => line,
                "point" => point.short(),
            },
            TraceEvent::AtomicIssue { cycle, sm, req } => obj! {
                "ev" => self.kind_name(),
                "cycle" => cycle,
                "sm" => sm as u64,
                "req" => req.0,
            },
            TraceEvent::AtomicDone { cycle, sm, req } => obj! {
                "ev" => self.kind_name(),
                "cycle" => cycle,
                "sm" => sm as u64,
                "req" => req.0,
            },
            TraceEvent::MeshSend { cycle, src, dst, bytes, deliver_at } => obj! {
                "ev" => self.kind_name(),
                "cycle" => cycle,
                "src" => src as u64,
                "dst" => dst as u64,
                "bytes" => bytes as u64,
                "deliver_at" => deliver_at,
            },
            TraceEvent::MeshHop { cycle, node, dir, queued, busy } => obj! {
                "ev" => self.kind_name(),
                "cycle" => cycle,
                "node" => node as u64,
                "dir" => DIR_NAMES[dir as usize % 4],
                "queued" => queued as u64,
                "busy" => busy as u64,
            },
            TraceEvent::MeshDeliver { cycle, node } => obj! {
                "ev" => self.kind_name(),
                "cycle" => cycle,
                "node" => node as u64,
            },
            TraceEvent::StoreRecord { cycle, sm, line, combined } => obj! {
                "ev" => self.kind_name(),
                "cycle" => cycle,
                "sm" => sm as u64,
                "line" => line,
                "combined" => combined,
            },
            TraceEvent::StoreFlush { cycle, sm, line } => obj! {
                "ev" => self.kind_name(),
                "cycle" => cycle,
                "sm" => sm as u64,
                "line" => line,
            },
            TraceEvent::DmaStart { cycle, sm, lines, to_scratchpad } => obj! {
                "ev" => self.kind_name(),
                "cycle" => cycle,
                "sm" => sm as u64,
                "lines" => lines,
                "to_scratchpad" => to_scratchpad,
            },
            TraceEvent::DmaLine { cycle, sm, line, arrived } => obj! {
                "ev" => self.kind_name(),
                "cycle" => cycle,
                "sm" => sm as u64,
                "line" => line,
                "arrived" => arrived,
            },
            TraceEvent::StashAccess { cycle, sm, hit_words, miss_lines } => obj! {
                "ev" => self.kind_name(),
                "cycle" => cycle,
                "sm" => sm as u64,
                "hit_words" => hit_words as u64,
                "miss_lines" => miss_lines as u64,
            },
            TraceEvent::ScratchAccess { cycle, sm, store } => obj! {
                "ev" => self.kind_name(),
                "cycle" => cycle,
                "sm" => sm as u64,
                "store" => store,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_are_dense_and_named() {
        let evs = [
            TraceEvent::IssueVerdict { cycle: 0, sm: 0, kind: StallKind::Idle, issued: 0 },
            TraceEvent::WarpStall {
                cycle: 0,
                sm: 0,
                warp: 0,
                kind: StallKind::Control,
                cause_pc: u32::MAX,
            },
            TraceEvent::LsuReject { cycle: 0, sm: 0, warp: 0, cause: MemStructCause::MshrFull },
            TraceEvent::ReqIssue { cycle: 0, sm: 0, req: RequestId(1), line: 2, merged: false },
            TraceEvent::ReqMshr { cycle: 0, sm: 0, line: 2, primary: true },
            TraceEvent::ReqService { cycle: 0, core: 0, line: 2, point: MemDataCause::L2 },
            TraceEvent::ReqFill {
                cycle: 0,
                sm: 0,
                req: RequestId(1),
                line: 2,
                point: MemDataCause::L2,
            },
            TraceEvent::AtomicIssue { cycle: 0, sm: 0, req: RequestId(1) },
            TraceEvent::AtomicDone { cycle: 0, sm: 0, req: RequestId(1) },
            TraceEvent::MeshSend { cycle: 0, src: 0, dst: 1, bytes: 8, deliver_at: 9 },
            TraceEvent::MeshHop { cycle: 0, node: 0, dir: 0, queued: 0, busy: 1 },
            TraceEvent::MeshDeliver { cycle: 0, node: 1 },
            TraceEvent::StoreRecord { cycle: 0, sm: 0, line: 2, combined: false },
            TraceEvent::StoreFlush { cycle: 0, sm: 0, line: 2 },
            TraceEvent::DmaStart { cycle: 0, sm: 0, lines: 4, to_scratchpad: true },
            TraceEvent::DmaLine { cycle: 0, sm: 0, line: 2, arrived: false },
            TraceEvent::StashAccess { cycle: 0, sm: 0, hit_words: 3, miss_lines: 1 },
            TraceEvent::ScratchAccess { cycle: 0, sm: 0, store: false },
        ];
        assert_eq!(evs.len(), EVENT_KINDS);
        for (i, ev) in evs.iter().enumerate() {
            assert_eq!(ev.kind_index(), i, "{ev:?}");
            assert_eq!(ev.kind_name(), EVENT_KIND_NAMES[i]);
        }
    }

    #[test]
    fn events_serialize_with_their_kind_name() {
        let ev = TraceEvent::ReqFill {
            cycle: 7,
            sm: 2,
            req: RequestId(9),
            line: 128,
            point: MemDataCause::MainMemory,
        };
        let v = ev.to_json();
        assert_eq!(v.get("ev").and_then(|x| x.as_str()), Some("req_fill"));
        assert_eq!(v.get("cycle").and_then(|x| x.as_u64()), Some(7));
        assert_eq!(ev.cycle(), 7);
    }
}
