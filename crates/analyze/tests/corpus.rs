//! Directed bad-kernel corpus: every finding class the verifier claims to
//! detect has a minimal kernel under `tests/corpus/` (or built inline when
//! the assembly parser cannot express the defect), and each must be
//! flagged with the right class, severity, and instruction index.

#![allow(clippy::unwrap_used)]

use gsi_analyze::{analyze, AnalyzeOptions, FindingKind, ProtocolClass, Severity};
use gsi_isa::asm::parse_program;
use gsi_isa::{Instr, Program};
use gsi_json::ToJson;

const SCRATCH: u64 = 16 * 1024;

fn load(name: &str) -> Program {
    let path = format!("{}/tests/corpus/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap();
    parse_program(&text).unwrap()
}

fn opts() -> AnalyzeOptions {
    AnalyzeOptions { scratch_bytes: Some(SCRATCH), warps_per_block: 2, ..AnalyzeOptions::default() }
}

#[test]
fn every_corpus_kernel_is_flagged_at_the_right_place() {
    let cases: &[(&str, FindingKind, Severity, usize)] = &[
        ("uninit_read.gsi", FindingKind::UninitRead, Severity::Error, 0),
        ("divergent_barrier.gsi", FindingKind::DivergentBarrier, Severity::Error, 4),
        ("scratchpad_oob.gsi", FindingKind::ScratchpadOob, Severity::Error, 1),
        ("local_race.gsi", FindingKind::LocalRace, Severity::Warn, 2),
        ("dma_no_wait.gsi", FindingKind::DmaNoWait, Severity::Warn, 3),
    ];
    for &(file, kind, severity, pc) in cases {
        let program = load(file);
        let report = analyze(&program, &opts());
        let found = report.findings().iter().find(|f| f.kind == kind).unwrap_or_else(|| {
            panic!("{file}: expected a {kind} finding, got:\n{}", report.render())
        });
        assert_eq!(found.severity, severity, "{file}: wrong severity\n{}", report.render());
        assert_eq!(found.pc, pc, "{file}: wrong instruction index\n{}", report.render());
        assert_eq!(
            found.location,
            format!("{}.gsi:{pc}", program.name()),
            "{file}: location must cite the kernel and index"
        );
        assert!(
            found.snippet.contains(&format!("-> {pc:4}:")),
            "{file}: snippet must mark the offending line:\n{}",
            found.snippet
        );
    }
}

/// The global-race corpus: each case pins the launch geometry it races
/// under and the exact (kind, severity, pc) set the verifier must emit —
/// and, for the synchronized kernel, that nothing is emitted at all.
#[test]
fn race_corpus_kernels_pin_kind_severity_and_pc() {
    struct Case {
        file: &'static str,
        warps: usize,
        blocks: u64,
        expect: &'static [(FindingKind, Severity, usize)],
    }
    let cases = [
        Case {
            file: "interwarp_race.gsi",
            warps: 2,
            blocks: 1,
            expect: &[(FindingKind::GlobalRaceInterWarp, Severity::Error, 1)],
        },
        Case {
            file: "interblock_race.gsi",
            warps: 1,
            blocks: 2,
            expect: &[(FindingKind::GlobalRaceInterBlock, Severity::Error, 1)],
        },
        Case {
            file: "dma_race.gsi",
            warps: 2,
            blocks: 1,
            expect: &[
                // The transfer races with its own copy in the other warp
                // and with the plain store into its region.
                (FindingKind::GlobalRaceDma, Severity::Error, 2),
                (FindingKind::GlobalRaceDma, Severity::Error, 3),
            ],
        },
        Case { file: "atomic_clean.gsi", warps: 4, blocks: 2, expect: &[] },
    ];
    for case in &cases {
        let program = load(case.file);
        let opts = AnalyzeOptions {
            scratch_bytes: Some(SCRATCH),
            warps_per_block: case.warps,
            grid_blocks: case.blocks,
            protocol: ProtocolClass::DeNovo,
            ..AnalyzeOptions::default()
        };
        let report = analyze(&program, &opts);
        if case.expect.is_empty() {
            assert!(
                report.findings().iter().all(|f| !f.kind.is_global_race()),
                "{}: the atomic-synchronized kernel must carry no race findings:\n{}",
                case.file,
                report.render()
            );
            continue;
        }
        for &(kind, severity, pc) in case.expect {
            let found = report
                .findings()
                .iter()
                .find(|f| f.kind == kind && f.pc == pc)
                .unwrap_or_else(|| {
                    panic!("{}: expected {kind} at pc {pc}, got:\n{}", case.file, report.render())
                });
            assert_eq!(found.severity, severity, "{}: wrong severity", case.file);
            assert_eq!(found.location, format!("{}.gsi:{pc}", program.name()));
            assert!(!found.corners.is_empty(), "{}: race findings carry witnesses", case.file);
        }
        // The same race is a warning, not a denial, under GPU coherence.
        let gpu = AnalyzeOptions { protocol: ProtocolClass::GpuCoherence, ..opts };
        let report = analyze(&program, &gpu);
        for &(kind, _, pc) in case.expect {
            let found = report.findings().iter().find(|f| f.kind == kind && f.pc == pc).unwrap();
            assert_eq!(found.severity, Severity::Warn, "{}: gpu coherence tolerates", case.file);
        }
    }
}

#[test]
fn branch_out_of_range_is_flagged() {
    // The assembly parser validates targets, so this defect can only be
    // built by bypassing the builder's label machinery.
    let program =
        Program::from_parts_for_tests("bad-branch", vec![Instr::Jmp { target: 99 }, Instr::Exit]);
    let report = analyze(&program, &opts());
    let f = report
        .findings()
        .iter()
        .find(|f| f.kind == FindingKind::BranchOutOfRange)
        .unwrap_or_else(|| panic!("expected branch-out-of-range:\n{}", report.render()));
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.pc, 0);
}

#[test]
fn corpus_reports_are_deterministic() {
    for file in [
        "uninit_read.gsi",
        "divergent_barrier.gsi",
        "scratchpad_oob.gsi",
        "local_race.gsi",
        "dma_no_wait.gsi",
        "interwarp_race.gsi",
        "interblock_race.gsi",
        "dma_race.gsi",
        "atomic_clean.gsi",
    ] {
        let program = load(file);
        let race_opts =
            AnalyzeOptions { grid_blocks: 2, protocol: ProtocolClass::DeNovo, ..opts() };
        for o in [opts(), race_opts] {
            let a = analyze(&program, &o);
            let b = analyze(&program, &o);
            assert_eq!(a, b, "{file}");
            assert_eq!(a.render(), b.render(), "{file}");
            assert_eq!(a.to_json().to_string_pretty(), b.to_json().to_string_pretty(), "{file}");
        }
    }
}

#[test]
fn corpus_kernels_round_trip_through_the_disassembler() {
    for file in [
        "uninit_read.gsi",
        "divergent_barrier.gsi",
        "scratchpad_oob.gsi",
        "local_race.gsi",
        "dma_no_wait.gsi",
        "interwarp_race.gsi",
        "interblock_race.gsi",
        "dma_race.gsi",
        "atomic_clean.gsi",
    ] {
        let program = load(file);
        let text = gsi_isa::asm::disassemble(&program);
        assert_eq!(parse_program(&text).unwrap(), program, "{file}");
    }
}
