//! Whole-scenario global-memory race verification: write/write and
//! read/write conflicts between symbolic threads — warps of one block,
//! warps of different blocks, and warp code versus DMA/stash transfers —
//! decided by stride/offset disequations over the affine-parametric
//! address domain of [`absint`](crate::absint), never by enumeration of
//! thread ids.
//!
//! For a pair of accesses the question "can thread `t1`'s footprint touch
//! thread `t2`'s?" reduces to: does
//!
//! ```text
//! δ = (a.lo − b.lo) + (i·sa − j·sb) + c·k + e
//! ```
//!
//! take a value in `(−width_a, width_b)` for some axis delta `k ≠ 0`?
//! Here `sa`/`sb` are the lane strides, `c` the shared per-axis
//! coefficient, and `e` the contribution of the *other* (free) axis. Both
//! an interval window test and a residue (mod-gcd) test must pass — the
//! residue test is what proves warp-interleaved layouts (`addr = base +
//! elem·(lane·W + warp)`) disjoint even though their whole-range intervals
//! fully overlap.
//!
//! Synchronization is consulted through [`SyncGraph`]: barrier phases
//! suppress inter-warp pairs (but never inter-block ones — `bar` does not
//! order distinct blocks), and pairs where *both* sides sit inside an
//! acquire/release critical section are assumed mutually excluded.
//! Atomics themselves are synchronization, not data accesses, so an
//! atomic never races — in particular the polling read of a done-flag
//! written by `atom.st` is not flagged.
//!
//! Severity is protocol-aware: DeNovo self-invalidates at acquires and
//! relies on data-race-freedom for correctness, so a global race is an
//! `Error` (deny-gated); under baseline GPU coherence the same race is
//! merely suspicious (`Warn`).

use crate::absint::{gcd, reg_val, AbsVal, Geom, States};
use crate::cfg::{finding, Cfg};
use crate::defuse::{DefUseIndex, LAUNCH_DEF};
use crate::findings::{Finding, FindingKind, Severity};
use crate::sync::SyncGraph;
use crate::ProtocolClass;
use gsi_isa::{Instr, Program, Reg, WORD_BYTES};

/// One global-memory access with a symbolic per-thread footprint.
struct GlobalAccess {
    pc: usize,
    write: bool,
    dma: bool,
    addr_reg: Reg,
    /// Symbolic address of the first byte (affine in warp/block ids).
    sym: AbsVal,
    /// The same address concretized over the launch geometry.
    conc: AbsVal,
    /// Bytes covered from each address in the footprint.
    width: u64,
}

fn gcd128(a: u128, b: u128) -> u128 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// The disequation core for one access pair: can
/// `δ = d0 + (i·sa − j·sb) + e` land in the open window `(−wa, wb)`?
struct Diseq {
    /// Achievable lattice-term range `[lmin + emin, lmax + emax]`.
    slack_lo: i128,
    slack_hi: i128,
    /// Lattice: every achievable slack is `≡ 0 (mod g)`.
    g: u128,
    wa: i128,
    wb: i128,
}

impl Diseq {
    fn new(a: &GlobalAccess, b: &GlobalAccess, emin: i128, emax: i128, ge: u128) -> Diseq {
        Diseq {
            slack_lo: -((b.sym.hi - b.sym.lo) as i128) + emin,
            slack_hi: (a.sym.hi - a.sym.lo) as i128 + emax,
            g: gcd128(gcd128(a.sym.stride as u128, b.sym.stride as u128), ge),
            wa: a.width as i128,
            wb: b.width as i128,
        }
    }

    /// Whether some achievable `δ = d0 + slack` overlaps the footprints:
    /// `δ = posA − posB` touches common bytes iff `−wa < δ < wb`.
    fn hit(&self, d0: i128) -> bool {
        // Interval window: the achievable δ range must cross (−wa, wb).
        if d0 + self.slack_hi <= -self.wa || d0 + self.slack_lo >= self.wb {
            return false;
        }
        // Residue: δ ≡ d0 (mod g); some representative must be in-window.
        if self.g == 0 {
            return d0 > -self.wa && d0 < self.wb;
        }
        let r = d0.rem_euclid(self.g as i128) as u128;
        r < self.wb as u128 || self.g - r < self.wa as u128
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Axis {
    Warp,
    Block,
}

enum Verdict {
    Disjoint,
    /// Witnessing corner labels; empty when only a conservative claim
    /// (mismatched per-axis coefficients) exists.
    Races(Vec<String>),
}

/// Decide whether two accesses can conflict across `axis` (threads
/// differing in that id, the other id free), and name witness deltas.
fn check_axis(a: &GlobalAccess, b: &GlobalAccess, axis: Axis, geom: Geom) -> Verdict {
    let (n, ca, cb) = match axis {
        Axis::Warp => (geom.warps_per_block, a.sym.wcoef, b.sym.wcoef),
        Axis::Block => (geom.grid_blocks, a.sym.bcoef, b.sym.bcoef),
    };
    if n <= 1 {
        return Verdict::Disjoint;
    }
    if ca != cb {
        // The two footprints shear at different per-id rates; no single
        // delta disequation separates them. Conservatively a race (the
        // concretized whole-range footprints already overlap).
        return Verdict::Races(Vec::new());
    }
    let c = ca as i128;
    // The free axis contributes e; its achievable range and lattice.
    let (emin, emax, ge) = match axis {
        Axis::Warp => {
            // Same block for both threads: e = (a.bcoef − b.bcoef)·block.
            let db = a.sym.bcoef as i128 - b.sym.bcoef as i128;
            let span = db * (geom.grid_blocks as i128 - 1);
            (span.min(0), span.max(0), db.unsigned_abs())
        }
        Axis::Block => {
            // Warps are independent: e = a.wcoef·w1 − b.wcoef·w2.
            let w = geom.warps_per_block as i128 - 1;
            let (sa, sb) = (a.sym.wcoef as i128 * w, b.sym.wcoef as i128 * w);
            (
                sa.min(0) - sb.max(0),
                sa.max(0) - sb.min(0),
                gcd(a.sym.wcoef.unsigned_abs(), b.sym.wcoef.unsigned_abs()) as u128,
            )
        }
    };
    let dis = Diseq::new(a, b, emin, emax, ge);
    let base = a.sym.lo as i128 - b.sym.lo as i128;
    let hit_k = |k: u64| {
        let d = c * k as i128;
        dis.hit(base + d) || dis.hit(base - d)
    };
    let Some(kmin) = (1..n).find(|&k| hit_k(k)) else {
        return Verdict::Disjoint;
    };
    let mut ks = vec![kmin];
    if n - 1 != kmin && hit_k(n - 1) {
        ks.push(n - 1);
    }
    let tag = match axis {
        Axis::Warp => "dwarp",
        Axis::Block => "dblock",
    };
    Verdict::Races(ks.into_iter().map(|k| format!("{tag}={k}")).collect())
}

/// Per-pc executor constraint for the *leader-warp idiom* (`branz r_warp,
/// @skip` so only warp 0 issues a DMA/stash transfer): `Some(w)` when
/// every path from the entry to the pc crosses a branch edge that implies
/// `r == 0` for a register pinning the executing warp id to exactly `w`
/// per block; `None` when any warp may execute. A must-dataflow: paths
/// join with meet, and joining two different pinned warps (or a pinned
/// and an unrestricted path) degrades to unrestricted.
fn leader_warp_dataflow(program: &Program, cfg: &Cfg, states: &States) -> Vec<Option<i64>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Exec {
        All,
        One(i64),
    }
    fn meet(a: Exec, b: Exec) -> Exec {
        match (a, b) {
            (Exec::One(x), Exec::One(y)) if x == y => Exec::One(x),
            _ => Exec::All,
        }
    }
    // `r == 0` pins the warp id iff r is per-thread constant `c0 + cw·w`
    // with cw ≠ 0 and no lane/block/residual variation.
    let pin = |pc: usize, r: Reg| -> Option<i64> {
        let v = reg_val(states, pc, r);
        if v.stride != 0 || v.lane_dep || v.warp_dep || v.bcoef != 0 || v.wcoef == 0 {
            return None;
        }
        let (c0, cw) = (v.lo as i64 as i128, v.wcoef as i128);
        (c0 % cw == 0).then(|| i64::try_from(-c0 / cw).ok()).flatten()
    };
    let instrs = program.instrs();
    let len = instrs.len();
    let mut state: Vec<Option<Exec>> = vec![None; len];
    if len == 0 {
        return Vec::new();
    }
    state[0] = Some(Exec::All);
    let mut work = vec![0usize];
    let mut queued = vec![false; len];
    queued[0] = true;
    while let Some(pc) = work.pop() {
        queued[pc] = false;
        let Some(inb) = state[pc] else { continue };
        // Which outgoing edge implies `r == 0`: the taken edge of `braz`,
        // the fallthrough edge of `branz`. Degenerate branches whose
        // target IS the fallthrough refine nothing.
        let zero_edge = match &instrs[pc] {
            Instr::Bra { cond, target } if *target != pc + 1 => match cond {
                gsi_isa::BranchCond::Zero(r) => Some((*target, *r)),
                gsi_isa::BranchCond::NonZero(r) => Some((pc + 1, *r)),
            },
            _ => None,
        };
        for &succ in cfg.succs(pc) {
            let out = match zero_edge {
                Some((edge, r)) if edge == succ => match pin(pc, r) {
                    Some(w) => Exec::One(w),
                    None => inb,
                },
                _ => inb,
            };
            let merged = match state[succ] {
                None => out,
                Some(old) => meet(old, out),
            };
            if state[succ] != Some(merged) {
                state[succ] = Some(merged);
                if !queued[succ] {
                    queued[succ] = true;
                    work.push(succ);
                }
            }
        }
    }
    state
        .into_iter()
        .map(|s| match s {
            Some(Exec::One(w)) => Some(w),
            _ => None,
        })
        .collect()
}

/// Whether the *same* thread's two accesses can touch common bytes —
/// meaningful only when one side is an asynchronous DMA/stash transfer,
/// which program order does not complete.
fn check_same_thread(a: &GlobalAccess, b: &GlobalAccess, geom: Geom) -> bool {
    let dw = a.sym.wcoef as i128 - b.sym.wcoef as i128;
    let db = a.sym.bcoef as i128 - b.sym.bcoef as i128;
    let sw = dw * (geom.warps_per_block as i128 - 1);
    let sb = db * (geom.grid_blocks as i128 - 1);
    let (emin, emax) = (sw.min(0) + sb.min(0), sw.max(0) + sb.max(0));
    let ge = gcd128(dw.unsigned_abs(), db.unsigned_abs());
    let dis = Diseq::new(a, b, emin, emax, ge);
    dis.hit(a.sym.lo as i128 - b.sym.lo as i128)
}

/// Run the whole-scenario race pass: collect symbolic global footprints,
/// prune synchronized and provably partitioned pairs, and report the
/// rest with witness-corner provenance and def-site annotations.
pub(crate) fn check_races(
    program: &Program,
    cfg: &Cfg,
    states: &States,
    geom: Geom,
    protocol: ProtocolClass,
    entry_defined: u32,
    findings: &mut Vec<Finding>,
) {
    if geom.warps_per_block <= 1 && geom.grid_blocks <= 1 {
        return; // a single warp cannot race with itself
    }
    let instrs = program.instrs();
    let mut accs: Vec<GlobalAccess> = Vec::new();
    let mut push = |pc: usize, write: bool, dma: bool, addr_reg: Reg, sym: AbsVal, width: u64| {
        // Non-affine per-thread variation (warp_dep) means the address is
        // data-dependent or placement-dependent: assume partitioned, as
        // the local-race check does, rather than flood with noise. An
        // unbounded footprint likewise proves nothing.
        let conc = sym.concretize(geom);
        if sym.warp_dep || !conc.bounded() || width == 0 {
            return;
        }
        accs.push(GlobalAccess { pc, write, dma, addr_reg, sym, conc, width });
    };
    for (pc, i) in instrs.iter().enumerate() {
        if !cfg.reachable[pc] || states[pc].is_none() {
            continue;
        }
        match i {
            Instr::LdGlobal { addr, offset, .. } => {
                let sym = reg_val(states, pc, *addr).offset(*offset, geom);
                push(pc, false, false, *addr, sym, WORD_BYTES);
            }
            Instr::StGlobal { addr, offset, .. } => {
                let sym = reg_val(states, pc, *addr).offset(*offset, geom);
                push(pc, true, false, *addr, sym, WORD_BYTES);
            }
            Instr::DmaLoad { global, bytes, .. } => {
                push(pc, false, true, *global, reg_val(states, pc, *global), *bytes);
            }
            Instr::DmaStore { global, bytes, .. } => {
                push(pc, true, true, *global, reg_val(states, pc, *global), *bytes);
            }
            Instr::StashMap { global, bytes, writeback, .. } => {
                let sym = reg_val(states, pc, *global);
                push(pc, false, true, *global, sym, *bytes);
                if *writeback {
                    push(pc, true, true, *global, sym, *bytes);
                }
            }
            _ => {}
        }
    }
    if accs.is_empty() {
        return;
    }

    let pcs: Vec<usize> = accs.iter().map(|a| a.pc).collect();
    let sync = SyncGraph::build(program, cfg, &pcs);
    let leader = leader_warp_dataflow(program, cfg, states);
    let defuse = DefUseIndex::build(program, entry_defined);
    let severity = match protocol {
        ProtocolClass::DeNovo => Severity::Error,
        ProtocolClass::GpuCoherence => Severity::Warn,
    };

    let mut emit = |a: &GlobalAccess, b: &GlobalAccess, how: &str, corners: Vec<String>| {
        let (anchor, other) = if b.pc >= a.pc { (b, a) } else { (a, b) };
        let kind = if a.dma || b.dma {
            FindingKind::GlobalRaceDma
        } else if how.contains("block") && !how.contains("warp") {
            FindingKind::GlobalRaceInterBlock
        } else {
            FindingKind::GlobalRaceInterWarp
        };
        let verb = if a.write && b.write { "write/write" } else { "read/write" };
        let defs = defuse.defs_of(anchor.pc as u32, anchor.addr_reg);
        let def_note = match defs.iter().find(|&&d| d != LAUNCH_DEF) {
            Some(&d) => {
                format!("address computed at {}", gsi_isa::asm::location(program, d as usize))
            }
            None => "launch-defined address".to_string(),
        };
        let message = format!(
            "{verb} global race: bytes {:#x}..={:#x} here can overlap \
             {:#x}..={:#x} at {} {how}; {def_note}",
            anchor.conc.lo,
            anchor.conc.hi.saturating_add(anchor.width - 1),
            other.conc.lo,
            other.conc.hi.saturating_add(other.width - 1),
            gsi_isa::asm::location(program, other.pc),
        );
        if corners.is_empty() {
            findings.push(finding(program, kind, severity, anchor.pc, message));
        } else {
            for corner in corners {
                let mut f = finding(program, kind, severity, anchor.pc, message.clone());
                f.corners = vec![corner];
                findings.push(f);
            }
        }
    };

    for i in 0..accs.len() {
        for j in i..accs.len() {
            let (a, b) = (&accs[i], &accs[j]);
            if !(a.write || b.write) {
                continue; // read/read never conflicts
            }
            if sync.guarded(a.pc) && sync.guarded(b.pc) {
                continue; // both inside a critical section: mutually excluded
            }
            // Whole-range pre-filter over every thread's footprint.
            let a_end = a.conc.hi.saturating_add(a.width - 1);
            let b_end = b.conc.hi.saturating_add(b.width - 1);
            if a.conc.lo > b_end || b.conc.lo > a_end {
                continue;
            }
            // Both accesses issued by the same single leader warp of each
            // block: no second warp exists to race with on the warp axis.
            let same_leader = matches!((leader[a.pc], leader[b.pc]), (Some(x), Some(y)) if x == y);
            if geom.warps_per_block > 1 && !same_leader && sync.same_phase(a.pc, b.pc) {
                match check_axis(a, b, Axis::Warp, geom) {
                    Verdict::Races(corners) => {
                        emit(a, b, "from another warp of the same block", corners);
                    }
                    Verdict::Disjoint => {}
                }
            }
            if geom.grid_blocks > 1 {
                // Barriers never order distinct blocks: always concurrent.
                match check_axis(a, b, Axis::Block, geom) {
                    Verdict::Races(corners) => emit(a, b, "from another block", corners),
                    Verdict::Disjoint => {}
                }
            }
            if (a.dma || b.dma)
                && a.pc != b.pc
                && sync.same_phase(a.pc, b.pc)
                && check_same_thread(a, b, geom)
            {
                emit(
                    a,
                    b,
                    "with the warp's own asynchronous transfer still in flight",
                    vec!["same-thread".to_string()],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::{analyze, AnalyzeOptions, EntryState};
    use gsi_isa::{MemSem, Operand, ProgramBuilder, Reg};

    const GLOBAL: u64 = 0x10_0000;

    fn opts(warps: usize, blocks: u64, protocol: ProtocolClass) -> AnalyzeOptions {
        AnalyzeOptions {
            entry: EntryState::default(),
            scratch_bytes: Some(16 * 1024),
            warps_per_block: warps,
            grid_blocks: blocks,
            protocol,
            ..AnalyzeOptions::default()
        }
    }

    fn race_kinds(report: &crate::AnalysisReport) -> Vec<FindingKind> {
        report.findings().iter().filter(|f| f.kind.is_global_race()).map(|f| f.kind).collect()
    }

    #[test]
    fn uniform_address_stores_race_across_warps() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), GLOBAL);
        b.st_global(Operand::Imm(1), Reg(1), 0);
        b.exit();
        let p = b.build().unwrap();
        let r = analyze(&p, &opts(2, 1, ProtocolClass::DeNovo));
        let f = r
            .findings()
            .iter()
            .find(|f| f.kind == FindingKind::GlobalRaceInterWarp)
            .unwrap_or_else(|| panic!("{r}"));
        assert_eq!(f.severity, Severity::Error);
        assert_eq!(f.pc, 1);
        assert!(f.message.contains("write/write"), "{}", f.message);
        assert_eq!(f.corners, vec!["dwarp=1".to_string()]);
    }

    #[test]
    fn protocol_controls_severity() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), GLOBAL);
        b.st_global(Operand::Imm(1), Reg(1), 0);
        b.exit();
        let p = b.build().unwrap();
        let denovo = analyze(&p, &opts(2, 1, ProtocolClass::DeNovo));
        let gpu = analyze(&p, &opts(2, 1, ProtocolClass::GpuCoherence));
        assert_eq!(denovo.error_count(), 1, "{denovo}");
        assert_eq!(denovo.warn_count(), 0);
        assert_eq!(gpu.error_count(), 0, "{gpu}");
        assert_eq!(gpu.warn_count(), 1);
    }

    #[test]
    fn single_thread_geometry_cannot_race() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), GLOBAL);
        b.st_global(Operand::Imm(1), Reg(1), 0);
        b.st_global(Operand::Imm(2), Reg(1), 0);
        b.exit();
        let p = b.build().unwrap();
        let r = analyze(&p, &opts(1, 1, ProtocolClass::DeNovo));
        assert!(race_kinds(&r).is_empty(), "{r}");
    }

    /// Entry state where r1 = GLOBAL + wcoef·warp + bcoef·block.
    fn affine_entry(wcoef: i64, bcoef: i64) -> EntryState {
        let mut e = EntryState { defined: 1 << 1, ..EntryState::default() };
        e.vals[1] = AbsVal { wcoef, bcoef, ..AbsVal::constant(GLOBAL) };
        e
    }

    #[test]
    fn warp_partitioned_stores_are_proven_disjoint() {
        let mut b = ProgramBuilder::new("t");
        b.st_global(Operand::Imm(1), Reg(1), 0);
        b.exit();
        let p = b.build().unwrap();
        let mut o = opts(4, 1, ProtocolClass::DeNovo);
        o.entry = affine_entry(8, 0); // each warp owns its own word
        let r = analyze(&p, &o);
        assert!(race_kinds(&r).is_empty(), "{r}");
    }

    #[test]
    fn overlapping_warp_chunks_race_with_the_right_witness() {
        let mut b = ProgramBuilder::new("t");
        // Each warp writes [base+4·warp, base+4·warp+8): stride 4 < width 8.
        b.st_global(Operand::Imm(1), Reg(1), 0);
        b.exit();
        let p = b.build().unwrap();
        let mut o = opts(4, 1, ProtocolClass::DeNovo);
        o.entry = affine_entry(4, 0);
        let r = analyze(&p, &o);
        let f = r
            .findings()
            .iter()
            .find(|f| f.kind == FindingKind::GlobalRaceInterWarp)
            .unwrap_or_else(|| panic!("{r}"));
        assert_eq!(f.corners, vec!["dwarp=1".to_string()], "only adjacent warps overlap");
    }

    #[test]
    fn block_partitioned_grid_is_clean_but_uniform_races_across_blocks() {
        let mut b = ProgramBuilder::new("t");
        b.st_global(Operand::Imm(1), Reg(1), 0);
        b.exit();
        let p = b.build().unwrap();
        // Partitioned by block: clean.
        let mut o = opts(1, 4, ProtocolClass::DeNovo);
        o.entry = affine_entry(0, 8);
        assert!(race_kinds(&analyze(&p, &o)).is_empty());
        // Uniform across blocks: inter-block race even with one warp.
        let mut o = opts(1, 4, ProtocolClass::DeNovo);
        o.entry = affine_entry(0, 0);
        let r = analyze(&p, &o);
        let f = r
            .findings()
            .iter()
            .find(|f| f.kind == FindingKind::GlobalRaceInterBlock)
            .unwrap_or_else(|| panic!("{r}"));
        assert_eq!(f.corners, vec!["dblock=1".to_string(), "dblock=3".to_string()]);
    }

    #[test]
    fn interleaved_layout_is_proven_disjoint_by_the_residue_test() {
        // addr = base + 8·(lane·W + warp): whole-range intervals of any two
        // warps fully overlap, but residues mod 8·W never collide.
        const W: u64 = 4;
        let mut e = EntryState { defined: 1 << 1, ..EntryState::default() };
        e.vals[1] = AbsVal {
            lo: GLOBAL,
            hi: GLOBAL + 8 * W * 31,
            stride: 8 * W,
            lane_dep: true,
            warp_dep: false,
            wcoef: 8,
            bcoef: 0,
        };
        let mut b = ProgramBuilder::new("t");
        b.st_global(Operand::Imm(1), Reg(1), 0);
        b.exit();
        let p = b.build().unwrap();
        let mut o = opts(W as usize, 1, ProtocolClass::DeNovo);
        o.entry = e;
        let r = analyze(&p, &o);
        assert!(race_kinds(&r).is_empty(), "{r}");
    }

    #[test]
    fn barrier_separates_warp_phases_but_not_blocks() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), GLOBAL);
        b.st_global(Operand::Imm(1), Reg(1), 0); // 1
        b.bar(); // 2
        b.ld_global(Reg(2), Reg(1), 0); // 3
        b.exit();
        let p = b.build().unwrap();
        // Two warps, one block: the barrier orders store and load; the
        // store still write/write-races with itself? No — same pc, but a
        // single store pc racing with itself across warps is real:
        let r = analyze(&p, &opts(2, 1, ProtocolClass::DeNovo));
        assert!(
            r.findings()
                .iter()
                .filter(|f| f.kind == FindingKind::GlobalRaceInterWarp)
                .all(|f| f.pc == 1),
            "store/load pair is phase-separated; only the store self-pair remains: {r}"
        );
        // Two blocks: the barrier does not order them; the cross-phase
        // read/write pair is a race again.
        let r2 = analyze(&p, &opts(1, 2, ProtocolClass::DeNovo));
        assert!(
            r2.findings().iter().any(|f| f.kind == FindingKind::GlobalRaceInterBlock && f.pc == 3),
            "{r2}"
        );
    }

    #[test]
    fn lock_guarded_sections_are_mutually_excluded() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), GLOBAL); // lock address
        b.ldi(Reg(4), GLOBAL + 64); // shared data
        let acq = b.here();
        b.atom_cas(Reg(2), Reg(1), Operand::Imm(0), Operand::Imm(1), MemSem::Acquire);
        b.bra_nz(Reg(2), acq);
        b.ld_global(Reg(3), Reg(4), 0);
        b.st_global(Reg(3), Reg(4), 0);
        b.atom_store(Reg(1), Operand::Imm(0), MemSem::Release);
        b.exit();
        let p = b.build().unwrap();
        let r = analyze(&p, &opts(4, 2, ProtocolClass::DeNovo));
        assert!(race_kinds(&r).is_empty(), "{r}");
    }

    #[test]
    fn unguarded_access_still_races_with_a_guarded_one() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), GLOBAL);
        b.ldi(Reg(4), GLOBAL + 64);
        b.st_global(Operand::Imm(9), Reg(4), 0); // 2: unguarded write
        let acq = b.here();
        b.atom_cas(Reg(2), Reg(1), Operand::Imm(0), Operand::Imm(1), MemSem::Acquire);
        b.bra_nz(Reg(2), acq);
        b.st_global(Operand::Imm(7), Reg(4), 0); // 5: guarded write
        b.atom_store(Reg(1), Operand::Imm(0), MemSem::Release);
        b.exit();
        let p = b.build().unwrap();
        let r = analyze(&p, &opts(2, 1, ProtocolClass::DeNovo));
        assert!(
            r.findings().iter().any(|f| f.kind == FindingKind::GlobalRaceInterWarp && f.pc == 5),
            "{r}"
        );
    }

    #[test]
    fn atomics_are_synchronization_not_data_accesses() {
        // The done-flag idiom: one warp atomically stores a flag, others
        // poll it with plain loads. Not a data race.
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), GLOBAL);
        b.atom_store(Reg(1), Operand::Imm(1), MemSem::Release);
        b.ld_global(Reg(2), Reg(1), 0);
        b.exit();
        let p = b.build().unwrap();
        let r = analyze(&p, &opts(4, 2, ProtocolClass::DeNovo));
        assert!(race_kinds(&r).is_empty(), "{r}");
    }

    #[test]
    fn dma_store_races_with_plain_stores_into_its_region() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), GLOBAL);
        b.ldi(Reg(2), 0);
        b.dma_store(Reg(1), Reg(2), 256); // 2: writes GLOBAL..GLOBAL+256
        b.st_global(Operand::Imm(7), Reg(1), 8); // 3: writes inside it
        b.exit();
        let p = b.build().unwrap();
        let r = analyze(&p, &opts(2, 1, ProtocolClass::DeNovo));
        // The dma-vs-store pair anchors at the later access (pc 3) and is
        // reported both as an inter-warp conflict and as a conflict with
        // the issuing warp's own in-flight transfer.
        let dma: Vec<_> = r
            .findings()
            .iter()
            .filter(|f| f.kind == FindingKind::GlobalRaceDma && f.pc == 3)
            .collect();
        assert!(!dma.is_empty(), "{r}");
        assert!(dma.iter().all(|f| f.severity == Severity::Error));
        assert!(dma.iter().any(|f| f.corners.iter().any(|c| c == "same-thread")), "{r}");
        assert!(dma.iter().any(|f| f.corners.iter().any(|c| c == "dwarp=1")), "{r}");
    }

    #[test]
    fn dma_races_with_its_own_thread_even_single_warp() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), GLOBAL);
        b.ldi(Reg(2), 0);
        b.dma_store(Reg(1), Reg(2), 256);
        b.ld_global(Reg(3), Reg(1), 0); // reads while the transfer drains
        b.exit();
        let p = b.build().unwrap();
        // Geometry 1×1 short-circuits: use 2 blocks to engage the pass,
        // then confirm the same-thread witness is present.
        let r = analyze(&p, &opts(1, 2, ProtocolClass::DeNovo));
        assert!(
            r.findings().iter().any(|f| f.kind == FindingKind::GlobalRaceDma
                && f.corners.iter().any(|c| c == "same-thread")),
            "{r}"
        );
    }

    #[test]
    fn witness_corners_merge_across_probes_deterministically() {
        let mut b = ProgramBuilder::new("t");
        b.ldi(Reg(1), GLOBAL);
        b.st_global(Operand::Imm(1), Reg(1), 0);
        b.exit();
        let p = b.build().unwrap();
        let o = opts(4, 1, ProtocolClass::DeNovo);
        let r1 = analyze(&p, &o);
        let r2 = analyze(&p, &o);
        assert_eq!(r1, r2);
        assert_eq!(r1.render(), r2.render());
        let f = r1.findings().iter().find(|f| f.kind == FindingKind::GlobalRaceInterWarp).unwrap();
        assert_eq!(f.corners, vec!["dwarp=1".to_string(), "dwarp=3".to_string()]);
    }
}
