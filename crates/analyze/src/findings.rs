//! Findings and the analysis report: what the verifier has to say about a
//! kernel, rendered for humans (text with disassembly snippets) and for
//! machines (`gsi-json`), plus the baseline suppression file that lets
//! intentionally racy workloads pass the gate explicitly.

use gsi_json::{ToJson, Value};
use std::collections::BTreeSet;
use std::fmt;

/// How bad a finding is.
///
/// `Error` findings describe programs whose simulated behavior is
/// meaningless (uninitialized data, barrier deadlock, out-of-bounds local
/// accesses) — the simulator's pre-flight gate refuses them by default.
/// `Warn` findings are suspicious but may be intentional.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious; simulation proceeds.
    Warn,
    /// Malformed; the default gate denies the launch.
    Error,
}

impl Severity {
    /// Lower-case name used in rendered reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The class of defect a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FindingKind {
    /// A branch or join target outside the program.
    BranchOutOfRange,
    /// Control can run off the end of the program.
    FallthroughEnd,
    /// Instructions no path from the entry reaches.
    UnreachableCode,
    /// A register read before any write on some path.
    UninitRead,
    /// A thread-block barrier reachable under lane-divergent control flow.
    DivergentBarrier,
    /// A warp can exit while lane-divergent (inside a `bra.div` region).
    ExitInDivergence,
    /// A scratchpad/stash access outside the configured local memory.
    ScratchpadOob,
    /// Two warps can race on the same scratchpad words between barriers.
    LocalRace,
    /// A scratchpad access can reach a pending DMA region with no barrier
    /// in between.
    DmaNoWait,
    /// Two DMA transfers over overlapping regions with no barrier between.
    DmaOverlap,
    /// An atomic whose address lies inside the scratchpad address range.
    AtomicOnScratchpad,
    /// Two warps of the same block can race on global memory with no
    /// synchronization order between the accesses.
    GlobalRaceInterWarp,
    /// Warps of two different blocks can race on global memory (block
    /// barriers never order distinct blocks).
    GlobalRaceInterBlock,
    /// A DMA/stash transfer's global region can race with warp code (or
    /// another transfer) touching the same addresses.
    GlobalRaceDma,
}

impl FindingKind {
    /// Kebab-case name used in rendered reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            FindingKind::BranchOutOfRange => "branch-out-of-range",
            FindingKind::FallthroughEnd => "fallthrough-end",
            FindingKind::UnreachableCode => "unreachable-code",
            FindingKind::UninitRead => "uninit-read",
            FindingKind::DivergentBarrier => "divergent-barrier",
            FindingKind::ExitInDivergence => "exit-in-divergence",
            FindingKind::ScratchpadOob => "scratchpad-oob",
            FindingKind::LocalRace => "local-race",
            FindingKind::DmaNoWait => "dma-no-wait",
            FindingKind::DmaOverlap => "dma-overlap",
            FindingKind::AtomicOnScratchpad => "atomic-on-scratchpad",
            FindingKind::GlobalRaceInterWarp => "global-race-inter-warp",
            FindingKind::GlobalRaceInterBlock => "global-race-inter-block",
            FindingKind::GlobalRaceDma => "global-race-dma",
        }
    }

    /// Whether this is one of the whole-scenario global race kinds.
    pub fn is_global_race(self) -> bool {
        matches!(
            self,
            FindingKind::GlobalRaceInterWarp
                | FindingKind::GlobalRaceInterBlock
                | FindingKind::GlobalRaceDma
        )
    }
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnostic: a defect class, a severity, the offending instruction
/// index, and pre-rendered location/snippet strings (so the report is
/// self-contained once the program goes away).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Defect class.
    pub kind: FindingKind,
    /// Severity the gate acts on.
    pub severity: Severity,
    /// Absolute instruction index the finding anchors to.
    pub pc: usize,
    /// `kernel.gsi:pc`-style location (see [`gsi_isa::asm::location`]).
    pub location: String,
    /// Human-readable description of the defect.
    pub message: String,
    /// Disassembly snippet around `pc` with the subject line marked.
    pub snippet: String,
    /// Witnessing corner configurations (e.g. `dwarp=1`), merged across
    /// probes of the same defect; empty for non-parametric findings.
    pub corners: Vec<String>,
    /// Suppressed by a baseline entry: reported, but not counted by the
    /// gate.
    pub baselined: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.baselined { "baselined " } else { "" };
        write!(f, "{tag}{}[{}] at {}: {}", self.severity, self.kind, self.location, self.message)?;
        if !self.corners.is_empty() {
            write!(f, " (witness: {})", self.corners.join(", "))?;
        }
        writeln!(f)?;
        f.write_str(&self.snippet)
    }
}

impl ToJson for Finding {
    fn to_json(&self) -> Value {
        gsi_json::obj! {
            "kind" => self.kind.as_str(),
            "severity" => self.severity.as_str(),
            "pc" => self.pc as u64,
            "location" => self.location.as_str(),
            "message" => self.message.as_str(),
            "corners" => Value::Array(
                self.corners.iter().map(|c| Value::Str(c.clone())).collect()
            ),
            "baselined" => self.baselined,
        }
    }
}

/// The stable content digest a [`Baseline`] entry matches a finding by:
/// `fnv1a128` over the canonical gsi-json of the identifying fields.
/// Location and snippet are deliberately excluded (they shift when
/// unrelated lines move); kernel, kind, pc, and message pin the defect.
pub fn finding_digest(kernel: &str, f: &Finding) -> String {
    let canonical = gsi_json::obj! {
        "kernel" => kernel,
        "kind" => f.kind.as_str(),
        "pc" => f.pc as u64,
        "message" => f.message.as_str(),
    };
    gsi_json::fnv1a128(&canonical.to_string())
}

/// A suppression file: the set of finding digests the user has explicitly
/// accepted. Baselined findings still appear in reports but stop counting
/// toward the gate's error/warning totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    digests: BTreeSet<String>,
}

impl Baseline {
    /// An empty baseline (suppresses nothing).
    pub fn new() -> Baseline {
        Baseline::default()
    }

    /// Parse the canonical baseline file format:
    /// `{"version": 1, "entries": [{"digest": "...", "comment": "..."}]}`.
    /// Extra per-entry fields (kernel, kind, pc — kept for human readers)
    /// are ignored; the digest alone identifies the finding.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let v = Value::parse(text).map_err(|e| format!("baseline: {e}"))?;
        let version = v.get("version").and_then(Value::as_u64);
        if version != Some(1) {
            return Err(format!("baseline: unsupported version {version:?} (want 1)"));
        }
        let entries = v
            .get("entries")
            .and_then(Value::as_array)
            .ok_or("baseline: missing `entries` array")?;
        let mut digests = BTreeSet::new();
        for e in entries {
            let d = e
                .get("digest")
                .and_then(Value::as_str)
                .ok_or("baseline: entry without a `digest` string")?;
            digests.insert(d.to_string());
        }
        Ok(Baseline { digests })
    }

    /// Add one accepted digest.
    pub fn insert(&mut self, digest: String) {
        self.digests.insert(digest);
    }

    /// Whether `digest` is accepted.
    pub fn contains(&self, digest: &str) -> bool {
        self.digests.contains(digest)
    }

    /// Number of accepted digests.
    pub fn len(&self) -> usize {
        self.digests.len()
    }

    /// True when the baseline suppresses nothing.
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty()
    }
}

/// Everything the analyzer found in one kernel, in a deterministic order
/// (sorted by instruction index, then class, then message; duplicates
/// collapsed, with witnessing corners merged). Rendering the same program
/// twice yields byte-identical text and JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    kernel: String,
    instructions: usize,
    findings: Vec<Finding>,
}

impl AnalysisReport {
    /// Assemble a report: sort, merge duplicate findings (unioning their
    /// witnessing corners), freeze.
    pub(crate) fn new(kernel: String, instructions: usize, mut findings: Vec<Finding>) -> Self {
        findings.sort_by(|a, b| (a.pc, a.kind, &a.message).cmp(&(b.pc, b.kind, &b.message)));
        let mut merged: Vec<Finding> = Vec::with_capacity(findings.len());
        for mut f in findings {
            f.corners.sort();
            f.corners.dedup();
            if let Some(last) = merged.last_mut() {
                if last.kind == f.kind
                    && last.severity == f.severity
                    && last.pc == f.pc
                    && last.location == f.location
                    && last.message == f.message
                {
                    last.corners.append(&mut f.corners);
                    last.corners.sort();
                    last.corners.dedup();
                    last.baselined |= f.baselined;
                    continue;
                }
            }
            merged.push(f);
        }
        AnalysisReport { kernel, instructions, findings: merged }
    }

    /// The analyzed kernel's name.
    pub fn kernel(&self) -> &str {
        &self.kernel
    }

    /// All findings, most significant position first.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Mark every finding whose digest the baseline accepts; returns how
    /// many findings are now suppressed. Baselined findings stay in the
    /// report but no longer count toward [`error_count`](Self::error_count)
    /// or [`warn_count`](Self::warn_count).
    pub fn apply_baseline(&mut self, baseline: &Baseline) -> usize {
        let mut suppressed = 0;
        for f in &mut self.findings {
            if !f.baselined && baseline.contains(&finding_digest(&self.kernel, f)) {
                f.baselined = true;
            }
            suppressed += usize::from(f.baselined);
        }
        suppressed
    }

    /// Number of non-baselined `Error` findings (what the deny gate
    /// counts).
    pub fn error_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Error && !f.baselined).count()
    }

    /// Number of non-baselined `Warn` findings.
    pub fn warn_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Warn && !f.baselined).count()
    }

    /// Number of findings a baseline has suppressed.
    pub fn baselined_count(&self) -> usize {
        self.findings.iter().filter(|f| f.baselined).count()
    }

    /// True when nothing at all was flagged (baselined findings still
    /// count as flagged — the defect exists, it is merely accepted).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the full text report.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(
                f,
                "analysis of `{}` ({} instructions): clean",
                self.kernel, self.instructions
            );
        }
        write!(
            f,
            "analysis of `{}` ({} instructions): {} error(s), {} warning(s)",
            self.kernel,
            self.instructions,
            self.error_count(),
            self.warn_count()
        )?;
        if self.baselined_count() > 0 {
            write!(f, ", {} baselined", self.baselined_count())?;
        }
        writeln!(f)?;
        for finding in &self.findings {
            writeln!(f)?;
            write!(f, "{finding}")?;
        }
        Ok(())
    }
}

impl ToJson for AnalysisReport {
    fn to_json(&self) -> Value {
        gsi_json::obj! {
            "kernel" => self.kernel.as_str(),
            "instructions" => self.instructions as u64,
            "errors" => self.error_count() as u64,
            "warnings" => self.warn_count() as u64,
            "baselined" => self.baselined_count() as u64,
            "findings" => Value::Array(self.findings.iter().map(ToJson::to_json).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn finding(pc: usize, kind: FindingKind, severity: Severity, msg: &str) -> Finding {
        Finding {
            kind,
            severity,
            pc,
            location: format!("k.gsi:{pc}"),
            message: msg.to_string(),
            snippet: String::new(),
            corners: Vec::new(),
            baselined: false,
        }
    }

    #[test]
    fn reports_sort_and_dedupe() {
        let f1 = finding(5, FindingKind::UninitRead, Severity::Error, "r1");
        let f0 = finding(2, FindingKind::LocalRace, Severity::Warn, "a");
        let r = AnalysisReport::new("k".into(), 6, vec![f1.clone(), f0.clone(), f1.clone()]);
        assert_eq!(r.findings().len(), 2);
        assert_eq!(r.findings()[0].pc, 2);
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warn_count(), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn clean_report_renders_clean() {
        let r = AnalysisReport::new("k".into(), 3, Vec::new());
        assert!(r.is_clean());
        assert!(r.render().contains("clean"));
        let json = r.to_json();
        assert_eq!(json.get("errors").and_then(|v| v.as_u64()), Some(0));
    }

    #[test]
    fn duplicate_findings_merge_their_corner_provenance() {
        let mut a = finding(4, FindingKind::GlobalRaceInterWarp, Severity::Error, "race");
        a.corners = vec!["dwarp=3".into()];
        let mut b = a.clone();
        b.corners = vec!["dwarp=1".into(), "dwarp=3".into()];
        let r = AnalysisReport::new("k".into(), 8, vec![a, b]);
        assert_eq!(r.findings().len(), 1, "{r}");
        assert_eq!(r.findings()[0].corners, vec!["dwarp=1".to_string(), "dwarp=3".to_string()]);
        assert!(r.render().contains("witness: dwarp=1, dwarp=3"));
    }

    #[test]
    fn baseline_suppresses_by_digest_but_keeps_the_finding() {
        let f = finding(7, FindingKind::GlobalRaceInterBlock, Severity::Error, "blocks collide");
        let digest = finding_digest("k", &f);
        let mut r = AnalysisReport::new("k".into(), 9, vec![f]);
        assert_eq!(r.error_count(), 1);
        let mut bl = Baseline::new();
        bl.insert(digest.clone());
        assert_eq!(r.apply_baseline(&bl), 1);
        assert_eq!(r.error_count(), 0);
        assert_eq!(r.baselined_count(), 1);
        assert!(!r.is_clean(), "a baselined defect still exists");
        assert!(r.render().contains("baselined"));
        // Round-trip through the file format.
        let text = format!("{{\"version\":1,\"entries\":[{{\"digest\":\"{digest}\"}}]}}");
        let parsed = Baseline::parse(&text).unwrap();
        assert!(parsed.contains(&digest));
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn baseline_parse_rejects_malformed_files() {
        assert!(Baseline::parse("{}").is_err(), "missing version");
        assert!(Baseline::parse("{\"version\":2,\"entries\":[]}").is_err());
        assert!(Baseline::parse("{\"version\":1}").is_err(), "missing entries");
        assert!(Baseline::parse("{\"version\":1,\"entries\":[{}]}").is_err());
        assert!(Baseline::parse("{\"version\":1,\"entries\":[]}").unwrap().is_empty());
    }

    #[test]
    fn digest_is_stable_and_location_independent() {
        let mut f = finding(3, FindingKind::GlobalRaceDma, Severity::Warn, "dma overlap");
        let d1 = finding_digest("k", &f);
        f.location = "other.gsi:99".into();
        f.snippet = "different".into();
        assert_eq!(finding_digest("k", &f), d1, "location/snippet do not affect the digest");
        f.message = "changed".into();
        assert_ne!(finding_digest("k", &f), d1);
    }
}
