//! Findings and the analysis report: what the verifier has to say about a
//! kernel, rendered for humans (text with disassembly snippets) and for
//! machines (`gsi-json`).

use gsi_json::{ToJson, Value};
use std::fmt;

/// How bad a finding is.
///
/// `Error` findings describe programs whose simulated behavior is
/// meaningless (uninitialized data, barrier deadlock, out-of-bounds local
/// accesses) — the simulator's pre-flight gate refuses them by default.
/// `Warn` findings are suspicious but may be intentional.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious; simulation proceeds.
    Warn,
    /// Malformed; the default gate denies the launch.
    Error,
}

impl Severity {
    /// Lower-case name used in rendered reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The class of defect a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FindingKind {
    /// A branch or join target outside the program.
    BranchOutOfRange,
    /// Control can run off the end of the program.
    FallthroughEnd,
    /// Instructions no path from the entry reaches.
    UnreachableCode,
    /// A register read before any write on some path.
    UninitRead,
    /// A thread-block barrier reachable under lane-divergent control flow.
    DivergentBarrier,
    /// A warp can exit while lane-divergent (inside a `bra.div` region).
    ExitInDivergence,
    /// A scratchpad/stash access outside the configured local memory.
    ScratchpadOob,
    /// Two warps can race on the same scratchpad words between barriers.
    LocalRace,
    /// A scratchpad access can reach a pending DMA region with no barrier
    /// in between.
    DmaNoWait,
    /// Two DMA transfers over overlapping regions with no barrier between.
    DmaOverlap,
    /// An atomic whose address lies inside the scratchpad address range.
    AtomicOnScratchpad,
}

impl FindingKind {
    /// Kebab-case name used in rendered reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            FindingKind::BranchOutOfRange => "branch-out-of-range",
            FindingKind::FallthroughEnd => "fallthrough-end",
            FindingKind::UnreachableCode => "unreachable-code",
            FindingKind::UninitRead => "uninit-read",
            FindingKind::DivergentBarrier => "divergent-barrier",
            FindingKind::ExitInDivergence => "exit-in-divergence",
            FindingKind::ScratchpadOob => "scratchpad-oob",
            FindingKind::LocalRace => "local-race",
            FindingKind::DmaNoWait => "dma-no-wait",
            FindingKind::DmaOverlap => "dma-overlap",
            FindingKind::AtomicOnScratchpad => "atomic-on-scratchpad",
        }
    }
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnostic: a defect class, a severity, the offending instruction
/// index, and pre-rendered location/snippet strings (so the report is
/// self-contained once the program goes away).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Defect class.
    pub kind: FindingKind,
    /// Severity the gate acts on.
    pub severity: Severity,
    /// Absolute instruction index the finding anchors to.
    pub pc: usize,
    /// `kernel.gsi:pc`-style location (see [`gsi_isa::asm::location`]).
    pub location: String,
    /// Human-readable description of the defect.
    pub message: String,
    /// Disassembly snippet around `pc` with the subject line marked.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}[{}] at {}: {}", self.severity, self.kind, self.location, self.message)?;
        f.write_str(&self.snippet)
    }
}

impl ToJson for Finding {
    fn to_json(&self) -> Value {
        gsi_json::obj! {
            "kind" => self.kind.as_str(),
            "severity" => self.severity.as_str(),
            "pc" => self.pc as u64,
            "location" => self.location.as_str(),
            "message" => self.message.as_str(),
        }
    }
}

/// Everything the analyzer found in one kernel, in a deterministic order
/// (sorted by instruction index, then class, then message; duplicates
/// collapsed). Rendering the same program twice yields byte-identical text
/// and JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    kernel: String,
    instructions: usize,
    findings: Vec<Finding>,
}

impl AnalysisReport {
    /// Assemble a report: sort, dedupe, freeze.
    pub(crate) fn new(kernel: String, instructions: usize, mut findings: Vec<Finding>) -> Self {
        findings.sort_by(|a, b| (a.pc, a.kind, &a.message).cmp(&(b.pc, b.kind, &b.message)));
        findings.dedup();
        AnalysisReport { kernel, instructions, findings }
    }

    /// The analyzed kernel's name.
    pub fn kernel(&self) -> &str {
        &self.kernel
    }

    /// All findings, most significant position first.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Number of `Error`-severity findings (what the deny gate counts).
    pub fn error_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Error).count()
    }

    /// Number of `Warn`-severity findings.
    pub fn warn_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Warn).count()
    }

    /// True when nothing at all was flagged.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the full text report.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(
                f,
                "analysis of `{}` ({} instructions): clean",
                self.kernel, self.instructions
            );
        }
        writeln!(
            f,
            "analysis of `{}` ({} instructions): {} error(s), {} warning(s)",
            self.kernel,
            self.instructions,
            self.error_count(),
            self.warn_count()
        )?;
        for finding in &self.findings {
            writeln!(f)?;
            write!(f, "{finding}")?;
        }
        Ok(())
    }
}

impl ToJson for AnalysisReport {
    fn to_json(&self) -> Value {
        gsi_json::obj! {
            "kernel" => self.kernel.as_str(),
            "instructions" => self.instructions as u64,
            "errors" => self.error_count() as u64,
            "warnings" => self.warn_count() as u64,
            "findings" => Value::Array(self.findings.iter().map(ToJson::to_json).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(pc: usize, kind: FindingKind, severity: Severity, msg: &str) -> Finding {
        Finding {
            kind,
            severity,
            pc,
            location: format!("k.gsi:{pc}"),
            message: msg.to_string(),
            snippet: String::new(),
        }
    }

    #[test]
    fn reports_sort_and_dedupe() {
        let f1 = finding(5, FindingKind::UninitRead, Severity::Error, "r1");
        let f0 = finding(2, FindingKind::LocalRace, Severity::Warn, "a");
        let r = AnalysisReport::new("k".into(), 6, vec![f1.clone(), f0.clone(), f1.clone()]);
        assert_eq!(r.findings().len(), 2);
        assert_eq!(r.findings()[0].pc, 2);
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warn_count(), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn clean_report_renders_clean() {
        let r = AnalysisReport::new("k".into(), 3, Vec::new());
        assert!(r.is_clean());
        assert!(r.render().contains("clean"));
        let json = r.to_json();
        assert_eq!(json.get("errors").and_then(|v| v.as_u64()), Some(0));
    }
}
