//! Reaching definitions and backward slicing over a kernel's CFG.
//!
//! [`DefUseIndex`] answers "which instruction(s) may have defined this
//! register here?" — the static complement to the simulator's dynamic
//! last-writer tables. `gsi-blame` reports use it to enrich a blamed
//! instruction with the static def chain feeding it, so a ranked row can
//! show not just *the* load but the address computation behind it.

use crate::cfg::Cfg;
use gsi_isa::{Program, Reg, NUM_REGS};
use std::collections::BTreeSet;

/// Reaching-definition sets for every `(pc, register)` of a kernel.
///
/// Built by a may-analysis (union at joins) worklist over the CFG:
/// `defs_in[pc][r]` holds every pc whose definition of `r` can reach the
/// entry of `pc` along some path. Registers the launch initializer set
/// (rather than an instruction) reach as the pseudo-definition
/// [`LAUNCH_DEF`].
#[derive(Debug, Clone)]
pub struct DefUseIndex {
    /// `defs[pc * NUM_REGS + r]`: sorted def sites of `r` reaching `pc`.
    defs: Vec<Vec<u32>>,
    len: usize,
}

/// Pseudo-definition site for registers defined by the launch initializer
/// rather than any instruction.
pub const LAUNCH_DEF: u32 = u32::MAX;

impl DefUseIndex {
    /// Build the index for `program`. `entry_defined` is the bitmask of
    /// registers the launch initializer wrote (bit `r` set → register `r`
    /// starts defined, as [`LAUNCH_DEF`]); pass `u32::MAX` to treat all
    /// registers as launch-defined.
    pub fn build(program: &Program, entry_defined: u32) -> Self {
        let mut findings = Vec::new();
        let cfg = Cfg::build(program, &mut findings);
        let len = program.len();
        // defs_in[pc][r], defs_out derived per visit.
        let mut defs_in: Vec<[BTreeSet<u32>; NUM_REGS]> =
            (0..len).map(|_| std::array::from_fn(|_| BTreeSet::new())).collect();
        if len == 0 {
            return DefUseIndex { defs: Vec::new(), len };
        }
        for (r, set) in defs_in[0].iter_mut().enumerate() {
            if entry_defined & (1 << r) != 0 {
                set.insert(LAUNCH_DEF);
            }
        }
        let mut work: Vec<usize> = (0..len).collect();
        let mut queued = vec![true; len];
        while let Some(pc) = work.pop() {
            queued[pc] = false;
            // Transfer: the instruction's own definition kills nothing in a
            // may-analysis sense for *other* defs of other regs, but
            // replaces the reaching set of its destination.
            let written = program.fetch(pc).and_then(|i| i.writes_dest());
            for &succ in cfg.succs(pc) {
                let mut changed = false;
                // Snapshot the predecessor row: cloning beats split-borrow
                // pointer juggling for kernels of tens of instructions.
                let incoming = defs_in[pc].clone();
                for (r, inc) in incoming.iter().enumerate() {
                    let out = &mut defs_in[succ][r];
                    if written.map(|d| d.0 as usize) == Some(r) {
                        changed |= out.insert(pc as u32);
                        continue;
                    }
                    for &d in inc {
                        changed |= out.insert(d);
                    }
                }
                if changed && !queued[succ] {
                    queued[succ] = true;
                    work.push(succ);
                }
            }
        }
        let defs = defs_in
            .into_iter()
            .flat_map(|regs| regs.into_iter().map(|s| s.into_iter().collect::<Vec<u32>>()))
            .collect();
        DefUseIndex { defs, len }
    }

    /// Instructions whose definition of `reg` may reach the entry of `pc`
    /// (sorted ascending; [`LAUNCH_DEF`] sorts last). Empty when `pc` is
    /// out of range or no definition reaches.
    pub fn defs_of(&self, pc: u32, reg: Reg) -> &[u32] {
        let idx = pc as usize * NUM_REGS + reg.0 as usize;
        if (pc as usize) < self.len {
            &self.defs[idx]
        } else {
            &[]
        }
    }

    /// The transitive backward slice of `pc`: every instruction whose
    /// value may flow into `pc`'s source operands, sorted ascending.
    /// `pc` itself is not included; [`LAUNCH_DEF`] pseudo-definitions are
    /// dropped. Bounded by the program length, so termination is
    /// guaranteed even on cyclic def chains.
    pub fn backward_slice(&self, program: &Program, pc: u32) -> Vec<u32> {
        let mut slice = BTreeSet::new();
        let mut work = vec![pc];
        while let Some(p) = work.pop() {
            let Some(instr) = program.fetch(p as usize) else { continue };
            for r in instr.source_regs().iter() {
                for &d in self.defs_of(p, *r) {
                    if d != LAUNCH_DEF && slice.insert(d) {
                        work.push(d);
                    }
                }
            }
        }
        slice.remove(&pc);
        slice.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_isa::ProgramBuilder;

    #[test]
    fn straightline_defs_chain() {
        let mut b = ProgramBuilder::new("k");
        b.ldi(Reg(1), 0x100); // 0
        b.ld_global(Reg(2), Reg(1), 0); // 1
        b.addi(Reg(3), Reg(2), 4); // 2
        b.exit(); // 3
        let p = b.build().unwrap();
        let idx = DefUseIndex::build(&p, 0);
        assert_eq!(idx.defs_of(1, Reg(1)), &[0]);
        assert_eq!(idx.defs_of(2, Reg(2)), &[1]);
        assert_eq!(idx.defs_of(2, Reg(1)), &[0], "r1 still reaches past the load");
        assert_eq!(idx.backward_slice(&p, 2), vec![0, 1]);
    }

    #[test]
    fn joins_union_definitions() {
        let mut b = ProgramBuilder::new("k");
        let else_ = b.label();
        let join = b.label();
        b.ldi(Reg(1), 1); // 0
        b.bra_z(Reg(1), else_); // 1
        b.ldi(Reg(2), 10); // 2
        b.jmp_to(join); // 3
        b.bind(else_);
        b.ldi(Reg(2), 20); // 4
        b.bind(join);
        b.addi(Reg(3), Reg(2), 0); // 5
        b.exit(); // 6
        let p = b.build().unwrap();
        let idx = DefUseIndex::build(&p, 0);
        assert_eq!(idx.defs_of(5, Reg(2)), &[2, 4], "both arms reach the join");
    }

    #[test]
    fn launch_defined_registers_reach_as_pseudo_def() {
        let mut b = ProgramBuilder::new("k");
        b.addi(Reg(2), Reg(1), 0); // 0: r1 comes from the launcher
        b.exit();
        let p = b.build().unwrap();
        let idx = DefUseIndex::build(&p, 1 << 1);
        assert_eq!(idx.defs_of(0, Reg(1)), &[LAUNCH_DEF]);
        assert!(idx.backward_slice(&p, 0).is_empty(), "launch defs are not instructions");
    }

    #[test]
    fn loop_carried_definitions_reach_the_backedge() {
        let mut b = ProgramBuilder::new("k");
        let head = b.label();
        b.ldi(Reg(1), 4); // 0
        b.bind(head);
        b.subi(Reg(1), Reg(1), 1); // 1
        b.bra_nz(Reg(1), head); // 2
        b.exit(); // 3
        let p = b.build().unwrap();
        let idx = DefUseIndex::build(&p, 0);
        assert_eq!(idx.defs_of(1, Reg(1)), &[0, 1], "init and the loop body both reach");
    }

    #[test]
    fn out_of_range_queries_are_empty() {
        let mut b = ProgramBuilder::new("k");
        b.exit();
        let p = b.build().unwrap();
        let idx = DefUseIndex::build(&p, 0);
        assert!(idx.defs_of(99, Reg(0)).is_empty());
    }
}
