//! Control-flow graph construction and the structural checks that fall out
//! of it: branch-target validation, fallthrough off the program end,
//! reachability/unreachable-code detection, and barrier-divergence
//! (a `bar` reachable between a divergent branch and its reconvergence
//! point deadlocks the block, because inactive lanes never arrive).

use crate::findings::{Finding, FindingKind, Severity};
use gsi_isa::{Flow, Instr, Program};

/// An instruction-level control-flow graph over a [`Program`]. Kernels are
/// small (tens to hundreds of instructions), so one node per instruction
/// keeps every query trivial.
#[derive(Debug)]
pub struct Cfg {
    succs: Vec<Vec<usize>>,
    /// `reachable[pc]`: some path from the entry executes `pc`.
    pub reachable: Vec<bool>,
}

impl Cfg {
    /// Build the CFG for `program`, appending structural findings
    /// (out-of-range targets, fallthrough off the end, unreachable code)
    /// to `findings`. Out-of-range edges are dropped so later passes see a
    /// well-formed graph.
    pub fn build(program: &Program, findings: &mut Vec<Finding>) -> Cfg {
        let instrs = program.instrs();
        let len = instrs.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); len];
        let mut fallthrough_end: Vec<usize> = Vec::new();

        for (pc, i) in instrs.iter().enumerate() {
            let mut bad_target = |t: usize, what: &str| {
                findings.push(finding(
                    program,
                    FindingKind::BranchOutOfRange,
                    Severity::Error,
                    pc,
                    format!("{what} @{t} is outside the {len}-instruction program"),
                ));
            };
            let mut push_next = |succs: &mut Vec<Vec<usize>>| {
                if pc + 1 < len {
                    succs[pc].push(pc + 1);
                } else {
                    fallthrough_end.push(pc);
                }
            };
            match i.flow() {
                Flow::Next => push_next(&mut succs),
                Flow::Stop => {}
                Flow::Jump(t) => {
                    if t < len {
                        succs[pc].push(t);
                    } else {
                        bad_target(t, "jump target");
                    }
                }
                Flow::Branch(t) => {
                    if t < len {
                        succs[pc].push(t);
                    } else {
                        bad_target(t, "branch target");
                    }
                    push_next(&mut succs);
                }
                Flow::Diverge { target, join } => {
                    if target < len {
                        succs[pc].push(target);
                    } else {
                        bad_target(target, "divergent branch target");
                    }
                    if join >= len {
                        bad_target(join, "reconvergence point");
                    }
                    push_next(&mut succs);
                }
            }
        }

        let mut reachable = vec![false; len];
        let mut stack = vec![0usize];
        while let Some(pc) = stack.pop() {
            if std::mem::replace(&mut reachable[pc], true) {
                continue;
            }
            stack.extend(succs[pc].iter().copied());
        }

        for pc in fallthrough_end {
            if reachable[pc] {
                findings.push(finding(
                    program,
                    FindingKind::FallthroughEnd,
                    Severity::Error,
                    pc,
                    "control can run off the end of the program (missing `exit`)".to_string(),
                ));
            }
        }

        // One finding per contiguous unreachable run.
        let mut pc = 0;
        while pc < len {
            if reachable[pc] {
                pc += 1;
                continue;
            }
            let start = pc;
            while pc < len && !reachable[pc] {
                pc += 1;
            }
            findings.push(finding(
                program,
                FindingKind::UnreachableCode,
                Severity::Warn,
                start,
                format!("instructions {start}..{pc} are unreachable from the entry"),
            ));
        }

        Cfg { succs, reachable }
    }

    /// Successor instruction indices of `pc`.
    pub fn succs(&self, pc: usize) -> &[usize] {
        &self.succs[pc]
    }

    /// Instructions reachable from the *successors* of `from` without
    /// executing a `bar` (barriers block traversal: everything beyond one
    /// is in a later synchronization phase).
    pub fn reach_without_barrier(&self, from: usize, program: &Program) -> Vec<bool> {
        let instrs = program.instrs();
        let mut seen = vec![false; instrs.len()];
        let mut stack: Vec<usize> = self.succs[from].to_vec();
        while let Some(pc) = stack.pop() {
            if std::mem::replace(&mut seen[pc], true) {
                continue;
            }
            if matches!(instrs[pc], Instr::Bar) {
                continue; // the barrier is reached, but nothing past it
            }
            stack.extend(self.succs[pc].iter().copied());
        }
        seen
    }

    /// Instructions executable while the warp is diverged by the
    /// `bra.div` at `pc`: reachable from either side of the branch without
    /// passing through its reconvergence point `join`.
    fn divergent_region(&self, pc: usize, join: usize) -> Vec<bool> {
        let mut seen = vec![false; self.succs.len()];
        let mut stack: Vec<usize> = self.succs[pc].iter().copied().filter(|&s| s != join).collect();
        while let Some(p) = stack.pop() {
            if std::mem::replace(&mut seen[p], true) {
                continue;
            }
            stack.extend(self.succs[p].iter().copied().filter(|&s| s != join));
        }
        seen
    }
}

/// Flag barriers (and exits) reachable while lane-diverged: for every
/// reachable `bra.div`, walk both arms up to the reconvergence point; a
/// `bar` in that region waits for lanes that can never arrive (Error), and
/// an `exit` terminates a partially-active warp (Warn).
pub fn check_barrier_divergence(program: &Program, cfg: &Cfg, findings: &mut Vec<Finding>) {
    for (pc, i) in program.instrs().iter().enumerate() {
        let Instr::BraDiv { join, .. } = i else { continue };
        if !cfg.reachable[pc] {
            continue;
        }
        let region = cfg.divergent_region(pc, *join);
        for (p, in_region) in region.iter().enumerate() {
            if !in_region {
                continue;
            }
            match program.instrs()[p] {
                Instr::Bar => findings.push(finding(
                    program,
                    FindingKind::DivergentBarrier,
                    Severity::Error,
                    p,
                    format!(
                        "barrier reachable under lane-divergent control flow \
                         (inside the divergent region of the branch at {}): \
                         inactive lanes never arrive and the block deadlocks",
                        gsi_isa::asm::location(program, pc)
                    ),
                )),
                Instr::Exit => findings.push(finding(
                    program,
                    FindingKind::ExitInDivergence,
                    Severity::Warn,
                    p,
                    format!(
                        "exit reachable while diverged by the branch at {} \
                         (lanes parked on the SIMT stack never resume)",
                        gsi_isa::asm::location(program, pc)
                    ),
                )),
                _ => {}
            }
        }
    }
}

/// Build a [`Finding`] with location and snippet rendered from `program`.
pub(crate) fn finding(
    program: &Program,
    kind: FindingKind,
    severity: Severity,
    pc: usize,
    message: String,
) -> Finding {
    Finding {
        kind,
        severity,
        pc,
        location: gsi_isa::asm::location(program, pc),
        message,
        snippet: gsi_isa::asm::snippet(program, pc, 1),
        corners: Vec::new(),
        baselined: false,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_isa::{ProgramBuilder, Reg};

    fn build(f: impl FnOnce(&mut ProgramBuilder)) -> Program {
        let mut b = ProgramBuilder::new("t");
        f(&mut b);
        b.build().unwrap()
    }

    #[test]
    fn straight_line_is_clean_and_reachable() {
        let p = build(|b| {
            b.ldi(Reg(1), 3);
            b.exit();
        });
        let mut findings = Vec::new();
        let cfg = Cfg::build(&p, &mut findings);
        assert!(findings.is_empty());
        assert!(cfg.reachable.iter().all(|&r| r));
    }

    #[test]
    fn unreachable_tail_is_flagged_once() {
        let p = build(|b| {
            b.exit();
            b.nop();
            b.nop();
            b.exit();
        });
        let mut findings = Vec::new();
        let _ = Cfg::build(&p, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::UnreachableCode);
        assert_eq!(findings[0].pc, 1);
    }

    #[test]
    fn missing_exit_is_a_fallthrough_error() {
        let p = build(|b| {
            b.ldi(Reg(1), 1);
            b.nop();
        });
        let mut findings = Vec::new();
        let _ = Cfg::build(&p, &mut findings);
        assert!(findings.iter().any(|f| f.kind == FindingKind::FallthroughEnd && f.pc == 1));
    }

    #[test]
    fn divergent_barrier_is_flagged_at_the_bar() {
        // bra.div r1 -> taken arm contains a bar before the join.
        let p = build(|b| {
            let taken = b.label();
            let join = b.label();
            b.ldi(Reg(1), 1);
            b.bra_div_nz(Reg(1), taken, join);
            b.nop(); // not-taken arm
            b.jmp_to(join);
            b.bind(taken);
            b.bar(); // pc 4: diverged barrier
            b.bind(join);
            b.exit();
        });
        let mut findings = Vec::new();
        let cfg = Cfg::build(&p, &mut findings);
        check_barrier_divergence(&p, &cfg, &mut findings);
        let f = findings.iter().find(|f| f.kind == FindingKind::DivergentBarrier).unwrap();
        assert_eq!(f.severity, Severity::Error);
        assert_eq!(f.pc, 4);
    }

    #[test]
    fn barrier_at_or_after_join_is_fine() {
        let p = build(|b| {
            let taken = b.label();
            let join = b.label();
            b.ldi(Reg(1), 1);
            b.bra_div_nz(Reg(1), taken, join);
            b.nop();
            b.jmp_to(join);
            b.bind(taken);
            b.nop();
            b.bind(join);
            b.bar(); // reconverged: legal
            b.exit();
        });
        let mut findings = Vec::new();
        let cfg = Cfg::build(&p, &mut findings);
        check_barrier_divergence(&p, &cfg, &mut findings);
        assert!(findings.iter().all(|f| f.kind != FindingKind::DivergentBarrier));
    }

    #[test]
    fn barriers_partition_reachability() {
        let p = build(|b| {
            b.st_local(Reg(1), Reg(2), 0); // pc 0
            b.bar(); // pc 1
            b.ld_local(Reg(3), Reg(2), 0); // pc 2
            b.exit();
        });
        let mut findings = Vec::new();
        let cfg = Cfg::build(&p, &mut findings);
        let seen = cfg.reach_without_barrier(0, &p);
        assert!(seen[1], "the barrier itself is reached");
        assert!(!seen[2], "nothing beyond the barrier is in the same phase");
    }
}
