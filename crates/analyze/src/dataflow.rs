//! Definite-assignment dataflow: a register read is flagged unless every
//! path from the kernel entry writes it first. The entry set comes from
//! probing the launch initializer (kernel parameters, thread ids); all
//! other registers start architecturally zeroed, but a read before any
//! write is almost always a missing-parameter or wrong-register bug, and
//! the resulting stall profile measures garbage.

use crate::cfg::{finding, Cfg};
use crate::findings::{Finding, FindingKind, Severity};
use gsi_isa::Program;

/// Run the forward must-analysis and flag reads of maybe-uninitialized
/// registers. `entry_defined` is a bitmask of registers the launch
/// initializer provably sets for every warp.
pub fn check_def_before_use(
    program: &Program,
    cfg: &Cfg,
    entry_defined: u32,
    findings: &mut Vec<Finding>,
) {
    let instrs = program.instrs();
    let len = instrs.len();
    // `defined_in[pc]`: registers written on *every* path reaching `pc`.
    // Initialized to the full set (the analysis refines downward), except
    // the entry, which starts from the probed launch state.
    let mut defined_in: Vec<u32> = vec![u32::MAX; len];
    defined_in[0] = entry_defined;

    let mut worklist: Vec<usize> = vec![0];
    let mut on_list = vec![false; len];
    on_list[0] = true;
    while let Some(pc) = worklist.pop() {
        on_list[pc] = false;
        let mut out = defined_in[pc];
        if let Some(dst) = instrs[pc].writes_dest() {
            out |= 1 << dst.0;
        }
        for &succ in cfg.succs(pc) {
            let joined = defined_in[succ] & out;
            if joined != defined_in[succ] {
                defined_in[succ] = joined;
                if !on_list[succ] {
                    on_list[succ] = true;
                    worklist.push(succ);
                }
            }
        }
    }

    for (pc, i) in instrs.iter().enumerate() {
        if !cfg.reachable[pc] {
            continue;
        }
        for reg in i.source_regs().as_slice() {
            if defined_in[pc] & (1 << reg.0) == 0 {
                findings.push(finding(
                    program,
                    FindingKind::UninitRead,
                    Severity::Error,
                    pc,
                    format!(
                        "{reg} is read here but not written on every path from \
                         the entry (and the launch does not initialize it)"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_isa::{ProgramBuilder, Reg};

    fn run(entry: u32, f: impl FnOnce(&mut ProgramBuilder)) -> Vec<Finding> {
        let mut b = ProgramBuilder::new("t");
        f(&mut b);
        let p = b.build().unwrap();
        let mut findings = Vec::new();
        let cfg = Cfg::build(&p, &mut findings);
        findings.clear();
        check_def_before_use(&p, &cfg, entry, &mut findings);
        findings
    }

    #[test]
    fn write_then_read_is_clean() {
        let findings = run(0, |b| {
            b.ldi(Reg(1), 7);
            b.addi(Reg(2), Reg(1), 1);
            b.exit();
        });
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn read_before_any_write_is_flagged() {
        let findings = run(0, |b| {
            b.addi(Reg(2), Reg(1), 1); // r1 never written
            b.exit();
        });
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].pc, 0);
        assert_eq!(findings[0].severity, Severity::Error);
        assert!(findings[0].message.contains("r1"));
    }

    #[test]
    fn entry_defined_registers_are_initialized() {
        let findings = run(1 << 1, |b| {
            b.addi(Reg(2), Reg(1), 1); // r1 comes from the launch
            b.exit();
        });
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn write_on_one_arm_only_is_flagged_after_the_join() {
        let findings = run(1 << 1, |b| {
            let skip = b.label();
            b.bra_nz(Reg(1), skip);
            b.ldi(Reg(2), 5); // only the fallthrough arm defines r2
            b.bind(skip);
            b.addi(Reg(3), Reg(2), 1);
            b.exit();
        });
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].pc, 2);
    }

    #[test]
    fn write_on_both_arms_is_clean() {
        let findings = run(1 << 1, |b| {
            let other = b.label();
            let join = b.label();
            b.bra_nz(Reg(1), other);
            b.ldi(Reg(2), 5);
            b.jmp_to(join);
            b.bind(other);
            b.ldi(Reg(2), 6);
            b.bind(join);
            b.addi(Reg(3), Reg(2), 1);
            b.exit();
        });
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn loop_carried_definitions_count() {
        // r2 is written at the loop bottom and read at the top on the
        // second iteration — but the first iteration reads it uninit.
        let findings = run(1 << 1, |b| {
            let top = b.here();
            b.addi(Reg(3), Reg(2), 1);
            b.ldi(Reg(2), 1);
            b.subi(Reg(1), Reg(1), 1);
            b.bra_nz(Reg(1), top);
            b.exit();
        });
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].pc, 0);
    }

    #[test]
    fn atomic_store_does_not_define_its_dummy_destination() {
        let findings = run(1 << 1, |b| {
            b.atom_store(Reg(1), gsi_isa::Operand::Imm(0), gsi_isa::MemSem::Release);
            b.addi(Reg(2), Reg(0), 1); // r0 only "written" by atom.st's dummy dst
            b.exit();
        });
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("r0"));
    }
}
