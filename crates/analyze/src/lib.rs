//! gsi-analyze: a static verifier for GSI virtual-ISA kernels.
//!
//! The simulator's stall attribution is only as meaningful as the program
//! it measures: a kernel that reads an uninitialized register, deadlocks a
//! barrier under lane divergence, or races on the scratchpad produces a
//! stall profile of garbage. This crate analyzes an [`isa
//! Program`](gsi_isa::Program) *before* any cycle is simulated and reports
//! what it finds:
//!
//! 1. **Control flow** ([`cfg`]): branch targets in range, no fallthrough
//!    off the program end, unreachable code.
//! 2. **Definite assignment** ([`dataflow`]): every register read is
//!    preceded by a write on all paths from the entry, seeded by probing
//!    the launch initializer.
//! 3. **Barrier divergence** ([`cfg::check_barrier_divergence`]): no `bar`
//!    reachable between a `bra.div` and its reconvergence point.
//! 4. **Memory hazards** ([`absint`]): abstract interpretation of address
//!    expressions over strided intervals catches scratchpad out-of-bounds
//!    accesses, inter-warp races on local memory, DMA transfers whose
//!    region is touched before a completion barrier, and atomics pointed
//!    at the scratchpad address range.
//!
//! The entry point is [`analyze`]; the simulator invokes it through its
//! pre-flight gate (`sim::AnalysisGate`), and the `analyze` binary in
//! `gsi-bench` runs it standalone over the in-tree workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod cfg;
pub mod dataflow;
pub mod defuse;
pub mod findings;

pub use absint::{AbsVal, EntryState, MemModel};
pub use cfg::Cfg;
pub use defuse::{DefUseIndex, LAUNCH_DEF};
pub use findings::{AnalysisReport, Finding, FindingKind, Severity};

use gsi_isa::Program;

/// Everything [`analyze`] needs to know beyond the program itself.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Launch-derived entry state (initialized registers and their value
    /// envelopes). Default: nothing initialized, all registers zero.
    pub entry: EntryState,
    /// Scratchpad size in bytes; `None` disables the local-memory bounds
    /// and atomic-address checks.
    pub scratch_bytes: Option<u64>,
    /// Warps per thread block; races are only possible above 1.
    pub warps_per_block: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions { entry: EntryState::default(), scratch_bytes: None, warps_per_block: 1 }
    }
}

/// Run every analysis pass over `program` and return the combined report
/// (deterministically ordered; see [`AnalysisReport`]).
pub fn analyze(program: &Program, opts: &AnalyzeOptions) -> AnalysisReport {
    let mut findings = Vec::new();
    let cfg = Cfg::build(program, &mut findings);
    cfg::check_barrier_divergence(program, &cfg, &mut findings);
    dataflow::check_def_before_use(program, &cfg, opts.entry.defined, &mut findings);
    let model =
        MemModel { scratch_bytes: opts.scratch_bytes, warps_per_block: opts.warps_per_block };
    absint::check_memory(program, &cfg, &opts.entry, &model, &mut findings);
    AnalysisReport::new(program.name().to_string(), program.len(), findings)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_isa::{ProgramBuilder, Reg};

    #[test]
    fn a_clean_kernel_produces_a_clean_report() {
        let mut b = ProgramBuilder::new("ok");
        b.ldi(Reg(1), 8);
        b.st_local(Reg(1), Reg(1), 0);
        b.bar();
        b.ld_local(Reg(2), Reg(1), 0);
        b.exit();
        let p = b.build().unwrap();
        let opts = AnalyzeOptions {
            scratch_bytes: Some(16 * 1024),
            warps_per_block: 2,
            ..AnalyzeOptions::default()
        };
        let report = analyze(&p, &opts);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn analysis_is_deterministic() {
        let mut b = ProgramBuilder::new("bad");
        b.addi(Reg(2), Reg(1), 1); // uninit read
        b.ldi(Reg(3), 1 << 20);
        b.st_local(Reg(3), Reg(3), 0); // definite OOB
        b.nop(); // missing exit -> fallthrough
        let p = b.build().unwrap();
        let opts = AnalyzeOptions { scratch_bytes: Some(16 * 1024), ..AnalyzeOptions::default() };
        let a = analyze(&p, &opts);
        let b2 = analyze(&p, &opts);
        assert_eq!(a, b2);
        assert_eq!(a.render(), b2.render());
        use gsi_json::ToJson;
        assert_eq!(a.to_json().to_string_pretty(), b2.to_json().to_string_pretty());
        assert!(a.error_count() >= 3, "{}", a.render());
    }
}
