//! gsi-analyze: a static verifier for GSI virtual-ISA kernels.
//!
//! The simulator's stall attribution is only as meaningful as the program
//! it measures: a kernel that reads an uninitialized register, deadlocks a
//! barrier under lane divergence, or races on the scratchpad produces a
//! stall profile of garbage. This crate analyzes an [`isa
//! Program`](gsi_isa::Program) *before* any cycle is simulated and reports
//! what it finds:
//!
//! 1. **Control flow** ([`cfg`]): branch targets in range, no fallthrough
//!    off the program end, unreachable code.
//! 2. **Definite assignment** ([`dataflow`]): every register read is
//!    preceded by a write on all paths from the entry, seeded by probing
//!    the launch initializer.
//! 3. **Barrier divergence** ([`cfg::check_barrier_divergence`]): no `bar`
//!    reachable between a `bra.div` and its reconvergence point.
//! 4. **Memory hazards** ([`absint`]): abstract interpretation of address
//!    expressions over strided intervals catches scratchpad out-of-bounds
//!    accesses, inter-warp races on local memory, DMA transfers whose
//!    region is touched before a completion barrier, and atomics pointed
//!    at the scratchpad address range.
//! 5. **Whole-scenario global races** ([`sync`] + the race pass): a
//!    happens-before verifier over the synchronization-order graph
//!    (barriers, acquire/release atomics, launch boundaries) with
//!    per-thread footprints that are *affine in the warp and block ids*,
//!    so write/write and read/write conflicts between warps, between
//!    blocks, and between warp code and DMA/stash transfers are decided by
//!    stride/offset disequations, never by enumerating threads. DeNovo
//!    self-invalidates at acquires and assumes data-race-freedom, so races
//!    are [`Severity::Error`] under [`ProtocolClass::DeNovo`] and
//!    [`Severity::Warn`] under baseline GPU coherence. Intentionally racy
//!    workloads are admitted explicitly through a content-digested
//!    [`Baseline`].
//!
//! The entry point is [`analyze`]; the simulator invokes it through its
//! pre-flight gate (`sim::AnalysisGate`), and the `analyze` binary in
//! `gsi-bench` runs it standalone over the in-tree workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod cfg;
pub mod dataflow;
pub mod defuse;
pub mod findings;
mod races;
pub mod sync;

pub use absint::{AbsVal, EntryProbe, EntryState, Geom, MemModel};
pub use cfg::Cfg;
pub use defuse::{DefUseIndex, LAUNCH_DEF};
pub use findings::{finding_digest, AnalysisReport, Baseline, Finding, FindingKind, Severity};
pub use sync::SyncGraph;

use gsi_isa::Program;

/// The coherence-protocol family the analyzed launch will run under.
/// Controls the severity of global data races: DeNovo relies on
/// data-race-freedom for correctness (self-invalidation at acquires reads
/// stale data otherwise), so races deny the launch; conventional GPU
/// coherence merely makes them suspicious.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtocolClass {
    /// Baseline GPU-style coherence: races are [`Severity::Warn`].
    #[default]
    GpuCoherence,
    /// DeNovo-style self-invalidation: races are [`Severity::Error`].
    DeNovo,
}

/// Everything [`analyze`] needs to know beyond the program itself.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Launch-derived entry state (initialized registers and their value
    /// envelopes). Default: nothing initialized, all registers zero.
    pub entry: EntryState,
    /// Scratchpad size in bytes; `None` disables the local-memory bounds
    /// and atomic-address checks.
    pub scratch_bytes: Option<u64>,
    /// Warps per thread block; inter-warp races are only possible above 1.
    pub warps_per_block: usize,
    /// Thread blocks in the grid; inter-block races are only possible
    /// above 1.
    pub grid_blocks: u64,
    /// Protocol family the launch targets (drives race severity).
    pub protocol: ProtocolClass,
    /// Whether to run the whole-scenario global race pass.
    pub races: bool,
    /// Accepted-findings baseline: matching findings stay in the report
    /// but are marked and excluded from the error/warn counts.
    pub baseline: Option<Baseline>,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            entry: EntryState::default(),
            scratch_bytes: None,
            warps_per_block: 1,
            grid_blocks: 1,
            protocol: ProtocolClass::default(),
            races: true,
            baseline: None,
        }
    }
}

/// Run every analysis pass over `program` and return the combined report
/// (deterministically ordered; see [`AnalysisReport`]).
pub fn analyze(program: &Program, opts: &AnalyzeOptions) -> AnalysisReport {
    let mut findings = Vec::new();
    let cfg = Cfg::build(program, &mut findings);
    cfg::check_barrier_divergence(program, &cfg, &mut findings);
    dataflow::check_def_before_use(program, &cfg, opts.entry.defined, &mut findings);
    let geom = Geom {
        warps_per_block: opts.warps_per_block.max(1) as u64,
        grid_blocks: opts.grid_blocks.max(1),
    };
    let states = absint::fixpoint(program, &cfg, &opts.entry, geom);
    let model =
        MemModel { scratch_bytes: opts.scratch_bytes, warps_per_block: opts.warps_per_block };
    absint::check_memory(program, &cfg, &model, &states, geom, &mut findings);
    if opts.races {
        races::check_races(
            program,
            &cfg,
            &states,
            geom,
            opts.protocol,
            opts.entry.defined,
            &mut findings,
        );
    }
    let mut report = AnalysisReport::new(program.name().to_string(), program.len(), findings);
    if let Some(baseline) = &opts.baseline {
        report.apply_baseline(baseline);
    }
    report
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_isa::{ProgramBuilder, Reg};

    #[test]
    fn a_clean_kernel_produces_a_clean_report() {
        let mut b = ProgramBuilder::new("ok");
        b.ldi(Reg(1), 8);
        b.st_local(Reg(1), Reg(1), 0);
        b.bar();
        b.ld_local(Reg(2), Reg(1), 0);
        b.exit();
        let p = b.build().unwrap();
        let opts = AnalyzeOptions {
            scratch_bytes: Some(16 * 1024),
            warps_per_block: 2,
            ..AnalyzeOptions::default()
        };
        let report = analyze(&p, &opts);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn analysis_is_deterministic() {
        let mut b = ProgramBuilder::new("bad");
        b.addi(Reg(2), Reg(1), 1); // uninit read
        b.ldi(Reg(3), 1 << 20);
        b.st_local(Reg(3), Reg(3), 0); // definite OOB
        b.nop(); // missing exit -> fallthrough
        let p = b.build().unwrap();
        let opts = AnalyzeOptions { scratch_bytes: Some(16 * 1024), ..AnalyzeOptions::default() };
        let a = analyze(&p, &opts);
        let b2 = analyze(&p, &opts);
        assert_eq!(a, b2);
        assert_eq!(a.render(), b2.render());
        use gsi_json::ToJson;
        assert_eq!(a.to_json().to_string_pretty(), b2.to_json().to_string_pretty());
        assert!(a.error_count() >= 3, "{}", a.render());
    }

    #[test]
    fn baseline_option_suppresses_a_known_race() {
        let mut b = ProgramBuilder::new("racy");
        b.ldi(Reg(1), 0x10_0000);
        b.st_global(gsi_isa::Operand::Imm(1), Reg(1), 0);
        b.exit();
        let p = b.build().unwrap();
        let opts = AnalyzeOptions {
            scratch_bytes: Some(16 * 1024),
            warps_per_block: 2,
            protocol: ProtocolClass::DeNovo,
            ..AnalyzeOptions::default()
        };
        let first = analyze(&p, &opts);
        assert_eq!(first.error_count(), 1, "{first}");
        let mut baseline = Baseline::new();
        for f in first.findings() {
            baseline.insert(finding_digest(first.kernel(), f));
        }
        let opts = AnalyzeOptions { baseline: Some(baseline), ..opts };
        let second = analyze(&p, &opts);
        assert_eq!(second.error_count(), 0, "{second}");
        assert!(!second.is_clean(), "the defect still exists, it is merely accepted");
        assert_eq!(second.baselined_count(), 1);
    }

    #[test]
    fn disabling_the_race_pass_drops_race_findings_only() {
        let mut b = ProgramBuilder::new("racy");
        b.ldi(Reg(1), 0x10_0000);
        b.st_global(gsi_isa::Operand::Imm(1), Reg(1), 0);
        b.exit();
        let p = b.build().unwrap();
        let opts = AnalyzeOptions {
            warps_per_block: 2,
            races: false,
            protocol: ProtocolClass::DeNovo,
            ..AnalyzeOptions::default()
        };
        let report = analyze(&p, &opts);
        assert!(report.findings().iter().all(|f| !f.kind.is_global_race()), "{report}");
    }
}
