//! Abstract interpretation of address expressions over a strided-interval
//! domain, and the memory-hazard checks built on it: scratchpad
//! out-of-bounds accesses, inter-warp write/write and read/write races on
//! `ld.l`/`st.l` between barriers, DMA hazards (a transfer's region touched
//! with no completion barrier, or two overlapping transfers in flight), and
//! the atomic-on-scratchpad lint.
//!
//! The domain is *parametric in the warp and block ids*: an [`AbsVal`]
//! describes the value seen by symbolic thread `(w, b)` as the strided
//! interval of thread `(0, 0)` shifted by `wcoef * w + bcoef * b`. Launch
//! initializers that index memory affinely by warp or block id — the
//! universal GPU idiom — are recovered exactly by [`EntryState::fit`] from
//! a handful of probes, so footprint disjointness between two symbolic
//! threads can be decided by stride/offset disequations (see `races.rs`)
//! instead of enumeration. [`AbsVal::concretize`] folds the symbolic part
//! back into a plain interval for the classic whole-range checks.
//!
//! Every abstract value also tracks whether it *varies across lanes* and
//! whether it *varies across warps/blocks in some non-affine way*
//! (`warp_dep`). Warp-variant addresses are assumed partitioned, so the
//! local race check only fires when two overlapping accesses are provably
//! warp-invariant, which keeps it silent on well-formed tiled kernels.

use crate::cfg::{finding, Cfg};
use crate::findings::{Finding, FindingKind, Severity};
use gsi_isa::{AluOp, Instr, Operand, Program, NUM_REGS, WORD_BYTES};

/// The launch geometry the symbolic domain is parametric in: how many
/// warp ids and block ids exist. `warps_per_block == 1` collapses the
/// warp axis (and likewise for blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geom {
    /// Number of warps per thread block (warp ids `0..warps_per_block`).
    pub warps_per_block: u64,
    /// Number of thread blocks in the grid (block ids `0..grid_blocks`).
    pub grid_blocks: u64,
}

impl Geom {
    /// The degenerate single-warp, single-block geometry.
    pub const ONE: Geom = Geom { warps_per_block: 1, grid_blocks: 1 };
}

/// A strided interval, parametric in the warp/block id: symbolic thread
/// `(w, b)` sees `lo ..= hi` (stepping by `stride`) shifted by
/// `wcoef * w + bcoef * b`. `stride == 0` means a single known value per
/// thread. `lane_dep` records whether the value can differ across lanes of
/// a warp; `warp_dep` records *residual* cross-warp/cross-block variation
/// the affine part does not capture (a value with nonzero coefficients and
/// `warp_dep == false` is *exactly* affine in the thread ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    /// Smallest possible value for thread `(0, 0)`.
    pub lo: u64,
    /// Largest possible value for thread `(0, 0)`.
    pub hi: u64,
    /// Step between possible values (0 = exactly `lo`; 1 = any in range).
    pub stride: u64,
    /// May differ between lanes of one warp.
    pub lane_dep: bool,
    /// May differ between warps or blocks beyond the affine coefficients.
    pub warp_dep: bool,
    /// Per-warp-id shift: thread `(w, b)` adds `wcoef * w`.
    pub wcoef: i64,
    /// Per-block-id shift: thread `(w, b)` adds `bcoef * b`.
    pub bcoef: i64,
}

pub(crate) fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl AbsVal {
    /// A single known, uniform value.
    pub const fn constant(v: u64) -> AbsVal {
        AbsVal { lo: v, hi: v, stride: 0, lane_dep: false, warp_dep: false, wcoef: 0, bcoef: 0 }
    }

    /// The unknown value with the given variance. Top never carries
    /// affine coefficients — an unknown base plus a known shift is still
    /// unknown, and keeping it coefficient-free preserves soundness.
    pub const fn top(lane_dep: bool, warp_dep: bool) -> AbsVal {
        AbsVal { lo: 0, hi: u64::MAX, stride: 1, lane_dep, warp_dep, wcoef: 0, bcoef: 0 }
    }

    /// Whether the interval carries no information.
    pub fn is_top(&self) -> bool {
        self.lo == 0 && self.hi == u64::MAX
    }

    /// Whether the interval is genuinely bounded (the hazard checks only
    /// trust bounded values, so unknown addresses never raise findings).
    pub fn bounded(&self) -> bool {
        self.hi != u64::MAX
    }

    /// Whether this is a single known value, identical for every thread.
    pub fn is_scalar_const(&self) -> bool {
        self.stride == 0 && self.wcoef == 0 && self.bcoef == 0
    }

    fn with_deps(mut self, other: AbsVal) -> AbsVal {
        self.lane_dep |= other.lane_dep;
        self.warp_dep |= other.warp_dep;
        self
    }

    /// Fold the affine coefficients into the interval: the result covers
    /// every thread `(w, b)` of `geom` as a plain strided interval. Any
    /// folded-in coefficient marks the result `warp_dep` (the value really
    /// does differ across warps/blocks); a span that over/underflows `u64`
    /// means the fit observed wrapping arithmetic, so degrade to top.
    pub fn concretize(self, geom: Geom) -> AbsVal {
        if self.wcoef == 0 && self.bcoef == 0 {
            return self;
        }
        let mut lo = self.lo as i128;
        let mut hi = self.hi as i128;
        let mut stride = self.stride;
        let mut varies = false;
        for (coef, n) in [(self.wcoef, geom.warps_per_block), (self.bcoef, geom.grid_blocks)] {
            if coef == 0 || n <= 1 {
                continue;
            }
            varies = true;
            let span = (coef as i128) * ((n - 1) as i128);
            if span >= 0 {
                hi += span;
            } else {
                lo += span;
            }
            stride = gcd(stride, coef.unsigned_abs());
        }
        if lo < 0 || hi > u64::MAX as i128 {
            return AbsVal::top(self.lane_dep, true);
        }
        let (lo, hi) = (lo as u64, hi as u64);
        AbsVal {
            lo,
            hi,
            stride: if lo == hi { 0 } else { stride.max(1) },
            lane_dep: self.lane_dep,
            warp_dep: self.warp_dep || varies,
            wcoef: 0,
            bcoef: 0,
        }
    }

    /// Least upper bound of two values. Matching coefficients join
    /// base-interval-wise and stay symbolic; mismatched coefficients are
    /// concretized first (the join of two different shifts per warp is not
    /// itself a single shift).
    pub fn join(a: AbsVal, b: AbsVal, geom: Geom) -> AbsVal {
        if a == b {
            return a;
        }
        if a.wcoef != b.wcoef || a.bcoef != b.bcoef {
            return Self::join(a.concretize(geom), b.concretize(geom), geom);
        }
        let lo = a.lo.min(b.lo);
        let hi = a.hi.max(b.hi);
        // Distinct single values d apart still form a strided set.
        let stride = gcd(gcd(a.stride, b.stride), a.lo.abs_diff(b.lo));
        AbsVal {
            lo,
            hi,
            stride: if lo == hi { 0 } else { stride.max(1) },
            lane_dep: a.lane_dep || b.lane_dep,
            warp_dep: a.warp_dep || b.warp_dep,
            wcoef: a.wcoef,
            bcoef: a.bcoef,
        }
    }

    /// The symbolic-aware cases of [`binop`]: operations under which the
    /// affine coefficients transform exactly. `None` means "no exact
    /// affine rule" and falls back to the concretized interval math.
    fn binop_affine(op: AluOp, a: AbsVal, b: AbsVal) -> Option<AbsVal> {
        if a.wcoef == 0 && a.bcoef == 0 && b.wcoef == 0 && b.bcoef == 0 {
            return None; // plain interval math handles it
        }
        let deps = |v: AbsVal| (a.lane_dep || b.lane_dep || v.lane_dep, a.warp_dep || b.warp_dep);
        let shaped = |lo: u64, hi: u64, stride: u64, wcoef: i64, bcoef: i64| {
            let (lane_dep, warp_dep) = deps(AbsVal::constant(0));
            Some(AbsVal {
                lo,
                hi,
                stride: if lo == hi { 0 } else { stride.max(1) },
                lane_dep,
                warp_dep,
                wcoef,
                bcoef,
            })
        };
        match op {
            AluOp::Add => shaped(
                a.lo.checked_add(b.lo)?,
                a.hi.checked_add(b.hi)?,
                gcd(a.stride, b.stride),
                a.wcoef.checked_add(b.wcoef)?,
                a.bcoef.checked_add(b.bcoef)?,
            ),
            AluOp::Sub => shaped(
                a.lo.checked_sub(b.hi)?,
                a.hi.checked_sub(b.lo)?,
                gcd(a.stride, b.stride),
                a.wcoef.checked_sub(b.wcoef)?,
                a.bcoef.checked_sub(b.bcoef)?,
            ),
            AluOp::Mul => {
                if b.is_scalar_const() {
                    Self::scale_affine(a, b.lo)
                } else if a.is_scalar_const() {
                    Self::scale_affine(b, a.lo)
                } else {
                    None
                }
            }
            AluOp::Shl => {
                if b.is_scalar_const() && b.lo < 64 {
                    Self::scale_affine(a, 1u64 << b.lo)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Multiply a symbolic value by a known constant, scaling base
    /// interval and coefficients together. `None` on any overflow.
    fn scale_affine(x: AbsVal, c: u64) -> Option<AbsVal> {
        if c == 0 {
            return Some(AbsVal::constant(0).with_deps(x));
        }
        let ci = i64::try_from(c).ok()?;
        let lo = x.lo.checked_mul(c)?;
        let hi = x.hi.checked_mul(c)?;
        Some(AbsVal {
            lo,
            hi,
            stride: if lo == hi { 0 } else { x.stride.checked_mul(c).unwrap_or(1).max(1) },
            lane_dep: x.lane_dep,
            warp_dep: x.warp_dep,
            wcoef: x.wcoef.checked_mul(ci)?,
            bcoef: x.bcoef.checked_mul(ci)?,
        })
    }

    fn binop(op: AluOp, a: AbsVal, b: AbsVal, geom: Geom) -> AbsVal {
        if let Some(v) = Self::binop_affine(op, a, b) {
            return v;
        }
        Self::binop_interval(op, a.concretize(geom), b.concretize(geom))
    }

    /// Plain interval arithmetic; inputs are guaranteed coefficient-free.
    fn binop_interval(op: AluOp, a: AbsVal, b: AbsVal) -> AbsVal {
        let top = AbsVal::top(a.lane_dep || b.lane_dep, a.warp_dep || b.warp_dep);
        let exact = |lo: Option<u64>, hi: Option<u64>, stride: u64| match (lo, hi) {
            (Some(lo), Some(hi)) => {
                AbsVal { lo, hi, stride: if lo == hi { 0 } else { stride.max(1) }, ..top }
            }
            _ => top,
        };
        match op {
            AluOp::Add => {
                exact(a.lo.checked_add(b.lo), a.hi.checked_add(b.hi), gcd(a.stride, b.stride))
            }
            AluOp::Sub => {
                exact(a.lo.checked_sub(b.hi), a.hi.checked_sub(b.lo), gcd(a.stride, b.stride))
            }
            AluOp::Mul => {
                if b.stride == 0 {
                    Self::scale(a, b.lo).with_deps(top)
                } else if a.stride == 0 {
                    Self::scale(b, a.lo).with_deps(top)
                } else {
                    exact(a.lo.checked_mul(b.lo), a.hi.checked_mul(b.hi), 1)
                }
            }
            AluOp::Shl => {
                if b.stride == 0 && b.lo < 64 {
                    Self::scale(a, 1u64 << b.lo).with_deps(top)
                } else {
                    top
                }
            }
            AluOp::Shr => {
                if b.stride == 0 && b.lo < 64 {
                    let k = b.lo as u32;
                    AbsVal {
                        lo: a.lo >> k,
                        hi: a.hi >> k,
                        stride: if a.lo >> k == a.hi >> k { 0 } else { 1 },
                        ..top
                    }
                } else {
                    top
                }
            }
            AluOp::And => {
                let cap = a.hi.min(b.hi); // x & y <= min(x, y)
                if cap == u64::MAX {
                    top
                } else {
                    AbsVal { lo: 0, hi: cap, stride: if cap == 0 { 0 } else { 1 }, ..top }
                }
            }
            AluOp::Or | AluOp::Xor => {
                let m = a.hi.max(b.hi);
                if m >= 1 << 63 {
                    top
                } else {
                    let hi = (m + 1).next_power_of_two() - 1;
                    AbsVal { lo: 0, hi, stride: if hi == 0 { 0 } else { 1 }, ..top }
                }
            }
            AluOp::DivU => {
                if b.stride == 0 && b.lo > 0 {
                    let (lo, hi) = (a.lo / b.lo, a.hi / b.lo);
                    AbsVal { lo, hi, stride: if lo == hi { 0 } else { 1 }, ..top }
                } else if a.bounded() {
                    // Dividing by anything (0 yields 0) cannot exceed a.
                    AbsVal { lo: 0, hi: a.hi, stride: if a.hi == 0 { 0 } else { 1 }, ..top }
                } else {
                    top
                }
            }
            AluOp::RemU => {
                // rem-by-zero yields the dividend, so the dividend's bound
                // always holds; a provably nonzero divisor tightens it.
                let mut hi = a.hi;
                if b.lo > 0 && b.bounded() {
                    hi = hi.min(b.hi - 1);
                }
                if hi == u64::MAX {
                    top
                } else {
                    AbsVal { lo: 0, hi, stride: if hi == 0 { 0 } else { 1 }, ..top }
                }
            }
            AluOp::MinU => exact(Some(a.lo.min(b.lo)), Some(a.hi.min(b.hi)), 1),
            AluOp::MaxU => {
                if a.bounded() && b.bounded() {
                    exact(Some(a.lo.max(b.lo)), Some(a.hi.max(b.hi)), 1)
                } else {
                    top
                }
            }
            AluOp::SltU | AluOp::Seq | AluOp::Sne => AbsVal { lo: 0, hi: 1, stride: 1, ..top },
        }
    }

    fn scale(a: AbsVal, c: u64) -> AbsVal {
        if c == 0 {
            return AbsVal::constant(0).with_deps(a);
        }
        match (a.lo.checked_mul(c), a.hi.checked_mul(c)) {
            (Some(lo), Some(hi)) => AbsVal {
                lo,
                hi,
                stride: if lo == hi { 0 } else { a.stride.checked_mul(c).unwrap_or(1).max(1) },
                lane_dep: a.lane_dep,
                warp_dep: a.warp_dep,
                wcoef: 0,
                bcoef: 0,
            },
            _ => AbsVal::top(a.lane_dep, a.warp_dep),
        }
    }

    /// Add a signed byte offset (memory operands).
    pub(crate) fn offset(self, off: i64, geom: Geom) -> AbsVal {
        let c = AbsVal::constant(off.unsigned_abs());
        if off >= 0 {
            Self::binop(AluOp::Add, self, c, geom)
        } else {
            Self::binop(AluOp::Sub, self, c, geom)
        }
    }
}

/// One observation of the launch initializer: the register file it
/// produced for warp `warp` of block `block` (whatever the SM/slot
/// placement of the probe was).
#[derive(Debug, Clone, Copy)]
pub struct EntryProbe<'a> {
    /// Block id the initializer was called for.
    pub block: u64,
    /// Warp id within the block.
    pub warp: u64,
    /// `regs[lane][reg]`: the initial register file per lane.
    pub regs: &'a [[u64; NUM_REGS]],
    /// Bitmask of registers the initializer explicitly wrote.
    pub set: u32,
}

/// The abstract entry state of a kernel: which registers the launch
/// initializer provably sets, and the per-register value — either an
/// affine-in-(warp, block) symbolic value recovered from the probes, or a
/// joined envelope marked `warp_dep` when no affine fit explains them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryState {
    /// Bitmask of registers set by *every* probed initializer call.
    pub defined: u32,
    /// Per-register value envelope (architectural zero when never set).
    pub vals: [AbsVal; NUM_REGS],
}

impl Default for EntryState {
    fn default() -> Self {
        // No initializer: registers are architecturally zeroed but count
        // as uninitialized for the def-before-use check.
        EntryState { defined: 0, vals: [AbsVal::constant(0); NUM_REGS] }
    }
}

/// The lane envelope of one probed register: a coefficient-free strided
/// interval over the lanes of the probe.
fn lane_envelope(regs: &[[u64; NUM_REGS]], r: usize) -> AbsVal {
    let lanes = regs.iter().map(|lane| lane[r]);
    let lo = lanes.clone().min().unwrap_or(0);
    let hi = lanes.clone().max().unwrap_or(0);
    let stride = regs.iter().map(|lane| lane[r] - lo).fold(0, gcd);
    AbsVal {
        lo,
        hi,
        stride: if lo == hi { 0 } else { stride.max(1) },
        lane_dep: lo != hi,
        warp_dep: false,
        wcoef: 0,
        bcoef: 0,
    }
}

impl EntryState {
    /// Fold one probe of the launch initializer into the envelope:
    /// `regs[lane][reg]` is the initial register file the probe produced
    /// and `set` the mask of registers it explicitly wrote.
    ///
    /// Intra-probe variation marks a register lane-dependent; variation
    /// between probes marks it warp-dependent. `defined` intersects across
    /// probes, so a register only some warps receive stays "uninitialized".
    /// This is the coefficient-free legacy path; [`EntryState::fit`]
    /// additionally recovers affine warp/block coefficients.
    pub fn add_probe(&mut self, regs: &[[u64; NUM_REGS]], set: u32, first: bool) {
        for r in 0..NUM_REGS {
            let probe = lane_envelope(regs, r);
            if first {
                self.vals[r] = probe;
            } else if self.vals[r] != probe {
                self.vals[r] = AbsVal::join(self.vals[r], probe, Geom::ONE);
                self.vals[r].warp_dep = true;
            }
        }
        if first {
            self.defined = set;
        } else {
            self.defined &= set;
        }
    }

    /// Fit an entry state to a set of initializer probes: per register,
    /// try to explain every probe as the `(block, warp) == (0, 0)` lane
    /// envelope shifted by `wcoef * warp + bcoef * block` (coefficients
    /// read off the `(0, 1)` and `(1, 0)` probes, validated against *all*
    /// probes with wrapping arithmetic — so placement-dependent values,
    /// which vary between probes sharing the same ids, fail validation).
    /// Registers no affine model explains fall back to the joined,
    /// `warp_dep`-marked envelope [`add_probe`] would have produced.
    pub fn fit(probes: &[EntryProbe<'_>], geom: Geom) -> EntryState {
        let mut st = EntryState::default();
        let Some(base_probe) = probes.iter().find(|p| p.block == 0 && p.warp == 0) else {
            // No origin probe: fall back to the joined envelope.
            for (i, p) in probes.iter().enumerate() {
                st.add_probe(p.regs, p.set, i == 0);
            }
            return st;
        };
        st.defined = probes.iter().fold(u32::MAX, |acc, p| acc & p.set);
        let wprobe = probes.iter().find(|p| p.block == 0 && p.warp == 1);
        let bprobe = probes.iter().find(|p| p.block == 1 && p.warp == 0);
        'reg: for r in 0..NUM_REGS {
            let base = lane_envelope(base_probe.regs, r);
            let wcoef = match (geom.warps_per_block > 1, wprobe) {
                (true, Some(p)) => lane_envelope(p.regs, r).lo.wrapping_sub(base.lo) as i64,
                (true, None) => {
                    st.vals[r] = joined_envelope(probes, r);
                    continue 'reg;
                }
                (false, _) => 0,
            };
            let bcoef = match (geom.grid_blocks > 1, bprobe) {
                (true, Some(p)) => lane_envelope(p.regs, r).lo.wrapping_sub(base.lo) as i64,
                (true, None) => {
                    st.vals[r] = joined_envelope(probes, r);
                    continue 'reg;
                }
                (false, _) => 0,
            };
            for p in probes {
                let env = lane_envelope(p.regs, r);
                let shape_ok = env.hi.wrapping_sub(env.lo) == base.hi.wrapping_sub(base.lo)
                    && env.stride == base.stride
                    && env.lane_dep == base.lane_dep;
                let predicted = base
                    .lo
                    .wrapping_add((wcoef as u64).wrapping_mul(p.warp))
                    .wrapping_add((bcoef as u64).wrapping_mul(p.block));
                if !shape_ok || env.lo != predicted {
                    st.vals[r] = joined_envelope(probes, r);
                    continue 'reg;
                }
            }
            st.vals[r] = AbsVal { wcoef, bcoef, ..base };
        }
        st
    }
}

/// The joined (affine-fit-failed) envelope of one register over every
/// probe: exactly what repeated [`EntryState::add_probe`] would produce.
fn joined_envelope(probes: &[EntryProbe<'_>], r: usize) -> AbsVal {
    let mut v = lane_envelope(probes[0].regs, r);
    for p in &probes[1..] {
        let e = lane_envelope(p.regs, r);
        if v != e {
            v = AbsVal::join(v, e, Geom::ONE);
            v.warp_dep = true;
        }
    }
    v
}

/// What the memory checks need to know about the system and launch.
#[derive(Debug, Clone, Copy)]
pub struct MemModel {
    /// Size of the scratchpad/stash in bytes (`None` disables the bounds
    /// and atomic-address checks).
    pub scratch_bytes: Option<u64>,
    /// Warps per thread block (1 disables the inter-warp race check).
    pub warps_per_block: usize,
}

/// How many times a node is re-joined before its changed registers are
/// widened straight to top (loops converge immediately after).
const WIDEN_AFTER: u32 = 8;

struct LocalAccess {
    pc: usize,
    write: bool,
    lo: u64,
    hi: u64, // inclusive last byte
    bounded: bool,
    warp_dep: bool,
}

struct DmaXfer {
    pc: usize,
    load: bool,
    lo: u64,
    hi: u64,
    bounded: bool,
}

/// The abstract register file at the entry of every reachable pc, shared
/// by the memory checks and the global race pass.
pub(crate) type States = Vec<Option<[AbsVal; NUM_REGS]>>;

pub(crate) fn reg_val(states: &States, pc: usize, r: gsi_isa::Reg) -> AbsVal {
    states[pc].map_or_else(|| AbsVal::top(true, true), |s| s[r.0 as usize])
}

/// Run every scratchpad/DMA memory-hazard check over a precomputed
/// fixpoint. Symbolic values are concretized over `geom` at each use, so
/// the whole-range checks see the footprint of every warp and block.
pub fn check_memory(
    program: &Program,
    cfg: &Cfg,
    model: &MemModel,
    states: &States,
    geom: Geom,
    findings: &mut Vec<Finding>,
) {
    let instrs = program.instrs();

    let mut locals: Vec<LocalAccess> = Vec::new();
    let mut dmas: Vec<DmaXfer> = Vec::new();

    for (pc, i) in instrs.iter().enumerate() {
        if !cfg.reachable[pc] || states[pc].is_none() {
            continue;
        }
        match i {
            Instr::LdLocal { addr, offset, .. } | Instr::StLocal { addr, offset, .. } => {
                let base = reg_val(states, pc, *addr).offset(*offset, geom).concretize(geom);
                let write = matches!(i, Instr::StLocal { .. });
                locals.push(LocalAccess {
                    pc,
                    write,
                    lo: base.lo,
                    hi: base.hi.saturating_add(WORD_BYTES - 1),
                    bounded: base.bounded(),
                    warp_dep: base.warp_dep,
                });
            }
            Instr::DmaLoad { local, bytes, .. } | Instr::DmaStore { local, bytes, .. } => {
                let base = reg_val(states, pc, *local).concretize(geom);
                dmas.push(DmaXfer {
                    pc,
                    load: matches!(i, Instr::DmaLoad { .. }),
                    lo: base.lo,
                    hi: base.hi.saturating_add(bytes.saturating_sub(1)),
                    bounded: base.bounded() && *bytes > 0,
                });
            }
            Instr::StashMap { local, bytes, .. } => {
                let base = reg_val(states, pc, *local).concretize(geom);
                if let Some(size) = model.scratch_bytes {
                    check_bounds(
                        program,
                        pc,
                        base.lo,
                        base.hi.saturating_add(bytes.saturating_sub(1)),
                        base.bounded() && *bytes > 0,
                        size,
                        "stash mapping",
                        findings,
                    );
                }
            }
            Instr::Atom { addr, .. } => {
                if let Some(size) = model.scratch_bytes {
                    let a = reg_val(states, pc, *addr).concretize(geom);
                    if a.bounded() && a.hi < size {
                        findings.push(finding(
                            program,
                            FindingKind::AtomicOnScratchpad,
                            Severity::Warn,
                            pc,
                            format!(
                                "atomic address in {:#x}..={:#x} lies inside the \
                                 {size}-byte scratchpad range; atomics execute at the \
                                 shared L2 and cannot touch local memory",
                                a.lo, a.hi
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
    }

    if let Some(size) = model.scratch_bytes {
        for a in &locals {
            check_bounds(program, a.pc, a.lo, a.hi, a.bounded, size, "access", findings);
        }
        for d in &dmas {
            check_bounds(program, d.pc, d.lo, d.hi, d.bounded, size, "DMA transfer", findings);
        }
    }

    // Same-phase races: two local accesses, at least one a write, whose
    // byte ranges can overlap, with no barrier forced between them. Two
    // warp-dependent addresses are assumed partitioned by warp.
    if model.warps_per_block > 1 {
        for (ai, a) in locals.iter().enumerate() {
            let reach = cfg.reach_without_barrier(a.pc, program);
            for b in locals.iter().skip(ai + 1) {
                if !(a.write || b.write)
                    || !a.bounded
                    || !b.bounded
                    || (a.warp_dep && b.warp_dep)
                    || !overlap(a.lo, a.hi, b.lo, b.hi)
                {
                    continue;
                }
                // Same phase = either can reach the other barrier-free.
                if reach[b.pc] || cfg.reach_without_barrier(b.pc, program)[a.pc] {
                    let verb = if a.write && b.write { "write/write" } else { "read/write" };
                    findings.push(finding(
                        program,
                        FindingKind::LocalRace,
                        Severity::Warn,
                        b.pc.max(a.pc),
                        format!(
                            "{verb} race: bytes {:#x}..={:#x} here can overlap \
                             {:#x}..={:#x} at {} with no barrier between them, and \
                             neither address is partitioned by warp",
                            b.lo,
                            b.hi,
                            a.lo,
                            a.hi,
                            gsi_isa::asm::location(program, a.pc.min(b.pc)),
                        ),
                    ));
                }
            }
        }
    }

    // DMA hazards: a transfer's scratchpad region touched by the pipeline
    // with no barrier after the transfer started, or two overlapping
    // transfers with no barrier between them.
    for d in dmas.iter().filter(|d| d.bounded) {
        let reach = cfg.reach_without_barrier(d.pc, program);
        for a in locals.iter().filter(|a| a.bounded) {
            // A pending dma.ld poisons reads and writes; a pending dma.st
            // only conflicts with writes to the region it is draining.
            if (d.load || a.write) && reach[a.pc] && overlap(d.lo, d.hi, a.lo, a.hi) {
                findings.push(finding(
                    program,
                    FindingKind::DmaNoWait,
                    Severity::Warn,
                    a.pc,
                    format!(
                        "scratchpad bytes {:#x}..={:#x} touched with the DMA transfer \
                         at {} ({:#x}..={:#x}) possibly still in flight — no barrier \
                         between the transfer and this access",
                        a.lo,
                        a.hi,
                        gsi_isa::asm::location(program, d.pc),
                        d.lo,
                        d.hi,
                    ),
                ));
            }
        }
        for e in dmas.iter().filter(|e| e.bounded) {
            if (reach[e.pc] || (e.pc == d.pc && reach[d.pc])) && overlap(d.lo, d.hi, e.lo, e.hi) {
                findings.push(finding(
                    program,
                    FindingKind::DmaOverlap,
                    Severity::Warn,
                    e.pc,
                    format!(
                        "DMA over {:#x}..={:#x} can start while the transfer at {} \
                         ({:#x}..={:#x}) overlapping it is still in flight",
                        e.lo,
                        e.hi,
                        gsi_isa::asm::location(program, d.pc),
                        d.lo,
                        d.hi,
                    ),
                ));
            }
        }
    }
}

fn overlap(a_lo: u64, a_hi: u64, b_lo: u64, b_hi: u64) -> bool {
    a_lo <= b_hi && b_lo <= a_hi
}

#[allow(clippy::too_many_arguments)]
fn check_bounds(
    program: &Program,
    pc: usize,
    lo: u64,
    hi: u64,
    bounded: bool,
    size: u64,
    what: &str,
    findings: &mut Vec<Finding>,
) {
    if lo >= size {
        // Every possible address is out of bounds (`lo` is sound even for
        // unbounded values): definitely a bug.
        findings.push(finding(
            program,
            FindingKind::ScratchpadOob,
            Severity::Error,
            pc,
            format!(
                "scratchpad {what} at bytes {lo:#x}..={hi:#x} is entirely outside \
                 the {size}-byte local memory"
            ),
        ));
    } else if bounded && hi >= size {
        findings.push(finding(
            program,
            FindingKind::ScratchpadOob,
            Severity::Warn,
            pc,
            format!(
                "scratchpad {what} at bytes {lo:#x}..={hi:#x} can exceed the \
                 {size}-byte local memory"
            ),
        ));
    }
}

/// Forward fixpoint: the abstract register file at the entry of every
/// reachable instruction. Symbolic coefficients flow through the affine
/// transfer rules, so the states stay parametric in the thread ids.
pub(crate) fn fixpoint(program: &Program, cfg: &Cfg, entry: &EntryState, geom: Geom) -> States {
    let instrs = program.instrs();
    let len = instrs.len();
    let mut states: States = vec![None; len];
    let mut joins = vec![0u32; len];
    states[0] = Some(entry.vals);
    let mut worklist = vec![0usize];
    let mut on_list = vec![false; len];
    on_list[0] = true;

    while let Some(pc) = worklist.pop() {
        on_list[pc] = false;
        let Some(state) = states[pc] else { continue };
        let out = transfer(&instrs[pc], state, geom);
        for &succ in cfg.succs(pc) {
            let merged = match states[succ] {
                None => out,
                Some(old) => {
                    let mut m = [AbsVal::constant(0); NUM_REGS];
                    let widen = joins[succ] >= WIDEN_AFTER;
                    for r in 0..NUM_REGS {
                        m[r] = AbsVal::join(old[r], out[r], geom);
                        if widen && m[r] != old[r] {
                            m[r] = AbsVal::top(m[r].lane_dep, m[r].warp_dep);
                        }
                    }
                    m
                }
            };
            if states[succ] != Some(merged) {
                joins[succ] += 1;
                states[succ] = Some(merged);
                if !on_list[succ] {
                    on_list[succ] = true;
                    worklist.push(succ);
                }
            }
        }
    }
    states
}

fn transfer(i: &Instr, mut s: [AbsVal; NUM_REGS], geom: Geom) -> [AbsVal; NUM_REGS] {
    let operand = |s: &[AbsVal; NUM_REGS], o: &Operand| match o {
        Operand::Reg(r) => s[r.0 as usize],
        Operand::Imm(v) => AbsVal::constant(*v as u64),
    };
    match i {
        Instr::Alu { op, dst, a, b } => {
            s[dst.0 as usize] = AbsVal::binop(*op, operand(&s, a), operand(&s, b), geom);
        }
        Instr::Ldi { dst, imm } => s[dst.0 as usize] = AbsVal::constant(*imm),
        Instr::Sel { dst, cond, a, b } => {
            let c = s[cond.0 as usize];
            s[dst.0 as usize] =
                AbsVal::join(operand(&s, a), operand(&s, b), geom).with_deps(AbsVal {
                    lane_dep: c.lane_dep,
                    warp_dep: c.warp_dep,
                    ..AbsVal::constant(0)
                });
        }
        _ => {
            if let Some(dst) = i.writes_dest() {
                // Loads and atomics produce unknown, fully variant data.
                s[dst.0 as usize] = AbsVal::top(true, true);
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_isa::{Operand, ProgramBuilder, Reg};

    const SCRATCH: u64 = 16 * 1024;

    fn analyze(
        entry: &EntryState,
        warps: usize,
        f: impl FnOnce(&mut ProgramBuilder),
    ) -> Vec<Finding> {
        let mut b = ProgramBuilder::new("t");
        f(&mut b);
        let p = b.build().unwrap();
        let mut findings = Vec::new();
        let cfg = Cfg::build(&p, &mut findings);
        findings.clear();
        let model = MemModel { scratch_bytes: Some(SCRATCH), warps_per_block: warps };
        let geom = Geom { warps_per_block: warps as u64, grid_blocks: 1 };
        let states = fixpoint(&p, &cfg, entry, geom);
        check_memory(&p, &cfg, &model, &states, geom, &mut findings);
        findings
    }

    fn tid_entry() -> EntryState {
        // r1 = lane id per lane (warp-dependent across probes).
        let mut e = EntryState::default();
        let mut regs = [[0u64; NUM_REGS]; 4];
        for (lane, file) in regs.iter_mut().enumerate() {
            file[1] = lane as u64;
        }
        e.add_probe(&regs, 1 << 1, true);
        for (lane, file) in regs.iter_mut().enumerate() {
            file[1] = 32 + lane as u64;
        }
        e.add_probe(&regs, 1 << 1, false);
        e
    }

    #[test]
    fn interval_arithmetic_stays_exact_for_affine_addresses() {
        let e = tid_entry();
        assert_eq!(e.vals[1].lo, 0);
        assert_eq!(e.vals[1].hi, 35);
        assert!(e.vals[1].lane_dep);
        assert!(e.vals[1].warp_dep);
        let scaled = AbsVal::binop(AluOp::Shl, e.vals[1], AbsVal::constant(3), Geom::ONE);
        assert_eq!((scaled.lo, scaled.hi), (0, 280));
        assert_eq!(scaled.stride, 8);
        assert!(scaled.warp_dep);
    }

    #[test]
    fn definite_oob_store_is_an_error() {
        let findings = analyze(&EntryState::default(), 1, |b| {
            b.ldi(Reg(1), SCRATCH + 64);
            b.st_local(Reg(1), Reg(1), 0);
            b.exit();
        });
        let f = findings.iter().find(|f| f.kind == FindingKind::ScratchpadOob).unwrap();
        assert_eq!(f.severity, Severity::Error);
        assert_eq!(f.pc, 1);
    }

    #[test]
    fn possible_oob_is_a_warning() {
        let findings = analyze(&EntryState::default(), 1, |b| {
            b.ldi(Reg(1), SCRATCH - 4); // word straddles the end
            b.ld_local(Reg(2), Reg(1), 0);
            b.exit();
        });
        let f = findings.iter().find(|f| f.kind == FindingKind::ScratchpadOob).unwrap();
        assert_eq!(f.severity, Severity::Warn);
    }

    #[test]
    fn tid_partitioned_stores_do_not_race() {
        let e = tid_entry();
        let findings = analyze(&e, 2, |b| {
            b.shl(Reg(2), Reg(1), Operand::Imm(3));
            b.st_local(Reg(2), Reg(2), 0);
            b.ld_local(Reg(3), Reg(2), 0);
            b.exit();
        });
        assert!(findings.iter().all(|f| f.kind != FindingKind::LocalRace), "{findings:?}");
    }

    #[test]
    fn warp_invariant_overlapping_writes_race() {
        let findings = analyze(&EntryState::default(), 2, |b| {
            b.ldi(Reg(1), 0x40);
            b.st_local(Operand::Imm(1), Reg(1), 0);
            b.st_local(Operand::Imm(2), Reg(1), 0);
            b.exit();
        });
        let f = findings.iter().find(|f| f.kind == FindingKind::LocalRace).unwrap();
        assert_eq!(f.severity, Severity::Warn);
        assert!(f.message.contains("write/write"));
    }

    #[test]
    fn barrier_between_accesses_suppresses_the_race() {
        let findings = analyze(&EntryState::default(), 2, |b| {
            b.ldi(Reg(1), 0x40);
            b.st_local(Operand::Imm(1), Reg(1), 0);
            b.bar();
            b.ld_local(Reg(2), Reg(1), 0);
            b.exit();
        });
        assert!(findings.iter().all(|f| f.kind != FindingKind::LocalRace), "{findings:?}");
    }

    #[test]
    fn dma_then_use_without_barrier_is_flagged() {
        let findings = analyze(&EntryState::default(), 1, |b| {
            b.ldi(Reg(1), 0x10_0000); // global base
            b.ldi(Reg(2), 0); // local base
            b.dma_load(Reg(1), Reg(2), 256);
            b.ld_local(Reg(3), Reg(2), 0);
            b.exit();
        });
        let f = findings.iter().find(|f| f.kind == FindingKind::DmaNoWait).unwrap();
        assert_eq!(f.pc, 3);
    }

    #[test]
    fn dma_then_barrier_then_use_is_clean() {
        let findings = analyze(&EntryState::default(), 1, |b| {
            b.ldi(Reg(1), 0x10_0000);
            b.ldi(Reg(2), 0);
            b.dma_load(Reg(1), Reg(2), 256);
            b.bar();
            b.ld_local(Reg(3), Reg(2), 0);
            b.exit();
        });
        assert!(findings.iter().all(|f| f.kind != FindingKind::DmaNoWait), "{findings:?}");
    }

    #[test]
    fn overlapping_dmas_in_one_phase_are_flagged() {
        let findings = analyze(&EntryState::default(), 1, |b| {
            b.ldi(Reg(1), 0x10_0000);
            b.ldi(Reg(2), 0);
            b.dma_load(Reg(1), Reg(2), 256);
            b.dma_store(Reg(1), Reg(2), 256);
            b.exit();
        });
        assert!(findings.iter().any(|f| f.kind == FindingKind::DmaOverlap), "{findings:?}");
    }

    #[test]
    fn atomic_on_small_address_is_linted() {
        let findings = analyze(&EntryState::default(), 1, |b| {
            b.ldi(Reg(1), 0x80);
            b.atom_add(Reg(2), Reg(1), Operand::Imm(1), gsi_isa::MemSem::Relaxed);
            b.exit();
        });
        assert!(findings.iter().any(|f| f.kind == FindingKind::AtomicOnScratchpad));
    }

    #[test]
    fn loops_converge_via_widening() {
        // An induction variable grows without bound; widening must end it.
        let e = tid_entry();
        let findings = analyze(&e, 1, |b| {
            b.ldi(Reg(2), 0);
            let top = b.here();
            b.addi(Reg(2), Reg(2), 8);
            b.ld_local(Reg(3), Reg(2), 0);
            b.subi(Reg(1), Reg(1), 1);
            b.bra_nz(Reg(1), top);
            b.exit();
        });
        // The widened address is unbounded: no OOB claim may be made.
        assert!(findings.iter().all(|f| f.kind != FindingKind::ScratchpadOob), "{findings:?}");
    }

    // ---- affine / symbolic-thread domain -------------------------------

    const GEOM: Geom = Geom { warps_per_block: 4, grid_blocks: 2 };

    /// r1 = 0x100 + 0x40*warp + 0x400*block, lane-invariant.
    fn affine_probes() -> Vec<[[u64; NUM_REGS]; 2]> {
        let mut out = Vec::new();
        for (block, warp) in [(0u64, 0u64), (0, 1), (1, 0), (0, 3), (1, 3)] {
            let mut regs = [[0u64; NUM_REGS]; 2];
            for file in regs.iter_mut() {
                file[1] = 0x100 + 0x40 * warp + 0x400 * block;
            }
            out.push(regs);
        }
        out
    }

    #[test]
    fn fit_recovers_affine_warp_and_block_coefficients() {
        let regs = affine_probes();
        let ids = [(0u64, 0u64), (0, 1), (1, 0), (0, 3), (1, 3)];
        let probes: Vec<EntryProbe<'_>> = ids
            .iter()
            .zip(&regs)
            .map(|(&(block, warp), r)| EntryProbe { block, warp, regs: r, set: 1 << 1 })
            .collect();
        let e = EntryState::fit(&probes, GEOM);
        let v = e.vals[1];
        assert_eq!((v.lo, v.hi, v.stride), (0x100, 0x100, 0));
        assert_eq!((v.wcoef, v.bcoef), (0x40, 0x400));
        assert!(!v.warp_dep, "affine values are exact, not warp_dep");
        assert_eq!(e.defined, 1 << 1);
    }

    #[test]
    fn fit_falls_back_when_probes_defy_the_affine_model() {
        // Placement-dependent value: two probes with the same (block, warp)
        // coordinates would disagree, but even a non-linear progression
        // over warp ids must be rejected.
        let mut regs = affine_probes();
        regs[3][0][1] = 0xdead; // warp 3 breaks the line
        regs[3][1][1] = 0xdead;
        let ids = [(0u64, 0u64), (0, 1), (1, 0), (0, 3), (1, 3)];
        let probes: Vec<EntryProbe<'_>> = ids
            .iter()
            .zip(&regs)
            .map(|(&(block, warp), r)| EntryProbe { block, warp, regs: r, set: 1 << 1 })
            .collect();
        let e = EntryState::fit(&probes, GEOM);
        let v = e.vals[1];
        assert!(v.warp_dep, "non-affine variation must be marked warp_dep");
        assert_eq!((v.wcoef, v.bcoef), (0, 0));
        assert!(v.lo <= 0x100 && v.hi >= 0xdead);
    }

    #[test]
    fn concretize_folds_coefficient_spans() {
        let v = AbsVal { wcoef: 0x40, bcoef: 0x400, ..AbsVal::constant(0x100) };
        let c = v.concretize(GEOM);
        assert_eq!(c.lo, 0x100);
        assert_eq!(c.hi, 0x100 + 0x40 * 3 + 0x400);
        assert_eq!(c.stride, 0x40);
        assert!(c.warp_dep);
        assert_eq!((c.wcoef, c.bcoef), (0, 0));
        // Negative coefficient extends downward.
        let n = AbsVal { wcoef: -0x40, ..AbsVal::constant(0x1000) };
        let cn = n.concretize(GEOM);
        assert_eq!((cn.lo, cn.hi), (0x1000 - 0x40 * 3, 0x1000));
        // Underflow past zero means the fit saw wrapping: degrade to top.
        let w = AbsVal { wcoef: -0x40, ..AbsVal::constant(0x20) };
        assert!(w.concretize(GEOM).is_top());
    }

    #[test]
    fn coefficients_flow_through_affine_arithmetic() {
        let v = AbsVal { wcoef: 8, ..AbsVal::constant(0x100) };
        let shifted = AbsVal::binop(AluOp::Shl, v, AbsVal::constant(2), GEOM);
        assert_eq!((shifted.lo, shifted.wcoef), (0x400, 32));
        let summed = AbsVal::binop(AluOp::Add, shifted, AbsVal::constant(0x10), GEOM);
        assert_eq!((summed.lo, summed.wcoef), (0x410, 32));
        let diff = AbsVal::binop(AluOp::Sub, summed, v, GEOM);
        assert_eq!((diff.lo, diff.wcoef), (0x310, 24));
        let scaled = AbsVal::binop(AluOp::Mul, v, AbsVal::constant(3), GEOM);
        assert_eq!((scaled.lo, scaled.wcoef), (0x300, 24));
    }

    #[test]
    fn non_affine_ops_concretize_before_interval_math() {
        let v = AbsVal { wcoef: 0x40, ..AbsVal::constant(0x100) };
        // Shr has no affine rule: the result must cover every warp's value.
        let r = AbsVal::binop(AluOp::Shr, v, AbsVal::constant(4), GEOM);
        assert_eq!((r.lo, r.hi), (0x10, (0x100 + 0x40 * 3) >> 4));
        assert!(r.warp_dep);
        assert_eq!((r.wcoef, r.bcoef), (0, 0));
    }

    #[test]
    fn join_preserves_matching_coefficients_and_concretizes_mismatches() {
        let a = AbsVal { wcoef: 8, ..AbsVal::constant(0x100) };
        let b = AbsVal { wcoef: 8, ..AbsVal::constant(0x120) };
        let j = AbsVal::join(a, b, GEOM);
        assert_eq!((j.lo, j.hi, j.stride, j.wcoef), (0x100, 0x120, 0x20, 8));
        assert!(!j.warp_dep);
        let c = AbsVal { wcoef: 16, ..AbsVal::constant(0x100) };
        let m = AbsVal::join(a, c, GEOM);
        assert_eq!((m.wcoef, m.bcoef), (0, 0));
        assert!(m.warp_dep, "mismatched coefficients concretize");
        assert!(m.hi >= 0x100 + 16 * 3);
    }
}
