//! The synchronization-order graph: which program points are ordered by
//! the kernel's synchronization primitives, and which can run concurrently
//! in different warps.
//!
//! Two facts are computed over the CFG:
//!
//! 1. **Barrier phases** ([`SyncGraph::same_phase`]): `bar` splits a
//!    block's execution into phases every warp crosses together. Two
//!    program points are in the same phase — and therefore concurrent
//!    across warps of one block — when either can reach the other without
//!    executing a barrier. Barriers do *not* order distinct blocks, so the
//!    inter-block race check never consults this.
//! 2. **Critical-section membership** ([`SyncGraph::guarded`]): a forward
//!    *must* dataflow over acquire/release atomics. A point is guarded
//!    when every path from the entry enters an acquire (`atom.*.Acquire` /
//!    `AcqRel`) with no intervening release. Two conflicting accesses that
//!    are both guarded are assumed mutually excluded by the lock the
//!    acquire took — the analysis is lock-identity-blind, which keeps the
//!    global-lock work-queue idiom (UTS) clean without modeling lock
//!    values.
//!
//! Kernel launch and exit act as synchronization boundaries implicitly:
//! the analysis only relates accesses of one kernel instance, and DMA
//! drains at kernel end are therefore never racy with the *next* launch.

use crate::cfg::Cfg;
use gsi_isa::{Instr, Program};
use std::collections::BTreeMap;

/// Happens-before facts over one kernel's CFG (see the module docs).
#[derive(Debug)]
pub struct SyncGraph {
    /// `guarded[pc]`: every path to `pc` holds an acquire with no release.
    guarded: Vec<bool>,
    /// Cached barrier-free reachability for the program points the race
    /// pass asked about.
    reach: BTreeMap<usize, Vec<bool>>,
}

impl SyncGraph {
    /// Build the graph for `program`, caching barrier-free reachability
    /// for each pc in `pcs` (the global accesses the race pass will ask
    /// [`same_phase`](Self::same_phase) about).
    pub fn build(program: &Program, cfg: &Cfg, pcs: &[usize]) -> SyncGraph {
        let guarded = guarded_dataflow(program, cfg);
        let mut reach = BTreeMap::new();
        for &pc in pcs {
            reach.entry(pc).or_insert_with(|| cfg.reach_without_barrier(pc, program));
        }
        SyncGraph { guarded, reach }
    }

    /// Whether every path from the entry to `pc` is inside an
    /// acquire-release critical section.
    pub fn guarded(&self, pc: usize) -> bool {
        self.guarded.get(pc).copied().unwrap_or(false)
    }

    /// Whether warps of one block can execute `a` and `b` concurrently:
    /// the same program point always races with itself across warps, and
    /// two distinct points do unless a barrier separates them on every
    /// path (neither reaches the other barrier-free).
    pub fn same_phase(&self, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        let fwd = self.reach.get(&a).is_none_or(|r| r.get(b).copied().unwrap_or(true));
        let bwd = self.reach.get(&b).is_none_or(|r| r.get(a).copied().unwrap_or(true));
        fwd || bwd
    }
}

/// Forward must-analysis: `Some(true)` = inside a critical section on
/// every path, `Some(false)` = provably outside on some path structure,
/// `None` = not yet visited (top). Meet is logical AND.
fn guarded_dataflow(program: &Program, cfg: &Cfg) -> Vec<bool> {
    let instrs = program.instrs();
    let len = instrs.len();
    let mut state: Vec<Option<bool>> = vec![None; len];
    if len == 0 {
        return Vec::new();
    }
    state[0] = Some(false);
    let mut work = vec![0usize];
    let mut queued = vec![false; len];
    queued[0] = true;
    while let Some(pc) = work.pop() {
        queued[pc] = false;
        let Some(inb) = state[pc] else { continue };
        let out = match &instrs[pc] {
            Instr::Atom { sem, .. } if sem.is_acquire() => true,
            Instr::Atom { sem, .. } if sem.is_release() => false,
            _ => inb,
        };
        for &succ in cfg.succs(pc) {
            let merged = match state[succ] {
                None => out,
                Some(old) => old && out,
            };
            if state[succ] != Some(merged) {
                state[succ] = Some(merged);
                if !queued[succ] {
                    queued[succ] = true;
                    work.push(succ);
                }
            }
        }
    }
    state.into_iter().map(|s| s == Some(true)).collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_isa::{MemSem, Operand, ProgramBuilder, Reg};

    fn graph(f: impl FnOnce(&mut ProgramBuilder)) -> (Program, SyncGraph) {
        let mut b = ProgramBuilder::new("t");
        f(&mut b);
        let p = b.build().unwrap();
        let mut findings = Vec::new();
        let cfg = Cfg::build(&p, &mut findings);
        let pcs: Vec<usize> = (0..p.len()).collect();
        let g = SyncGraph::build(&p, &cfg, &pcs);
        (p, g)
    }

    use gsi_isa::Program;

    #[test]
    fn acquire_release_brackets_guard_the_section() {
        let (_, g) = graph(|b| {
            b.ldi(Reg(1), 0x10_0000); // 0
            let acq = b.here();
            b.atom_cas(Reg(2), Reg(1), Operand::Imm(0), Operand::Imm(1), MemSem::Acquire); // 1
            b.bra_nz(Reg(2), acq); // 2: spin
            b.ld_global(Reg(3), Reg(1), 64); // 3: inside
            b.st_global(Reg(3), Reg(1), 64); // 4: inside
            b.atom_store(Reg(1), Operand::Imm(0), MemSem::Release); // 5
            b.st_global(Reg(3), Reg(1), 128); // 6: outside again
            b.exit(); // 7
        });
        assert!(!g.guarded(0));
        assert!(!g.guarded(1), "the acquire itself runs unguarded");
        assert!(g.guarded(2) && g.guarded(3) && g.guarded(4) && g.guarded(5));
        assert!(!g.guarded(6), "the release ends the section");
    }

    #[test]
    fn guarded_is_a_must_property_over_joins() {
        // One path acquires, the other does not: the join is unguarded.
        let (_, g) = graph(|b| {
            let join = b.label();
            b.ldi(Reg(1), 0x10_0000); // 0
            b.bra_z(Reg(1), join); // 1
            b.atom_cas(Reg(2), Reg(1), Operand::Imm(0), Operand::Imm(1), MemSem::Acquire); // 2
            b.bind(join);
            b.st_global(Reg(1), Reg(1), 0); // 3
            b.exit(); // 4
        });
        assert!(!g.guarded(3), "only one incoming path holds the lock");
    }

    #[test]
    fn barriers_split_phases_and_self_pairs_stay_concurrent() {
        let (_, g) = graph(|b| {
            b.st_global(Reg(1), Reg(1), 0); // 0
            b.bar(); // 1
            b.st_global(Reg(1), Reg(1), 0); // 2
            b.exit(); // 3
        });
        assert!(!g.same_phase(0, 2), "the barrier orders the two stores");
        assert!(g.same_phase(0, 0), "one pc races with itself across warps");
        assert!(g.same_phase(2, 2));
    }

    #[test]
    fn same_phase_without_barrier_in_either_direction() {
        let (_, g) = graph(|b| {
            b.st_global(Reg(1), Reg(1), 0); // 0
            b.st_global(Reg(1), Reg(1), 8); // 1
            b.exit(); // 2
        });
        assert!(g.same_phase(0, 1));
        assert!(g.same_phase(1, 0));
    }
}
