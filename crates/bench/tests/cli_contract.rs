//! CLI contract tests: unknown flag values must be hard usage errors
//! (exit code 2 with the usage text on stderr), never silent fallbacks —
//! a typo like `--trace-level ful` must not quietly run untraced.

#![allow(clippy::unwrap_used)] // test code asserts infallibility

use std::process::Command;

fn assert_usage_rejection(bin: &str, args: &[&str]) {
    let out = Command::new(bin).args(args).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "{bin} {args:?} must exit 2, got {:?}",
        out.status.code()
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{bin} {args:?} must print usage, got: {stderr}");
}

#[test]
fn gsi_run_rejects_unknown_trace_level() {
    assert_usage_rejection(
        env!("CARGO_BIN_EXE_gsi-run"),
        &["--workload", "spmv", "--trace-level", "ful"],
    );
}

#[test]
fn gsi_run_rejects_unknown_engine() {
    assert_usage_rejection(
        env!("CARGO_BIN_EXE_gsi-run"),
        &["--workload", "spmv", "--engine", "evnt"],
    );
}

#[test]
fn gsi_run_rejects_unknown_workload_and_flags() {
    let bin = env!("CARGO_BIN_EXE_gsi-run");
    assert_usage_rejection(bin, &["--workload", "no-such-workload"]);
    assert_usage_rejection(bin, &["--workload", "spmv", "--no-such-flag"]);
    assert_usage_rejection(bin, &["--workload", "spmv", "--blame-top", "many"]);
}

#[test]
fn sweep_rejects_unknown_trace_level_and_engine() {
    let bin = env!("CARGO_BIN_EXE_sweep");
    assert_usage_rejection(bin, &["--trace-level", "verbose"]);
    assert_usage_rejection(bin, &["--engine", "sparse"]);
}

#[test]
fn blame_check_usage_and_bad_file() {
    let bin = env!("CARGO_BIN_EXE_blame-check");
    let out = Command::new(bin).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "no args is a usage error");
    let out = Command::new(bin).arg("/nonexistent/blame.json").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "unreadable file is a usage-level error");
}

/// End-to-end: a real `--blame-out` artifact passes `blame-check`.
#[test]
fn blame_export_passes_blame_check() {
    let dir = std::env::temp_dir().join(format!("gsi-blame-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("blame.json");
    let out = Command::new(env!("CARGO_BIN_EXE_gsi-run"))
        .args(["--workload", "spmv", "--blame", "--quiet", "--blame-out"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "gsi-run --blame failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let check = Command::new(env!("CARGO_BIN_EXE_blame-check")).arg(&path).output().unwrap();
    assert!(
        check.status.success(),
        "blame-check rejected the export: {}",
        String::from_utf8_lossy(&check.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}
