//! # gsi-bench — the paper's evaluation, regenerated
//!
//! One entry point per figure of the GSI paper:
//!
//! | Paper artifact | Function | Binary |
//! |---|---|---|
//! | Table 5.1 | [`table_5_1`] | `figures --table-5-1` |
//! | Figure 6.1 (UTS, GPU coherence vs DeNovo) | [`figure_6_1`] | `figures --fig 6.1` |
//! | Figure 6.2 (UTSD) | [`figure_6_2`] | `figures --fig 6.2` |
//! | Figure 6.3 (implicit: scratchpad / +DMA / stash) | [`figure_6_3`] | `figures --fig 6.3` |
//! | Figure 6.4 (MSHR sweep 32→256) | [`figure_6_4`] | `figures --fig 6.4` |
//! | §5 "GSI adds ~5% simulation time" | [`profiling_overhead`] | `figures --overhead` |
//!
//! Every figure function returns both the rendered [`Figure`] (three
//! panels: execution-time breakdown, memory-data sub-breakdown,
//! memory-structural sub-breakdown, all normalized to the first
//! configuration, exactly as the paper presents them) and the raw
//! [`KernelRun`]s for deeper inspection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod merge;
pub mod plan;
pub mod sweep;

use gsi_core::report::Figure;
use gsi_mem::Protocol;
use gsi_sim::{KernelRun, Simulator, SystemConfig};
use gsi_workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
use gsi_workloads::uts::{self, UtsConfig, Variant};
use sweep::{default_threads, run_sweep, Experiment, ExperimentError};

/// Experiment scale: the paper-like sizes, or a fast scale for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-like sizes (seconds per figure).
    Paper,
    /// Reduced sizes (sub-second), same qualitative shapes.
    Small,
}

impl Scale {
    fn uts(self) -> UtsConfig {
        match self {
            Scale::Paper => UtsConfig::paper(),
            Scale::Small => UtsConfig::small(),
        }
    }

    fn implicit(self, style: LocalMemStyle) -> ImplicitConfig {
        match self {
            Scale::Paper => ImplicitConfig::paper(style),
            Scale::Small => ImplicitConfig::small(style),
        }
    }

    fn gpu_cores(self) -> usize {
        match self {
            Scale::Paper => 15,
            Scale::Small => 4,
        }
    }
}

/// A figure plus the raw runs behind each of its entries.
#[derive(Debug)]
pub struct FigureResult {
    /// The renderable figure (first entry is the normalization baseline).
    pub figure: Figure,
    /// `(config name, run)` in figure order.
    pub runs: Vec<(String, KernelRun)>,
}

impl FigureResult {
    fn new(title: &str, runs: Vec<(String, KernelRun)>) -> Self {
        let mut figure = Figure::new(title);
        for (name, run) in &runs {
            figure.push(name.clone(), run.breakdown.clone());
        }
        FigureResult { figure, runs }
    }

    /// The run for a named configuration.
    pub fn run(&self, name: &str) -> &KernelRun {
        &self.runs.iter().find(|(n, _)| n == name).expect("known config").1
    }
}

/// Render Table 5.1 for the paper configuration.
pub fn table_5_1() -> String {
    SystemConfig::paper().table_5_1()
}

/// Run a list of experiments on all available cores and pair each result
/// with its name, in submission order. The first experiment failure is
/// propagated — a figure with a missing bar is not a figure.
fn sweep_runs(experiments: Vec<Experiment>) -> Result<Vec<(String, KernelRun)>, ExperimentError> {
    run_sweep(experiments, default_threads())
        .results
        .into_iter()
        .map(|r| r.outcome.map(|out| (r.name, out.run)))
        .collect()
}

fn protocol_comparison(
    title: &str,
    scale: Scale,
    variant: Variant,
) -> Result<FigureResult, ExperimentError> {
    let experiments = [("GPU coherence", Protocol::GpuCoherence), ("DeNovo", Protocol::DeNovo)]
        .into_iter()
        .map(|(name, protocol)| {
            let cfg = scale.uts();
            let cores = scale.gpu_cores();
            Experiment::new(name, move || {
                let sys = SystemConfig::paper().with_gpu_cores(cores).with_protocol(protocol);
                let mut sim = Simulator::new(sys);
                Ok(uts::run(&mut sim, &cfg, variant)?.run)
            })
        })
        .collect();
    Ok(FigureResult::new(title, sweep_runs(experiments)?))
}

/// Figure 6.1: stall cycle breakdowns for UTS, GPU coherence vs DeNovo,
/// normalized to GPU coherence.
pub fn figure_6_1(scale: Scale) -> Result<FigureResult, ExperimentError> {
    protocol_comparison(
        "Figure 6.1: Stall cycle breakdowns for UTS (normalized to GPU coherence)",
        scale,
        Variant::Centralized,
    )
}

/// Figure 6.2: stall cycle breakdowns for UTSD, normalized to GPU
/// coherence.
pub fn figure_6_2(scale: Scale) -> Result<FigureResult, ExperimentError> {
    protocol_comparison(
        "Figure 6.2: Stall cycle breakdowns for UTSD (normalized to GPU coherence)",
        scale,
        Variant::Decentralized,
    )
}

fn implicit_experiment(
    name: String,
    scale: Scale,
    style: LocalMemStyle,
    mshr: Option<usize>,
) -> Experiment {
    let cfg = scale.implicit(style);
    Experiment::new(name, move || {
        let mut sys = SystemConfig::paper().with_gpu_cores(1).with_local_mem(style.mem_kind());
        if let Some(m) = mshr {
            sys = sys.with_mshr(m);
        }
        let mut sim = Simulator::new(sys);
        Ok(implicit::run(&mut sim, &cfg)?.run)
    })
}

fn implicit_comparison(
    title: &str,
    scale: Scale,
    mshr: Option<usize>,
) -> Result<FigureResult, ExperimentError> {
    let experiments = LocalMemStyle::ALL
        .into_iter()
        .map(|style| implicit_experiment(style.to_string(), scale, style, mshr))
        .collect();
    Ok(FigureResult::new(title, sweep_runs(experiments)?))
}

/// Figure 6.3: stall cycle breakdowns for the implicit microbenchmark
/// (scratchpad, scratchpad+DMA, stash), normalized to baseline scratchpad.
pub fn figure_6_3(scale: Scale) -> Result<FigureResult, ExperimentError> {
    implicit_comparison(
        "Figure 6.3: Stall cycle breakdowns for implicit (normalized to scratchpad)",
        scale,
        None,
    )
}

/// Figure 6.4: the MSHR sensitivity sweep — every local-memory style at
/// every MSHR size (store buffer scaled along), normalized to baseline
/// scratchpad with a 32-entry MSHR. Returns one `FigureResult` whose
/// entries are `style/mshr` combinations in sweep order.
pub fn figure_6_4(scale: Scale) -> Result<FigureResult, ExperimentError> {
    let sizes: &[usize] = match scale {
        Scale::Paper => &[32, 64, 128, 256],
        Scale::Small => &[8, 32],
    };
    let mut experiments = Vec::new();
    for &m in sizes {
        for style in LocalMemStyle::ALL {
            experiments.push(implicit_experiment(
                format!("{style}/mshr{m}"),
                scale,
                style,
                Some(m),
            ));
        }
    }
    Ok(FigureResult::new(
        "Figure 6.4: implicit with varying MSHR sizes (normalized to scratchpad/mshr-min)",
        sweep_runs(experiments)?,
    ))
}

/// Measure GSI's profiling overhead (the paper reports ~5% simulation-time
/// overhead): returns `(with_profiling_secs, without_profiling_secs)` for
/// one implicit run.
pub fn profiling_overhead(scale: Scale) -> Result<(f64, f64), gsi_sim::SimError> {
    let style = LocalMemStyle::Scratchpad;
    let cfg = scale.implicit(style);
    let mut secs = [0.0f64; 2];
    for (i, profiling) in [true, false].into_iter().enumerate() {
        let sys = SystemConfig::paper().with_gpu_cores(1).with_local_mem(style.mem_kind());
        let mut sim = Simulator::new(sys);
        sim.set_profiling(profiling);
        let t0 = std::time::Instant::now();
        implicit::run(&mut sim, &cfg)?;
        secs[i] = t0.elapsed().as_secs_f64();
    }
    Ok((secs[0], secs[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsi_core::report::Panel;

    #[test]
    fn figure_6_1_small_has_two_entries() {
        let f = figure_6_1(Scale::Small).expect("figure completes");
        assert_eq!(f.runs.len(), 2);
        let text = f.figure.render(Panel::Execution, 40);
        assert!(text.contains("GPU coherence"));
        assert!(text.contains("DeNovo"));
    }

    #[test]
    fn figure_6_3_small_has_three_entries() {
        let f = figure_6_3(Scale::Small).expect("figure completes");
        assert_eq!(f.runs.len(), 3);
        assert!(f.run("stash").cycles > 0);
    }

    #[test]
    fn figure_6_4_small_sweeps() {
        let f = figure_6_4(Scale::Small).expect("figure completes");
        assert_eq!(f.runs.len(), 6);
    }

    #[test]
    fn table_renders() {
        assert!(table_5_1().contains("Table 5.1"));
    }
}
