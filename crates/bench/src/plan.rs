//! Declarative sweep plans: a cross-product of scenario dimensions as
//! *data*, expanded into an ordered list of work units.
//!
//! A plan is a gsi-json document naming the dimensions of a sweep —
//! workloads, protocols, MSHR sizes, SM counts, cycle engines, chaos
//! seeds — plus the operation and scale every unit runs at. Expansion is
//! a deterministic cross-product: unit *i* always denotes the same
//! `(workload, protocol, …)` combination for a given plan, which is what
//! lets the shard journal identify completed units by index alone (the
//! journal header pins the plan's content digest).
//!
//! Each unit carries the gsi-serve request line a worker process runs, so
//! the plan layer stays transport-agnostic: anything that speaks the
//! serve line-JSON protocol — an in-process [`crate::sweep`] runner, a
//! worker subprocess, a remote service — can execute a unit.

use gsi_json::{JsonError, Value};

/// A declarative sweep: the cross-product of every listed dimension.
///
/// Dimensions with a single default (protocol `"gpu"`, registry-default
/// MSHR/SMs/engine, chaos off) may be omitted from the plan document.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// Plan name; prefixes artifact files and journal headers.
    pub name: String,
    /// The serve operation every unit runs: `"simulate"`, `"blame"`, or
    /// `"trace-summary"` (the latter also yields NoC link heatmaps).
    pub op: String,
    /// Workload scale: `"small"` or `"paper"`.
    pub scale: String,
    /// Registry workload names.
    pub workloads: Vec<String>,
    /// Coherence protocols: `"gpu"` / `"denovo"`.
    pub protocols: Vec<String>,
    /// MSHR sizes; `None` means the registry default.
    pub mshrs: Vec<Option<u64>>,
    /// SM counts; `None` means the registry default.
    pub sms: Vec<Option<u64>>,
    /// Cycle engines: `"event"` / `"dense"`; `None` means the default.
    pub engines: Vec<Option<String>>,
    /// Chaos seeds; `None` means fault injection off.
    pub seeds: Vec<Option<u64>>,
}

/// One expanded unit of a plan: a stable index, a human-readable name,
/// and the serve request that runs it.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkUnit {
    /// Position in plan expansion order; the journal's unit key.
    pub index: usize,
    /// Display name, e.g. `spmv/denovo/mshr32/seed7`.
    pub name: String,
    /// The workload this unit simulates (the figure grouping key).
    pub workload: String,
    /// The serve request (without an `id`; the executor assigns one).
    pub request: Value,
}

impl WorkUnit {
    /// The request as a line of wire JSON with the given correlation id.
    pub fn request_line(&self, id: u64) -> String {
        let mut req = self.request.clone();
        req.set("id", id);
        req.to_string()
    }
}

fn string_list(v: &Value, key: &str) -> Result<Option<Vec<String>>, JsonError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => {
            let items = x.as_array().ok_or_else(|| JsonError::expected("array", x))?;
            items
                .iter()
                .map(|s| {
                    s.as_str().map(str::to_string).ok_or_else(|| JsonError::expected("string", s))
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some)
        }
    }
}

/// A list whose entries are unsigned integers or `null` (= default).
fn opt_u64_list(v: &Value, key: &str) -> Result<Vec<Option<u64>>, JsonError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(vec![None]),
        Some(x) => {
            let items = x.as_array().ok_or_else(|| JsonError::expected("array", x))?;
            items
                .iter()
                .map(|n| match n {
                    Value::Null => Ok(None),
                    other => other
                        .as_u64()
                        .map(Some)
                        .ok_or_else(|| JsonError::expected("unsigned integer or null", other)),
                })
                .collect()
        }
    }
}

impl SweepPlan {
    /// Parse a plan document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] for malformed JSON, missing required
    /// fields (`name`, `workloads`), bad types, or empty dimensions.
    pub fn parse(text: &str) -> Result<SweepPlan, JsonError> {
        Self::from_json(&Value::parse(text)?)
    }

    /// Build a plan from a parsed document (see [`SweepPlan::parse`]).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing/ill-typed fields or empty
    /// dimensions.
    pub fn from_json(v: &Value) -> Result<SweepPlan, JsonError> {
        let name = v
            .req("name")?
            .as_str()
            .ok_or_else(|| JsonError::new("`name` must be a string"))?
            .to_string();
        let op = match v.get("op") {
            None => "simulate".to_string(),
            Some(x) => match x.as_str() {
                Some(op @ ("simulate" | "blame" | "trace-summary")) => op.to_string(),
                _ => return Err(JsonError::new(format!("unsupported plan op {x}"))),
            },
        };
        let scale = match v.get("scale") {
            None => "small".to_string(),
            Some(x) => match x.as_str() {
                Some(s @ ("small" | "paper")) => s.to_string(),
                _ => return Err(JsonError::new(format!("unknown scale {x}"))),
            },
        };
        let workloads =
            string_list(v, "workloads")?.ok_or_else(|| JsonError::missing("workloads"))?;
        let protocols = string_list(v, "protocols")?.unwrap_or_else(|| vec!["gpu".to_string()]);
        for p in &protocols {
            if p != "gpu" && p != "denovo" {
                return Err(JsonError::new(format!("unknown protocol {p:?}")));
            }
        }
        let engines = match v.get("engines") {
            None | Some(Value::Null) => vec![None],
            Some(x) => {
                let items = x.as_array().ok_or_else(|| JsonError::expected("array", x))?;
                items
                    .iter()
                    .map(|e| match e {
                        Value::Null => Ok(None),
                        other => match other.as_str() {
                            Some(s @ ("event" | "dense")) => Ok(Some(s.to_string())),
                            _ => Err(JsonError::new(format!("unknown engine {other}"))),
                        },
                    })
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        let plan = SweepPlan {
            name,
            op,
            scale,
            workloads,
            protocols,
            mshrs: opt_u64_list(v, "mshr")?,
            sms: opt_u64_list(v, "sms")?,
            engines,
            seeds: opt_u64_list(v, "seeds")?,
        };
        if plan.workloads.is_empty() || plan.protocols.is_empty() {
            return Err(JsonError::new("a plan dimension is empty"));
        }
        Ok(plan)
    }

    /// The canonical document: every dimension explicit, fixed field
    /// order — the digest input.
    pub fn to_json(&self) -> Value {
        let opt_list = |xs: &[Option<u64>]| {
            Value::Array(xs.iter().map(|x| x.map_or(Value::Null, Value::U64)).collect())
        };
        gsi_json::obj! {
            "name" => self.name,
            "op" => self.op,
            "scale" => self.scale,
            "workloads" => self.workloads,
            "protocols" => self.protocols,
            "mshr" => opt_list(&self.mshrs),
            "sms" => opt_list(&self.sms),
            "engines" => Value::Array(
                self.engines
                    .iter()
                    .map(|e| e.as_ref().map_or(Value::Null, |s| Value::Str(s.clone())))
                    .collect(),
            ),
            "seeds" => opt_list(&self.seeds),
        }
    }

    /// Content digest of the canonical plan document. The shard journal
    /// header records it so a resume against the wrong plan is a typed
    /// error, not silently misattributed units.
    pub fn digest(&self) -> String {
        gsi_json::fnv1a128(&self.to_json().to_string())
    }

    /// Total units the plan expands to.
    pub fn unit_count(&self) -> usize {
        self.workloads.len()
            * self.protocols.len()
            * self.mshrs.len()
            * self.sms.len()
            * self.engines.len()
            * self.seeds.len()
    }

    /// Expand the cross-product, in deterministic order (workload
    /// outermost, seed innermost). Unit names spell only the
    /// non-default dimensions, so a plan sweeping one protocol at default
    /// MSHR reads as plain workload names.
    pub fn units(&self) -> Vec<WorkUnit> {
        let mut units = Vec::with_capacity(self.unit_count());
        for w in &self.workloads {
            for p in &self.protocols {
                for e in &self.engines {
                    for s in &self.sms {
                        for m in &self.mshrs {
                            for seed in &self.seeds {
                                let mut name = w.clone();
                                if self.protocols.len() > 1 || p != "gpu" {
                                    name.push_str(&format!("/{p}"));
                                }
                                if let Some(e) = e {
                                    name.push_str(&format!("/{e}"));
                                }
                                if let Some(s) = s {
                                    name.push_str(&format!("/sms{s}"));
                                }
                                if let Some(m) = m {
                                    name.push_str(&format!("/mshr{m}"));
                                }
                                if let Some(seed) = seed {
                                    name.push_str(&format!("/seed{seed}"));
                                }
                                let mut request = gsi_json::obj! {
                                    "op" => self.op,
                                    "workload" => w,
                                    "scale" => self.scale,
                                    "protocol" => p,
                                };
                                if let Some(e) = e {
                                    request.set("engine", e.as_str());
                                }
                                if let Some(s) = s {
                                    request.set("sms", *s);
                                }
                                if let Some(m) = m {
                                    request.set("mshr", *m);
                                }
                                if let Some(seed) = seed {
                                    request.set("seed", *seed);
                                }
                                units.push(WorkUnit {
                                    index: units.len(),
                                    name,
                                    workload: w.clone(),
                                    request,
                                });
                            }
                        }
                    }
                }
            }
        }
        units
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    const PLAN: &str = r#"{
        "name": "demo",
        "workloads": ["spmv", "bfs"],
        "protocols": ["gpu", "denovo"],
        "mshr": [8, 32]
    }"#;

    #[test]
    fn expansion_is_a_deterministic_cross_product() {
        let plan = SweepPlan::parse(PLAN).unwrap();
        assert_eq!(plan.unit_count(), 8);
        let units = plan.units();
        assert_eq!(units.len(), 8);
        assert_eq!(units[0].name, "spmv/gpu/mshr8");
        assert_eq!(units[3].name, "spmv/denovo/mshr32");
        assert_eq!(units[7].name, "bfs/denovo/mshr32");
        for (i, u) in units.iter().enumerate() {
            assert_eq!(u.index, i);
        }
        // Same plan, same expansion, same digest.
        let again = SweepPlan::parse(PLAN).unwrap();
        assert_eq!(again.units(), units);
        assert_eq!(again.digest(), plan.digest());
    }

    #[test]
    fn request_lines_parse_as_serve_requests() {
        let plan = SweepPlan::parse(PLAN).unwrap();
        let line = plan.units()[5].request_line(5);
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("simulate"));
        assert_eq!(v.get("workload").and_then(Value::as_str), Some("bfs"));
        assert_eq!(v.get("mshr").and_then(Value::as_u64), Some(32));
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(5));
    }

    #[test]
    fn digest_is_sensitive_to_every_dimension() {
        let base = SweepPlan::parse(PLAN).unwrap();
        let mut other = base.clone();
        other.seeds = vec![Some(1)];
        assert_ne!(base.digest(), other.digest());
        let mut other = base.clone();
        other.scale = "paper".to_string();
        assert_ne!(base.digest(), other.digest());
    }

    #[test]
    fn defaults_fill_in_and_bad_documents_are_typed_errors() {
        let plan = SweepPlan::parse(r#"{"name":"n","workloads":["uts"]}"#).unwrap();
        assert_eq!(plan.op, "simulate");
        assert_eq!(plan.scale, "small");
        assert_eq!(plan.unit_count(), 1);
        assert_eq!(plan.units()[0].name, "uts");

        for bad in [
            "not json",
            r#"{"workloads":["uts"]}"#,
            r#"{"name":"n"}"#,
            r#"{"name":"n","workloads":["uts"],"op":"fly"}"#,
            r#"{"name":"n","workloads":["uts"],"protocols":["mesi"]}"#,
            r#"{"name":"n","workloads":["uts"],"engines":["warp"]}"#,
            r#"{"name":"n","workloads":["uts"],"mshr":["big"]}"#,
            r#"{"name":"n","workloads":[],"protocols":["gpu"]}"#,
        ] {
            assert!(SweepPlan::parse(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn canonical_form_round_trips() {
        let plan = SweepPlan::parse(PLAN).unwrap();
        let back = SweepPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.digest(), plan.digest());
    }
}
