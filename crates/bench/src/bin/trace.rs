//! `trace` — run the implicit microbenchmark under full tracing and export
//! every observability artifact the trace layer produces.
//!
//! ```text
//! trace [--scale small|paper] [--style scratchpad|dma|stash]
//!       [--out-dir DIR] [--quiet]
//! ```
//!
//! Writes to the output directory (default `.`):
//!
//! * `trace.json` — Chrome `trace_event` format; load it in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`.
//! * `trace.jsonl` — one raw event per line, for ad-hoc scripting.
//! * `trace_summary.json` — per-kind counts, latency histograms, link
//!   utilization, and the simulator self-profile.
//!
//! Unless `--quiet`, also prints the ASCII latency histograms, the NoC
//! heatmap, and the per-warp stall timelines.

use gsi_sim::{Simulator, SystemConfig};
use gsi_trace::TraceLevel;
use gsi_workloads::implicit::{self, ImplicitConfig, LocalMemStyle};

fn usage() -> ! {
    eprintln!(
        "usage: trace [--scale small|paper] [--style scratchpad|dma|stash] \
         [--out-dir DIR] [--quiet]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paper = false;
    let mut style = LocalMemStyle::Scratchpad;
    let mut out_dir = String::from(".");
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                paper = match it.next().map(String::as_str) {
                    Some("small") => false,
                    Some("paper") => true,
                    _ => usage(),
                }
            }
            "--style" => {
                style = match it.next().map(String::as_str) {
                    Some("scratchpad") => LocalMemStyle::Scratchpad,
                    Some("dma") => LocalMemStyle::ScratchpadDma,
                    Some("stash") => LocalMemStyle::Stash,
                    _ => usage(),
                }
            }
            "--out-dir" => out_dir = it.next().unwrap_or_else(|| usage()).clone(),
            "--quiet" => quiet = true,
            _ => usage(),
        }
    }

    let cfg = if paper { ImplicitConfig::paper(style) } else { ImplicitConfig::small(style) };
    let sys = SystemConfig::paper().with_gpu_cores(1).with_local_mem(style.mem_kind());
    let (mesh_w, mesh_h) = (sys.mesh.width as usize, sys.mesh.height as usize);
    let mut sim = Simulator::new(sys);
    sim.set_trace_level(TraceLevel::Full);
    sim.set_self_profiling(true);

    let run = implicit::run(&mut sim, &cfg).expect("implicit completes").run;
    let trace = sim.trace();
    let events: u64 = trace.counts().iter().sum();

    if !quiet {
        println!(
            "implicit-{style}: {} cycles, {events} events traced ({} overwritten)",
            run.cycles,
            trace.dropped_events(),
        );
        println!("{}", trace.render_histograms());
        println!("{}", trace.render_heatmap(mesh_w, mesh_h, run.cycles));
        println!("{}", trace.render_timelines());
    }

    let dir = std::path::Path::new(&out_dir);
    std::fs::create_dir_all(dir).expect("create output directory");
    std::fs::write(dir.join("trace.json"), trace.chrome_trace().to_string_pretty())
        .expect("write trace.json");
    std::fs::write(dir.join("trace.jsonl"), trace.to_jsonl()).expect("write trace.jsonl");
    std::fs::write(dir.join("trace_summary.json"), trace.to_json().to_string_pretty())
        .expect("write trace_summary.json");
    println!("wrote trace.json, trace.jsonl, trace_summary.json to {out_dir}");
}
