//! Regenerate the GSI paper's tables and figures.
//!
//! ```text
//! figures [--fig 6.1|6.2|6.3|6.4|all] [--table-5-1] [--scale small|paper]
//!         [--csv DIR] [--overhead]
//! ```

use gsi_bench::{
    figure_6_1, figure_6_2, figure_6_3, figure_6_4, profiling_overhead, table_5_1, FigureResult,
    Scale,
};
use gsi_core::report::percent_change;
use gsi_core::StallKind;

fn usage() -> ! {
    eprintln!(
        "usage: figures [--fig 6.1|6.2|6.3|6.4|all] [--table-5-1] \
         [--scale small|paper] [--csv DIR] [--overhead]"
    );
    std::process::exit(2);
}

fn emit(result: &FigureResult, csv_dir: Option<&str>, slug: &str) {
    println!("{}", result.figure.render_all(60));
    for (name, run) in &result.runs {
        println!("  {name}: {} cycles, {} instructions", run.cycles, run.instructions);
    }
    // Headline numbers the paper quotes in the text.
    if result.runs.len() >= 2 {
        let base = &result.runs[0];
        for (name, run) in &result.runs[1..] {
            let d = percent_change(base.1.cycles, run.cycles);
            println!(
                "  {name} vs {base_name}: execution time {d:+.1}%  \
                 (mem-data {dd:+.1}%, mem-struct {ds:+.1}%, no-stall {dn:+.1}%)",
                base_name = base.0,
                dd = percent_change(
                    base.1.breakdown.cycles(StallKind::MemoryData),
                    run.breakdown.cycles(StallKind::MemoryData)
                ),
                ds = percent_change(
                    base.1.breakdown.cycles(StallKind::MemoryStructural),
                    run.breakdown.cycles(StallKind::MemoryStructural)
                ),
                dn = percent_change(
                    base.1.breakdown.cycles(StallKind::NoStall),
                    run.breakdown.cycles(StallKind::NoStall)
                ),
            );
        }
        println!();
    }
    if let Some(dir) = csv_dir {
        let path = format!("{dir}/{slug}.csv");
        std::fs::create_dir_all(dir).expect("create csv dir");
        std::fs::write(&path, result.figure.to_csv()).expect("write csv");
        println!("  wrote {path}\n");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fig = String::from("all");
    let mut scale = Scale::Paper;
    let mut csv: Option<String> = None;
    let mut want_table = false;
    let mut want_overhead = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fig" => fig = it.next().unwrap_or_else(|| usage()).clone(),
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                }
            }
            "--csv" => csv = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--table-5-1" => want_table = true,
            "--overhead" => want_overhead = true,
            _ => usage(),
        }
    }

    if want_table {
        println!("{}", table_5_1());
    }
    if !["all", "6.1", "6.2", "6.3", "6.4"].contains(&fig.as_str()) {
        eprintln!("unknown figure `{fig}`");
        usage();
    }
    let all = fig == "all";
    let unwrap = |slug: &str, r: Result<FigureResult, gsi_bench::sweep::ExperimentError>| {
        r.unwrap_or_else(|e| {
            eprintln!("{slug} failed: {e}");
            std::process::exit(1);
        })
    };
    if all || fig == "6.1" {
        emit(&unwrap("figure 6.1", figure_6_1(scale)), csv.as_deref(), "figure_6_1");
    }
    if all || fig == "6.2" {
        emit(&unwrap("figure 6.2", figure_6_2(scale)), csv.as_deref(), "figure_6_2");
    }
    if all || fig == "6.3" {
        emit(&unwrap("figure 6.3", figure_6_3(scale)), csv.as_deref(), "figure_6_3");
    }
    if all || fig == "6.4" {
        emit(&unwrap("figure 6.4", figure_6_4(scale)), csv.as_deref(), "figure_6_4");
    }
    if want_overhead {
        let (on, off) = profiling_overhead(scale).unwrap_or_else(|e| {
            eprintln!("overhead measurement failed: {e}");
            std::process::exit(1);
        });
        println!(
            "GSI profiling overhead: {on:.3}s with profiling, {off:.3}s without \
             ({:+.1}%)",
            (on - off) / off * 100.0
        );
    }
}
