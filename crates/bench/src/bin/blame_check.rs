//! `blame-check` — validate a `gsi-run --blame-out` JSON artifact.
//!
//! The verification harness runs this after every blame export: it parses
//! the report with `gsi-json`, checks the schema (every field the docs
//! promise, with the right types), and asserts the ranked shares sum to
//! 100% within a small epsilon. Exit 0 on success, 1 on a violated
//! invariant, 2 on usage errors.
//!
//! ```text
//! blame-check report.json
//! ```

use gsi_json::Value;

/// Share percentages must sum to 100 within this tolerance (float
/// accumulation over at most a few hundred rows).
const SHARE_EPSILON: f64 = 0.05;

fn usage() -> ! {
    eprintln!("usage: blame-check <blame.json>");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("blame-check: {msg}");
    std::process::exit(1);
}

fn require<'a>(v: &'a Value, key: &str) -> &'a Value {
    v.get(key).unwrap_or_else(|| fail(&format!("missing field `{key}`")))
}

fn require_u64(v: &Value, key: &str) -> u64 {
    require(v, key).as_u64().unwrap_or_else(|| fail(&format!("field `{key}` is not an integer")))
}

fn require_f64(v: &Value, key: &str) -> f64 {
    require(v, key).as_f64().unwrap_or_else(|| fail(&format!("field `{key}` is not a number")))
}

/// Check an 8-slot per-kind counter object: every value a u64.
fn check_kind_map(v: &Value, key: &str) {
    let obj = require(v, key)
        .as_object()
        .unwrap_or_else(|| fail(&format!("field `{key}` is not an object")));
    for (k, val) in obj {
        if val.as_u64().is_none() {
            fail(&format!("`{key}.{k}` is not an integer"));
        }
    }
}

fn check_row(row: &Value, idx: usize) -> (u64, f64) {
    let ctx = |k: &str| format!("rows[{idx}].{k}");
    if require(row, "pc").as_u64().is_none() {
        fail(&format!("{} is not an integer", ctx("pc")));
    }
    if require(row, "loc").as_str().is_none() {
        fail(&format!("{} is not a string", ctx("loc")));
    }
    if require(row, "text").as_str().is_none() {
        fail(&format!("{} is not a string", ctx("text")));
    }
    let total = require_u64(row, "total");
    let share = require_f64(row, "share_pct");
    if !(0.0..=100.0 + SHARE_EPSILON).contains(&share) {
        fail(&format!("{} = {share} is out of [0, 100]", ctx("share_pct")));
    }
    check_kind_map(row, "kinds");
    check_kind_map(row, "services");
    (total, share)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| usage());
    if args.next().is_some() {
        usage();
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("blame-check: {path}: {e}");
        std::process::exit(2);
    });
    let v = Value::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: invalid JSON: {e}")));

    let coverage = require_f64(&v, "coverage_pct");
    if !(0.0..=100.0).contains(&coverage) {
        fail(&format!("coverage_pct = {coverage} is out of [0, 100]"));
    }
    let dropped = require_u64(&v, "dropped_events");
    if dropped == 0 && coverage < 100.0 {
        fail("coverage_pct < 100 but dropped_events is 0");
    }
    let attributed_total = require_u64(&v, "attributed_total");
    require_u64(&v, "unresolved_cycles");
    check_kind_map(&v, "observed");
    check_kind_map(&v, "unattributed");

    let rows = require(&v, "rows").as_array().unwrap_or_else(|| fail("`rows` is not an array"));
    let mut row_total = 0u64;
    let mut share_sum = 0.0f64;
    for (i, row) in rows.iter().enumerate() {
        let (total, share) = check_row(row, i);
        row_total += total;
        share_sum += share;
    }
    if row_total != attributed_total {
        fail(&format!("rows sum to {row_total} cycles but attributed_total is {attributed_total}"));
    }
    if attributed_total > 0 && (share_sum - 100.0).abs() > SHARE_EPSILON {
        fail(&format!("share_pct sums to {share_sum:.4}, expected 100 +/- {SHARE_EPSILON}"));
    }
    println!(
        "blame-check: {path} ok ({} rows, {attributed_total} cycles attributed, \
         coverage {coverage:.1}%)",
        rows.len()
    );
}
