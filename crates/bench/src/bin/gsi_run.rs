//! `gsi-run` — run any workload of the suite under any system
//! configuration and inspect the GSI output: breakdown panels, per-warp
//! straggler profiles, timelines, CSV, or a full JSON report.
//!
//! ```text
//! gsi-run --workload utsd --protocol denovo --sms 15 --owned-atomics
//! gsi-run --workload spmv --scale paper --json run.json
//! gsi-run --workload implicit-stash --mshr 256 --timeline 200
//! ```

use gsi_blame::{BlameDiff, BlameReport};
use gsi_core::report::{render_timeline, Figure, Panel};
use gsi_core::{CyclePriority, StallKind};
use gsi_isa::asm::parse_program;
use gsi_mem::Protocol;
use gsi_sim::LaunchSpec;
use gsi_sim::{CycleEngine, KernelRun, Simulator, SystemConfig};
use gsi_sm::SchedPolicy;
use gsi_trace::TraceLevel;
use gsi_workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
use gsi_workloads::uts::{self, UtsConfig, Variant};
use gsi_workloads::{bfs, gemm, histogram, reduction, spmv, stencil};

const WORKLOADS: &[&str] = &[
    "uts",
    "utsd",
    "implicit-scratchpad",
    "implicit-dma",
    "implicit-stash",
    "spmv",
    "histogram",
    "stencil-tiled",
    "stencil-global",
    "reduction",
    "bfs",
    "gemm-tiled",
    "gemm-global",
    "custom",
];

fn usage() -> ! {
    eprintln!(
        "usage: gsi-run --workload <{}>\n\
         \x20      [--sms N] [--protocol gpu|denovo] [--mshr N] [--engine event|dense]\n\
         \x20      [--scheduler gto|rr] [--priority memory|compute|control]\n\
         \x20      [--sfifo] [--owned-atomics] [--scale small|paper]\n\
         \x20      [--trace-level off|counters|full]\n\
         \x20      [--blame] [--blame-diff] [--blame-top N] [--blame-out PATH]\n\
         \x20      [--timeline EPOCH_CYCLES] [--csv PATH] [--json PATH] [--quiet]\n\
         \x20      custom kernels: --workload custom --asm FILE [--blocks N] [--warps N]\n\
         \x20      (r0 is preset to the flat thread id per lane)",
        WORKLOADS.join("|")
    );
    std::process::exit(2);
}

fn report_json(workload: &str, config: &SystemConfig, run: &KernelRun) -> String {
    gsi_json::obj! {
        "workload" => workload,
        "config" => config,
        "run" => run,
    }
    .to_string_pretty()
}

struct Options {
    workload: String,
    sms: Option<usize>,
    protocol: Protocol,
    mshr: Option<usize>,
    scheduler: SchedPolicy,
    priority: CyclePriority,
    sfifo: bool,
    owned_atomics: bool,
    engine: CycleEngine,
    paper_scale: bool,
    timeline: u64,
    trace_level: Option<TraceLevel>,
    blame: bool,
    blame_diff: bool,
    blame_top: usize,
    blame_out: Option<String>,
    csv: Option<String>,
    json: Option<String>,
    quiet: bool,
    asm: Option<String>,
    blocks: u64,
    warps: usize,
}

fn parse_args() -> Options {
    let mut o = Options {
        workload: String::new(),
        sms: None,
        protocol: Protocol::GpuCoherence,
        mshr: None,
        scheduler: SchedPolicy::Gto,
        priority: CyclePriority::memory_focused(),
        sfifo: false,
        owned_atomics: false,
        engine: CycleEngine::default(),
        paper_scale: false,
        timeline: 0,
        trace_level: None,
        blame: false,
        blame_diff: false,
        blame_top: 10,
        blame_out: None,
        csv: None,
        json: None,
        quiet: false,
        asm: None,
        blocks: 4,
        warps: 2,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = || it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--workload" => o.workload = next(),
            "--sms" => o.sms = Some(next().parse().unwrap_or_else(|_| usage())),
            "--protocol" => {
                o.protocol = match next().as_str() {
                    "gpu" => Protocol::GpuCoherence,
                    "denovo" => Protocol::DeNovo,
                    _ => usage(),
                }
            }
            "--mshr" => o.mshr = Some(next().parse().unwrap_or_else(|_| usage())),
            "--scheduler" => {
                o.scheduler = match next().as_str() {
                    "gto" => SchedPolicy::Gto,
                    "rr" => SchedPolicy::RoundRobin,
                    _ => usage(),
                }
            }
            "--priority" => {
                o.priority = match next().as_str() {
                    "memory" => CyclePriority::memory_focused(),
                    "compute" => CyclePriority::compute_focused(),
                    "control" => CyclePriority::control_focused(),
                    _ => usage(),
                }
            }
            "--engine" => {
                o.engine = match next().as_str() {
                    "event" => CycleEngine::Event,
                    "dense" => CycleEngine::Dense,
                    _ => usage(),
                }
            }
            "--sfifo" => o.sfifo = true,
            "--owned-atomics" => o.owned_atomics = true,
            "--scale" => {
                o.paper_scale = match next().as_str() {
                    "paper" => true,
                    "small" => false,
                    _ => usage(),
                }
            }
            "--timeline" => o.timeline = next().parse().unwrap_or_else(|_| usage()),
            // Unknown levels are a hard usage error, not a silent fallback.
            "--trace-level" => {
                o.trace_level = Some(TraceLevel::parse(&next()).unwrap_or_else(|| usage()))
            }
            "--blame" => o.blame = true,
            "--blame-diff" => o.blame_diff = true,
            "--blame-top" => o.blame_top = next().parse().unwrap_or_else(|_| usage()),
            "--blame-out" => o.blame_out = Some(next()),
            "--asm" => o.asm = Some(next()),
            "--blocks" => o.blocks = next().parse().unwrap_or_else(|_| usage()),
            "--warps" => o.warps = next().parse().unwrap_or_else(|_| usage()),
            "--csv" => o.csv = Some(next()),
            "--json" => o.json = Some(next()),
            "--quiet" => o.quiet = true,
            _ => usage(),
        }
    }
    if !WORKLOADS.contains(&o.workload.as_str()) {
        usage();
    }
    o
}

fn implicit_style(name: &str) -> LocalMemStyle {
    match name {
        "implicit-scratchpad" => LocalMemStyle::Scratchpad,
        "implicit-dma" => LocalMemStyle::ScratchpadDma,
        "implicit-stash" => LocalMemStyle::Stash,
        _ => unreachable!(),
    }
}

/// Build a simulator for the options, overriding the protocol (the blame
/// differential runs the same workload under both).
fn build_sim(o: &Options, protocol: Protocol) -> Simulator {
    let default_sms = match o.workload.as_str() {
        w if w.starts_with("implicit") => 1,
        _ => {
            if o.paper_scale {
                15
            } else {
                4
            }
        }
    };
    let mut sys = SystemConfig::paper()
        .with_gpu_cores(o.sms.unwrap_or(default_sms))
        .with_protocol(protocol)
        .with_scheduler(o.scheduler)
        .with_cycle_priority(o.priority)
        .with_sfifo(o.sfifo)
        .with_owned_atomics(o.owned_atomics)
        .with_cycle_engine(o.engine);
    if let Some(m) = o.mshr {
        if m < gsi_mem::MIN_QUEUE_ENTRIES {
            eprintln!(
                "--mshr {m} is below the architectural minimum of {} \
                 (one fully strided warp access)",
                gsi_mem::MIN_QUEUE_ENTRIES
            );
            std::process::exit(2);
        }
        sys = sys.with_mshr(m);
    }
    if o.workload.starts_with("implicit") {
        sys = sys.with_local_mem(implicit_style(&o.workload).mem_kind());
    }

    let mut sim = Simulator::new(sys);
    sim.set_timeline_epoch(o.timeline);
    if let Some(level) = o.trace_level {
        sim.set_trace_level(level);
    }
    if o.blame || o.blame_diff {
        sim.set_blame_enabled(true);
    }
    sim
}

/// Execute the selected workload on `sim`.
fn run_workload(sim: &mut Simulator, o: &Options) -> KernelRun {
    match o.workload.as_str() {
        "uts" | "utsd" => {
            let cfg = if o.paper_scale { UtsConfig::paper() } else { UtsConfig::small() };
            let variant =
                if o.workload == "uts" { Variant::Centralized } else { Variant::Decentralized };
            uts::run(&mut *sim, &cfg, variant).expect("workload completes").run
        }
        w if w.starts_with("implicit") => {
            let style = implicit_style(w);
            let cfg = if o.paper_scale {
                ImplicitConfig::paper(style)
            } else {
                ImplicitConfig::small(style)
            };
            implicit::run(&mut *sim, &cfg).expect("workload completes").run
        }
        "spmv" => {
            let cfg =
                if o.paper_scale { spmv::SpmvConfig::medium() } else { spmv::SpmvConfig::small() };
            spmv::run(&mut *sim, &cfg).expect("workload completes").run
        }
        "histogram" => {
            let cfg = if o.paper_scale {
                histogram::HistogramConfig::contended()
            } else {
                histogram::HistogramConfig::small()
            };
            histogram::run(&mut *sim, &cfg).expect("workload completes").run
        }
        "stencil-tiled" | "stencil-global" => {
            let variant = if o.workload.ends_with("tiled") {
                stencil::StencilVariant::Tiled
            } else {
                stencil::StencilVariant::Global
            };
            let cfg = if o.paper_scale {
                stencil::StencilConfig::medium(variant)
            } else {
                stencil::StencilConfig::small(variant)
            };
            stencil::run(&mut *sim, &cfg).expect("workload completes").run
        }
        "reduction" => {
            let cfg = if o.paper_scale {
                reduction::ReductionConfig::medium()
            } else {
                reduction::ReductionConfig::small()
            };
            reduction::run(&mut *sim, &cfg).expect("workload completes").run
        }
        "bfs" => {
            let cfg =
                if o.paper_scale { bfs::BfsConfig::medium() } else { bfs::BfsConfig::small() };
            let out = bfs::run(&mut *sim, &cfg).expect("workload completes");
            // Aggregate the per-level kernels into one record for display.
            let mut levels = out.levels.into_iter();
            let mut acc = levels.next().expect("at least one level");
            for r in levels {
                acc.cycles += r.cycles;
                acc.instructions += r.instructions;
                acc.breakdown.merge(&r.breakdown);
                for (a, b) in acc.per_sm.iter_mut().zip(&r.per_sm) {
                    a.merge(b);
                }
            }
            acc
        }
        "custom" => {
            let path = o.asm.as_deref().unwrap_or_else(|| usage());
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            });
            let program = parse_program(&text).unwrap_or_else(|e| {
                eprintln!("parse error in {path}: {e}");
                std::process::exit(1);
            });
            let warps = o.warps;
            let spec =
                LaunchSpec::new(program, o.blocks, warps).with_init(move |w, block, warp, _ctx| {
                    w.set_per_lane(0, move |lane| {
                        block * (warps as u64 * 32) + (warp * 32 + lane) as u64
                    });
                });
            sim.run_kernel(&spec).unwrap_or_else(|e| {
                // User-supplied kernels fail for user reasons (the static
                // analyzer refused the launch, a timeout): diagnose, don't
                // panic.
                eprintln!("{path}: {e}");
                std::process::exit(1);
            })
        }
        "gemm-tiled" | "gemm-global" => {
            let variant = if o.workload.ends_with("tiled") {
                gemm::GemmVariant::Tiled
            } else {
                gemm::GemmVariant::Global
            };
            let cfg = if o.paper_scale {
                gemm::GemmConfig::medium(variant)
            } else {
                gemm::GemmConfig::small(variant)
            };
            gemm::run(&mut *sim, &cfg).expect("workload completes").run
        }
        _ => unreachable!(),
    }
}

fn main() {
    let o = parse_args();
    // The differential always compares the paper's two protocols, so the
    // base run is pinned to conventional GPU coherence.
    let base_protocol = if o.blame_diff { Protocol::GpuCoherence } else { o.protocol };
    let mut sim = build_sim(&o, base_protocol);
    let run = run_workload(&mut sim, &o);
    let blame = (o.blame || o.blame_diff).then(|| sim.blame_report());
    let diff = o.blame_diff.then(|| {
        let mut other = build_sim(&o, Protocol::DeNovo);
        let _ = run_workload(&mut other, &o);
        let base = blame.as_ref().expect("blame enabled with --blame-diff");
        BlameDiff::new("gpu", base, "denovo", &other.blame_report())
    });

    // Write exports first: a truncated stdout (e.g. piping through
    // `head`) must not lose the files.
    if let Some(path) = &o.csv {
        let fig = Figure::new("run").with_entry(o.workload.clone(), run.breakdown.clone());
        std::fs::write(path, fig.to_csv()).expect("write csv");
    }
    if let Some(path) = &o.json {
        std::fs::write(path, report_json(&o.workload, sim.config(), &run)).expect("write json");
    }
    if let Some(path) = &o.blame_out {
        // In diff mode the differential is the artifact of interest.
        let text = match (&diff, &blame) {
            (Some(d), _) => d.to_json().to_string_pretty(),
            (None, Some(b)) => b.to_json().to_string_pretty(),
            (None, None) => {
                eprintln!("--blame-out requires --blame or --blame-diff");
                std::process::exit(2);
            }
        };
        std::fs::write(path, text).expect("write blame json");
    }
    // The artifacts above are already on disk; stdout is best-effort. A
    // reader that closes the pipe early (`gsi-run ... | head`) must end
    // the run quietly, not panic mid-print.
    if let Err(e) = print_report(&o, &run, blame.as_ref(), diff.as_ref()) {
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            eprintln!("stdout error: {e}");
            std::process::exit(1);
        }
    }
}

/// Print the human-readable report, propagating stdout errors instead of
/// panicking (the caller decides what a broken pipe means).
fn print_report(
    o: &Options,
    run: &KernelRun,
    blame: Option<&BlameReport>,
    diff: Option<&BlameDiff>,
) -> std::io::Result<()> {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if !o.quiet {
        writeln!(
            out,
            "{}: {} cycles, {} instructions on {} SM(s)\n",
            o.workload,
            run.cycles,
            run.instructions,
            run.per_sm.len()
        )?;
        let fig = Figure::new(format!("{} stall breakdown", o.workload))
            .with_entry(o.workload.clone(), run.breakdown.clone());
        writeln!(out, "{}", fig.render_fractions(Panel::Execution, 60))?;
        if run.breakdown.mem_data_total() > 0 {
            writeln!(out, "{}", fig.render_fractions(Panel::MemData, 60))?;
        }
        if run.breakdown.mem_struct_total() > 0 {
            writeln!(out, "{}", fig.render_fractions(Panel::MemStruct, 60))?;
        }
        // Straggler view: the three warps that stalled the most.
        let mut stragglers: Vec<(usize, usize, u64)> = run
            .warp_profiles
            .iter()
            .enumerate()
            .flat_map(|(sm, ws)| {
                ws.iter().enumerate().map(move |(w, p)| {
                    (sm, w, p.total_considered() - p.classified(StallKind::NoStall))
                })
            })
            .collect();
        stragglers.sort_by_key(|&(_, _, stalled)| std::cmp::Reverse(stalled));
        if !stragglers.is_empty() {
            writeln!(out, "most-stalled warps (sm/warp: stalled considerations):")?;
            for &(sm, w, stalled) in stragglers.iter().take(3) {
                writeln!(out, "  sm{sm}/w{w}: {stalled}")?;
            }
        }
        if o.timeline > 0 {
            writeln!(out, "\ntimeline (SM 0, {}-cycle epochs):", o.timeline)?;
            writeln!(out, "|{}|", render_timeline(&run.timelines[0]))?;
        }
        if let Some(report) = blame {
            writeln!(out, "\n{}", report.render(o.blame_top))?;
        }
        if let Some(d) = diff {
            writeln!(out, "\n{}", d.render(o.blame_top))?;
        }
    }
    if let Some(path) = &o.csv {
        writeln!(out, "wrote {path}")?;
    }
    if let Some(path) = &o.json {
        writeln!(out, "wrote {path}")?;
    }
    Ok(())
}
