//! `sweep` — run the (workload × protocol × configuration) experiment grid
//! across OS threads and write a machine-readable performance report.
//!
//! ```text
//! sweep [--scale small|paper] [--threads N] [--out PATH] [--quiet]
//!       [--trace-level off|counters|full|all]
//! ```
//!
//! The report (default `BENCH_PR2.json`) records, per experiment, the
//! simulated cycles, wall-clock seconds, and simulation rate, plus the
//! sweep-level wall time against the serial sum — the evidence that the
//! harness actually overlapped work. With `--trace-level all` every
//! experiment runs once per trace verbosity and traced rows carry
//! `overhead_pct`, the measured cost of the observability layer against
//! the tracing-off baseline; full-level rows also embed the simulator's
//! per-subsystem self-profile.

use gsi_bench::sweep::{default_threads, run_sweep, Experiment};
use gsi_bench::Scale;
use gsi_mem::Protocol;
use gsi_sim::{Simulator, SystemConfig};
use gsi_trace::TraceLevel;
use gsi_workloads::implicit::{self, LocalMemStyle};
use gsi_workloads::uts::{self, Variant};

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--scale small|paper] [--threads N] [--out PATH] [--quiet] \
         [--trace-level off|counters|full|all]"
    );
    std::process::exit(2);
}

/// Run a simulator at `level` (self-profiling at full verbosity) and
/// return the run plus the extra JSON for the report row.
fn run_traced<R>(
    mut sim: Simulator,
    level: TraceLevel,
    go: impl FnOnce(&mut Simulator) -> R,
    extract: impl FnOnce(R) -> gsi_sim::KernelRun,
) -> (gsi_sim::KernelRun, Option<gsi_json::Value>) {
    sim.set_trace_level(level);
    if level == TraceLevel::Full {
        sim.set_self_profiling(true);
    }
    let run = extract(go(&mut sim));
    let extra = (level == TraceLevel::Full).then(|| {
        gsi_json::obj! {
            "events" => sim.trace().counts().iter().sum::<u64>(),
            "dropped_events" => sim.trace().dropped_events(),
            "profile" => sim.trace().profile().to_json(),
        }
    });
    (run, extra)
}

fn uts_experiment(
    name: &str,
    scale: Scale,
    variant: Variant,
    protocol: Protocol,
    level: TraceLevel,
) -> Experiment {
    let cfg = match scale {
        Scale::Paper => gsi_workloads::uts::UtsConfig::paper(),
        Scale::Small => gsi_workloads::uts::UtsConfig::small(),
    };
    let cores = match scale {
        Scale::Paper => 15,
        Scale::Small => 4,
    };
    Experiment::traced(name, level, move || {
        let sys = SystemConfig::paper().with_gpu_cores(cores).with_protocol(protocol);
        run_traced(
            Simulator::new(sys),
            level,
            |sim| uts::run(sim, &cfg, variant).expect("UTS completes"),
            |r| r.run,
        )
    })
}

fn implicit_experiment(
    name: &str,
    scale: Scale,
    style: LocalMemStyle,
    mshr: usize,
    level: TraceLevel,
) -> Experiment {
    let cfg = match scale {
        Scale::Paper => implicit::ImplicitConfig::paper(style),
        Scale::Small => implicit::ImplicitConfig::small(style),
    };
    Experiment::traced(name, level, move || {
        let sys = SystemConfig::paper()
            .with_gpu_cores(1)
            .with_local_mem(style.mem_kind())
            .with_mshr(mshr);
        run_traced(
            Simulator::new(sys),
            level,
            |sim| implicit::run(sim, &cfg).expect("implicit completes"),
            |r| r.run,
        )
    })
}

/// The experiment grid: both UTS variants under both protocols, and the
/// implicit microbenchmark over every local-memory style at two MSHR
/// sizes — the backbone of the paper's Figures 6.1–6.4 — each run once
/// per requested trace level.
fn grid(scale: Scale, levels: &[TraceLevel]) -> Vec<Experiment> {
    let mut experiments = Vec::new();
    for &level in levels {
        for (wname, variant) in [("uts", Variant::Centralized), ("utsd", Variant::Decentralized)] {
            for (pname, protocol) in [("gpu", Protocol::GpuCoherence), ("denovo", Protocol::DeNovo)]
            {
                experiments.push(uts_experiment(
                    &format!("{wname}/{pname}"),
                    scale,
                    variant,
                    protocol,
                    level,
                ));
            }
        }
        let mshrs: &[usize] = match scale {
            Scale::Paper => &[32, 256],
            Scale::Small => &[8, 32],
        };
        for style in LocalMemStyle::ALL {
            for &m in mshrs {
                experiments.push(implicit_experiment(
                    &format!("implicit-{style}/mshr{m}"),
                    scale,
                    style,
                    m,
                    level,
                ));
            }
        }
    }
    experiments
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut threads = default_threads();
    let mut out = String::from("BENCH_PR2.json");
    let mut quiet = false;
    let mut levels = vec![TraceLevel::Off];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                }
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = it.next().unwrap_or_else(|| usage()).clone(),
            "--quiet" => quiet = true,
            "--trace-level" => {
                levels = match it.next().map(String::as_str) {
                    Some("all") => TraceLevel::ALL.to_vec(),
                    Some(s) => vec![TraceLevel::parse(s).unwrap_or_else(|| usage())],
                    None => usage(),
                }
            }
            _ => usage(),
        }
    }

    let experiments = grid(scale, &levels);
    let n = experiments.len();
    if !quiet {
        println!("sweeping {n} experiments on {threads} thread(s)...");
    }
    let outcome = run_sweep(experiments, threads);

    if !quiet {
        for r in &outcome.results {
            let secs = r.wall.as_secs_f64();
            println!(
                "  {:<28} [{:<8}] {:>9} cycles  {:>7.3}s  {:>12.0} cycles/s",
                r.name,
                r.level.name(),
                r.run.cycles,
                secs,
                if secs == 0.0 { 0.0 } else { r.run.cycles as f64 / secs },
            );
        }
        println!(
            "wall {:.3}s vs serial {:.3}s ({:.2}x on {} threads)",
            outcome.wall.as_secs_f64(),
            outcome.serial_wall().as_secs_f64(),
            outcome.speedup(),
            outcome.threads,
        );
    }

    std::fs::write(&out, outcome.to_json().to_string_pretty()).expect("write report");
    println!("wrote {out}");
}
