//! `sweep` — run the (workload × protocol × configuration) experiment grid
//! across OS threads and write a machine-readable performance report.
//!
//! ```text
//! sweep [--scale small|paper] [--threads N] [--out PATH] [--quiet]
//!       [--engine event|dense] [--trace-level off|counters|full|all]
//!       [--chaos-seed SEED] [--chaos-fault KIND] [--deadline SECS] [--retries N]
//!       [--repeat N] [--blame]
//! ```
//!
//! The report (default `BENCH.json`; the verify script passes
//! `--out BENCH_PR<n>.json` so every PR leaves a same-machine perf
//! baseline) records, per experiment, the
//! simulated cycles, wall-clock seconds, and simulation rate, plus the
//! sweep-level wall time against the serial sum — the evidence that the
//! harness actually overlapped work. With `--trace-level all` every
//! experiment runs once per trace verbosity and traced rows carry
//! `overhead_pct`, the measured cost of the observability layer against
//! the tracing-off baseline; full-level rows also embed the simulator's
//! per-subsystem self-profile.
//!
//! Chaos mode (`--chaos-seed`, or the `GSI_CHAOS_SEED` environment
//! variable) arms deterministic fault injection in every experiment:
//! delayed mesh flits, DRAM jitter, transient MSHR/store-buffer stalls,
//! and dropped DMA bursts, all derived from the one seed. Rows then carry
//! the per-kind injected-fault counts, and the report the chaos plan.
//! `--deadline`/`--retries` bound and retry each experiment; the report's
//! `failed`/`retries` fields and per-row `status`/`attempts`/`error`
//! record what happened. `--repeat N` measures each experiment N times
//! and reports the fastest run (best-of-N) — the recommended setting for
//! benchmark artifacts on shared or virtualized machines, where a single
//! run can be slowed arbitrarily by neighbors. `--blame` duplicates every
//! experiment with a `/blame`-suffixed twin that runs under stall
//! attribution, so the report measures the collector's overhead next to
//! the trace-level rows.

use gsi_bench::sweep::{default_threads, run_sweep_with, Experiment, SweepPolicy};
use gsi_bench::Scale;
use gsi_chaos::{FaultKind, FaultPlan};
use gsi_json::ToJson;
use gsi_mem::Protocol;
use gsi_sim::{CycleEngine, SimError, Simulator, SystemConfig};
use gsi_trace::TraceLevel;
use gsi_workloads::implicit::{self, LocalMemStyle};
use gsi_workloads::uts::{self, Variant};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--scale small|paper] [--threads N] [--out PATH] [--quiet] \
         [--engine event|dense] [--trace-level off|counters|full|all] \
         [--chaos-seed SEED] [--chaos-fault mesh_delay|dram_jitter|mshr_stall|\
store_buffer_stall|dma_drop] [--deadline SECS] [--retries N] [--repeat N] [--blame]"
    );
    std::process::exit(2);
}

/// Run a simulator at `level` (self-profiling at full verbosity) under the
/// chaos plan, and return the run plus the extra JSON for the report row.
fn run_traced<R>(
    mut sim: Simulator,
    mode: RunMode,
    go: impl FnOnce(&mut Simulator) -> Result<R, SimError>,
    extract: impl FnOnce(R) -> gsi_sim::KernelRun,
) -> Result<(gsi_sim::KernelRun, Option<gsi_json::Value>), SimError> {
    let RunMode { level, plan, blame, .. } = mode;
    sim.set_trace_level(level);
    sim.set_chaos(&plan);
    sim.set_blame_enabled(blame);
    if level == TraceLevel::Full {
        sim.set_self_profiling(true);
    }
    let run = extract(go(&mut sim)?);
    let mut extra = if level == TraceLevel::Full {
        Some(gsi_json::obj! {
            "events" => sim.trace().counts().iter().sum::<u64>(),
            "dropped_events" => sim.trace().dropped_events(),
            "profile" => sim.trace().profile().to_json(),
        })
    } else {
        None
    };
    if plan.is_armed() {
        let stats = sim.chaos_stats();
        let row = extra.get_or_insert_with(|| gsi_json::obj! {});
        row.set("chaos_injected", stats.to_json());
        row.set("chaos_injected_total", stats.total());
    }
    if blame {
        let report = sim.blame_report();
        let row = extra.get_or_insert_with(|| gsi_json::obj! {});
        row.set("blame_attributed", report.attributed_total());
        row.set("blame_rows", report.rows.len() as u64);
    }
    Ok((run, extra))
}

/// Parameters shared by every experiment of one sweep pass: cycle engine,
/// trace verbosity, chaos plan, and whether stall attribution is on.
#[derive(Clone, Copy)]
struct RunMode {
    engine: CycleEngine,
    level: TraceLevel,
    plan: FaultPlan,
    blame: bool,
}

fn uts_experiment(
    name: &str,
    scale: Scale,
    variant: Variant,
    protocol: Protocol,
    mode: RunMode,
) -> Experiment {
    let cfg = match scale {
        Scale::Paper => gsi_workloads::uts::UtsConfig::paper(),
        Scale::Small => gsi_workloads::uts::UtsConfig::small(),
    };
    let cores = match scale {
        Scale::Paper => 15,
        Scale::Small => 4,
    };
    Experiment::traced(name, mode.level, move || {
        let sys = SystemConfig::paper()
            .with_gpu_cores(cores)
            .with_protocol(protocol)
            .with_cycle_engine(mode.engine);
        run_traced(Simulator::new(sys), mode, |sim| uts::run(sim, &cfg, variant), |r| r.run)
    })
}

fn implicit_experiment(
    name: &str,
    scale: Scale,
    style: LocalMemStyle,
    mshr: usize,
    mode: RunMode,
) -> Experiment {
    let cfg = match scale {
        Scale::Paper => implicit::ImplicitConfig::paper(style),
        Scale::Small => implicit::ImplicitConfig::small(style),
    };
    Experiment::traced(name, mode.level, move || {
        let sys = SystemConfig::paper()
            .with_gpu_cores(1)
            .with_local_mem(style.mem_kind())
            .with_mshr(mshr)
            .with_cycle_engine(mode.engine);
        run_traced(Simulator::new(sys), mode, |sim| implicit::run(sim, &cfg), |r| r.run)
    })
}

/// The experiment grid: both UTS variants under both protocols, and the
/// implicit microbenchmark over every local-memory style at two MSHR
/// sizes — the backbone of the paper's Figures 6.1–6.4 — each run once
/// per requested trace level.
fn grid(
    scale: Scale,
    engine: CycleEngine,
    levels: &[TraceLevel],
    plan: &FaultPlan,
    blame: bool,
) -> Vec<Experiment> {
    // With --blame every experiment gets a `/blame`-suffixed twin running
    // under stall attribution, so the report shows its overhead.
    let blame_modes: &[bool] = if blame { &[false, true] } else { &[false] };
    let mut experiments = Vec::new();
    for &level in levels {
        for &bl in blame_modes {
            let suffix = if bl { "/blame" } else { "" };
            let mode = RunMode { engine, level, plan: *plan, blame: bl };
            for (wname, variant) in
                [("uts", Variant::Centralized), ("utsd", Variant::Decentralized)]
            {
                for (pname, protocol) in
                    [("gpu", Protocol::GpuCoherence), ("denovo", Protocol::DeNovo)]
                {
                    experiments.push(uts_experiment(
                        &format!("{wname}/{pname}{suffix}"),
                        scale,
                        variant,
                        protocol,
                        mode,
                    ));
                }
            }
            let mshrs: &[usize] = match scale {
                Scale::Paper => &[32, 256],
                Scale::Small => &[8, 32],
            };
            for style in LocalMemStyle::ALL {
                for &m in mshrs {
                    experiments.push(implicit_experiment(
                        &format!("implicit-{style}/mshr{m}{suffix}"),
                        scale,
                        style,
                        m,
                        mode,
                    ));
                }
            }
        }
    }
    experiments
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut threads = default_threads();
    let mut out = String::from("BENCH.json");
    let mut quiet = false;
    let mut engine = CycleEngine::default();
    let mut levels = vec![TraceLevel::Off];
    let mut chaos_seed: Option<u64> =
        std::env::var("GSI_CHAOS_SEED").ok().map(|s| s.parse().unwrap_or_else(|_| usage()));
    let mut chaos_fault: Option<FaultKind> = None;
    let mut blame = false;
    let mut policy = SweepPolicy::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                }
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = it.next().unwrap_or_else(|| usage()).clone(),
            "--quiet" => quiet = true,
            "--blame" => blame = true,
            "--engine" => {
                engine = match it.next().map(String::as_str) {
                    Some("event") => CycleEngine::Event,
                    Some("dense") => CycleEngine::Dense,
                    _ => usage(),
                }
            }
            "--trace-level" => {
                levels = match it.next().map(String::as_str) {
                    Some("all") => TraceLevel::ALL.to_vec(),
                    Some(s) => vec![TraceLevel::parse(s).unwrap_or_else(|| usage())],
                    None => usage(),
                }
            }
            "--chaos-seed" => {
                chaos_seed = Some(it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--chaos-fault" => {
                chaos_fault =
                    Some(it.next().and_then(|s| FaultKind::parse(s)).unwrap_or_else(|| usage()))
            }
            "--deadline" => {
                let secs: f64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&s| s > 0.0)
                    .unwrap_or_else(|| usage());
                policy.deadline = Some(Duration::from_secs_f64(secs));
            }
            "--retries" => {
                policy.retries = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--repeat" => {
                policy.repeats = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let plan = match (chaos_seed, chaos_fault) {
        (None, _) => FaultPlan::disabled(),
        (Some(seed), None) => FaultPlan::all(seed),
        (Some(seed), Some(kind)) => FaultPlan::single(kind, seed),
    };

    let experiments = grid(scale, engine, &levels, &plan, blame);
    let n = experiments.len();
    if !quiet {
        if plan.is_armed() {
            println!(
                "chaos armed: seed {} ({})",
                plan.seed,
                match chaos_fault {
                    Some(k) => k.name(),
                    None => "all fault kinds",
                }
            );
        }
        println!("sweeping {n} experiments on {threads} thread(s)...");
    }
    let outcome = run_sweep_with(experiments, threads, policy);

    if !quiet {
        for r in &outcome.results {
            let secs = r.wall.as_secs_f64();
            match &r.outcome {
                Ok(o) => println!(
                    "  {:<28} [{:<8}] {:>9} cycles  {:>7.3}s  {:>12.0} cycles/s{}",
                    r.name,
                    r.level.name(),
                    o.run.cycles,
                    secs,
                    if secs == 0.0 { 0.0 } else { o.run.cycles as f64 / secs },
                    if r.attempts > 1 {
                        format!("  ({} attempts)", r.attempts)
                    } else {
                        String::new()
                    },
                ),
                Err(e) => println!(
                    "  {:<28} [{:<8}] FAILED after {} attempt(s): {e}",
                    r.name,
                    r.level.name(),
                    r.attempts,
                ),
            }
        }
        println!(
            "wall {:.3}s vs serial {:.3}s ({:.2}x on {} threads); {} failed, {} retries",
            outcome.wall.as_secs_f64(),
            outcome.serial_wall().as_secs_f64(),
            outcome.speedup(),
            outcome.threads,
            outcome.failed(),
            outcome.total_retries(),
        );
    }

    let mut report = outcome.to_json();
    report.set("chaos", plan.to_json());
    report.set("engine", engine.to_json());
    std::fs::write(&out, report.to_string_pretty()).expect("write report");
    println!("wrote {out}");
    if outcome.failed() > 0 {
        std::process::exit(1);
    }
}
