//! Ablations of the design choices DESIGN.md calls out, each reported
//! through the GSI breakdown so the *mechanism* of every effect is visible:
//!
//! * warp scheduler: greedy-then-oldest vs round-robin (the axis Lee & Wu's
//!   profiler targeted);
//! * Algorithm-2 cycle priority: memory- vs compute- vs control-focused
//!   attribution of the *same* execution (the paper's Chapter 7 point);
//! * store-buffer flush rate: how fast releases drain;
//! * Section 6.1.4's proposed optimizations (S-FIFO, owned atomics);
//! * DeNovo remote-L1 service latency: the cost of ownership forwarding.
//!
//! Every row is an independent simulation, so the whole report is built as
//! one parallel sweep: experiments are registered section by section, fanned
//! across all cores by the sweep harness, and printed back in registration
//! order — the output is identical to the old serial runner, just faster.
//!
//! ```text
//! cargo run --release -p gsi-bench --bin ablations [-- small]
//! ```

use gsi_bench::sweep::{default_threads, run_sweep, Experiment};
use gsi_core::{CyclePriority, MemDataCause, MemStructCause, StallKind};
use gsi_mem::Protocol;
use gsi_sim::{Simulator, SystemConfig};
use gsi_sm::SchedPolicy;
use gsi_workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
use gsi_workloads::uts::{self, UtsConfig, Variant};

/// A UTS run as a sweep experiment (the config is rebuilt inside the
/// closure so every worker thread starts from scratch).
fn uts_exp(name: String, small: bool, sys: SystemConfig, variant: Variant) -> Experiment {
    Experiment::new(name, move || {
        let ucfg = if small { UtsConfig::small() } else { UtsConfig::paper() };
        let mut sim = Simulator::new(sys);
        Ok(uts::run(&mut sim, &ucfg, variant)?.run)
    })
}

/// An implicit-microbenchmark run as a sweep experiment.
fn implicit_exp(name: String, small: bool, sys: SystemConfig, style: LocalMemStyle) -> Experiment {
    Experiment::new(name, move || {
        let icfg = if small { ImplicitConfig::small(style) } else { ImplicitConfig::paper(style) };
        let mut sim = Simulator::new(sys);
        Ok(implicit::run(&mut sim, &icfg)?.run)
    })
}

fn main() {
    let small = std::env::args().any(|a| a == "small");
    let cores = if small { 4 } else { 15 };

    let schedulers = [SchedPolicy::Gto, SchedPolicy::RoundRobin];
    let priorities = [
        ("memory-focused (paper)", CyclePriority::memory_focused()),
        ("compute-focused", CyclePriority::compute_focused()),
        ("control-focused", CyclePriority::control_focused()),
    ];
    let flush_rates = [1u32, 2, 4];
    let optimizations = [
        ("GPU coherence baseline", Protocol::GpuCoherence, false, false),
        ("GPU coherence + S-FIFO", Protocol::GpuCoherence, true, false),
        ("DeNovo baseline", Protocol::DeNovo, false, false),
        ("DeNovo + S-FIFO", Protocol::DeNovo, true, false),
        ("DeNovo + owned atomics", Protocol::DeNovo, false, true),
        ("DeNovo + both", Protocol::DeNovo, true, true),
    ];
    let latencies = [5u64, 20, 60];

    let mut experiments = Vec::new();
    for policy in schedulers {
        let sys = SystemConfig::paper().with_gpu_cores(cores).with_scheduler(policy);
        experiments.push(uts_exp(format!("sched/{policy:?}"), small, sys, Variant::Decentralized));
    }
    for (name, priority) in priorities {
        let style = LocalMemStyle::Scratchpad;
        let sys = SystemConfig::paper()
            .with_gpu_cores(1)
            .with_local_mem(style.mem_kind())
            .with_cycle_priority(priority);
        experiments.push(implicit_exp(format!("priority/{name}"), small, sys, style));
    }
    for rate in flush_rates {
        let sys = SystemConfig::paper().with_gpu_cores(cores).with_flush_rate(rate);
        experiments.push(uts_exp(format!("flush/{rate}"), small, sys, Variant::Decentralized));
    }
    for (name, protocol, sfifo, owned) in optimizations {
        let sys = SystemConfig::paper()
            .with_gpu_cores(cores)
            .with_protocol(protocol)
            .with_sfifo(sfifo)
            .with_owned_atomics(owned);
        experiments.push(uts_exp(format!("opt/{name}"), small, sys, Variant::Decentralized));
    }
    for lat in latencies {
        let sys = SystemConfig::paper()
            .with_gpu_cores(cores)
            .with_protocol(Protocol::DeNovo)
            .with_remote_l1_latency(lat);
        experiments.push(uts_exp(format!("remote-l1/{lat}"), small, sys, Variant::Centralized));
    }

    let outcome = run_sweep(experiments, default_threads());
    let mut rows = outcome.results.iter();
    let mut next = move || {
        let r = rows.next().expect("one result per experiment");
        r.kernel_run().unwrap_or_else(|| panic!("{} failed: {}", r.name, r.error().expect("err")))
    };

    println!("== Warp scheduler: GTO vs round-robin (UTSD, GPU coherence) ==");
    for policy in schedulers {
        let run = next();
        let b = &run.breakdown;
        println!(
            "  {policy:?}: {} cycles | sync {:.1}%  mem-data {:.1}%  mem-struct {:.1}%",
            run.cycles,
            b.fraction(StallKind::Synchronization) * 100.0,
            b.fraction(StallKind::MemoryData) * 100.0,
            b.fraction(StallKind::MemoryStructural) * 100.0,
        );
    }

    println!("\n== Cycle-classification priority (same implicit/scratchpad run) ==");
    for (name, _) in priorities {
        let run = next();
        let b = &run.breakdown;
        println!(
            "  {name:>22}: {} cycles | mem-data {:>6}  mem-struct {:>6}  comp-data {:>6}  control {:>6}",
            run.cycles,
            b.cycles(StallKind::MemoryData),
            b.cycles(StallKind::MemoryStructural),
            b.cycles(StallKind::ComputeData),
            b.cycles(StallKind::Control),
        );
    }
    println!("  (identical timing; only the attribution of stall cycles moves)");

    println!("\n== Store-buffer flush rate (UTSD, GPU coherence) ==");
    for rate in flush_rates {
        let run = next();
        println!(
            "  {rate} line/cycle: {} cycles | pending-release {:>7}",
            run.cycles,
            run.breakdown.mem_struct_cycles(MemStructCause::PendingRelease),
        );
    }

    println!("\n== Section 6.1.4's proposed optimizations (UTSD) ==");
    for (name, _, _, _) in optimizations {
        let run = next();
        let owned_hits: u64 = run.mem_stats.iter().map(|m| m.owned_atomic_hits).sum();
        println!(
            "  {name:>24}: {:>7} cycles | sync {:>7}  pend-release {:>6}  owned-atomic hits {:>6}",
            run.cycles,
            run.breakdown.cycles(StallKind::Synchronization),
            run.breakdown.mem_struct_cycles(MemStructCause::PendingRelease),
            owned_hits,
        );
    }

    println!("\n== DeNovo remote-L1 service latency (UTS, DeNovo) ==");
    for lat in latencies {
        let run = next();
        println!(
            "  owner access {lat:>2} cycles: {} cycles | remote-L1 data stalls {:>7}",
            run.cycles,
            run.breakdown.mem_data_cycles(MemDataCause::RemoteL1),
        );
    }

    println!(
        "\n({} experiments swept on {} threads: wall {:.2}s vs {:.2}s serial, {:.1}x)",
        outcome.results.len(),
        outcome.threads,
        outcome.wall.as_secs_f64(),
        outcome.serial_wall().as_secs_f64(),
        outcome.speedup(),
    );
}
