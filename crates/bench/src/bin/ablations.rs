//! Ablations of the design choices DESIGN.md calls out, each reported
//! through the GSI breakdown so the *mechanism* of every effect is visible:
//!
//! * warp scheduler: greedy-then-oldest vs round-robin (the axis Lee & Wu's
//!   profiler targeted);
//! * Algorithm-2 cycle priority: memory- vs compute- vs control-focused
//!   attribution of the *same* execution (the paper's Chapter 7 point);
//! * store-buffer flush rate: how fast releases drain;
//! * DeNovo remote-L1 service latency: the cost of ownership forwarding.
//!
//! ```text
//! cargo run --release -p gsi-bench --bin ablations [-- small]
//! ```

use gsi_core::{CyclePriority, StallKind};
use gsi_mem::Protocol;
use gsi_sim::{Simulator, SystemConfig};
use gsi_sm::SchedPolicy;
use gsi_workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
use gsi_workloads::uts::{self, UtsConfig, Variant};

fn main() {
    let small = std::env::args().any(|a| a == "small");
    let ucfg = if small { UtsConfig::small() } else { UtsConfig::paper() };
    let cores = if small { 4 } else { 15 };

    println!("== Warp scheduler: GTO vs round-robin (UTSD, GPU coherence) ==");
    for policy in [SchedPolicy::Gto, SchedPolicy::RoundRobin] {
        let sys = SystemConfig::paper().with_gpu_cores(cores).with_scheduler(policy);
        let mut sim = Simulator::new(sys);
        let out = uts::run(&mut sim, &ucfg, Variant::Decentralized).expect("completes");
        let b = &out.run.breakdown;
        println!(
            "  {policy:?}: {} cycles | sync {:.1}%  mem-data {:.1}%  mem-struct {:.1}%",
            out.run.cycles,
            b.fraction(StallKind::Synchronization) * 100.0,
            b.fraction(StallKind::MemoryData) * 100.0,
            b.fraction(StallKind::MemoryStructural) * 100.0,
        );
    }

    println!("\n== Cycle-classification priority (same implicit/scratchpad run) ==");
    for (name, priority) in [
        ("memory-focused (paper)", CyclePriority::memory_focused()),
        ("compute-focused", CyclePriority::compute_focused()),
        ("control-focused", CyclePriority::control_focused()),
    ] {
        let style = LocalMemStyle::Scratchpad;
        let icfg =
            if small { ImplicitConfig::small(style) } else { ImplicitConfig::paper(style) };
        let sys = SystemConfig::paper()
            .with_gpu_cores(1)
            .with_local_mem(style.mem_kind())
            .with_cycle_priority(priority);
        let mut sim = Simulator::new(sys);
        let out = implicit::run(&mut sim, &icfg).expect("completes");
        let b = &out.run.breakdown;
        println!(
            "  {name:>22}: {} cycles | mem-data {:>6}  mem-struct {:>6}  comp-data {:>6}  control {:>6}",
            out.run.cycles,
            b.cycles(StallKind::MemoryData),
            b.cycles(StallKind::MemoryStructural),
            b.cycles(StallKind::ComputeData),
            b.cycles(StallKind::Control),
        );
    }
    println!("  (identical timing; only the attribution of stall cycles moves)");

    println!("\n== Store-buffer flush rate (UTSD, GPU coherence) ==");
    for rate in [1u32, 2, 4] {
        let sys = SystemConfig::paper().with_gpu_cores(cores).with_flush_rate(rate);
        let mut sim = Simulator::new(sys);
        let out = uts::run(&mut sim, &ucfg, Variant::Decentralized).expect("completes");
        println!(
            "  {rate} line/cycle: {} cycles | pending-release {:>7}",
            out.run.cycles,
            out.run
                .breakdown
                .mem_struct_cycles(gsi_core::MemStructCause::PendingRelease),
        );
    }

    println!("\n== Section 6.1.4's proposed optimizations (UTSD) ==");
    for (name, protocol, sfifo, owned) in [
        ("GPU coherence baseline", Protocol::GpuCoherence, false, false),
        ("GPU coherence + S-FIFO", Protocol::GpuCoherence, true, false),
        ("DeNovo baseline", Protocol::DeNovo, false, false),
        ("DeNovo + S-FIFO", Protocol::DeNovo, true, false),
        ("DeNovo + owned atomics", Protocol::DeNovo, false, true),
        ("DeNovo + both", Protocol::DeNovo, true, true),
    ] {
        let sys = SystemConfig::paper()
            .with_gpu_cores(cores)
            .with_protocol(protocol)
            .with_sfifo(sfifo)
            .with_owned_atomics(owned);
        let mut sim = Simulator::new(sys);
        let out = uts::run(&mut sim, &ucfg, Variant::Decentralized).expect("completes");
        let owned_hits: u64 = out.run.mem_stats.iter().map(|m| m.owned_atomic_hits).sum();
        println!(
            "  {name:>24}: {:>7} cycles | sync {:>7}  pend-release {:>6}  owned-atomic hits {:>6}",
            out.run.cycles,
            out.run.breakdown.cycles(StallKind::Synchronization),
            out.run
                .breakdown
                .mem_struct_cycles(gsi_core::MemStructCause::PendingRelease),
            owned_hits,
        );
    }

    println!("\n== DeNovo remote-L1 service latency (UTS, DeNovo) ==");
    for lat in [5u64, 20, 60] {
        let sys = SystemConfig::paper()
            .with_gpu_cores(cores)
            .with_protocol(Protocol::DeNovo)
            .with_remote_l1_latency(lat);
        let mut sim = Simulator::new(sys);
        let out = uts::run(&mut sim, &ucfg, Variant::Centralized).expect("completes");
        println!(
            "  owner access {lat:>2} cycles: {} cycles | remote-L1 data stalls {:>7}",
            out.run.cycles,
            out.run.breakdown.mem_data_cycles(gsi_core::MemDataCause::RemoteL1),
        );
    }
}
