//! `serve-client` — minimal smoke client for the `gsi-serve` line-JSON
//! protocol, speaking plain TCP (no dependency on the service crate, so
//! it exercises the wire format, not shared types).
//!
//! ```text
//! serve-client --addr 127.0.0.1:4750 --request '{"op":"simulate",...}' \
//!              [--request '...'] [--timing]
//! ```
//!
//! Each request is written as one line; every response frame is echoed to
//! stdout until the request's `result` or `error` frame arrives. With
//! `--timing`, a `{"event":"client-timing",...}` line follows each
//! request with its round-trip latency. With `--bench FILE`, the same
//! latency rows are appended to the `serve` array of an existing JSON
//! report (the `BENCH_PR<n>.json` the sweep writes), so serve round-trips
//! land next to the per-experiment perf rows. Exits non-zero if any
//! request ended in an `error` frame.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: serve-client --addr HOST:PORT --request JSON [--request JSON ...] \
         [--timing] [--bench FILE]"
    );
    std::process::exit(2);
}

/// Echo one line to stdout. A closed pipe (`serve-client ... | head`) is
/// a normal way for a consumer to stop reading — exit cleanly instead of
/// panicking inside `println!`.
fn emit(line: &str) {
    let mut out = std::io::stdout();
    if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
        std::process::exit(0);
    }
}

/// Append `rows` to the `serve` array of the JSON report at `path`,
/// creating the file (and the array) if absent. Pretty-printed to match
/// the sweep's report style.
fn merge_bench(path: &str, rows: Vec<gsi_json::Value>) {
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| gsi_json::Value::parse(&s).ok())
        .unwrap_or_else(|| gsi_json::Value::Object(Vec::new()));
    let mut all = doc
        .get("serve")
        .and_then(gsi_json::Value::as_array)
        .map(<[gsi_json::Value]>::to_vec)
        .unwrap_or_default();
    all.extend(rows);
    doc.set("serve", gsi_json::Value::Array(all));
    if let Err(e) = std::fs::write(path, doc.to_string_pretty()) {
        eprintln!("write {path}: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut requests: Vec<String> = Vec::new();
    let mut timing = false;
    let mut bench: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--request" => requests.push(it.next().unwrap_or_else(|| usage()).clone()),
            "--timing" => timing = true,
            "--bench" => bench = Some(it.next().unwrap_or_else(|| usage()).clone()),
            _ => usage(),
        }
    }
    let addr = addr.unwrap_or_else(|| usage());
    if requests.is_empty() {
        usage();
    }

    let mut stream = TcpStream::connect(&addr).unwrap_or_else(|e| {
        eprintln!("connect {addr}: {e}");
        std::process::exit(1);
    });
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone().unwrap_or_else(|e| {
        eprintln!("clone stream: {e}");
        std::process::exit(1);
    }));

    let mut failed = false;
    let mut rows: Vec<gsi_json::Value> = Vec::new();
    for request in &requests {
        let parsed = gsi_json::Value::parse(request).ok();
        let req_field = |key: &str| -> String {
            parsed
                .as_ref()
                .and_then(|r| r.get(key))
                .and_then(gsi_json::Value::as_str)
                .unwrap_or("?")
                .to_string()
        };
        let is_shutdown = req_field("op") == "shutdown";
        let t0 = Instant::now();
        if writeln!(stream, "{request}").and_then(|()| stream.flush()).is_err() {
            eprintln!("connection closed while sending");
            std::process::exit(1);
        }
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => {
                    // EOF. Normal right after a shutdown acknowledgement;
                    // anything else means the request went unanswered.
                    if !is_shutdown {
                        eprintln!("connection closed mid-request");
                        failed = true;
                    }
                    break;
                }
                Ok(_) => {}
                Err(e) => {
                    eprintln!("read: {e}");
                    std::process::exit(1);
                }
            }
            let line = line.trim_end();
            emit(line);
            let frame = gsi_json::Value::parse(line).unwrap_or_else(|e| {
                eprintln!("unparseable frame {line:?}: {e}");
                std::process::exit(1);
            });
            let event = frame.get("event").and_then(gsi_json::Value::as_str).unwrap_or("");
            if event == "error" {
                failed = true;
            }
            if event == "result" || event == "error" {
                let cached =
                    frame.get("cached").and_then(gsi_json::Value::as_bool).unwrap_or(false);
                if timing {
                    emit(
                        &gsi_json::obj! {
                            "event" => "client-timing",
                            "seconds" => t0.elapsed().as_secs_f64(),
                            "cached" => cached,
                            "ok" => event == "result",
                        }
                        .to_string(),
                    );
                }
                if bench.is_some() {
                    rows.push(gsi_json::obj! {
                        "name" => format!("serve/{}/{}", req_field("op"), req_field("workload")),
                        "seconds" => t0.elapsed().as_secs_f64(),
                        "cached" => cached,
                        "ok" => event == "result",
                    });
                }
                break;
            }
        }
    }
    if let Some(path) = bench {
        merge_bench(&path, rows);
    }
    if failed {
        std::process::exit(1);
    }
}
