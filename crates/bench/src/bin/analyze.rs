//! `analyze` — run the static kernel verifier (`gsi-analyze`) over any
//! workload of the suite, or over all of them, without simulating a cycle.
//!
//! ```text
//! analyze --all
//! analyze --workload gemm-tiled --scale paper
//! analyze --workload custom --asm kernel.gsi --blocks 4 --warps 2
//! analyze --all --json report.json
//! ```
//!
//! Exit status: 0 when no kernel has `Error`-severity findings, 1
//! otherwise (warnings never fail the run), 2 on usage errors.

use gsi_isa::asm::parse_program;
use gsi_json::ToJson;
use gsi_mem::Protocol;
use gsi_sim::{
    analyze_launch_with, finding_digest, AnalysisReport, Baseline, LaunchSpec, SystemConfig,
};
use gsi_workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
use gsi_workloads::uts::{self, UtsConfig, Variant};
use gsi_workloads::{bfs, gemm, histogram, reduction, spmv, stencil};

const WORKLOADS: &[&str] = &[
    "uts",
    "utsd",
    "implicit-scratchpad",
    "implicit-dma",
    "implicit-stash",
    "spmv",
    "histogram",
    "stencil-tiled",
    "stencil-global",
    "reduction",
    "bfs",
    "gemm-tiled",
    "gemm-global",
];

fn usage() -> ! {
    eprintln!(
        "usage: analyze --all | --workload <{}|custom>\n\
         \x20      [--scale small|paper] [--protocol gpu|denovo] [--sms N]\n\
         \x20      [--races|--no-races] [--baseline PATH] [--write-baseline PATH]\n\
         \x20      [--json PATH] [--quiet]\n\
         \x20      custom kernels: --asm FILE [--blocks N] [--warps N]\n\
         \x20      (r0 is preset to the flat thread id per lane)",
        WORKLOADS.join("|")
    );
    std::process::exit(2);
}

struct Options {
    workloads: Vec<String>,
    paper_scale: bool,
    protocol: Protocol,
    sms: Option<usize>,
    json: Option<String>,
    quiet: bool,
    asm: Option<String>,
    blocks: u64,
    warps: usize,
    races: bool,
    baseline: Option<String>,
    write_baseline: Option<String>,
}

fn parse_args() -> Options {
    let mut o = Options {
        workloads: Vec::new(),
        paper_scale: false,
        protocol: Protocol::GpuCoherence,
        sms: None,
        json: None,
        quiet: false,
        asm: None,
        blocks: 4,
        warps: 2,
        races: true,
        baseline: None,
        write_baseline: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = || it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--all" => o.workloads = WORKLOADS.iter().map(|w| w.to_string()).collect(),
            "--workload" => o.workloads.push(next()),
            "--scale" => {
                o.paper_scale = match next().as_str() {
                    "paper" => true,
                    "small" => false,
                    _ => usage(),
                }
            }
            "--protocol" => {
                o.protocol = match next().as_str() {
                    "gpu" => Protocol::GpuCoherence,
                    "denovo" => Protocol::DeNovo,
                    _ => usage(),
                }
            }
            "--sms" => o.sms = Some(next().parse().unwrap_or_else(|_| usage())),
            "--json" => o.json = Some(next()),
            "--quiet" => o.quiet = true,
            "--asm" => o.asm = Some(next()),
            "--blocks" => o.blocks = next().parse().unwrap_or_else(|_| usage()),
            "--warps" => o.warps = next().parse().unwrap_or_else(|_| usage()),
            "--races" => o.races = true,
            "--no-races" => o.races = false,
            "--baseline" => o.baseline = Some(next()),
            "--write-baseline" => o.write_baseline = Some(next()),
            _ => usage(),
        }
    }
    if o.workloads.is_empty() {
        // A bare `--asm file.gsi` means "analyze this custom kernel".
        if o.asm.is_some() {
            o.workloads.push("custom".to_string());
        } else {
            usage();
        }
    }
    for w in &o.workloads {
        if w != "custom" && !WORKLOADS.contains(&w.as_str()) {
            usage();
        }
    }
    o
}

fn implicit_style(name: &str) -> LocalMemStyle {
    match name {
        "implicit-scratchpad" => LocalMemStyle::Scratchpad,
        "implicit-dma" => LocalMemStyle::ScratchpadDma,
        "implicit-stash" => LocalMemStyle::Stash,
        _ => unreachable!(),
    }
}

/// The launch(es) a workload name denotes — BFS analyzes both frontier
/// parities since the launches differ (ping-pong buffers).
fn specs_for(o: &Options, name: &str) -> Vec<LaunchSpec> {
    let paper = o.paper_scale;
    match name {
        "uts" | "utsd" => {
            let cfg = if paper { UtsConfig::paper() } else { UtsConfig::small() };
            let lay = uts::UtsLayout::new(&cfg);
            let variant = if name == "uts" { Variant::Centralized } else { Variant::Decentralized };
            vec![uts::launch_spec(&cfg, lay, variant)]
        }
        w if w.starts_with("implicit") => {
            let style = implicit_style(w);
            let cfg =
                if paper { ImplicitConfig::paper(style) } else { ImplicitConfig::small(style) };
            vec![implicit::launch_spec(&cfg)]
        }
        "spmv" => {
            let cfg = if paper { spmv::SpmvConfig::medium() } else { spmv::SpmvConfig::small() };
            let lay = spmv::SpmvLayout::new(&cfg);
            vec![spmv::launch_spec(&cfg, lay)]
        }
        "histogram" => {
            let cfg = if paper {
                histogram::HistogramConfig::contended()
            } else {
                histogram::HistogramConfig::small()
            };
            let lay = histogram::HistogramLayout::new(&cfg);
            vec![histogram::launch_spec(&cfg, lay)]
        }
        "stencil-tiled" | "stencil-global" => {
            let variant = if name.ends_with("tiled") {
                stencil::StencilVariant::Tiled
            } else {
                stencil::StencilVariant::Global
            };
            let cfg = if paper {
                stencil::StencilConfig::medium(variant)
            } else {
                stencil::StencilConfig::small(variant)
            };
            let lay = stencil::StencilLayout::new(&cfg);
            vec![stencil::launch_spec(&cfg, lay)]
        }
        "reduction" => {
            let cfg = if paper {
                reduction::ReductionConfig::medium()
            } else {
                reduction::ReductionConfig::small()
            };
            let lay = reduction::ReductionLayout::new(&cfg);
            vec![reduction::launch_spec(&cfg, lay)]
        }
        "bfs" => {
            let cfg = if paper { bfs::BfsConfig::medium() } else { bfs::BfsConfig::small() };
            let lay = bfs::BfsLayout::new(&cfg);
            vec![bfs::launch_spec(&cfg, &lay, 0), bfs::launch_spec(&cfg, &lay, 1)]
        }
        "custom" => {
            let path = o.asm.as_deref().unwrap_or_else(|| usage());
            let text = std::fs::read_to_string(path).expect("read assembly file");
            let program = parse_program(&text).unwrap_or_else(|e| {
                eprintln!("parse error in {path}: {e}");
                std::process::exit(1);
            });
            let warps = o.warps;
            vec![LaunchSpec::new(program, o.blocks, warps).with_init(
                move |w, block, warp, _ctx| {
                    w.set_per_lane(0, move |lane| {
                        block * (warps as u64 * 32) + (warp * 32 + lane) as u64
                    });
                },
            )]
        }
        "gemm-tiled" | "gemm-global" => {
            let variant = if name.ends_with("tiled") {
                gemm::GemmVariant::Tiled
            } else {
                gemm::GemmVariant::Global
            };
            let cfg = if paper {
                gemm::GemmConfig::medium(variant)
            } else {
                gemm::GemmConfig::small(variant)
            };
            let lay = gemm::GemmLayout::new(&cfg);
            vec![gemm::launch_spec(&cfg, lay)]
        }
        _ => unreachable!(),
    }
}

fn system_for(o: &Options, name: &str) -> SystemConfig {
    let default_sms = if name.starts_with("implicit") {
        1
    } else if o.paper_scale {
        15
    } else {
        4
    };
    let mut sys = SystemConfig::paper()
        .with_gpu_cores(o.sms.unwrap_or(default_sms))
        .with_protocol(o.protocol);
    if name.starts_with("implicit") {
        sys = sys.with_local_mem(implicit_style(name).mem_kind());
    }
    sys
}

fn main() {
    let o = parse_args();
    let baseline = o.baseline.as_deref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("read {path}: {e}");
            std::process::exit(1);
        });
        Baseline::parse(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        })
    });
    let mut reports: Vec<(String, AnalysisReport)> = Vec::new();
    for name in &o.workloads {
        let sys = system_for(&o, name);
        for spec in specs_for(&o, name) {
            let report = analyze_launch_with(&spec, &sys, baseline.as_ref(), o.races);
            reports.push((name.clone(), report));
        }
    }

    let total_errors: usize = reports.iter().map(|(_, r)| r.error_count()).sum();
    let total_warnings: usize = reports.iter().map(|(_, r)| r.warn_count()).sum();
    let total_baselined: usize = reports.iter().map(|(_, r)| r.baselined_count()).sum();

    if let Some(path) = &o.write_baseline {
        write_baseline(path, &reports);
    }
    if let Some(path) = &o.json {
        let json = gsi_json::obj! {
            "errors" => total_errors as u64,
            "warnings" => total_warnings as u64,
            "baselined" => total_baselined as u64,
            "reports" => gsi_json::Value::Array(
                reports
                    .iter()
                    .map(|(w, r)| {
                        gsi_json::obj! { "workload" => w.as_str(), "report" => r.to_json() }
                    })
                    .collect(),
            ),
        };
        std::fs::write(path, json.to_string_pretty()).expect("write json");
    }

    // The JSON artifact is already on disk; stdout is best-effort. A
    // reader that closes the pipe early (`analyze ... | head`) must not
    // turn a clean report into a panic — and must still get the
    // error-count exit code.
    let printed = print_reports(&o, &reports, total_errors, total_warnings);
    if let Err(e) = printed {
        if e.kind() != std::io::ErrorKind::BrokenPipe {
            eprintln!("stdout error: {e}");
            std::process::exit(1);
        }
    }
    if total_errors > 0 {
        std::process::exit(1);
    }
}

/// Emit every current finding (baselined or not) as an accepted baseline
/// entry in the canonical `{"version":1,"entries":[...]}` format. Each
/// entry carries the human-readable defect next to its digest so the file
/// can be audited, and entries are digest-sorted so regeneration is
/// byte-stable.
fn write_baseline(path: &str, reports: &[(String, AnalysisReport)]) {
    let mut entries: Vec<(String, String)> = Vec::new();
    for (_, report) in reports {
        for f in report.findings() {
            let digest = finding_digest(report.kernel(), f);
            let comment = format!(
                "{} {}[{}] at {}: {}",
                report.kernel(),
                f.severity,
                f.kind,
                f.location,
                f.message
            );
            entries.push((digest, comment));
        }
    }
    entries.sort();
    entries.dedup();
    let json = gsi_json::obj! {
        "version" => 1u64,
        "entries" => gsi_json::Value::Array(
            entries
                .iter()
                .map(|(digest, comment)| {
                    gsi_json::obj! { "digest" => digest.as_str(), "comment" => comment.as_str() }
                })
                .collect(),
        ),
    };
    std::fs::write(path, json.to_string_pretty()).expect("write baseline");
}

/// Print the per-kernel reports and the summary line, propagating stdout
/// errors instead of panicking.
fn print_reports(
    o: &Options,
    reports: &[(String, AnalysisReport)],
    total_errors: usize,
    total_warnings: usize,
) -> std::io::Result<()> {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Some(path) = &o.json {
        writeln!(out, "wrote {path}")?;
    }
    if !o.quiet {
        for (name, report) in reports {
            write!(out, "[{name}] {report}")?;
        }
        writeln!(
            out,
            "{} kernel(s) analyzed: {total_errors} error(s), {total_warnings} warning(s)",
            reports.len()
        )?;
    }
    Ok(())
}
