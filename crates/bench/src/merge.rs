//! Online incremental merging of sweep-unit outcomes into paper-style
//! artifacts.
//!
//! The shard supervisor journals unit results as they land and folds each
//! one into a [`MergedReport`]; after every completed unit it can rewrite
//! the figure and row artifacts (atomically — see the supervisor) so a
//! long sweep always has a current partial picture on disk.
//!
//! Everything rendered here is **deterministic**: content derives only
//! from unit indices, names, and simulation output (cycles, instructions,
//! stall breakdowns, NoC link counters), never wall-clock times, attempt
//! counts, or worker identities. That is what makes "a chaos-interrupted
//! resumed sweep produces byte-identical artifacts to a clean run" a
//! testable property rather than an aspiration; the nondeterministic
//! operational story lives in the supervisor's separate manifest.

use gsi_core::report::Figure;
use gsi_core::StallBreakdown;
use gsi_json::{FromJson, JsonError, Value};
use std::collections::BTreeMap;

use crate::plan::{SweepPlan, WorkUnit};

/// One NoC link's traffic counters, from a `trace-summary` result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkLoad {
    /// Flattened mesh node index.
    pub node: u64,
    /// Link direction: `N`/`E`/`S`/`W`.
    pub dir: String,
    /// Cycles the link spent transferring flits.
    pub busy: u64,
    /// Cycles messages spent queued behind the link.
    pub queued: u64,
}
gsi_json::json_struct!(LinkLoad { node, dir, busy, queued });

/// A successfully simulated unit, reduced to the fields the artifacts
/// need.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitResult {
    /// The unit's index in plan expansion order.
    pub index: usize,
    /// The unit's display name (`spmv/denovo/mshr32`).
    pub name: String,
    /// Workload name — the figure grouping key.
    pub workload: String,
    /// Total kernel cycles.
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// The GSI stall breakdown (the paper's bar chart for this config).
    pub breakdown: StallBreakdown,
    /// NoC link loads; empty unless the plan op was `trace-summary`.
    pub links: Vec<LinkLoad>,
}
gsi_json::json_struct!(UnitResult {
    index,
    name,
    workload,
    cycles,
    instructions,
    breakdown,
    links,
});

impl UnitResult {
    /// Reduce a serve `result` payload (the frame's `"result"` object)
    /// to a [`UnitResult`] for the given unit.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if the payload is missing `cycles`,
    /// `instructions`, or a parseable `run.breakdown` — which would mean
    /// the worker spoke a different protocol revision.
    pub fn from_result(unit: &WorkUnit, result: &Value) -> Result<UnitResult, JsonError> {
        let cycles = result
            .req("cycles")?
            .as_u64()
            .ok_or_else(|| JsonError::new("`cycles` must be an unsigned integer"))?;
        let instructions = result
            .req("instructions")?
            .as_u64()
            .ok_or_else(|| JsonError::new("`instructions` must be an unsigned integer"))?;
        let breakdown = StallBreakdown::from_json(result.req("run")?.req("breakdown")?)?;
        let links = match result.get("trace_summary").and_then(|t| t.get("links")) {
            Some(l) => Vec::<LinkLoad>::from_json(l)?,
            None => Vec::new(),
        };
        Ok(UnitResult {
            index: unit.index,
            name: unit.name.clone(),
            workload: unit.workload.clone(),
            cycles,
            instructions,
            breakdown,
            links,
        })
    }
}

/// A unit that deterministically failed (simulation error) or was
/// quarantined as poisonous (kept killing workers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitFailure {
    /// The unit's index in plan expansion order.
    pub index: usize,
    /// The unit's display name.
    pub name: String,
    /// `failed` (typed error from the worker) or `poisoned`.
    pub status: String,
    /// The worker's error message or stderr tail.
    pub message: String,
}
gsi_json::json_struct!(UnitFailure { index, name, status, message });

/// Rolling merge of unit outcomes, renderable at any point.
#[derive(Debug)]
pub struct MergedReport {
    plan_name: String,
    plan_digest: String,
    total_units: usize,
    results: BTreeMap<usize, UnitResult>,
    failures: BTreeMap<usize, UnitFailure>,
}

impl MergedReport {
    /// An empty report for a plan.
    pub fn new(plan: &SweepPlan) -> MergedReport {
        MergedReport {
            plan_name: plan.name.clone(),
            plan_digest: plan.digest(),
            total_units: plan.unit_count(),
            results: BTreeMap::new(),
            failures: BTreeMap::new(),
        }
    }

    /// Fold in a successful unit. Returns `false` (and changes nothing)
    /// if this unit index already has an outcome — the double-count
    /// guard behind the journal's replay dedup.
    pub fn insert(&mut self, result: UnitResult) -> bool {
        let index = result.index;
        if self.done(index) {
            return false;
        }
        self.results.insert(index, result).is_none()
    }

    /// Fold in a failed or poisoned unit; same dedup contract as
    /// [`MergedReport::insert`].
    pub fn insert_failure(&mut self, failure: UnitFailure) -> bool {
        let index = failure.index;
        if self.done(index) {
            return false;
        }
        self.failures.insert(index, failure).is_none()
    }

    /// Does this unit index already have a recorded outcome?
    pub fn done(&self, index: usize) -> bool {
        self.results.contains_key(&index) || self.failures.contains_key(&index)
    }

    /// Units with any outcome so far.
    pub fn outcome_count(&self) -> usize {
        self.results.len() + self.failures.len()
    }

    /// Have all plan units landed?
    pub fn is_complete(&self) -> bool {
        self.outcome_count() >= self.total_units
    }

    /// The deterministic row artifact: one object per unit, sorted by
    /// index. This is what the verify harness byte-compares across a
    /// clean run and a chaos-interrupted resumed run, and what lands in
    /// `BENCH_PR<n>.json`.
    pub fn rows_json(&self) -> Value {
        let mut rows: Vec<(usize, Value)> = Vec::with_capacity(self.outcome_count());
        for r in self.results.values() {
            rows.push((
                r.index,
                gsi_json::obj! {
                    "unit" => r.index,
                    "name" => r.name,
                    "status" => "ok",
                    "cycles" => r.cycles,
                    "instructions" => r.instructions,
                },
            ));
        }
        for f in self.failures.values() {
            rows.push((
                f.index,
                gsi_json::obj! {
                    "unit" => f.index,
                    "name" => f.name,
                    "status" => f.status,
                    "message" => f.message,
                },
            ));
        }
        rows.sort_by_key(|(i, _)| *i);
        gsi_json::obj! {
            "plan" => self.plan_name,
            "plan_digest" => self.plan_digest,
            "total_units" => self.total_units,
            "rows" => Value::Array(rows.into_iter().map(|(_, v)| v).collect()),
        }
    }

    /// The deterministic figure artifact: per-workload stall-breakdown
    /// figures (paper style, normalized to the workload's first listed
    /// configuration), NoC heatmaps for units that carried link loads,
    /// and a failed-unit section.
    pub fn figures_text(&self) -> String {
        let mut by_workload: BTreeMap<&str, Vec<&UnitResult>> = BTreeMap::new();
        for r in self.results.values() {
            by_workload.entry(&r.workload).or_default().push(r);
        }
        let mut out = format!(
            "# {} — {}/{} units merged (plan {})\n",
            self.plan_name,
            self.outcome_count(),
            self.total_units,
            self.plan_digest
        );
        for (workload, units) in &by_workload {
            let mut figure = Figure::new(format!("{} — {workload}", self.plan_name));
            for u in units {
                figure.push(u.name.clone(), u.breakdown.clone());
            }
            out.push('\n');
            out.push_str(&figure.render_all(60));
        }
        let mut any_links = false;
        for r in self.results.values() {
            if r.links.is_empty() {
                continue;
            }
            if !any_links {
                out.push_str("\n## NoC link-busy heatmaps\n");
                any_links = true;
            }
            out.push_str(&format!("\n### {}\n{}", r.name, render_heatmap(&r.links)));
        }
        if !self.failures.is_empty() {
            out.push_str("\n## Units without results\n");
            for f in self.failures.values() {
                out.push_str(&format!(
                    "- [{}] {} — {}: {}\n",
                    f.index, f.name, f.status, f.message
                ));
            }
        }
        out
    }
}

/// Density ramp for heatmap cells, dark to bright (same convention as the
/// trace renderer's timeline view).
const RAMP: &[u8] = b" .:-=+*#%@";

/// Render per-node total link busy-cycles as a square character grid.
///
/// The mesh side is recovered as `ceil(sqrt(max node + 1))` — the summary
/// JSON only names loaded links, so this is the tightest square mesh that
/// contains them all.
pub fn render_heatmap(links: &[LinkLoad]) -> String {
    let mut per_node: BTreeMap<u64, u64> = BTreeMap::new();
    for l in links {
        *per_node.entry(l.node).or_insert(0) += l.busy;
    }
    let Some(max_node) = per_node.keys().next_back().copied() else {
        return String::from("(no link traffic)\n");
    };
    let mut side = 1u64;
    while side * side < max_node + 1 {
        side += 1;
    }
    let peak = per_node.values().copied().max().unwrap_or(0).max(1);
    let mut out = String::new();
    for row in 0..side {
        for col in 0..side {
            let busy = per_node.get(&(row * side + col)).copied().unwrap_or(0);
            let frac = busy as f64 / peak as f64;
            let idx = ((frac * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_json::ToJson;

    fn plan() -> SweepPlan {
        SweepPlan::parse(r#"{"name":"t","workloads":["spmv","bfs"],"protocols":["gpu","denovo"]}"#)
            .unwrap()
    }

    fn fake_result(cycles: u64) -> Value {
        let breakdown = StallBreakdown::default().to_json();
        gsi_json::obj! {
            "workload" => "spmv",
            "cycles" => cycles,
            "instructions" => 10u64,
            "run" => gsi_json::obj! { "breakdown" => breakdown },
        }
    }

    #[test]
    fn insert_rejects_duplicate_unit_indices() {
        let p = plan();
        let units = p.units();
        let mut merged = MergedReport::new(&p);
        let r = UnitResult::from_result(&units[0], &fake_result(100)).unwrap();
        assert!(merged.insert(r.clone()));
        assert!(!merged.insert(r), "a unit must never merge twice");
        // A failure for the same index is likewise a duplicate.
        assert!(!merged.insert_failure(UnitFailure {
            index: 0,
            name: units[0].name.clone(),
            status: "failed".into(),
            message: "late".into(),
        }));
        assert_eq!(merged.outcome_count(), 1);
        assert!(!merged.is_complete());
    }

    #[test]
    fn rows_are_sorted_and_deterministic() {
        let p = plan();
        let units = p.units();
        let mut a = MergedReport::new(&p);
        let mut b = MergedReport::new(&p);
        // Insert in opposite orders; rendered artifacts must not care.
        for i in [3usize, 0, 2, 1] {
            let r = UnitResult::from_result(&units[i], &fake_result(100 + i as u64)).unwrap();
            a.insert(r);
        }
        for (i, unit) in units.iter().enumerate().take(4) {
            let r = UnitResult::from_result(unit, &fake_result(100 + i as u64)).unwrap();
            b.insert(r);
        }
        assert!(a.is_complete());
        assert_eq!(a.rows_json().to_string(), b.rows_json().to_string());
        assert_eq!(a.figures_text(), b.figures_text());
        let rows = a.rows_json();
        let arr = rows.get("rows").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[2].get("unit").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn figures_group_by_workload_and_list_failures() {
        let p = plan();
        let units = p.units();
        let mut merged = MergedReport::new(&p);
        merged.insert(UnitResult::from_result(&units[0], &fake_result(100)).unwrap());
        merged.insert(UnitResult::from_result(&units[2], &fake_result(90)).unwrap());
        merged.insert_failure(UnitFailure {
            index: 3,
            name: units[3].name.clone(),
            status: "poisoned".into(),
            message: "signal: 9".into(),
        });
        let text = merged.figures_text();
        assert!(text.contains("t — spmv"), "missing spmv figure:\n{text}");
        assert!(text.contains("t — bfs"), "missing bfs figure:\n{text}");
        assert!(text.contains("poisoned"), "missing failure section:\n{text}");
        assert!(text.contains("3/4 units merged"), "missing progress line:\n{text}");
    }

    #[test]
    fn heatmap_recovers_mesh_geometry_from_link_indices() {
        let links = vec![
            LinkLoad { node: 0, dir: "N".into(), busy: 10, queued: 0 },
            LinkLoad { node: 0, dir: "E".into(), busy: 10, queued: 0 },
            LinkLoad { node: 8, dir: "S".into(), busy: 5, queued: 1 },
        ];
        let grid = render_heatmap(&links);
        // max node 8 → 3×3 mesh; node 0 is the peak, node 8 half-bright.
        let lines: Vec<&str> = grid.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.chars().count() == 3));
        assert_eq!(lines[0].chars().next(), Some('@'));
        assert_eq!(render_heatmap(&[]), "(no link traffic)\n");
    }

    #[test]
    fn unit_results_round_trip_through_json() {
        let p = plan();
        let units = p.units();
        let r = UnitResult::from_result(&units[1], &fake_result(77)).unwrap();
        let back = UnitResult::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        // Malformed payloads are typed errors, not panics.
        assert!(UnitResult::from_result(&units[0], &gsi_json::obj! {}).is_err());
    }
}
