//! Parallel sweep harness: fan independent simulations across OS threads,
//! and keep the sweep alive when individual experiments fail.
//!
//! Every experiment of the paper's evaluation is an independent
//! (workload × protocol × configuration) simulation, so the sweep
//! parallelizes trivially: a scoped thread pool pulls experiment indices
//! off a shared atomic counter and each worker builds and runs its
//! simulator from scratch. Results land in per-index slots, so the
//! returned vector is in sweep order regardless of which thread finished
//! when — output stays deterministic while wall-clock time drops to
//! roughly the longest single experiment.
//!
//! Resilience: each attempt runs under `catch_unwind`, optionally under a
//! per-attempt deadline (on an [`AttemptPool`] runner), and failures retry
//! with capped exponential backoff per [`SweepPolicy`]. A failing
//! experiment degrades to a typed [`ExperimentError`] in its slot instead
//! of poisoning the whole sweep — every other experiment's result
//! survives. A timed-out attempt's runner is *not* abandoned: it finishes
//! its stale job (the simulator stops at its own cycle budget) and then
//! returns itself to the pool, so N timeouts leave the pool's capacity
//! intact instead of leaking N threads.
//!
//! Built on `std::thread` only; no external thread-pool crates.

use gsi_sim::{KernelRun, SimError};
use gsi_trace::TraceLevel;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// The closure type every experiment runs: build a simulator from scratch,
/// run the workload, return the kernel run plus optional extra JSON.
type RunFn = dyn Fn() -> Result<(KernelRun, Option<gsi_json::Value>), SimError> + Send + Sync;

/// One independent simulation: a display name plus a closure that builds
/// the simulator and runs the workload from scratch (so experiments share
/// no mutable state and can run on any thread).
pub struct Experiment {
    name: String,
    level: TraceLevel,
    run: Arc<RunFn>,
}

impl Experiment {
    /// Wrap a closure as a named experiment (tracing off). The closure
    /// returns `Err` for simulation failures (timeout, accounting), which
    /// the sweep records as a typed per-experiment error.
    pub fn new(
        name: impl Into<String>,
        run: impl Fn() -> Result<KernelRun, SimError> + Send + Sync + 'static,
    ) -> Self {
        Experiment {
            name: name.into(),
            level: TraceLevel::Off,
            run: Arc::new(move || run().map(|r| (r, None))),
        }
    }

    /// Wrap a closure as an experiment run at a given trace level. The
    /// closure is responsible for wiring `level` into its simulator; it may
    /// return extra JSON (e.g. the self-profile) to merge into the report
    /// row.
    pub fn traced(
        name: impl Into<String>,
        level: TraceLevel,
        run: impl Fn() -> Result<(KernelRun, Option<gsi_json::Value>), SimError> + Send + Sync + 'static,
    ) -> Self {
        Experiment { name: name.into(), level, run: Arc::new(run) }
    }

    /// The experiment's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The trace level the experiment runs at.
    pub fn level(&self) -> TraceLevel {
        self.level
    }
}

/// Why an experiment failed, after all retries were exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// The experiment closure panicked; the panic was caught and the
    /// worker thread survived.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The experiment exceeded the per-attempt deadline. The attempt's
    /// pool runner keeps running the stale job to completion (the
    /// simulator stops on its own at its cycle budget) and then returns
    /// itself to the pool; the sweep moves on immediately.
    TimedOut {
        /// The deadline that was exceeded.
        deadline: Duration,
    },
    /// The simulator itself reported failure: a kernel timeout (with its
    /// diagnostic [`ProgressReport`](gsi_sim::ProgressReport)) or a stall
    /// accounting violation.
    Sim(SimError),
}

impl ExperimentError {
    /// Stable machine-readable kind for report rows: `"panicked"`,
    /// `"timed_out"`, `"sim_timeout"`, or `"accounting"`.
    pub fn kind(&self) -> &'static str {
        match self {
            ExperimentError::Panicked { .. } => "panicked",
            ExperimentError::TimedOut { .. } => "timed_out",
            ExperimentError::Sim(SimError::Timeout { .. }) => "sim_timeout",
            ExperimentError::Sim(SimError::Accounting { .. }) => "accounting",
            ExperimentError::Sim(SimError::Analysis { .. }) => "analysis",
        }
    }
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Panicked { message } => write!(f, "panicked: {message}"),
            ExperimentError::TimedOut { deadline } => {
                write!(f, "exceeded the {:.1}s deadline", deadline.as_secs_f64())
            }
            ExperimentError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

/// A successful experiment's payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOutput {
    /// The simulation result.
    pub run: KernelRun,
    /// Extra per-experiment JSON from the closure (e.g. the self-profile).
    pub extra: Option<gsi_json::Value>,
}

/// The outcome of one experiment: its result or typed error, attempt
/// count, and wall time.
#[derive(Debug)]
pub struct SweepResult {
    /// The experiment's name.
    pub name: String,
    /// The trace level the experiment ran at.
    pub level: TraceLevel,
    /// The result, or why every attempt failed.
    pub outcome: Result<ExperimentOutput, ExperimentError>,
    /// Attempts made (1 = first try succeeded; retries add more;
    /// best-of-N re-measurements are not counted).
    pub attempts: u32,
    /// Wall-clock time of the fastest successful attempt (the number a
    /// simulation rate should be computed from), or the total time across
    /// every attempt when all of them failed.
    pub wall: Duration,
}

impl SweepResult {
    /// The kernel run, when the experiment succeeded.
    pub fn kernel_run(&self) -> Option<&KernelRun> {
        self.outcome.as_ref().ok().map(|o| &o.run)
    }

    /// The error, when every attempt failed.
    pub fn error(&self) -> Option<&ExperimentError> {
        self.outcome.as_ref().err()
    }
}

/// Retry and deadline policy for a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPolicy {
    /// Per-attempt wall-clock deadline. `None` runs attempts inline with
    /// no timeout (cheapest; no watcher thread).
    pub deadline: Option<Duration>,
    /// Extra attempts after the first failure.
    pub retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub backoff: Duration,
    /// Upper bound on the backoff.
    pub backoff_cap: Duration,
    /// Measured runs per experiment (best-of-N): after the first success,
    /// the experiment is re-run `repeats - 1` more times and the fastest
    /// attempt's wall time is reported. Simulations are deterministic, so
    /// the payload is identical across repeats — only the wall time
    /// varies (host scheduling noise), which is exactly what best-of-N
    /// filters out of benchmark artifacts. `0` behaves like `1`.
    pub repeats: u32,
}

impl Default for SweepPolicy {
    fn default() -> Self {
        SweepPolicy {
            deadline: None,
            retries: 0,
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            repeats: 1,
        }
    }
}

impl SweepPolicy {
    /// Set the per-attempt deadline.
    #[must_use]
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Set the retry count.
    #[must_use]
    pub fn with_retries(mut self, n: u32) -> Self {
        self.retries = n;
        self
    }

    /// Set the best-of-N repeat count.
    #[must_use]
    pub fn with_repeats(mut self, n: u32) -> Self {
        self.repeats = n;
        self
    }
}

/// All results of a sweep, in the order the experiments were submitted.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-experiment results, in submission order. Failed experiments
    /// keep their slot with a typed error; completed ones are never lost.
    pub results: Vec<SweepResult>,
    /// Wall-clock time for the whole sweep.
    pub wall: Duration,
    /// Worker threads used.
    pub threads: usize,
}

impl SweepOutcome {
    /// Sum of per-experiment wall times — what a serial sweep would have
    /// cost. `wall < serial_wall()` is the evidence that work overlapped.
    /// Under best-of-N ([`SweepPolicy::repeats`] > 1) each term is the
    /// fastest repeat while `wall` includes all of them, so the
    /// comparison loses that meaning.
    pub fn serial_wall(&self) -> Duration {
        self.results.iter().map(|r| r.wall).sum()
    }

    /// Parallel speedup over a serial sweep.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall == 0.0 {
            1.0
        } else {
            self.serial_wall().as_secs_f64() / wall
        }
    }

    /// Experiments whose every attempt failed.
    pub fn failed(&self) -> usize {
        self.results.iter().filter(|r| r.outcome.is_err()).count()
    }

    /// Total retry attempts across the sweep (attempts beyond each
    /// experiment's first).
    pub fn total_retries(&self) -> u64 {
        self.results.iter().map(|r| u64::from(r.attempts.saturating_sub(1))).sum()
    }

    /// Wall seconds of the tracing-off run of `name`, the overhead
    /// baseline; `None` when the sweep has no successful off-level row
    /// for it.
    fn off_baseline(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.name == name && r.level == TraceLevel::Off && r.outcome.is_ok())
            .map(|r| r.wall.as_secs_f64())
    }

    /// A machine-readable report of the sweep: per-experiment cycles,
    /// wall time, and simulation rate, plus the aggregate evidence that
    /// the sweep ran multi-threaded. Rows run with tracing enabled also
    /// carry `overhead_pct`, the wall-time cost relative to the same
    /// experiment's tracing-off row (when the sweep includes one). Every
    /// row carries `status` and `attempts`; failed rows carry `error`
    /// instead of the run fields.
    pub fn to_json(&self) -> gsi_json::Value {
        let experiments: Vec<gsi_json::Value> = self
            .results
            .iter()
            .map(|r| {
                let secs = r.wall.as_secs_f64();
                let mut row = gsi_json::obj! {
                    "name" => r.name,
                    "trace_level" => r.level.name(),
                    "status" => match &r.outcome {
                        Ok(_) => "ok",
                        Err(e) => e.kind(),
                    },
                    "attempts" => r.attempts,
                    "wall_seconds" => secs,
                };
                match &r.outcome {
                    Ok(out) => {
                        let rate = if secs == 0.0 { 0.0 } else { out.run.cycles as f64 / secs };
                        row.set("cycles", out.run.cycles);
                        row.set("instructions", out.run.instructions);
                        row.set("cycles_per_second", rate);
                        if r.level != TraceLevel::Off {
                            if let Some(base) = self.off_baseline(&r.name).filter(|&b| b > 0.0) {
                                row.set("overhead_pct", (secs / base - 1.0) * 100.0);
                            }
                        }
                        if let Some(extra) = &out.extra {
                            row.set("trace", extra.clone());
                        }
                    }
                    Err(e) => {
                        row.set("error", e.to_string());
                    }
                }
                row
            })
            .collect();
        gsi_json::obj! {
            "threads" => self.threads,
            "wall_seconds" => self.wall.as_secs_f64(),
            "serial_wall_seconds" => self.serial_wall().as_secs_f64(),
            "speedup" => self.speedup(),
            "failed" => self.failed(),
            "retries" => self.total_retries(),
            "experiments" => experiments,
        }
    }
}

/// The hardware parallelism available, defaulting to 1 when unknown.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Render a caught panic payload as a message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A type-erased unit of work for a pool runner.
type Job = Box<dyn FnOnce() + Send>;

/// What a runner thread receives: work, or the shutdown sentinel.
enum RunnerJob {
    Work(Job),
    Exit,
}

/// A handle to one runner thread: the sending half of its job channel.
struct Runner {
    tx: mpsc::Sender<RunnerJob>,
}

struct PoolInner {
    /// Runners waiting for work. A runner is *checked out* (removed) for
    /// the duration of a job and re-registers itself when the job ends —
    /// even a job whose caller stopped waiting for it.
    idle: Mutex<Vec<Runner>>,
    /// Total runner threads ever spawned by this pool.
    spawned: AtomicUsize,
    /// Set by `Drop`; re-registration stops and runners exit instead.
    closed: AtomicBool,
}

impl PoolInner {
    fn idle_lock(&self) -> std::sync::MutexGuard<'_, Vec<Runner>> {
        // A poisoned lock only means a thread died mid-push/pop; the Vec
        // itself is still coherent.
        self.idle.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// An elastic pool of runner threads for deadline-bounded jobs.
///
/// [`run_with_deadline`](Self::run_with_deadline) checks a runner out of
/// the pool (spawning one if none is idle) and waits for the job's result
/// up to the deadline. On expiry the caller moves on immediately, but the
/// runner is **not** abandoned: it finishes the stale job and then puts
/// itself back into the idle list, ready for the next checkout. N
/// timeouts therefore cost at most N concurrently-busy runners, never N
/// leaked threads — once the stale jobs drain, the same runners serve all
/// subsequent attempts ([`spawned`](Self::spawned) stops growing).
///
/// Dropping the pool tells idle runners to exit; busy runners exit on
/// their own when their stale job ends.
pub struct AttemptPool {
    inner: Arc<PoolInner>,
}

impl Default for AttemptPool {
    fn default() -> Self {
        Self::new()
    }
}

impl AttemptPool {
    /// An empty pool; runners are spawned on demand.
    pub fn new() -> Self {
        AttemptPool {
            inner: Arc::new(PoolInner {
                idle: Mutex::new(Vec::new()),
                spawned: AtomicUsize::new(0),
                closed: AtomicBool::new(false),
            }),
        }
    }

    /// Total runner threads this pool has ever spawned. Reuse keeps this
    /// flat; only a checkout with no idle runner grows it.
    pub fn spawned(&self) -> usize {
        self.inner.spawned.load(Ordering::Relaxed)
    }

    /// Runners currently idle (checked in and ready for work).
    pub fn idle_count(&self) -> usize {
        self.inner.idle_lock().len()
    }

    /// Pop an idle runner or spawn a fresh one.
    fn checkout(&self) -> Runner {
        if let Some(runner) = self.inner.idle_lock().pop() {
            return runner;
        }
        let (tx, rx) = mpsc::channel();
        let self_tx = tx.clone();
        let inner = Arc::clone(&self.inner);
        self.inner.spawned.fetch_add(1, Ordering::Relaxed);
        std::thread::spawn(move || {
            while let Ok(msg) = rx.recv() {
                let job = match msg {
                    RunnerJob::Work(job) => job,
                    RunnerJob::Exit => break,
                };
                // The job owns its own panic handling (the sweep wraps
                // attempts in `catch_unwind`); this outer catch only keeps
                // the runner alive for reuse if that ever fails.
                let _ = catch_unwind(AssertUnwindSafe(job));
                // Re-register under the lock so a concurrent `Drop` either
                // sees this runner in the idle list (and sends `Exit`) or
                // has already set `closed` (and the runner exits here).
                let mut idle = inner.idle_lock();
                if inner.closed.load(Ordering::Relaxed) {
                    break;
                }
                idle.push(Runner { tx: self_tx.clone() });
            }
        });
        Runner { tx }
    }

    /// Run `job` on a pool runner, waiting at most `deadline` for its
    /// result. `None` means the deadline expired (or the job died without
    /// producing a value); the runner finishes the stale job in the
    /// background and returns itself to the pool.
    pub fn run_with_deadline<T: Send + 'static>(
        &self,
        job: impl FnOnce() -> T + Send + 'static,
        deadline: Duration,
    ) -> Option<T> {
        let runner = self.checkout();
        let (tx, rx) = mpsc::channel();
        let work: Job = Box::new(move || {
            let _ = tx.send(job());
        });
        // A send failure means the runner thread is gone (its channel
        // closed); it is already out of the idle list, so just report no
        // result.
        runner.tx.send(RunnerJob::Work(work)).ok()?;
        rx.recv_timeout(deadline).ok()
    }

    /// Run `job` on a pool runner and wait for its result without a
    /// deadline. `None` only if the runner died without producing a value.
    pub fn run<T: Send + 'static>(&self, job: impl FnOnce() -> T + Send + 'static) -> Option<T> {
        let runner = self.checkout();
        let (tx, rx) = mpsc::channel();
        let work: Job = Box::new(move || {
            let _ = tx.send(job());
        });
        runner.tx.send(RunnerJob::Work(work)).ok()?;
        rx.recv().ok()
    }

    /// Run `job` on a pool runner without waiting for it. The runner
    /// checks itself back in when the job ends; any results flow through
    /// channels the job captured. Used by callers that stream progress
    /// from the job while it runs (e.g. the simulation service).
    pub fn dispatch(&self, job: impl FnOnce() + Send + 'static) {
        let runner = self.checkout();
        let _ = runner.tx.send(RunnerJob::Work(Box::new(job)));
    }
}

impl Drop for AttemptPool {
    fn drop(&mut self) {
        // Order matters: set `closed` before draining, so a runner that
        // finishes a stale job after the drain sees the flag (under the
        // idle lock) and exits instead of re-registering into a dead pool.
        self.inner.closed.store(true, Ordering::Relaxed);
        for runner in self.inner.idle_lock().drain(..) {
            let _ = runner.tx.send(RunnerJob::Exit);
        }
    }
}

/// Run the experiment closure under `catch_unwind`, mapping panics and
/// simulator errors to typed [`ExperimentError`]s.
fn execute(run: &RunFn) -> Result<ExperimentOutput, ExperimentError> {
    catch_unwind(AssertUnwindSafe(run))
        .map_err(|p| ExperimentError::Panicked { message: panic_message(p) })?
        .map(|(kernel, extra)| ExperimentOutput { run: kernel, extra })
        .map_err(ExperimentError::Sim)
}

/// One attempt: run the closure under `catch_unwind`, optionally on a
/// pool runner with a deadline.
fn attempt(
    pool: &AttemptPool,
    run: &Arc<RunFn>,
    deadline: Option<Duration>,
) -> Result<ExperimentOutput, ExperimentError> {
    match deadline {
        None => execute(run.as_ref()),
        Some(d) => {
            let run = Arc::clone(run);
            match pool.run_with_deadline(move || execute(run.as_ref()), d) {
                Some(result) => result,
                None => Err(ExperimentError::TimedOut { deadline: d }),
            }
        }
    }
}

/// Run one experiment to completion under the policy: attempts, capped
/// exponential backoff between them, and a typed error if all fail.
fn run_resilient(pool: &AttemptPool, exp: &Experiment, policy: &SweepPolicy) -> SweepResult {
    let start = Instant::now();
    let mut attempts = 0u32;
    let mut backoff = policy.backoff;
    loop {
        attempts += 1;
        let t0 = Instant::now();
        match attempt(pool, &exp.run, policy.deadline) {
            Ok(out) => {
                // Best-of-N: re-measure and keep the fastest successful
                // attempt. The simulation is deterministic, so only the
                // wall time differs between repeats; a repeat that fails
                // (e.g. a deadline expiring under host load) is simply
                // not an improvement and is discarded.
                let mut best = out;
                let mut best_wall = t0.elapsed();
                for _ in 1..policy.repeats.max(1) {
                    let t0 = Instant::now();
                    if let Ok(again) = attempt(pool, &exp.run, policy.deadline) {
                        let wall = t0.elapsed();
                        debug_assert_eq!(
                            again.run.cycles, best.run.cycles,
                            "non-deterministic experiment under best-of-N"
                        );
                        if wall < best_wall {
                            best_wall = wall;
                            best = again;
                        }
                    }
                }
                return SweepResult {
                    name: exp.name.clone(),
                    level: exp.level,
                    outcome: Ok(best),
                    attempts,
                    wall: best_wall,
                };
            }
            Err(err) => {
                if attempts > policy.retries {
                    return SweepResult {
                        name: exp.name.clone(),
                        level: exp.level,
                        outcome: Err(err),
                        attempts,
                        wall: start.elapsed(),
                    };
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(policy.backoff_cap);
            }
        }
    }
}

/// [`run_sweep_with`] under the default policy (no deadline, no retries).
pub fn run_sweep(experiments: Vec<Experiment>, threads: usize) -> SweepOutcome {
    run_sweep_with(experiments, threads, SweepPolicy::default())
}

/// Run every experiment, `threads` at a time, and collect the results in
/// submission order.
///
/// Work is distributed dynamically (an atomic next-index counter), so
/// uneven experiment lengths still keep all workers busy. Determinism:
/// each experiment builds its own simulator, and results are stored by
/// index, so the outcome is identical to a serial sweep.
///
/// Failure isolation: a panicking, timing-out, or error-returning
/// experiment records a typed [`ExperimentError`] in its own slot and
/// never disturbs the others — the returned [`SweepOutcome`] always has
/// one result per submitted experiment.
pub fn run_sweep_with(
    experiments: Vec<Experiment>,
    threads: usize,
    policy: SweepPolicy,
) -> SweepOutcome {
    let threads = threads.clamp(1, experiments.len().max(1));
    let t0 = Instant::now();
    let next = AtomicUsize::new(0);
    // One attempt pool shared by every worker: timed-out attempts heal
    // back into it instead of each timeout costing a fresh thread.
    let pool = AttemptPool::new();
    let slots: Vec<Mutex<Option<SweepResult>>> =
        experiments.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(exp) = experiments.get(i) else { break };
                let result = run_resilient(&pool, exp, &policy);
                // Lock poisoning cannot panic-loop us: a poisoned slot just
                // means another thread died mid-store, and the data is ours
                // to overwrite either way.
                match slots[i].lock() {
                    Ok(mut slot) => *slot = Some(result),
                    Err(poisoned) => *poisoned.into_inner() = Some(result),
                }
            });
        }
    });

    let results = slots
        .into_iter()
        .zip(&experiments)
        .map(|(m, exp)| {
            let inner = m.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner());
            // A missing result means a worker died before storing anything
            // (should be impossible now that attempts are unwind-isolated);
            // degrade to a typed error rather than losing the sweep.
            inner.unwrap_or_else(|| SweepResult {
                name: exp.name.clone(),
                level: exp.level,
                outcome: Err(ExperimentError::Panicked {
                    message: "worker thread died before recording a result".to_string(),
                }),
                attempts: 0,
                wall: Duration::ZERO,
            })
        })
        .collect();
    SweepOutcome { results, wall: t0.elapsed(), threads }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_sim::{Simulator, SystemConfig};
    use gsi_workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
    use std::sync::atomic::AtomicU32;

    fn tiny_run() -> Result<KernelRun, SimError> {
        let style = LocalMemStyle::Scratchpad;
        let sys = SystemConfig::paper().with_gpu_cores(1).with_local_mem(style.mem_kind());
        let mut sim = Simulator::new(sys);
        Ok(implicit::run(&mut sim, &ImplicitConfig::small(style))?.run)
    }

    fn tiny_experiment(name: &str) -> Experiment {
        Experiment::new(name, tiny_run)
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let names = ["a", "b", "c", "d", "e"];
        let outcome = run_sweep(names.iter().map(|n| tiny_experiment(n)).collect(), 4);
        let got: Vec<&str> = outcome.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(got, names);
        assert_eq!(outcome.failed(), 0);
    }

    #[test]
    fn parallel_matches_serial() {
        let serial = run_sweep(vec![tiny_experiment("x"), tiny_experiment("y")], 1);
        let parallel = run_sweep(vec![tiny_experiment("x"), tiny_experiment("y")], 2);
        for (s, p) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(s.kernel_run().unwrap(), p.kernel_run().unwrap());
        }
    }

    /// The directed regression test for the old harness losing every
    /// completed result when one experiment panicked (the
    /// `expect("experiment ran")` path): a panic in the middle of the
    /// sweep must leave all other results intact and produce a typed
    /// error in its own slot.
    #[test]
    fn panicking_experiment_does_not_lose_other_results() {
        let experiments = vec![
            tiny_experiment("before"),
            Experiment::new("bomb", || panic!("injected test panic")),
            tiny_experiment("after"),
        ];
        let outcome = run_sweep(experiments, 2);
        assert_eq!(outcome.results.len(), 3);
        assert!(outcome.results[0].kernel_run().is_some(), "completed result lost");
        assert!(outcome.results[2].kernel_run().is_some(), "completed result lost");
        let err = outcome.results[1].error().expect("bomb must fail");
        assert_eq!(err.kind(), "panicked");
        assert!(err.to_string().contains("injected test panic"), "{err}");
        assert_eq!(outcome.failed(), 1);
    }

    #[test]
    fn repeats_measure_best_of_n_without_extra_attempts() {
        static RUNS: AtomicU32 = AtomicU32::new(0);
        let experiments = vec![Experiment::new("best-of-3", || {
            RUNS.fetch_add(1, Ordering::Relaxed);
            tiny_run()
        })];
        let policy = SweepPolicy::default().with_repeats(3);
        let outcome = run_sweep_with(experiments, 1, policy);
        let r = &outcome.results[0];
        assert!(r.kernel_run().is_some());
        assert_eq!(RUNS.load(Ordering::Relaxed), 3, "repeats must re-run the experiment");
        assert_eq!(r.attempts, 1, "repeats are measurements, not retry attempts");
    }

    #[test]
    fn deadline_times_out_runaway_experiments() {
        // Precompute the fast result so the fast row finishes well inside
        // the deadline even on a slow debug build.
        let fast = tiny_run().expect("completes");
        let experiments = vec![
            Experiment::new("fast", move || Ok(fast.clone())),
            Experiment::new("sleeper", || {
                std::thread::sleep(Duration::from_secs(30));
                tiny_run()
            }),
        ];
        let policy = SweepPolicy::default().with_deadline(Duration::from_millis(100));
        let outcome = run_sweep_with(experiments, 2, policy);
        assert!(outcome.results[0].kernel_run().is_some());
        let err = outcome.results[1].error().expect("sleeper must time out");
        assert_eq!(err.kind(), "timed_out");
        assert_eq!(err.to_string(), "exceeded the 0.1s deadline");
    }

    /// The directed regression test for timed-out attempts leaking their
    /// runner threads: after N timeouts, every runner must heal back into
    /// the pool, and a burst of fast jobs must reuse those runners without
    /// spawning new ones.
    #[test]
    fn timeouts_leave_pool_capacity_intact() {
        let pool = AttemptPool::new();
        let n = 4usize;
        for _ in 0..n {
            let out: Option<()> = pool.run_with_deadline(
                || std::thread::sleep(Duration::from_millis(50)),
                Duration::from_millis(5),
            );
            assert!(out.is_none(), "sleeper must time out");
        }
        assert!(pool.spawned() <= n, "at most one runner per timed-out attempt");
        // The stale jobs finish on their own and the runners re-register.
        let healed_by = Instant::now() + Duration::from_secs(10);
        while pool.idle_count() < pool.spawned() {
            assert!(Instant::now() < healed_by, "timed-out runners never returned to the pool");
            std::thread::sleep(Duration::from_millis(5));
        }
        let spawned_before = pool.spawned();
        // Fast jobs now reuse the healed runners. Wait for each runner to
        // check back in before the next checkout so reuse is deterministic
        // (re-registration happens just after the result is sent).
        for i in 0..2 * n {
            let out = pool.run_with_deadline(move || i * 3, Duration::from_secs(10));
            assert_eq!(out, Some(i * 3));
            let back_by = Instant::now() + Duration::from_secs(10);
            while pool.idle_count() < pool.spawned() {
                assert!(Instant::now() < back_by, "runner never checked back in");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert_eq!(pool.spawned(), spawned_before, "fast jobs must not grow the pool");
    }

    #[test]
    fn pool_runs_jobs_without_deadline() {
        let pool = AttemptPool::new();
        assert_eq!(pool.run(|| 6 * 7), Some(42));
        assert_eq!(pool.spawned(), 1);
    }

    /// A sweep whose every experiment times out must not leave one thread
    /// per attempt behind: the shared pool's runner count stays bounded by
    /// the attempts that overlapped, and all runners heal afterwards.
    #[test]
    fn sweep_timeouts_share_one_pool() {
        let experiments: Vec<Experiment> = (0..3)
            .map(|i| {
                Experiment::new(format!("sleeper-{i}"), || {
                    std::thread::sleep(Duration::from_millis(50));
                    tiny_run()
                })
            })
            .collect();
        let policy = SweepPolicy::default().with_deadline(Duration::from_millis(5)).with_retries(1);
        let outcome = run_sweep_with(experiments, 1, policy);
        assert_eq!(outcome.failed(), 3);
        for r in &outcome.results {
            assert_eq!(r.error().expect("must time out").kind(), "timed_out");
            assert_eq!(r.attempts, 2);
        }
    }

    #[test]
    fn retries_recover_transient_failures() {
        static FAILS: AtomicU32 = AtomicU32::new(0);
        let experiments = vec![Experiment::new("flaky", || {
            if FAILS.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient failure");
            }
            tiny_run()
        })];
        let policy =
            SweepPolicy { retries: 2, backoff: Duration::from_millis(1), ..SweepPolicy::default() };
        let outcome = run_sweep_with(experiments, 1, policy);
        let r = &outcome.results[0];
        assert!(r.kernel_run().is_some(), "retry must recover: {:?}", r.error());
        assert_eq!(r.attempts, 2);
        assert_eq!(outcome.total_retries(), 1);
    }

    #[test]
    fn sim_errors_surface_as_typed_errors() {
        let experiments = vec![Experiment::new("hang", || {
            // A kernel that cannot finish inside its budget: spin forever.
            use gsi_isa::{ProgramBuilder, Reg};
            use gsi_sim::LaunchSpec;
            let mut b = ProgramBuilder::new("spin");
            b.ldi(Reg(1), 1);
            let top = b.here();
            b.bra_nz(Reg(1), top);
            b.exit();
            let mut cfg = SystemConfig::paper().with_gpu_cores(1);
            cfg.max_cycles = 20_000;
            let mut sim = Simulator::new(cfg);
            let spec = LaunchSpec::new(b.build().expect("valid program"), 1, 1);
            sim.run_kernel(&spec)
        })];
        let outcome = run_sweep(experiments, 1);
        let err = outcome.results[0].error().expect("hang must fail");
        assert_eq!(err.kind(), "sim_timeout");
        assert!(err.to_string().contains("timed out"), "{err}");
    }

    #[test]
    fn traced_rows_report_overhead_against_off_baseline() {
        let mk_run = || tiny_run().expect("completes");
        // Hand-built outcome with controlled wall times: the counters row
        // took 1.5x the off row, so its overhead must come out at 50%.
        let outcome = SweepOutcome {
            results: vec![
                SweepResult {
                    name: "x".into(),
                    level: TraceLevel::Off,
                    outcome: Ok(ExperimentOutput { run: mk_run(), extra: None }),
                    attempts: 1,
                    wall: Duration::from_millis(100),
                },
                SweepResult {
                    name: "x".into(),
                    level: TraceLevel::Counters,
                    outcome: Ok(ExperimentOutput {
                        run: mk_run(),
                        extra: Some(gsi_json::obj! { "note" => "hi" }),
                    }),
                    attempts: 1,
                    wall: Duration::from_millis(150),
                },
            ],
            wall: Duration::from_millis(250),
            threads: 1,
        };
        let v = outcome.to_json();
        let rows = v.get("experiments").unwrap().as_array().unwrap();
        assert!(rows[0].get("overhead_pct").is_none(), "off row has no baseline to compare");
        assert_eq!(rows[0].get("trace_level").unwrap().as_str(), Some("off"));
        let pct = rows[1].get("overhead_pct").unwrap().as_f64().unwrap();
        assert!((pct - 50.0).abs() < 1e-9, "got {pct}");
        assert_eq!(rows[1].get("trace_level").unwrap().as_str(), Some("counters"));
        assert_eq!(rows[1].get("trace").unwrap().get("note").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn json_report_has_per_experiment_rows_and_status() {
        let outcome =
            run_sweep(vec![tiny_experiment("only"), Experiment::new("bad", || panic!("boom"))], 1);
        let v = outcome.to_json();
        let rows = v.get("experiments").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("name").unwrap().as_str(), Some("only"));
        assert_eq!(rows[0].get("status").unwrap().as_str(), Some("ok"));
        assert!(rows[0].get("cycles").unwrap().as_u64().unwrap() > 0);
        assert_eq!(rows[1].get("status").unwrap().as_str(), Some("panicked"));
        assert!(rows[1].get("cycles").is_none());
        assert!(rows[1].get("error").unwrap().as_str().unwrap().contains("boom"));
        assert_eq!(v.get("failed").unwrap().as_u64(), Some(1));
    }
}
