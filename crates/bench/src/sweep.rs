//! Parallel sweep harness: fan independent simulations across OS threads,
//! and keep the sweep alive when individual experiments fail.
//!
//! Every experiment of the paper's evaluation is an independent
//! (workload × protocol × configuration) simulation, so the sweep
//! parallelizes trivially: a scoped thread pool pulls experiment indices
//! off a shared atomic counter and each worker builds and runs its
//! simulator from scratch. Results land in per-index slots, so the
//! returned vector is in sweep order regardless of which thread finished
//! when — output stays deterministic while wall-clock time drops to
//! roughly the longest single experiment.
//!
//! Resilience: each attempt runs under `catch_unwind`, optionally under a
//! per-attempt deadline (on a watcher thread), and failures retry with
//! capped exponential backoff per [`SweepPolicy`]. A failing experiment
//! degrades to a typed [`ExperimentError`] in its slot instead of
//! poisoning the whole sweep — every other experiment's result survives.
//!
//! Built on `std::thread` only; no external thread-pool crates.

use gsi_sim::{KernelRun, SimError};
use gsi_trace::TraceLevel;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// The closure type every experiment runs: build a simulator from scratch,
/// run the workload, return the kernel run plus optional extra JSON.
type RunFn = dyn Fn() -> Result<(KernelRun, Option<gsi_json::Value>), SimError> + Send + Sync;

/// One independent simulation: a display name plus a closure that builds
/// the simulator and runs the workload from scratch (so experiments share
/// no mutable state and can run on any thread).
pub struct Experiment {
    name: String,
    level: TraceLevel,
    run: Arc<RunFn>,
}

impl Experiment {
    /// Wrap a closure as a named experiment (tracing off). The closure
    /// returns `Err` for simulation failures (timeout, accounting), which
    /// the sweep records as a typed per-experiment error.
    pub fn new(
        name: impl Into<String>,
        run: impl Fn() -> Result<KernelRun, SimError> + Send + Sync + 'static,
    ) -> Self {
        Experiment {
            name: name.into(),
            level: TraceLevel::Off,
            run: Arc::new(move || run().map(|r| (r, None))),
        }
    }

    /// Wrap a closure as an experiment run at a given trace level. The
    /// closure is responsible for wiring `level` into its simulator; it may
    /// return extra JSON (e.g. the self-profile) to merge into the report
    /// row.
    pub fn traced(
        name: impl Into<String>,
        level: TraceLevel,
        run: impl Fn() -> Result<(KernelRun, Option<gsi_json::Value>), SimError> + Send + Sync + 'static,
    ) -> Self {
        Experiment { name: name.into(), level, run: Arc::new(run) }
    }

    /// The experiment's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The trace level the experiment runs at.
    pub fn level(&self) -> TraceLevel {
        self.level
    }
}

/// Why an experiment failed, after all retries were exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// The experiment closure panicked; the panic was caught and the
    /// worker thread survived.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The experiment exceeded the per-attempt deadline. The attempt's
    /// thread is abandoned (it stops on its own at the simulator's cycle
    /// budget); the sweep moves on.
    TimedOut {
        /// The deadline that was exceeded.
        deadline: Duration,
    },
    /// The simulator itself reported failure: a kernel timeout (with its
    /// diagnostic [`ProgressReport`](gsi_sim::ProgressReport)) or a stall
    /// accounting violation.
    Sim(SimError),
}

impl ExperimentError {
    /// Stable machine-readable kind for report rows: `"panicked"`,
    /// `"timed_out"`, `"sim_timeout"`, or `"accounting"`.
    pub fn kind(&self) -> &'static str {
        match self {
            ExperimentError::Panicked { .. } => "panicked",
            ExperimentError::TimedOut { .. } => "timed_out",
            ExperimentError::Sim(SimError::Timeout { .. }) => "sim_timeout",
            ExperimentError::Sim(SimError::Accounting { .. }) => "accounting",
            ExperimentError::Sim(SimError::Analysis { .. }) => "analysis",
        }
    }
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Panicked { message } => write!(f, "panicked: {message}"),
            ExperimentError::TimedOut { deadline } => {
                write!(f, "exceeded the {:.1}s deadline", deadline.as_secs_f64())
            }
            ExperimentError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

/// A successful experiment's payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOutput {
    /// The simulation result.
    pub run: KernelRun,
    /// Extra per-experiment JSON from the closure (e.g. the self-profile).
    pub extra: Option<gsi_json::Value>,
}

/// The outcome of one experiment: its result or typed error, attempt
/// count, and wall time.
#[derive(Debug)]
pub struct SweepResult {
    /// The experiment's name.
    pub name: String,
    /// The trace level the experiment ran at.
    pub level: TraceLevel,
    /// The result, or why every attempt failed.
    pub outcome: Result<ExperimentOutput, ExperimentError>,
    /// Attempts made (1 = first try succeeded; retries add more;
    /// best-of-N re-measurements are not counted).
    pub attempts: u32,
    /// Wall-clock time of the fastest successful attempt (the number a
    /// simulation rate should be computed from), or the total time across
    /// every attempt when all of them failed.
    pub wall: Duration,
}

impl SweepResult {
    /// The kernel run, when the experiment succeeded.
    pub fn kernel_run(&self) -> Option<&KernelRun> {
        self.outcome.as_ref().ok().map(|o| &o.run)
    }

    /// The error, when every attempt failed.
    pub fn error(&self) -> Option<&ExperimentError> {
        self.outcome.as_ref().err()
    }
}

/// Retry and deadline policy for a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPolicy {
    /// Per-attempt wall-clock deadline. `None` runs attempts inline with
    /// no timeout (cheapest; no watcher thread).
    pub deadline: Option<Duration>,
    /// Extra attempts after the first failure.
    pub retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub backoff: Duration,
    /// Upper bound on the backoff.
    pub backoff_cap: Duration,
    /// Measured runs per experiment (best-of-N): after the first success,
    /// the experiment is re-run `repeats - 1` more times and the fastest
    /// attempt's wall time is reported. Simulations are deterministic, so
    /// the payload is identical across repeats — only the wall time
    /// varies (host scheduling noise), which is exactly what best-of-N
    /// filters out of benchmark artifacts. `0` behaves like `1`.
    pub repeats: u32,
}

impl Default for SweepPolicy {
    fn default() -> Self {
        SweepPolicy {
            deadline: None,
            retries: 0,
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            repeats: 1,
        }
    }
}

impl SweepPolicy {
    /// Set the per-attempt deadline.
    #[must_use]
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Set the retry count.
    #[must_use]
    pub fn with_retries(mut self, n: u32) -> Self {
        self.retries = n;
        self
    }

    /// Set the best-of-N repeat count.
    #[must_use]
    pub fn with_repeats(mut self, n: u32) -> Self {
        self.repeats = n;
        self
    }
}

/// All results of a sweep, in the order the experiments were submitted.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-experiment results, in submission order. Failed experiments
    /// keep their slot with a typed error; completed ones are never lost.
    pub results: Vec<SweepResult>,
    /// Wall-clock time for the whole sweep.
    pub wall: Duration,
    /// Worker threads used.
    pub threads: usize,
}

impl SweepOutcome {
    /// Sum of per-experiment wall times — what a serial sweep would have
    /// cost. `wall < serial_wall()` is the evidence that work overlapped.
    /// Under best-of-N ([`SweepPolicy::repeats`] > 1) each term is the
    /// fastest repeat while `wall` includes all of them, so the
    /// comparison loses that meaning.
    pub fn serial_wall(&self) -> Duration {
        self.results.iter().map(|r| r.wall).sum()
    }

    /// Parallel speedup over a serial sweep.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall == 0.0 {
            1.0
        } else {
            self.serial_wall().as_secs_f64() / wall
        }
    }

    /// Experiments whose every attempt failed.
    pub fn failed(&self) -> usize {
        self.results.iter().filter(|r| r.outcome.is_err()).count()
    }

    /// Total retry attempts across the sweep (attempts beyond each
    /// experiment's first).
    pub fn total_retries(&self) -> u64 {
        self.results.iter().map(|r| u64::from(r.attempts.saturating_sub(1))).sum()
    }

    /// Wall seconds of the tracing-off run of `name`, the overhead
    /// baseline; `None` when the sweep has no successful off-level row
    /// for it.
    fn off_baseline(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.name == name && r.level == TraceLevel::Off && r.outcome.is_ok())
            .map(|r| r.wall.as_secs_f64())
    }

    /// A machine-readable report of the sweep: per-experiment cycles,
    /// wall time, and simulation rate, plus the aggregate evidence that
    /// the sweep ran multi-threaded. Rows run with tracing enabled also
    /// carry `overhead_pct`, the wall-time cost relative to the same
    /// experiment's tracing-off row (when the sweep includes one). Every
    /// row carries `status` and `attempts`; failed rows carry `error`
    /// instead of the run fields.
    pub fn to_json(&self) -> gsi_json::Value {
        let experiments: Vec<gsi_json::Value> = self
            .results
            .iter()
            .map(|r| {
                let secs = r.wall.as_secs_f64();
                let mut row = gsi_json::obj! {
                    "name" => r.name,
                    "trace_level" => r.level.name(),
                    "status" => match &r.outcome {
                        Ok(_) => "ok",
                        Err(e) => e.kind(),
                    },
                    "attempts" => r.attempts,
                    "wall_seconds" => secs,
                };
                match &r.outcome {
                    Ok(out) => {
                        let rate = if secs == 0.0 { 0.0 } else { out.run.cycles as f64 / secs };
                        row.set("cycles", out.run.cycles);
                        row.set("instructions", out.run.instructions);
                        row.set("cycles_per_second", rate);
                        if r.level != TraceLevel::Off {
                            if let Some(base) = self.off_baseline(&r.name).filter(|&b| b > 0.0) {
                                row.set("overhead_pct", (secs / base - 1.0) * 100.0);
                            }
                        }
                        if let Some(extra) = &out.extra {
                            row.set("trace", extra.clone());
                        }
                    }
                    Err(e) => {
                        row.set("error", e.to_string());
                    }
                }
                row
            })
            .collect();
        gsi_json::obj! {
            "threads" => self.threads,
            "wall_seconds" => self.wall.as_secs_f64(),
            "serial_wall_seconds" => self.serial_wall().as_secs_f64(),
            "speedup" => self.speedup(),
            "failed" => self.failed(),
            "retries" => self.total_retries(),
            "experiments" => experiments,
        }
    }
}

/// The hardware parallelism available, defaulting to 1 when unknown.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Render a caught panic payload as a message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One attempt: run the closure under `catch_unwind`, optionally on a
/// watcher thread with a deadline.
fn attempt(
    run: &Arc<RunFn>,
    deadline: Option<Duration>,
) -> Result<ExperimentOutput, ExperimentError> {
    let execute = |run: &RunFn| {
        catch_unwind(AssertUnwindSafe(run))
            .map_err(|p| ExperimentError::Panicked { message: panic_message(p) })?
            .map(|(kernel, extra)| ExperimentOutput { run: kernel, extra })
            .map_err(ExperimentError::Sim)
    };
    match deadline {
        None => execute(run.as_ref()),
        Some(d) => {
            // Run the attempt on its own thread and wait with a timeout. On
            // expiry the runaway thread is abandoned — it terminates on its
            // own when the simulator's cycle budget runs out — and the
            // worker moves on.
            let (tx, rx) = mpsc::channel();
            let run = Arc::clone(run);
            std::thread::spawn(move || {
                let _ = tx.send(execute(run.as_ref()));
            });
            match rx.recv_timeout(d) {
                Ok(result) => result,
                Err(_) => Err(ExperimentError::TimedOut { deadline: d }),
            }
        }
    }
}

/// Run one experiment to completion under the policy: attempts, capped
/// exponential backoff between them, and a typed error if all fail.
fn run_resilient(exp: &Experiment, policy: &SweepPolicy) -> SweepResult {
    let start = Instant::now();
    let mut attempts = 0u32;
    let mut backoff = policy.backoff;
    loop {
        attempts += 1;
        let t0 = Instant::now();
        match attempt(&exp.run, policy.deadline) {
            Ok(out) => {
                // Best-of-N: re-measure and keep the fastest successful
                // attempt. The simulation is deterministic, so only the
                // wall time differs between repeats; a repeat that fails
                // (e.g. a deadline expiring under host load) is simply
                // not an improvement and is discarded.
                let mut best = out;
                let mut best_wall = t0.elapsed();
                for _ in 1..policy.repeats.max(1) {
                    let t0 = Instant::now();
                    if let Ok(again) = attempt(&exp.run, policy.deadline) {
                        let wall = t0.elapsed();
                        debug_assert_eq!(
                            again.run.cycles, best.run.cycles,
                            "non-deterministic experiment under best-of-N"
                        );
                        if wall < best_wall {
                            best_wall = wall;
                            best = again;
                        }
                    }
                }
                return SweepResult {
                    name: exp.name.clone(),
                    level: exp.level,
                    outcome: Ok(best),
                    attempts,
                    wall: best_wall,
                };
            }
            Err(err) => {
                if attempts > policy.retries {
                    return SweepResult {
                        name: exp.name.clone(),
                        level: exp.level,
                        outcome: Err(err),
                        attempts,
                        wall: start.elapsed(),
                    };
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(policy.backoff_cap);
            }
        }
    }
}

/// [`run_sweep_with`] under the default policy (no deadline, no retries).
pub fn run_sweep(experiments: Vec<Experiment>, threads: usize) -> SweepOutcome {
    run_sweep_with(experiments, threads, SweepPolicy::default())
}

/// Run every experiment, `threads` at a time, and collect the results in
/// submission order.
///
/// Work is distributed dynamically (an atomic next-index counter), so
/// uneven experiment lengths still keep all workers busy. Determinism:
/// each experiment builds its own simulator, and results are stored by
/// index, so the outcome is identical to a serial sweep.
///
/// Failure isolation: a panicking, timing-out, or error-returning
/// experiment records a typed [`ExperimentError`] in its own slot and
/// never disturbs the others — the returned [`SweepOutcome`] always has
/// one result per submitted experiment.
pub fn run_sweep_with(
    experiments: Vec<Experiment>,
    threads: usize,
    policy: SweepPolicy,
) -> SweepOutcome {
    let threads = threads.clamp(1, experiments.len().max(1));
    let t0 = Instant::now();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SweepResult>>> =
        experiments.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(exp) = experiments.get(i) else { break };
                let result = run_resilient(exp, &policy);
                // Lock poisoning cannot panic-loop us: a poisoned slot just
                // means another thread died mid-store, and the data is ours
                // to overwrite either way.
                match slots[i].lock() {
                    Ok(mut slot) => *slot = Some(result),
                    Err(poisoned) => *poisoned.into_inner() = Some(result),
                }
            });
        }
    });

    let results = slots
        .into_iter()
        .zip(&experiments)
        .map(|(m, exp)| {
            let inner = m.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner());
            // A missing result means a worker died before storing anything
            // (should be impossible now that attempts are unwind-isolated);
            // degrade to a typed error rather than losing the sweep.
            inner.unwrap_or_else(|| SweepResult {
                name: exp.name.clone(),
                level: exp.level,
                outcome: Err(ExperimentError::Panicked {
                    message: "worker thread died before recording a result".to_string(),
                }),
                attempts: 0,
                wall: Duration::ZERO,
            })
        })
        .collect();
    SweepOutcome { results, wall: t0.elapsed(), threads }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_sim::{Simulator, SystemConfig};
    use gsi_workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
    use std::sync::atomic::AtomicU32;

    fn tiny_run() -> Result<KernelRun, SimError> {
        let style = LocalMemStyle::Scratchpad;
        let sys = SystemConfig::paper().with_gpu_cores(1).with_local_mem(style.mem_kind());
        let mut sim = Simulator::new(sys);
        Ok(implicit::run(&mut sim, &ImplicitConfig::small(style))?.run)
    }

    fn tiny_experiment(name: &str) -> Experiment {
        Experiment::new(name, tiny_run)
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let names = ["a", "b", "c", "d", "e"];
        let outcome = run_sweep(names.iter().map(|n| tiny_experiment(n)).collect(), 4);
        let got: Vec<&str> = outcome.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(got, names);
        assert_eq!(outcome.failed(), 0);
    }

    #[test]
    fn parallel_matches_serial() {
        let serial = run_sweep(vec![tiny_experiment("x"), tiny_experiment("y")], 1);
        let parallel = run_sweep(vec![tiny_experiment("x"), tiny_experiment("y")], 2);
        for (s, p) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(s.kernel_run().unwrap(), p.kernel_run().unwrap());
        }
    }

    /// The directed regression test for the old harness losing every
    /// completed result when one experiment panicked (the
    /// `expect("experiment ran")` path): a panic in the middle of the
    /// sweep must leave all other results intact and produce a typed
    /// error in its own slot.
    #[test]
    fn panicking_experiment_does_not_lose_other_results() {
        let experiments = vec![
            tiny_experiment("before"),
            Experiment::new("bomb", || panic!("injected test panic")),
            tiny_experiment("after"),
        ];
        let outcome = run_sweep(experiments, 2);
        assert_eq!(outcome.results.len(), 3);
        assert!(outcome.results[0].kernel_run().is_some(), "completed result lost");
        assert!(outcome.results[2].kernel_run().is_some(), "completed result lost");
        let err = outcome.results[1].error().expect("bomb must fail");
        assert_eq!(err.kind(), "panicked");
        assert!(err.to_string().contains("injected test panic"), "{err}");
        assert_eq!(outcome.failed(), 1);
    }

    #[test]
    fn repeats_measure_best_of_n_without_extra_attempts() {
        static RUNS: AtomicU32 = AtomicU32::new(0);
        let experiments = vec![Experiment::new("best-of-3", || {
            RUNS.fetch_add(1, Ordering::Relaxed);
            tiny_run()
        })];
        let policy = SweepPolicy::default().with_repeats(3);
        let outcome = run_sweep_with(experiments, 1, policy);
        let r = &outcome.results[0];
        assert!(r.kernel_run().is_some());
        assert_eq!(RUNS.load(Ordering::Relaxed), 3, "repeats must re-run the experiment");
        assert_eq!(r.attempts, 1, "repeats are measurements, not retry attempts");
    }

    #[test]
    fn deadline_times_out_runaway_experiments() {
        // Precompute the fast result so the fast row finishes well inside
        // the deadline even on a slow debug build.
        let fast = tiny_run().expect("completes");
        let experiments = vec![
            Experiment::new("fast", move || Ok(fast.clone())),
            Experiment::new("sleeper", || {
                std::thread::sleep(Duration::from_secs(30));
                tiny_run()
            }),
        ];
        let policy = SweepPolicy::default().with_deadline(Duration::from_millis(100));
        let outcome = run_sweep_with(experiments, 2, policy);
        assert!(outcome.results[0].kernel_run().is_some());
        let err = outcome.results[1].error().expect("sleeper must time out");
        assert_eq!(err.kind(), "timed_out");
        assert_eq!(err.to_string(), "exceeded the 0.1s deadline");
    }

    #[test]
    fn retries_recover_transient_failures() {
        static FAILS: AtomicU32 = AtomicU32::new(0);
        let experiments = vec![Experiment::new("flaky", || {
            if FAILS.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient failure");
            }
            tiny_run()
        })];
        let policy =
            SweepPolicy { retries: 2, backoff: Duration::from_millis(1), ..SweepPolicy::default() };
        let outcome = run_sweep_with(experiments, 1, policy);
        let r = &outcome.results[0];
        assert!(r.kernel_run().is_some(), "retry must recover: {:?}", r.error());
        assert_eq!(r.attempts, 2);
        assert_eq!(outcome.total_retries(), 1);
    }

    #[test]
    fn sim_errors_surface_as_typed_errors() {
        let experiments = vec![Experiment::new("hang", || {
            // A kernel that cannot finish inside its budget: spin forever.
            use gsi_isa::{ProgramBuilder, Reg};
            use gsi_sim::LaunchSpec;
            let mut b = ProgramBuilder::new("spin");
            b.ldi(Reg(1), 1);
            let top = b.here();
            b.bra_nz(Reg(1), top);
            b.exit();
            let mut cfg = SystemConfig::paper().with_gpu_cores(1);
            cfg.max_cycles = 20_000;
            let mut sim = Simulator::new(cfg);
            let spec = LaunchSpec::new(b.build().expect("valid program"), 1, 1);
            sim.run_kernel(&spec)
        })];
        let outcome = run_sweep(experiments, 1);
        let err = outcome.results[0].error().expect("hang must fail");
        assert_eq!(err.kind(), "sim_timeout");
        assert!(err.to_string().contains("timed out"), "{err}");
    }

    #[test]
    fn traced_rows_report_overhead_against_off_baseline() {
        let mk_run = || tiny_run().expect("completes");
        // Hand-built outcome with controlled wall times: the counters row
        // took 1.5x the off row, so its overhead must come out at 50%.
        let outcome = SweepOutcome {
            results: vec![
                SweepResult {
                    name: "x".into(),
                    level: TraceLevel::Off,
                    outcome: Ok(ExperimentOutput { run: mk_run(), extra: None }),
                    attempts: 1,
                    wall: Duration::from_millis(100),
                },
                SweepResult {
                    name: "x".into(),
                    level: TraceLevel::Counters,
                    outcome: Ok(ExperimentOutput {
                        run: mk_run(),
                        extra: Some(gsi_json::obj! { "note" => "hi" }),
                    }),
                    attempts: 1,
                    wall: Duration::from_millis(150),
                },
            ],
            wall: Duration::from_millis(250),
            threads: 1,
        };
        let v = outcome.to_json();
        let rows = v.get("experiments").unwrap().as_array().unwrap();
        assert!(rows[0].get("overhead_pct").is_none(), "off row has no baseline to compare");
        assert_eq!(rows[0].get("trace_level").unwrap().as_str(), Some("off"));
        let pct = rows[1].get("overhead_pct").unwrap().as_f64().unwrap();
        assert!((pct - 50.0).abs() < 1e-9, "got {pct}");
        assert_eq!(rows[1].get("trace_level").unwrap().as_str(), Some("counters"));
        assert_eq!(rows[1].get("trace").unwrap().get("note").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn json_report_has_per_experiment_rows_and_status() {
        let outcome =
            run_sweep(vec![tiny_experiment("only"), Experiment::new("bad", || panic!("boom"))], 1);
        let v = outcome.to_json();
        let rows = v.get("experiments").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("name").unwrap().as_str(), Some("only"));
        assert_eq!(rows[0].get("status").unwrap().as_str(), Some("ok"));
        assert!(rows[0].get("cycles").unwrap().as_u64().unwrap() > 0);
        assert_eq!(rows[1].get("status").unwrap().as_str(), Some("panicked"));
        assert!(rows[1].get("cycles").is_none());
        assert!(rows[1].get("error").unwrap().as_str().unwrap().contains("boom"));
        assert_eq!(v.get("failed").unwrap().as_u64(), Some(1));
    }
}
