//! Parallel sweep harness: fan independent simulations across OS threads.
//!
//! Every experiment of the paper's evaluation is an independent
//! (workload × protocol × configuration) simulation, so the sweep
//! parallelizes trivially: a scoped thread pool pulls experiment indices
//! off a shared atomic counter and each worker builds and runs its
//! simulator from scratch. Results land in per-index slots, so the
//! returned vector is in sweep order regardless of which thread finished
//! when — output stays deterministic while wall-clock time drops to
//! roughly the longest single experiment.
//!
//! Built on `std::thread::scope` only; no external thread-pool crates.

use gsi_sim::KernelRun;
use gsi_trace::TraceLevel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One independent simulation: a display name plus a closure that builds
/// the simulator and runs the workload from scratch (so experiments share
/// no mutable state and can run on any thread).
pub struct Experiment {
    name: String,
    level: TraceLevel,
    run: Box<dyn Fn() -> (KernelRun, Option<gsi_json::Value>) + Send + Sync>,
}

impl Experiment {
    /// Wrap a closure as a named experiment (tracing off).
    pub fn new(
        name: impl Into<String>,
        run: impl Fn() -> KernelRun + Send + Sync + 'static,
    ) -> Self {
        Experiment {
            name: name.into(),
            level: TraceLevel::Off,
            run: Box::new(move || (run(), None)),
        }
    }

    /// Wrap a closure as an experiment run at a given trace level. The
    /// closure is responsible for wiring `level` into its simulator; it may
    /// return extra JSON (e.g. the self-profile) to merge into the report
    /// row.
    pub fn traced(
        name: impl Into<String>,
        level: TraceLevel,
        run: impl Fn() -> (KernelRun, Option<gsi_json::Value>) + Send + Sync + 'static,
    ) -> Self {
        Experiment { name: name.into(), level, run: Box::new(run) }
    }

    /// The experiment's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The trace level the experiment runs at.
    pub fn level(&self) -> TraceLevel {
        self.level
    }
}

/// The outcome of one experiment: its run, plus how long it took.
#[derive(Debug)]
pub struct SweepResult {
    /// The experiment's name.
    pub name: String,
    /// The trace level the experiment ran at.
    pub level: TraceLevel,
    /// The simulation result.
    pub run: KernelRun,
    /// Extra per-experiment JSON from the closure (e.g. the self-profile).
    pub extra: Option<gsi_json::Value>,
    /// Wall-clock time this experiment took on its worker thread.
    pub wall: Duration,
}

/// All results of a sweep, in the order the experiments were submitted.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-experiment results, in submission order.
    pub results: Vec<SweepResult>,
    /// Wall-clock time for the whole sweep.
    pub wall: Duration,
    /// Worker threads used.
    pub threads: usize,
}

impl SweepOutcome {
    /// Sum of per-experiment wall times — what a serial sweep would have
    /// cost. `wall < serial_wall()` is the evidence that work overlapped.
    pub fn serial_wall(&self) -> Duration {
        self.results.iter().map(|r| r.wall).sum()
    }

    /// Parallel speedup over a serial sweep.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall == 0.0 {
            1.0
        } else {
            self.serial_wall().as_secs_f64() / wall
        }
    }

    /// Wall seconds of the tracing-off run of `name`, the overhead
    /// baseline; `None` when the sweep has no off-level row for it.
    fn off_baseline(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.name == name && r.level == TraceLevel::Off)
            .map(|r| r.wall.as_secs_f64())
    }

    /// A machine-readable report of the sweep: per-experiment cycles,
    /// wall time, and simulation rate, plus the aggregate evidence that
    /// the sweep ran multi-threaded. Rows run with tracing enabled also
    /// carry `overhead_pct`, the wall-time cost relative to the same
    /// experiment's tracing-off row (when the sweep includes one).
    pub fn to_json(&self) -> gsi_json::Value {
        let experiments: Vec<gsi_json::Value> = self
            .results
            .iter()
            .map(|r| {
                let secs = r.wall.as_secs_f64();
                let rate = if secs == 0.0 { 0.0 } else { r.run.cycles as f64 / secs };
                let mut row = gsi_json::obj! {
                    "name" => r.name,
                    "trace_level" => r.level.name(),
                    "cycles" => r.run.cycles,
                    "instructions" => r.run.instructions,
                    "wall_seconds" => secs,
                    "cycles_per_second" => rate,
                };
                if r.level != TraceLevel::Off {
                    if let Some(base) = self.off_baseline(&r.name).filter(|&b| b > 0.0) {
                        row.set("overhead_pct", (secs / base - 1.0) * 100.0);
                    }
                }
                if let Some(extra) = &r.extra {
                    row.set("trace", extra.clone());
                }
                row
            })
            .collect();
        gsi_json::obj! {
            "threads" => self.threads,
            "wall_seconds" => self.wall.as_secs_f64(),
            "serial_wall_seconds" => self.serial_wall().as_secs_f64(),
            "speedup" => self.speedup(),
            "experiments" => experiments,
        }
    }
}

/// The hardware parallelism available, defaulting to 1 when unknown.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run every experiment, `threads` at a time, and collect the results in
/// submission order.
///
/// Work is distributed dynamically (an atomic next-index counter), so
/// uneven experiment lengths still keep all workers busy. Determinism:
/// each experiment builds its own simulator, and results are stored by
/// index, so the outcome is identical to a serial sweep.
///
/// # Panics
///
/// Propagates a panic from any experiment once all workers have stopped.
pub fn run_sweep(experiments: Vec<Experiment>, threads: usize) -> SweepOutcome {
    let threads = threads.clamp(1, experiments.len().max(1));
    let t0 = Instant::now();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SweepResult>>> =
        experiments.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(exp) = experiments.get(i) else { break };
                let start = Instant::now();
                let (run, extra) = (exp.run)();
                let result = SweepResult {
                    name: exp.name.clone(),
                    level: exp.level,
                    run,
                    extra,
                    wall: start.elapsed(),
                };
                *slots[i].lock().expect("slot lock") = Some(result);
            });
        }
    });

    let results = slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot lock").expect("experiment ran"))
        .collect();
    SweepOutcome { results, wall: t0.elapsed(), threads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsi_sim::{Simulator, SystemConfig};
    use gsi_workloads::implicit::{self, ImplicitConfig, LocalMemStyle};

    fn tiny_experiment(name: &str) -> Experiment {
        Experiment::new(name, || {
            let style = LocalMemStyle::Scratchpad;
            let sys = SystemConfig::paper().with_gpu_cores(1).with_local_mem(style.mem_kind());
            let mut sim = Simulator::new(sys);
            implicit::run(&mut sim, &ImplicitConfig::small(style)).expect("completes").run
        })
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let names = ["a", "b", "c", "d", "e"];
        let outcome = run_sweep(names.iter().map(|n| tiny_experiment(n)).collect(), 4);
        let got: Vec<&str> = outcome.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(got, names);
    }

    #[test]
    fn parallel_matches_serial() {
        let serial = run_sweep(vec![tiny_experiment("x"), tiny_experiment("y")], 1);
        let parallel = run_sweep(vec![tiny_experiment("x"), tiny_experiment("y")], 2);
        for (s, p) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(s.run, p.run);
        }
    }

    #[test]
    fn traced_rows_report_overhead_against_off_baseline() {
        let mk_run = || {
            let style = LocalMemStyle::Scratchpad;
            let sys = SystemConfig::paper().with_gpu_cores(1).with_local_mem(style.mem_kind());
            let mut sim = Simulator::new(sys);
            implicit::run(&mut sim, &ImplicitConfig::small(style)).expect("completes").run
        };
        // Hand-built outcome with controlled wall times: the counters row
        // took 1.5x the off row, so its overhead must come out at 50%.
        let outcome = SweepOutcome {
            results: vec![
                SweepResult {
                    name: "x".into(),
                    level: TraceLevel::Off,
                    run: mk_run(),
                    extra: None,
                    wall: Duration::from_millis(100),
                },
                SweepResult {
                    name: "x".into(),
                    level: TraceLevel::Counters,
                    run: mk_run(),
                    extra: Some(gsi_json::obj! { "note" => "hi" }),
                    wall: Duration::from_millis(150),
                },
            ],
            wall: Duration::from_millis(250),
            threads: 1,
        };
        let v = outcome.to_json();
        let rows = v.get("experiments").unwrap().as_array().unwrap();
        assert!(rows[0].get("overhead_pct").is_none(), "off row has no baseline to compare");
        assert_eq!(rows[0].get("trace_level").unwrap().as_str(), Some("off"));
        let pct = rows[1].get("overhead_pct").unwrap().as_f64().unwrap();
        assert!((pct - 50.0).abs() < 1e-9, "got {pct}");
        assert_eq!(rows[1].get("trace_level").unwrap().as_str(), Some("counters"));
        assert_eq!(rows[1].get("trace").unwrap().get("note").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn json_report_has_per_experiment_rows() {
        let outcome = run_sweep(vec![tiny_experiment("only")], 1);
        let v = outcome.to_json();
        let rows = v.get("experiments").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("name").unwrap().as_str(), Some("only"));
        assert!(rows[0].get("cycles").unwrap().as_u64().unwrap() > 0);
    }
}
