//! Criterion benches wrapping each paper experiment at the small scale, so
//! `cargo bench` exercises every figure's pipeline end to end and tracks
//! simulator performance over time.

use criterion::{criterion_group, criterion_main, Criterion};
use gsi_bench::{figure_6_1, figure_6_2, figure_6_3, figure_6_4, Scale};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_figures");
    g.sample_size(10);
    g.bench_function("figure_6_1_uts", |b| {
        b.iter(|| black_box(figure_6_1(Scale::Small)))
    });
    g.bench_function("figure_6_2_utsd", |b| {
        b.iter(|| black_box(figure_6_2(Scale::Small)))
    });
    g.bench_function("figure_6_3_implicit", |b| {
        b.iter(|| black_box(figure_6_3(Scale::Small)))
    });
    g.bench_function("figure_6_4_mshr_sweep", |b| {
        b.iter(|| black_box(figure_6_4(Scale::Small)))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
