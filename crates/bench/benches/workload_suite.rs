//! Criterion benches over the whole workload suite: tracks simulator
//! performance per workload class (lock-bound, gather-bound, atomics-bound,
//! tile-bound, barrier-bound).

use criterion::{criterion_group, criterion_main, Criterion};
use gsi_sim::{Simulator, SystemConfig};
use gsi_workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
use gsi_workloads::uts::{self, UtsConfig, Variant};
use gsi_workloads::{histogram, reduction, spmv, stencil};
use std::hint::black_box;

fn bench_suite(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_suite");
    g.sample_size(10);
    g.bench_function("utsd_denovo", |b| {
        b.iter(|| {
            let sys = SystemConfig::paper()
                .with_gpu_cores(4)
                .with_protocol(gsi_mem::Protocol::DeNovo);
            let mut sim = Simulator::new(sys);
            black_box(
                uts::run(&mut sim, &UtsConfig::small(), Variant::Decentralized).unwrap().run,
            )
        })
    });
    g.bench_function("implicit_stash", |b| {
        b.iter(|| {
            let style = LocalMemStyle::Stash;
            let sys =
                SystemConfig::paper().with_gpu_cores(1).with_local_mem(style.mem_kind());
            let mut sim = Simulator::new(sys);
            black_box(implicit::run(&mut sim, &ImplicitConfig::small(style)).unwrap().run)
        })
    });
    g.bench_function("spmv", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
            black_box(spmv::run(&mut sim, &spmv::SpmvConfig::small()).unwrap().run)
        })
    });
    g.bench_function("histogram", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
            black_box(
                histogram::run(&mut sim, &histogram::HistogramConfig::small()).unwrap().run,
            )
        })
    });
    g.bench_function("stencil_tiled", |b| {
        b.iter(|| {
            let cfg = stencil::StencilConfig::small(stencil::StencilVariant::Tiled);
            let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(2));
            black_box(stencil::run(&mut sim, &cfg).unwrap().run)
        })
    });
    g.bench_function("reduction", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(SystemConfig::paper().with_gpu_cores(4));
            black_box(
                reduction::run(&mut sim, &reduction::ReductionConfig::small()).unwrap().run,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_suite);
criterion_main!(benches);
