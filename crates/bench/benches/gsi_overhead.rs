//! The paper's Section 5 claim: "GSI increases simulation time by on
//! average 5%". This bench runs the same kernel with the stall collectors
//! enabled and disabled; compare the two medians.

use criterion::{criterion_group, criterion_main, Criterion};
use gsi_sim::{Simulator, SystemConfig};
use gsi_workloads::implicit::{self, ImplicitConfig, LocalMemStyle};
use std::hint::black_box;

fn run_once(profiling: bool) -> u64 {
    let style = LocalMemStyle::Scratchpad;
    let cfg = ImplicitConfig::small(style);
    let sys = SystemConfig::paper().with_gpu_cores(1).with_local_mem(style.mem_kind());
    let mut sim = Simulator::new(sys);
    sim.set_profiling(profiling);
    implicit::run(&mut sim, &cfg).expect("implicit completes").run.cycles
}

fn bench_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("gsi_overhead");
    g.sample_size(20);
    g.bench_function("profiling_on", |b| b.iter(|| black_box(run_once(true))));
    g.bench_function("profiling_off", |b| b.iter(|| black_box(run_once(false))));
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
