//! The live blame accumulator one SM drives from its issue stage.

use gsi_core::{MemDataCause, RequestId, StallKind};
use std::collections::HashMap;

/// Sentinel "no causal instruction is known" program counter.
///
/// Used for stalls with no causal instruction (idle cycles, launch-time
/// register state) and as the launch-initialized value of the per-warp
/// last-writer tables.
pub const UNKNOWN_PC: u32 = u32::MAX;

/// Stall cycles charged to one instruction, split by category and (for
/// memory-data stalls) by the service point of the dependency load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcStats {
    /// Cycles per stall category, indexed by [`StallKind::index`].
    pub kinds: [u64; 8],
    /// Memory-data cycles per service point, indexed by
    /// [`MemDataCause::index`]. Sums to `kinds[MemoryData]` once every
    /// charged request has filled (or dangling charges were resolved).
    pub services: [u64; 5],
}

impl PcStats {
    /// Total stall cycles charged to this instruction (`NoStall` and
    /// `Idle` are never attributed, so this is the stall total).
    pub fn total(&self) -> u64 {
        self.kinds.iter().sum()
    }

    fn merge(&mut self, other: &PcStats) {
        for (a, b) in self.kinds.iter_mut().zip(other.kinds.iter()) {
            *a += b;
        }
        for (a, b) in self.services.iter_mut().zip(other.services.iter()) {
            *a += b;
        }
    }
}

/// Accumulates causal stall attribution for one SM.
///
/// The issue stage calls [`record`](Self::record) once per judged cycle
/// (or in bulk for a skipped stretch) with the verdict's category, the
/// causal instruction the last-writer tables identified, and the blocking
/// request when the category is memory-data; the memory system's fills
/// call [`on_fill`](Self::on_fill) so charged memory-data cycles can be
/// committed to the service point of the dependency load — mirroring how
/// [`gsi_core::StallCollector`] sub-classifies its aggregate buckets.
///
/// Disabled by default: a disabled collector records nothing and touches
/// no heap, preserving the simulator's allocation-free cycle loop.
#[derive(Debug, Clone, Default)]
pub struct BlameCollector {
    enabled: bool,
    /// Per-instruction attribution tables.
    pcs: HashMap<u32, PcStats>,
    /// Judged cycles per category, attributed or not.
    observed: [u64; 8],
    /// Judged cycles per category that could not be walked to a causal
    /// instruction (idle cycles, launch-initialized registers).
    unattributed: [u64; 8],
    /// Memory-data charges awaiting their fill: request → per-causal-pc
    /// cycle counts (one request can block different warps whose hazards
    /// trace to different loads).
    ledger: HashMap<RequestId, Vec<(u32, u64)>>,
    /// Attributed memory-data cycles whose verdict carried no blocking
    /// request (cannot be sub-classified by service point).
    uncharged_mem_data: u64,
    /// Memory-data cycles whose request never filled, resolved to
    /// [`MemDataCause::MainMemory`] by [`resolve_dangling`](Self::resolve_dangling).
    unresolved: u64,
}

impl BlameCollector {
    /// A new, **disabled** collector (blame is opt-in).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable or disable recording. Disabled collectors ignore all events.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the collector is recording.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Reset all state, keeping the enabled flag.
    pub fn reset(&mut self) {
        let enabled = self.enabled;
        *self = BlameCollector::default();
        self.enabled = enabled;
    }

    /// Record `n` judged cycles of category `kind` caused by the
    /// instruction at `cause_pc` ([`UNKNOWN_PC`] when the walk found no
    /// causal instruction). `blocking` carries the verdict's blocking
    /// request for memory-data stalls so the service point can be
    /// committed retroactively by [`on_fill`](Self::on_fill).
    pub fn record(&mut self, kind: StallKind, cause_pc: u32, blocking: Option<RequestId>, n: u64) {
        if !self.enabled || n == 0 {
            return;
        }
        self.observed[kind.index()] += n;
        if cause_pc == UNKNOWN_PC || matches!(kind, StallKind::NoStall | StallKind::Idle) {
            self.unattributed[kind.index()] += n;
            return;
        }
        self.pcs.entry(cause_pc).or_default().kinds[kind.index()] += n;
        if kind == StallKind::MemoryData {
            match blocking {
                Some(req) => {
                    let charges = self.ledger.entry(req).or_default();
                    match charges.iter_mut().find(|(pc, _)| *pc == cause_pc) {
                        Some((_, cycles)) => *cycles += n,
                        None => charges.push((cause_pc, n)),
                    }
                }
                None => self.uncharged_mem_data += n,
            }
        }
    }

    /// Record `n` judged cycles that by construction have no causal
    /// instruction (idle cycles, issued cycles).
    pub fn record_unattributed(&mut self, kind: StallKind, n: u64) {
        self.record(kind, UNKNOWN_PC, None, n);
    }

    /// A request completed: commit the memory-data cycles charged against
    /// it to the service point that produced the data.
    pub fn on_fill(&mut self, req: RequestId, serviced_at: MemDataCause) {
        if !self.enabled {
            return;
        }
        if let Some(charges) = self.ledger.remove(&req) {
            for (pc, cycles) in charges {
                self.pcs.entry(pc).or_default().services[serviced_at.index()] += cycles;
            }
        }
    }

    /// Resolve charges whose request never completed, booking them to
    /// [`MemDataCause::MainMemory`] (the conservative choice the stall
    /// collector's `finish` makes too). Returns the resolved cycle count.
    pub fn resolve_dangling(&mut self) -> u64 {
        let mut total = 0;
        for (_, charges) in self.ledger.drain() {
            for (pc, cycles) in charges {
                self.pcs.entry(pc).or_default().services[MemDataCause::MainMemory.index()] +=
                    cycles;
                total += cycles;
            }
        }
        self.unresolved += total;
        total
    }

    /// Merge another collector's tables into this one (per-SM collectors
    /// are merged into the run-level report).
    pub fn merge(&mut self, other: &BlameCollector) {
        for (pc, stats) in &other.pcs {
            self.pcs.entry(*pc).or_default().merge(stats);
        }
        for i in 0..8 {
            self.observed[i] += other.observed[i];
            self.unattributed[i] += other.unattributed[i];
        }
        for (req, charges) in &other.ledger {
            let mine = self.ledger.entry(*req).or_default();
            for &(pc, cycles) in charges {
                match mine.iter_mut().find(|(p, _)| *p == pc) {
                    Some((_, c)) => *c += cycles,
                    None => mine.push((pc, cycles)),
                }
            }
        }
        self.uncharged_mem_data += other.uncharged_mem_data;
        self.unresolved += other.unresolved;
    }

    /// The per-instruction tables, unsorted. Reports sort before emitting.
    pub fn pcs(&self) -> impl Iterator<Item = (u32, &PcStats)> {
        self.pcs.iter().map(|(&pc, s)| (pc, s))
    }

    /// Judged cycles of `kind`, attributed or not.
    pub fn observed(&self, kind: StallKind) -> u64 {
        self.observed[kind.index()]
    }

    /// Cycles of `kind` charged to some instruction.
    pub fn attributed(&self, kind: StallKind) -> u64 {
        self.observed[kind.index()] - self.unattributed[kind.index()]
    }

    /// Cycles of `kind` with no causal instruction.
    pub fn unattributed(&self, kind: StallKind) -> u64 {
        self.unattributed[kind.index()]
    }

    /// Memory-data cycles still awaiting their fill.
    pub fn pending_total(&self) -> u64 {
        self.ledger.values().flat_map(|v| v.iter().map(|&(_, c)| c)).sum()
    }

    /// Memory-data cycles whose request never filled (only nonzero after
    /// [`resolve_dangling`](Self::resolve_dangling) found some).
    pub fn unresolved_cycles(&self) -> u64 {
        self.unresolved
    }

    /// Check the attribution conservation invariants: per category, the
    /// per-instruction charges plus the unattributed remainder equal the
    /// judged cycles, and the memory-data service sub-classification
    /// (plus in-flight and uncharged cycles) sums to its parent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for kind in StallKind::ALL {
            let i = kind.index();
            let charged: u64 = self.pcs.values().map(|s| s.kinds[i]).sum();
            if charged + self.unattributed[i] != self.observed[i] {
                return Err(format!(
                    "blame conservation violated for {kind}: {charged} charged + {} \
                     unattributed != {} observed",
                    self.unattributed[i], self.observed[i]
                ));
            }
        }
        let md_parent: u64 =
            self.pcs.values().map(|s| s.kinds[StallKind::MemoryData.index()]).sum();
        let services: u64 = self.pcs.values().map(|s| s.services.iter().sum::<u64>()).sum();
        let accounted = services + self.pending_total() + self.uncharged_mem_data;
        if md_parent != accounted {
            return Err(format!(
                "blame memory-data sub-classification violated: parent {md_parent} != \
                 accounted {accounted}"
            ));
        }
        Ok(())
    }

    /// Serialize the full collector state (tables and ledger sorted so the
    /// encoding is canonical).
    pub fn snapshot(&self) -> gsi_json::Value {
        use gsi_json::{ToJson, Value};
        let mut pcs: Vec<(u32, &PcStats)> = self.pcs.iter().map(|(&pc, s)| (pc, s)).collect();
        pcs.sort_by_key(|(pc, _)| *pc);
        let pcs: Vec<Value> = pcs
            .into_iter()
            .map(|(pc, s)| {
                Value::Array(vec![
                    Value::U64(u64::from(pc)),
                    s.kinds.to_json(),
                    s.services.to_json(),
                ])
            })
            .collect();
        let mut ledger: Vec<(RequestId, &Vec<(u32, u64)>)> =
            self.ledger.iter().map(|(&r, c)| (r, c)).collect();
        ledger.sort_by_key(|(r, _)| *r);
        let ledger: Vec<Value> = ledger
            .into_iter()
            .map(|(req, charges)| Value::Array(vec![req.to_json(), charges.to_json()]))
            .collect();
        gsi_json::obj! {
            "enabled" => self.enabled,
            "pcs" => Value::Array(pcs),
            "observed" => self.observed.to_json(),
            "unattributed" => self.unattributed.to_json(),
            "ledger" => Value::Array(ledger),
            "uncharged_mem_data" => self.uncharged_mem_data,
            "unresolved" => self.unresolved
        }
    }

    /// Restore onto a fresh collector.
    pub fn restore(&mut self, v: &gsi_json::Value) -> Result<(), gsi_json::JsonError> {
        use gsi_json::{FromJson, JsonError, Value};
        self.enabled = v.read("enabled")?;
        self.observed = v.read("observed")?;
        self.unattributed = v.read("unattributed")?;
        self.uncharged_mem_data = v.read("uncharged_mem_data")?;
        self.unresolved = v.read("unresolved")?;
        self.pcs.clear();
        let pcs = match v.req("pcs")? {
            Value::Array(pcs) => pcs,
            other => return Err(JsonError::expected("array", other)),
        };
        for entry in pcs {
            let fields = match entry {
                Value::Array(f) if f.len() == 3 => f,
                other => return Err(JsonError::expected("[pc, kinds, services]", other)),
            };
            let pc = u32::from_json(&fields[0])?;
            self.pcs.insert(
                pc,
                PcStats {
                    kinds: <[u64; 8]>::from_json(&fields[1])?,
                    services: <[u64; 5]>::from_json(&fields[2])?,
                },
            );
        }
        self.ledger.clear();
        let ledger = match v.req("ledger")? {
            Value::Array(ledger) => ledger,
            other => return Err(JsonError::expected("array", other)),
        };
        for entry in ledger {
            let fields = match entry {
                Value::Array(f) if f.len() == 2 => f,
                other => return Err(JsonError::expected("[request, charges]", other)),
            };
            self.ledger.insert(RequestId::from_json(&fields[0])?, Vec::from_json(&fields[1])?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn disabled_by_default_records_nothing() {
        let mut c = BlameCollector::new();
        c.record(StallKind::MemoryData, 3, Some(RequestId(1)), 4);
        assert_eq!(c.observed(StallKind::MemoryData), 0);
        assert_eq!(c.pcs().count(), 0);
    }

    #[test]
    fn attribution_and_fill_commit() {
        let mut c = BlameCollector::new();
        c.set_enabled(true);
        c.record(StallKind::MemoryData, 14, Some(RequestId(7)), 3);
        c.record(StallKind::Control, 9, None, 2);
        assert_eq!(c.pending_total(), 3);
        c.on_fill(RequestId(7), MemDataCause::MainMemory);
        assert_eq!(c.pending_total(), 0);
        let stats: Vec<_> = c.pcs().collect();
        let s14 = stats.iter().find(|(pc, _)| *pc == 14).unwrap().1;
        assert_eq!(s14.kinds[StallKind::MemoryData.index()], 3);
        assert_eq!(s14.services[MemDataCause::MainMemory.index()], 3);
        assert_eq!(s14.total(), 3);
        c.validate().unwrap();
    }

    #[test]
    fn one_request_can_blame_two_loads() {
        let mut c = BlameCollector::new();
        c.set_enabled(true);
        c.record(StallKind::MemoryData, 4, Some(RequestId(1)), 2);
        c.record(StallKind::MemoryData, 8, Some(RequestId(1)), 5);
        c.on_fill(RequestId(1), MemDataCause::L2);
        let l2 = MemDataCause::L2.index();
        let get = |pc: u32| c.pcs().find(|(p, _)| *p == pc).unwrap().1.services[l2];
        assert_eq!(get(4), 2);
        assert_eq!(get(8), 5);
        c.validate().unwrap();
    }

    #[test]
    fn unknown_pc_and_idle_stay_unattributed() {
        let mut c = BlameCollector::new();
        c.set_enabled(true);
        c.record(StallKind::MemoryData, UNKNOWN_PC, Some(RequestId(2)), 6);
        c.record_unattributed(StallKind::Idle, 10);
        assert_eq!(c.attributed(StallKind::MemoryData), 0);
        assert_eq!(c.unattributed(StallKind::MemoryData), 6);
        assert_eq!(c.observed(StallKind::Idle), 10);
        assert_eq!(c.pending_total(), 0, "unattributed charges never enter the ledger");
        c.validate().unwrap();
    }

    #[test]
    fn dangling_charges_resolve_to_main_memory() {
        let mut c = BlameCollector::new();
        c.set_enabled(true);
        c.record(StallKind::MemoryData, 5, Some(RequestId(9)), 4);
        assert_eq!(c.resolve_dangling(), 4);
        assert_eq!(c.unresolved_cycles(), 4);
        let s = c.pcs().find(|(p, _)| *p == 5).unwrap().1;
        assert_eq!(s.services[MemDataCause::MainMemory.index()], 4);
        c.validate().unwrap();
    }

    #[test]
    fn merge_adds_tables_and_ledgers() {
        let mut a = BlameCollector::new();
        a.set_enabled(true);
        a.record(StallKind::ComputeData, 3, None, 2);
        a.record(StallKind::MemoryData, 7, Some(RequestId(1)), 1);
        let mut b = BlameCollector::new();
        b.set_enabled(true);
        b.record(StallKind::ComputeData, 3, None, 5);
        b.record(StallKind::MemoryData, 7, Some(RequestId(1)), 2);
        a.merge(&b);
        let s3 = a.pcs().find(|(p, _)| *p == 3).unwrap().1;
        assert_eq!(s3.kinds[StallKind::ComputeData.index()], 7);
        assert_eq!(a.pending_total(), 3);
        a.on_fill(RequestId(1), MemDataCause::RemoteL1);
        let s7 = a.pcs().find(|(p, _)| *p == 7).unwrap().1;
        assert_eq!(s7.services[MemDataCause::RemoteL1.index()], 3);
        a.validate().unwrap();
    }

    #[test]
    fn reset_preserves_enabled() {
        let mut c = BlameCollector::new();
        c.set_enabled(true);
        c.record(StallKind::Control, 1, None, 1);
        c.reset();
        assert!(c.is_enabled());
        assert_eq!(c.observed(StallKind::Control), 0);
    }

    #[test]
    fn validate_catches_missing_service_classification() {
        let mut c = BlameCollector::new();
        c.set_enabled(true);
        // Memory-data without a blocking request: counted, flagged as
        // uncharged, still consistent.
        c.record(StallKind::MemoryData, 2, None, 3);
        c.validate().unwrap();
        assert_eq!(c.attributed(StallKind::MemoryData), 3);
    }
}
