//! # gsi-blame — stall root-cause attribution
//!
//! The stall collector of `gsi-core` answers *how many* cycles each stall
//! category wasted; this crate answers *which instruction caused them*.
//! During simulation the SM maintains per-warp last-writer tables (which
//! instruction last defined each register, issued each outstanding memory
//! request, took the last branch, or entered the pending synchronization),
//! so every stall verdict can be walked backward through the def-use chain
//! to its causal instruction and charged to `(pc, stall category, service
//! point)` — the backward-slicing step LEO pioneered for CPU traces,
//! applied live so it works identically under the dense and event-driven
//! cycle engines.
//!
//! * [`BlameCollector`] — the per-SM accumulator the issue stage drives.
//! * [`BlameReport`] — the merged, ranked per-instruction table with
//!   disassembly, text rendering, and gsi-json output.
//! * [`BlameDiff`] — the per-instruction differential between two runs
//!   (e.g. GPU coherence vs DeNovo), showing *which loads* a protocol
//!   helps.
//!
//! ```
//! use gsi_blame::{BlameCollector, UNKNOWN_PC};
//! use gsi_core::{RequestId, StallKind};
//! let mut c = BlameCollector::new();
//! c.set_enabled(true);
//! c.record(StallKind::MemoryData, 14, Some(RequestId(3)), 2);
//! c.on_fill(RequestId(3), gsi_core::MemDataCause::MainMemory);
//! c.record_unattributed(StallKind::Idle, 5);
//! assert_eq!(c.attributed(StallKind::MemoryData), 2);
//! assert_eq!(c.attributed(StallKind::Idle), 0);
//! assert_ne!(UNKNOWN_PC, 14);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
mod report;

pub use collector::{BlameCollector, PcStats, UNKNOWN_PC};
pub use report::{BlameDiff, BlameDiffRow, BlameReport, BlameRow};
