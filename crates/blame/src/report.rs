//! Ranked blame reports, text + gsi-json rendering, and protocol
//! differentials.

use crate::collector::{BlameCollector, PcStats};
use gsi_core::{MemDataCause, StallKind};
use gsi_isa::{asm, Program};
use gsi_json::{obj, Value};

/// One ranked row of a [`BlameReport`]: everything charged to one
/// instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameRow {
    /// Program counter of the causal instruction.
    pub pc: u32,
    /// Source location (`kernel.gsi:14`), or the raw pc when no program
    /// was available.
    pub loc: String,
    /// Disassembly of the instruction (empty when unavailable).
    pub text: String,
    /// Total stall cycles charged to this instruction.
    pub total: u64,
    /// Share of all attributed stall cycles, in percent.
    pub share_pct: f64,
    /// The per-category and per-service-point split.
    pub stats: PcStats,
}

impl BlameRow {
    /// The dominant stall category of this row.
    pub fn dominant_kind(&self) -> StallKind {
        let mut best = StallKind::NoStall;
        let mut best_cycles = 0;
        for kind in StallKind::ALL {
            let c = self.stats.kinds[kind.index()];
            if c > best_cycles {
                best_cycles = c;
                best = kind;
            }
        }
        best
    }

    /// The dominant service point of this row's memory-data cycles, if any
    /// were sub-classified.
    pub fn dominant_service(&self) -> Option<MemDataCause> {
        let mut best = None;
        let mut best_cycles = 0;
        for cause in MemDataCause::ALL {
            let c = self.stats.services[cause.index()];
            if c > best_cycles {
                best_cycles = c;
                best = Some(cause);
            }
        }
        best
    }

    fn to_json(&self) -> Value {
        let mut kinds = obj! {};
        for kind in StallKind::ALL {
            if !matches!(kind, StallKind::NoStall | StallKind::Idle) {
                kinds.set(kind.short(), self.stats.kinds[kind.index()]);
            }
        }
        let mut services = obj! {};
        for cause in MemDataCause::ALL {
            services.set(cause.short(), self.stats.services[cause.index()]);
        }
        obj! {
            "pc" => self.pc as u64,
            "loc" => self.loc.as_str(),
            "text" => self.text.as_str(),
            "total" => self.total,
            "share_pct" => self.share_pct,
            "kinds" => kinds,
            "services" => services,
        }
    }
}

/// The run-level attribution report: per-SM [`BlameCollector`]s merged,
/// dangling charges resolved, rows ranked by charged cycles.
#[derive(Debug, Clone)]
pub struct BlameReport {
    /// Ranked rows, most-blamed instruction first.
    pub rows: Vec<BlameRow>,
    /// Judged cycles per category (indexed by [`StallKind::index`]).
    pub observed: [u64; 8],
    /// Cycles per category with no causal instruction.
    pub unattributed: [u64; 8],
    /// Memory-data cycles whose request never filled (resolved to main
    /// memory, reported for honesty).
    pub unresolved_cycles: u64,
    /// Fraction (percent) of the full-level event ring that survived to
    /// export: 100 unless the ring wrapped. Attribution itself is
    /// collected live and is always complete; this field qualifies the
    /// *event window* (Perfetto annotations) the report ships alongside.
    pub coverage_pct: f64,
    /// Events overwritten by the ring wraparound (0 when it never
    /// wrapped, or when full tracing was off).
    pub dropped_events: u64,
    /// The kernel the rows disassemble against, for snippet rendering.
    program: Option<Program>,
}

impl BlameReport {
    /// Build a report from an already-merged collector. `coverage_pct` /
    /// `dropped_events` describe the event-ring window (pass `100.0` / `0`
    /// when full tracing was off).
    pub fn build(
        mut collector: BlameCollector,
        program: Option<&Program>,
        coverage_pct: f64,
        dropped_events: u64,
    ) -> Self {
        collector.resolve_dangling();
        let attributed_total: u64 = collector.pcs().map(|(_, s)| s.total()).sum();
        let mut rows: Vec<BlameRow> = collector
            .pcs()
            .filter(|(_, s)| s.total() > 0)
            .map(|(pc, s)| {
                let (loc, text) = describe(program, pc);
                BlameRow {
                    pc,
                    loc,
                    text,
                    total: s.total(),
                    share_pct: if attributed_total == 0 {
                        0.0
                    } else {
                        s.total() as f64 * 100.0 / attributed_total as f64
                    },
                    stats: *s,
                }
            })
            .collect();
        rows.sort_by(|a, b| b.total.cmp(&a.total).then(a.pc.cmp(&b.pc)));
        let mut observed = [0u64; 8];
        let mut unattributed = [0u64; 8];
        for kind in StallKind::ALL {
            observed[kind.index()] = collector.observed(kind);
            unattributed[kind.index()] = collector.unattributed(kind);
        }
        BlameReport {
            rows,
            observed,
            unattributed,
            unresolved_cycles: collector.unresolved_cycles(),
            coverage_pct,
            dropped_events,
            program: program.cloned(),
        }
    }

    /// Total stall cycles charged to some instruction.
    pub fn attributed_total(&self) -> u64 {
        self.rows.iter().map(|r| r.total).sum()
    }

    /// Cycles of `kind` charged to some instruction.
    pub fn attributed(&self, kind: StallKind) -> u64 {
        self.observed[kind.index()] - self.unattributed[kind.index()]
    }

    /// The report as a gsi-json document (deterministic field and row
    /// order, so byte-identical runs produce byte-identical JSON).
    pub fn to_json(&self) -> Value {
        let mut observed = obj! {};
        let mut unattributed = obj! {};
        for kind in StallKind::ALL {
            observed.set(kind.short(), self.observed[kind.index()]);
            unattributed.set(kind.short(), self.unattributed[kind.index()]);
        }
        obj! {
            "coverage_pct" => self.coverage_pct,
            "dropped_events" => self.dropped_events,
            "attributed_total" => self.attributed_total(),
            "unresolved_cycles" => self.unresolved_cycles,
            "observed" => observed,
            "unattributed" => unattributed,
            "rows" => Value::Array(self.rows.iter().map(BlameRow::to_json).collect()),
        }
    }

    /// Render the ranked table (top `top` rows, snippets for the top 3).
    pub fn render(&self, top: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "== stall blame ({} instructions charged) ==", self.rows.len());
        if self.coverage_pct < 100.0 {
            let _ = writeln!(
                out,
                "warning: event ring wrapped ({} events dropped); exported trace \
                 annotations cover {:.1}% of the run (live attribution below is complete)",
                self.dropped_events, self.coverage_pct
            );
        }
        if self.unresolved_cycles > 0 {
            let _ = writeln!(
                out,
                "note: {} memory-data cycles never saw their fill (booked to main memory)",
                self.unresolved_cycles
            );
        }
        let attributed = self.attributed_total();
        let stalled: u64 = StallKind::ALL
            .iter()
            .filter(|k| !matches!(k, StallKind::NoStall | StallKind::Idle))
            .map(|k| self.observed[k.index()])
            .sum();
        let _ = writeln!(
            out,
            "{attributed} of {stalled} stall cycles attributed ({:.1}%)",
            if stalled == 0 { 100.0 } else { attributed as f64 * 100.0 / stalled as f64 }
        );
        let _ = writeln!(
            out,
            "{:>5}  {:>10}  {:>6}  {:<12} {:<12} location",
            "pc", "cycles", "share", "dominant", "service"
        );
        for row in self.rows.iter().take(top) {
            let service = row
                .dominant_service()
                .map(|c| c.short().to_string())
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(
                out,
                "{:>5}  {:>10}  {:>5.1}%  {:<12} {:<12} {}  {}",
                row.pc,
                row.total,
                row.share_pct,
                row.dominant_kind().short(),
                service,
                row.loc,
                row.text,
            );
        }
        for row in self.rows.iter().take(3) {
            if let Some(p) = self.program.as_ref() {
                if (row.pc as usize) < p.len() {
                    let _ = writeln!(
                        out,
                        "\n{} — {} cycles ({:.1}%):",
                        row.loc, row.total, row.share_pct
                    );
                    out.push_str(&asm::snippet(p, row.pc as usize, 2));
                }
            }
        }
        out
    }
}

fn describe(program: Option<&Program>, pc: u32) -> (String, String) {
    match program {
        Some(p) if (pc as usize) < p.len() => {
            let text = p.fetch(pc as usize).map(|i| i.to_string()).unwrap_or_default();
            (asm::location(p, pc as usize), text)
        }
        _ => (format!("pc:{pc}"), String::new()),
    }
}

/// One row of a [`BlameDiff`]: how one instruction's blame moved between
/// two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameDiffRow {
    /// Program counter of the instruction.
    pub pc: u32,
    /// Source location.
    pub loc: String,
    /// Disassembly (empty when unavailable).
    pub text: String,
    /// Charged cycles in the baseline run.
    pub base: u64,
    /// Charged cycles in the comparison run.
    pub other: u64,
    /// `other - base`: negative when the comparison run helped this
    /// instruction.
    pub delta: i64,
}

/// A per-instruction differential between two blame reports (e.g. GPU
/// coherence baseline vs DeNovo), ranked by absolute movement.
#[derive(Debug, Clone)]
pub struct BlameDiff {
    /// Label of the baseline run.
    pub base_name: String,
    /// Label of the comparison run.
    pub other_name: String,
    /// Union of both reports' instructions, largest |delta| first.
    pub rows: Vec<BlameDiffRow>,
}

impl BlameDiff {
    /// Diff `other` against `base`.
    pub fn new(base_name: &str, base: &BlameReport, other_name: &str, other: &BlameReport) -> Self {
        let mut pcs: Vec<u32> = base.rows.iter().chain(other.rows.iter()).map(|r| r.pc).collect();
        pcs.sort_unstable();
        pcs.dedup();
        let find = |report: &BlameReport, pc: u32| {
            report
                .rows
                .iter()
                .find(|r| r.pc == pc)
                .map(|r| (r.total, r.loc.clone(), r.text.clone()))
        };
        let mut rows: Vec<BlameDiffRow> = pcs
            .into_iter()
            .map(|pc| {
                let a = find(base, pc);
                let b = find(other, pc);
                let (loc, text) = a
                    .as_ref()
                    .or(b.as_ref())
                    .map(|(_, l, t)| (l.clone(), t.clone()))
                    .unwrap_or_else(|| (format!("pc:{pc}"), String::new()));
                let base_total = a.map(|(t, _, _)| t).unwrap_or(0);
                let other_total = b.map(|(t, _, _)| t).unwrap_or(0);
                BlameDiffRow {
                    pc,
                    loc,
                    text,
                    base: base_total,
                    other: other_total,
                    delta: other_total as i64 - base_total as i64,
                }
            })
            .collect();
        rows.sort_by(|a, b| b.delta.abs().cmp(&a.delta.abs()).then(a.pc.cmp(&b.pc)));
        BlameDiff { base_name: base_name.to_string(), other_name: other_name.to_string(), rows }
    }

    /// The diff as a gsi-json document.
    pub fn to_json(&self) -> Value {
        obj! {
            "base" => self.base_name.as_str(),
            "other" => self.other_name.as_str(),
            "rows" => Value::Array(
                self.rows
                    .iter()
                    .map(|r| obj! {
                        "pc" => r.pc as u64,
                        "loc" => r.loc.as_str(),
                        "text" => r.text.as_str(),
                        self.base_name.as_str() => r.base,
                        self.other_name.as_str() => r.other,
                        "delta" => r.delta,
                    })
                    .collect(),
            ),
        }
    }

    /// Render the ranked differential table (top `top` rows).
    pub fn render(&self, top: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ =
            writeln!(out, "== blame differential: {} vs {} ==", self.base_name, self.other_name);
        let _ = writeln!(
            out,
            "{:>5}  {:>10}  {:>10}  {:>11}  location",
            "pc", self.base_name, self.other_name, "delta"
        );
        for row in self.rows.iter().take(top) {
            let _ = writeln!(
                out,
                "{:>5}  {:>10}  {:>10}  {:>+11}  {}  {}",
                row.pc, row.base, row.other, row.delta, row.loc, row.text,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use gsi_core::RequestId;
    use gsi_isa::{ProgramBuilder, Reg};

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new("k");
        b.ldi(Reg(1), 0x1000);
        b.ld_global(Reg(2), Reg(1), 0);
        b.addi(Reg(3), Reg(2), 1);
        b.exit();
        b.build().unwrap()
    }

    fn sample_collector() -> BlameCollector {
        let mut c = BlameCollector::new();
        c.set_enabled(true);
        c.record(StallKind::MemoryData, 1, Some(RequestId(1)), 62);
        c.on_fill(RequestId(1), MemDataCause::MainMemory);
        c.record(StallKind::ComputeData, 0, None, 8);
        c.record_unattributed(StallKind::Idle, 30);
        c
    }

    #[test]
    fn rows_rank_by_charged_cycles_and_shares_sum_to_100() {
        let p = sample_program();
        let report = BlameReport::build(sample_collector(), Some(&p), 100.0, 0);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].pc, 1);
        assert_eq!(report.rows[0].total, 62);
        assert_eq!(report.rows[0].dominant_kind(), StallKind::MemoryData);
        assert_eq!(report.rows[0].dominant_service(), Some(MemDataCause::MainMemory));
        let shares: f64 = report.rows.iter().map(|r| r.share_pct).sum();
        assert!((shares - 100.0).abs() < 1e-6, "{shares}");
        assert!(report.rows[0].loc.contains("k.gsi:1"), "{}", report.rows[0].loc);
    }

    #[test]
    fn json_is_deterministic_and_carries_coverage() {
        let p = sample_program();
        let report = BlameReport::build(sample_collector(), Some(&p), 87.5, 123);
        let a = report.to_json().to_string_pretty();
        let b = report.to_json().to_string_pretty();
        assert_eq!(a, b);
        let v = report.to_json();
        assert_eq!(v.get("dropped_events").and_then(|x| x.as_u64()), Some(123));
        assert!(a.contains("coverage_pct"));
    }

    #[test]
    fn render_warns_on_wrapped_ring() {
        let p = sample_program();
        let report = BlameReport::build(sample_collector(), Some(&p), 42.0, 999);
        let text = report.render(10);
        assert!(text.contains("warning"), "{text}");
        assert!(text.contains("42.0%"), "{text}");
        let clean = BlameReport::build(sample_collector(), Some(&p), 100.0, 0);
        assert!(!clean.render(10).contains("warning"));
    }

    #[test]
    fn diff_ranks_by_absolute_delta() {
        let p = sample_program();
        let a = BlameReport::build(sample_collector(), Some(&p), 100.0, 0);
        let mut c = BlameCollector::new();
        c.set_enabled(true);
        c.record(StallKind::MemoryData, 1, Some(RequestId(1)), 10);
        c.on_fill(RequestId(1), MemDataCause::RemoteL1);
        c.record(StallKind::ComputeData, 0, None, 8);
        let b = BlameReport::build(c, Some(&p), 100.0, 0);
        let diff = BlameDiff::new("gpu", &a, "denovo", &b);
        assert_eq!(diff.rows[0].pc, 1, "the load moved the most");
        assert_eq!(diff.rows[0].delta, -52);
        assert_eq!(diff.rows[1].delta, 0);
        let json = diff.to_json();
        assert_eq!(json.get("base").and_then(|v| v.as_str()), Some("gpu"));
        assert!(diff.render(5).contains("denovo"));
    }
}
